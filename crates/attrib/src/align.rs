//! Aligning the retired instruction streams of two traces.
//!
//! Sequence numbers cannot be compared across configurations: seqs are
//! assigned at rename and wrong-path fetches consume them, so two runs of
//! the same program under different protections burn through the seq
//! space at different rates. What *is* comparable is the retired stream —
//! both runs retire the same architectural instruction sequence — so
//! alignment pairs retired records by **retire rank** and verifies each
//! pair by PC.
//!
//! Within one trace, squash/re-fetch epochs are already unambiguous: the
//! machine never reuses a sequence number, so a re-fetched instance of
//! the same static instruction carries a fresh (strictly larger) seq and
//! its squashed predecessor a `retire:0` record. [`align_retired`]
//! asserts this invariant (strictly increasing seq over the retired
//! stream) rather than inventing a separate epoch field; the
//! `tests/observability.rs` regression test drives a branch-mispredicting
//! workload through the emitter to pin it.
//!
//! A small resync window absorbs tail divergence (one run may overshoot
//! the retirement budget by a few instructions, and a PC glitch must not
//! desynchronize the whole tail): on a PC mismatch the aligner scans up
//! to [`RESYNC_WINDOW`] records ahead on either side for the first
//! re-match, counting everything it skipped as unmatched.

use spt_util::trace::{OwnedInstRecord, ParsedTrace};

/// How far the aligner scans ahead (on either side) to re-synchronize
/// after a PC mismatch.
pub const RESYNC_WINDOW: usize = 8;

/// Result of aligning two retired streams.
#[derive(Clone, Debug, Default)]
pub struct Alignment {
    /// Matched pairs as indices into `a.records` / `b.records`, in retire
    /// order.
    pub pairs: Vec<(usize, usize)>,
    /// Retired records in trace A.
    pub retired_a: usize,
    /// Retired records in trace B.
    pub retired_b: usize,
    /// Retired records skipped because their PCs disagreed (both sides
    /// counted once per resync step).
    pub pc_mismatches: usize,
}

impl Alignment {
    /// Fraction of the larger retired stream that was matched (1.0 for
    /// two empty traces).
    pub fn rate(&self) -> f64 {
        let denom = self.retired_a.max(self.retired_b);
        if denom == 0 {
            1.0
        } else {
            self.pairs.len() as f64 / denom as f64
        }
    }
}

/// Indices of retired records, asserting the never-reused-seq invariant
/// that makes (seq, epoch) disambiguation unnecessary.
fn retired_indices(t: &ParsedTrace, label: &str) -> Vec<usize> {
    let mut last_seq = 0u64;
    let mut out = Vec::new();
    for (i, r) in t.records.iter().enumerate() {
        if r.retired() {
            assert!(
                r.seq > last_seq || last_seq == 0,
                "trace {label}: retired seq {} not strictly increasing after {} — \
                 a squash/re-fetch epoch reused a sequence number",
                r.seq,
                last_seq
            );
            last_seq = r.seq;
            out.push(i);
        }
    }
    out
}

/// Aligns the retired streams of two traces of the same workload by
/// retire rank, PC-verified, with a bounded resync window.
///
/// # Panics
///
/// Panics if either trace's retired stream has non-increasing sequence
/// numbers (a trace-emission bug: seqs are never reused, so squash
/// epochs must already be distinguishable).
pub fn align_retired(a: &ParsedTrace, b: &ParsedTrace) -> Alignment {
    let ra = retired_indices(a, "A");
    let rb = retired_indices(b, "B");
    let mut out = Alignment {
        pairs: Vec::with_capacity(ra.len().min(rb.len())),
        retired_a: ra.len(),
        retired_b: rb.len(),
        pc_mismatches: 0,
    };
    let (mut i, mut j) = (0usize, 0usize);
    while i < ra.len() && j < rb.len() {
        let pa = a.records[ra[i]].pc;
        let pb = b.records[rb[j]].pc;
        if pa == pb {
            out.pairs.push((ra[i], rb[j]));
            i += 1;
            j += 1;
            continue;
        }
        // Resync: find the nearest re-match within the window, preferring
        // the smallest total skip.
        let mut best: Option<(usize, usize)> = None;
        for skip in 1..=RESYNC_WINDOW {
            if i + skip < ra.len() && a.records[ra[i + skip]].pc == pb {
                best = Some((skip, 0));
                break;
            }
            if j + skip < rb.len() && b.records[rb[j + skip]].pc == pa {
                best = Some((0, skip));
                break;
            }
        }
        match best {
            Some((da, db)) => {
                out.pc_mismatches += da + db;
                i += da;
                j += db;
            }
            None => {
                out.pc_mismatches += 1;
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Convenience accessor: the record pair at alignment index `k`.
pub fn pair_records<'t>(
    a: &'t ParsedTrace,
    b: &'t ParsedTrace,
    alignment: &Alignment,
    k: usize,
) -> (&'t OwnedInstRecord, &'t OwnedInstRecord) {
    let (ia, ib) = alignment.pairs[k];
    (&a.records[ia], &b.records[ib])
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_util::trace::OwnedInstRecord;

    fn retired_rec(seq: u64, pc: u64) -> OwnedInstRecord {
        OwnedInstRecord {
            seq,
            pc,
            disasm: "nop".into(),
            fetch_cycle: seq,
            rename_cycle: seq + 1,
            issue_cycle: Some(seq + 2),
            complete_cycle: Some(seq + 3),
            retire_cycle: Some(seq + 4),
            squash_cycle: None,
        }
    }

    fn squashed_rec(seq: u64, pc: u64) -> OwnedInstRecord {
        OwnedInstRecord {
            issue_cycle: None,
            complete_cycle: None,
            retire_cycle: None,
            squash_cycle: Some(seq + 2),
            ..retired_rec(seq, pc)
        }
    }

    fn trace(records: Vec<OwnedInstRecord>) -> ParsedTrace {
        ParsedTrace { records, events: Vec::new() }
    }

    #[test]
    fn identical_streams_align_fully() {
        let a = trace(vec![retired_rec(1, 0x40), squashed_rec(2, 0x44), retired_rec(3, 0x44)]);
        let b = trace(vec![retired_rec(1, 0x40), retired_rec(2, 0x44)]);
        let al = align_retired(&a, &b);
        assert_eq!(al.pairs, vec![(0, 0), (2, 1)]);
        assert_eq!((al.retired_a, al.retired_b), (2, 2));
        assert_eq!(al.pc_mismatches, 0);
        assert!((al.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_overshoot_keeps_rate_high() {
        let mut recs = Vec::new();
        for s in 1..=100u64 {
            recs.push(retired_rec(s, 0x40 + s * 4));
        }
        let a = trace(recs.clone());
        recs.push(retired_rec(101, 0x1000)); // B retired a few extra
        let b = trace(recs);
        let al = align_retired(&a, &b);
        assert_eq!(al.pairs.len(), 100);
        assert!(al.rate() > 0.99);
    }

    #[test]
    fn resync_skips_one_sided_extra() {
        // B has one extra retired instruction in the middle; the window
        // must skip it and keep the tail aligned.
        let a = trace(vec![retired_rec(1, 0x40), retired_rec(2, 0x48), retired_rec(3, 0x4c)]);
        let b = trace(vec![
            retired_rec(1, 0x40),
            retired_rec(2, 0x999),
            retired_rec(3, 0x48),
            retired_rec(4, 0x4c),
        ]);
        let al = align_retired(&a, &b);
        assert_eq!(al.pairs.len(), 3);
        assert_eq!(al.pc_mismatches, 1);
        let (_, rb) = pair_records(&a, &b, &al, 2);
        assert_eq!(rb.pc, 0x4c);
    }

    #[test]
    #[should_panic(expected = "not strictly increasing")]
    fn reused_seq_in_retired_stream_is_a_bug() {
        let a = trace(vec![retired_rec(5, 0x40), retired_rec(5, 0x44)]);
        let _ = align_retired(&a, &a);
    }

    #[test]
    fn empty_traces_align_trivially() {
        let al = align_retired(&trace(vec![]), &trace(vec![]));
        assert!((al.rate() - 1.0).abs() < 1e-12);
        assert!(al.pairs.is_empty());
    }
}
