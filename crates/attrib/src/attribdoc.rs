//! Versioned `spt-attrib-v1` JSON documents and human-readable reports.
//!
//! Two document kinds share the schema tag:
//!
//! * `"tracediff"` ([`diff_document`]) — one trace-pair diff: alignment
//!   quality, per-stage and per-cause totals, and the slowed
//!   instructions;
//! * `"fig7-accounting"` ([`accounting_document`]) — one accounted
//!   Figure-7 matrix: per-cell stacked components with the consistency
//!   verdict.
//!
//! [`validate_attrib_document`] is the schema gate both binaries expose
//! as `--validate`: it checks structure *and* the semantic invariants the
//! acceptance criteria pin (every stall has a named cause and a positive
//! delta; every accounting cell's stack reproduces its delta within the
//! document's own tolerance).

use crate::accounting::AccountingReport;
use crate::diff::{StageDeltas, TraceDiff};
use spt_util::Json;

/// Schema identifier stamped into every document this module emits.
pub const ATTRIB_SCHEMA: &str = "spt-attrib-v1";

fn stages_json(s: &StageDeltas) -> Json {
    Json::obj([
        ("fetch_to_dispatch", Json::I64(s.fetch_to_dispatch)),
        ("dispatch_to_issue", Json::I64(s.dispatch_to_issue)),
        ("issue_to_complete", Json::I64(s.issue_to_complete)),
        ("complete_to_retire", Json::I64(s.complete_to_retire)),
    ])
}

/// Builds the `"tracediff"` document. `trace_a`/`trace_b` label the
/// inputs; `max_stalls` caps the embedded stall list (the totals always
/// cover everything).
pub fn diff_document(d: &TraceDiff, trace_a: &str, trace_b: &str, max_stalls: usize) -> Json {
    let stalls = d
        .stalls
        .iter()
        .take(max_stalls)
        .map(|s| {
            Json::obj([
                ("rank", Json::U64(s.rank)),
                ("seq_a", Json::U64(s.seq_a)),
                ("seq_b", Json::U64(s.seq_b)),
                ("pc", Json::str(format!("0x{:x}", s.pc))),
                ("disasm", Json::str(&s.disasm)),
                ("delta", Json::I64(s.delta)),
                ("stages", stages_json(&s.stages)),
                ("cause", Json::str(s.cause.label())),
                ("detail", Json::str(&s.detail)),
            ])
        })
        .collect::<Vec<_>>();
    let causes = d
        .cause_totals
        .iter()
        .map(|&(cause, cycles, count)| {
            Json::obj([
                ("cause", Json::str(cause.label())),
                ("cycles", Json::U64(cycles)),
                ("instructions", Json::U64(count)),
            ])
        })
        .collect::<Vec<_>>();
    Json::obj([
        ("schema", Json::str(ATTRIB_SCHEMA)),
        ("kind", Json::str("tracediff")),
        ("trace_a", Json::str(trace_a)),
        ("trace_b", Json::str(trace_b)),
        (
            "alignment",
            Json::obj([
                ("retired_a", Json::U64(d.alignment.retired_a as u64)),
                ("retired_b", Json::U64(d.alignment.retired_b as u64)),
                ("matched", Json::U64(d.alignment.pairs.len() as u64)),
                ("rate", Json::F64(d.alignment.rate())),
                ("pc_mismatches", Json::U64(d.alignment.pc_mismatches as u64)),
            ]),
        ),
        (
            "totals",
            Json::obj([
                ("cycles_a", Json::U64(d.cycles_a)),
                ("cycles_b", Json::U64(d.cycles_b)),
                ("latency_delta", Json::I64(d.total_delta)),
                ("improvement_cycles", Json::I64(d.improvement_cycles)),
                ("stages", stages_json(&d.stage_totals)),
                ("causes", Json::Arr(causes)),
            ]),
        ),
        ("stall_count", Json::U64(d.stalls.len() as u64)),
        ("stalls", Json::Arr(stalls)),
    ])
}

/// Builds the `"fig7-accounting"` document.
pub fn accounting_document(r: &AccountingReport) -> Json {
    let mut cells = Vec::with_capacity(r.workloads.len() * r.configs.len());
    for wrow in &r.cells {
        for c in wrow {
            cells.push(Json::obj([
                ("workload", Json::str(&c.workload)),
                ("config", Json::str(&c.config)),
                ("cycles", Json::U64(c.cycles)),
                ("retired", Json::U64(c.retired)),
                ("base_cycles", Json::U64(c.base_cycles)),
                ("delta", Json::I64(c.delta)),
                (
                    "components",
                    Json::obj([
                        ("transmitter_delay", Json::F64(c.transmitter_delay)),
                        ("resolution_delay", Json::F64(c.resolution_delay)),
                        ("backpressure", Json::F64(c.backpressure)),
                    ]),
                ),
                ("raw_transmitter_delay", Json::U64(c.raw_transmitter)),
                ("raw_resolution_delay", Json::U64(c.raw_resolution)),
                ("scale", Json::F64(c.scale)),
                ("stack_sum", Json::F64(c.stack_sum())),
                ("consistent", Json::Bool(c.consistent(r.tolerance))),
                (
                    "occupancy",
                    Json::obj([
                        ("rob_p50", Json::U64(c.rob_occ_p50)),
                        ("rob_p99", Json::U64(c.rob_occ_p99)),
                        ("xmit_delay_p99", Json::U64(c.xmit_delay_p99)),
                    ]),
                ),
            ]));
        }
    }
    Json::obj([
        ("schema", Json::str(ATTRIB_SCHEMA)),
        ("kind", Json::str("fig7-accounting")),
        ("threat", Json::str(r.threat.to_string())),
        ("budget", Json::U64(r.budget)),
        ("tolerance", Json::F64(r.tolerance)),
        ("consistent", Json::Bool(r.consistent())),
        ("worst_relative_error", Json::F64(r.worst_relative_error())),
        ("configs", Json::arr(r.configs.iter().map(Json::str))),
        ("workloads", Json::arr(r.workloads.iter().map(Json::str))),
        ("cells", Json::Arr(cells)),
    ])
}

fn req<'a>(doc: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    doc.get(key).ok_or_else(|| format!("{what}: missing `{key}`"))
}

fn req_num(doc: &Json, key: &str, what: &str) -> Result<f64, String> {
    req(doc, key, what)?.as_f64().ok_or_else(|| format!("{what}: `{key}` is not a number"))
}

fn req_str<'a>(doc: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    req(doc, key, what)?.as_str().ok_or_else(|| format!("{what}: `{key}` is not a string"))
}

fn validate_stages(doc: &Json, what: &str) -> Result<(), String> {
    let stages = req(doc, "stages", what)?;
    for key in ["fetch_to_dispatch", "dispatch_to_issue", "issue_to_complete", "complete_to_retire"]
    {
        if stages.get(key).and_then(Json::as_i64).is_none() {
            return Err(format!("{what}: stages.{key} missing or not an integer"));
        }
    }
    Ok(())
}

fn validate_tracediff(doc: &Json) -> Result<(), String> {
    let align = req(doc, "alignment", "tracediff")?;
    for key in ["retired_a", "retired_b", "matched", "rate", "pc_mismatches"] {
        req_num(align, key, "tracediff alignment")?;
    }
    let totals = req(doc, "totals", "tracediff")?;
    req_num(totals, "latency_delta", "tracediff totals")?;
    validate_stages(totals, "tracediff totals")?;
    let causes = req(totals, "causes", "tracediff totals")?
        .as_arr()
        .ok_or("tracediff totals: `causes` is not an array")?;
    for c in causes {
        req_str(c, "cause", "tracediff cause total")?;
        req_num(c, "cycles", "tracediff cause total")?;
    }
    let stalls =
        req(doc, "stalls", "tracediff")?.as_arr().ok_or("tracediff: `stalls` is not an array")?;
    for (i, s) in stalls.iter().enumerate() {
        let what = format!("tracediff stall #{i}");
        let delta = req(s, "delta", &what)?
            .as_i64()
            .ok_or_else(|| format!("{what}: `delta` is not an integer"))?;
        if delta <= 0 {
            return Err(format!("{what}: stall delta must be positive, got {delta}"));
        }
        let cause = req_str(s, "cause", &what)?;
        if cause.is_empty() {
            return Err(format!("{what}: empty cause"));
        }
        req_str(s, "pc", &what)?;
        req_num(s, "seq_b", &what)?;
        validate_stages(s, &what)?;
    }
    Ok(())
}

fn validate_accounting(doc: &Json) -> Result<(), String> {
    req_str(doc, "threat", "fig7-accounting")?;
    let tol = req_num(doc, "tolerance", "fig7-accounting")?;
    for key in ["configs", "workloads"] {
        if req(doc, key, "fig7-accounting")?.as_arr().is_none() {
            return Err(format!("fig7-accounting: `{key}` is not an array"));
        }
    }
    let cells = req(doc, "cells", "fig7-accounting")?
        .as_arr()
        .ok_or("fig7-accounting: `cells` is not an array")?;
    if cells.is_empty() {
        return Err("fig7-accounting: empty cell list".into());
    }
    for (i, c) in cells.iter().enumerate() {
        let what = format!("fig7-accounting cell #{i}");
        req_str(c, "workload", &what)?;
        req_str(c, "config", &what)?;
        req_num(c, "cycles", &what)?;
        let delta = req(c, "delta", &what)?
            .as_i64()
            .ok_or_else(|| format!("{what}: `delta` is not an integer"))?;
        let comp = req(c, "components", &what)?;
        let mut stack = 0.0;
        for key in ["transmitter_delay", "resolution_delay", "backpressure"] {
            stack += req_num(comp, key, &what)?;
        }
        let recorded = req_num(c, "stack_sum", &what)?;
        if (stack - recorded).abs() > 1e-6 {
            return Err(format!("{what}: components sum {stack} != stack_sum {recorded}"));
        }
        let err = (stack - delta as f64).abs() / (delta.unsigned_abs().max(1) as f64);
        if err > tol {
            return Err(format!(
                "{what}: stack {stack:.1} misses measured delta {delta} by {:.1}% (> {:.1}%)",
                err * 100.0,
                tol * 100.0
            ));
        }
        if req(c, "consistent", &what)?.as_bool() != Some(true) {
            return Err(format!("{what}: consistency flag is not true"));
        }
    }
    Ok(())
}

/// Validates an `spt-attrib-v1` document, returning its `kind` on
/// success.
///
/// # Errors
///
/// Returns a message naming the first structural or semantic violation.
pub fn validate_attrib_document(doc: &Json) -> Result<String, String> {
    let schema = req_str(doc, "schema", "document")?;
    if schema != ATTRIB_SCHEMA {
        return Err(format!("unexpected schema `{schema}` (want {ATTRIB_SCHEMA})"));
    }
    let kind = req_str(doc, "kind", "document")?.to_string();
    match kind.as_str() {
        "tracediff" => validate_tracediff(doc)?,
        "fig7-accounting" => validate_accounting(doc)?,
        other => return Err(format!("unknown document kind `{other}`")),
    }
    Ok(kind)
}

/// Renders the human-readable top-N stall report for `tracediff`.
pub fn render_diff_report(d: &TraceDiff, top: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aligned {}/{} retired instructions ({:.2}% — {} PC mismatches)",
        d.alignment.pairs.len(),
        d.alignment.retired_a.max(d.alignment.retired_b),
        d.alignment.rate() * 100.0,
        d.alignment.pc_mismatches
    );
    let _ = writeln!(
        out,
        "cycles: {} -> {} (end-to-end {:+}); summed per-instruction latency delta {:+} \
         ({:+} from speedups)",
        d.cycles_a,
        d.cycles_b,
        d.cycles_b as i64 - d.cycles_a as i64,
        d.total_delta,
        d.improvement_cycles
    );
    let _ = writeln!(out, "\nper-cause totals (slowed instructions only):");
    for &(cause, cycles, count) in &d.cause_totals {
        let _ = writeln!(out, "  {:<20} {:>10} cycles  {:>8} insts", cause.label(), cycles, count);
    }
    let s = &d.stage_totals;
    let _ = writeln!(
        out,
        "\nper-stage totals: fetch->dispatch {:+}, dispatch->issue {:+}, \
         issue->complete {:+}, complete->retire {:+}",
        s.fetch_to_dispatch, s.dispatch_to_issue, s.issue_to_complete, s.complete_to_retire
    );
    if d.stalls.is_empty() {
        let _ = writeln!(out, "\nno slowed instructions — traces are cycle-identical");
        return out;
    }
    let _ = writeln!(out, "\ntop {} stalls:", top.min(d.stalls.len()));
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>18} {:>7}  {:<20} detail",
        "rank", "seq_b", "pc", "delta", "cause"
    );
    for stall in d.stalls.iter().take(top) {
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>18} {:>+7}  {:<20} {}",
            stall.rank,
            stall.seq_b,
            format!("0x{:x}", stall.pc),
            stall.delta,
            stall.cause.label(),
            stall.detail
        );
    }
    out
}

/// Renders the human-readable per-cell accounting table for
/// `fig7_attrib`.
pub fn render_accounting(r: &AccountingReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<14} {:<22} {:>9} {:>8} {:>10} {:>10} {:>10} {:>7}",
        "workload", "config", "cycles", "delta", "xmit", "resolve", "backpress", "ok"
    );
    for wrow in &r.cells {
        for c in wrow {
            let _ = writeln!(
                out,
                "{:<14} {:<22} {:>9} {:>+8} {:>10.1} {:>10.1} {:>10.1} {:>7}",
                c.workload,
                c.config,
                c.cycles,
                c.delta,
                c.transmitter_delay,
                c.resolution_delay,
                c.backpressure,
                if c.consistent(r.tolerance) { "yes" } else { "NO" }
            );
        }
    }
    let _ = writeln!(
        out,
        "\nstack-sum check: worst relative error {:.3}% (tolerance {:.1}%) — {}",
        r.worst_relative_error() * 100.0,
        r.tolerance * 100.0,
        if r.consistent() { "consistent" } else { "INCONSISTENT" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff_traces;
    use spt_util::trace::{OwnedInstRecord, ParsedEvent, ParsedEventKind, ParsedTrace};

    fn rec(seq: u64, pc: u64, issue: u64, complete: u64, retire: u64) -> OwnedInstRecord {
        OwnedInstRecord {
            seq,
            pc,
            disasm: "ld".into(),
            fetch_cycle: 0,
            rename_cycle: 1,
            issue_cycle: Some(issue),
            complete_cycle: Some(complete),
            retire_cycle: Some(retire),
            squash_cycle: None,
        }
    }

    fn sample_diff() -> TraceDiff {
        let a = ParsedTrace { records: vec![rec(1, 0x40, 2, 4, 6)], events: vec![] };
        let b = ParsedTrace {
            records: vec![rec(1, 0x40, 7, 9, 11)],
            events: vec![ParsedEvent {
                cycle: 5,
                after_block: 0,
                kind: ParsedEventKind::TransmitterDelayed { seq: 1, pc: 0x40 },
            }],
        };
        diff_traces(&a, &b)
    }

    #[test]
    fn diff_document_validates_and_roundtrips() {
        let doc = diff_document(&sample_diff(), "a.trace", "b.trace", 50);
        assert_eq!(validate_attrib_document(&doc).unwrap(), "tracediff");
        let back = Json::parse(&doc.to_string()).unwrap();
        assert_eq!(validate_attrib_document(&back).unwrap(), "tracediff");
        assert_eq!(back.get("stall_count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn tampered_stall_fails_validation() {
        let mut doc = diff_document(&sample_diff(), "a", "b", 50);
        // Force a non-positive stall delta through re-parse surgery.
        let mut text = doc.to_string();
        text = text.replace("\"delta\":5", "\"delta\":-5");
        doc = Json::parse(&text).unwrap();
        let err = validate_attrib_document(&doc).unwrap_err();
        assert!(err.contains("positive"), "unexpected error: {err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let doc = Json::obj([("schema", Json::str("nope")), ("kind", Json::str("tracediff"))]);
        assert!(validate_attrib_document(&doc).unwrap_err().contains("unexpected schema"));
    }

    #[test]
    fn report_renders_causes_and_stalls() {
        let text = render_diff_report(&sample_diff(), 10);
        assert!(text.contains("delayed-transmitter"));
        assert!(text.contains("top 1 stalls"));
        assert!(text.contains("0x40"));
    }
}
