//! Attributing per-instruction cycle deltas to stages and stall causes.
//!
//! For every aligned pair (see [`crate::align`]) the differ splits the
//! instruction's fetch-to-retire latency change into the four
//! pipeline-stage intervals the O3PipeView record exposes
//! (fetch→dispatch, dispatch→issue, issue→complete, complete→retire) and
//! labels each *slowed* instruction with **why**, by cross-referencing
//! the `SPTEvent:` lines of the protected trace:
//!
//! 1. the instruction itself was a held transmitter (`xmit-delay` events
//!    carry its seq) — subclassified as a **shadow-L1 wait** when its
//!    release coincides with a shadow-hierarchy untaint broadcast;
//! 2. the instruction was a branch whose own resolution was deferred
//!    (`resolve-defer` events carry its seq);
//! 3. its retirement was blocked behind an *older* deferred branch or
//!    held transmitter (an event with a smaller seq inside the
//!    instruction's complete→retire window);
//! 4. otherwise: plain **backpressure** — the residual cause naming
//!    queue/occupancy effects, so every positive delta has a label.
//!
//! Order matters: a transmitter that is itself held *and* stuck behind a
//! deferred branch is attributed to its own gate (the proximate cause the
//! protection inserted).

use crate::align::{align_retired, Alignment};
use spt_util::trace::{OwnedInstRecord, ParsedEventKind, ParsedTrace};
use std::collections::{HashMap, HashSet};

/// Why a slowed instruction lost cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// Residual: slowed with no SPT event of its own in range —
    /// queue/occupancy backpressure from the protection's traffic.
    #[default]
    Backpressure,
    /// Held at issue by the transmitter taint gate.
    TransmitterDelay,
    /// Held at issue by the taint gate and released by a shadow-L1/Mem
    /// untaint broadcast (the shadow structure's fill latency is the
    /// bottleneck).
    ShadowL1Wait,
    /// A tainted branch whose squash/redirect was deferred, or a victim
    /// retiring behind one.
    ResolutionDeferral,
}

/// All causes, in report order.
pub const ALL_CAUSES: [StallCause; 4] = [
    StallCause::TransmitterDelay,
    StallCause::ShadowL1Wait,
    StallCause::ResolutionDeferral,
    StallCause::Backpressure,
];

impl StallCause {
    /// Stable label used in reports and `spt-attrib-v1` documents.
    pub fn label(&self) -> &'static str {
        match self {
            StallCause::TransmitterDelay => "delayed-transmitter",
            StallCause::ShadowL1Wait => "shadow-l1-wait",
            StallCause::ResolutionDeferral => "deferred-resolution",
            StallCause::Backpressure => "backpressure",
        }
    }
}

/// Per-stage cycle deltas (B minus A) for one aligned pair, over the four
/// O3PipeView stage intervals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageDeltas {
    /// fetch→dispatch (front-end + rename backpressure).
    pub fetch_to_dispatch: i64,
    /// dispatch→issue (operand wait; where the taint gate holds
    /// transmitters).
    pub dispatch_to_issue: i64,
    /// issue→complete (execution/memory latency).
    pub issue_to_complete: i64,
    /// complete→retire (ROB wait; where deferred resolutions queue).
    pub complete_to_retire: i64,
}

impl StageDeltas {
    /// Sum over the four intervals — the instruction's total
    /// fetch-to-retire latency change.
    pub fn total(&self) -> i64 {
        self.fetch_to_dispatch
            + self.dispatch_to_issue
            + self.issue_to_complete
            + self.complete_to_retire
    }

    /// The interval that lost the most cycles (for the residual-cause
    /// detail string).
    pub fn dominant(&self) -> &'static str {
        let stages = [
            ("fetch-to-dispatch", self.fetch_to_dispatch),
            ("dispatch-to-issue", self.dispatch_to_issue),
            ("issue-to-complete", self.issue_to_complete),
            ("complete-to-retire", self.complete_to_retire),
        ];
        stages.iter().max_by_key(|(_, v)| *v).map(|(n, _)| *n).unwrap_or("none")
    }
}

/// Stage interval lengths of one retired record. Records missing an
/// issue/complete timestamp (should not happen for retired instructions)
/// contribute zero-length execution intervals rather than poisoning the
/// diff.
fn intervals(r: &OwnedInstRecord) -> [u64; 4] {
    let issue = r.issue_cycle.unwrap_or(r.rename_cycle);
    let complete = r.complete_cycle.unwrap_or(issue);
    let retire = r.retire_cycle.unwrap_or(complete);
    [
        r.rename_cycle.saturating_sub(r.fetch_cycle),
        issue.saturating_sub(r.rename_cycle),
        complete.saturating_sub(issue),
        retire.saturating_sub(complete),
    ]
}

/// One slowed instruction: where the cycles went and why.
#[derive(Clone, Debug)]
pub struct Stall {
    /// Retire rank (position in the aligned retired stream).
    pub rank: u64,
    /// Sequence number in trace A (baseline).
    pub seq_a: u64,
    /// Sequence number in trace B (protected).
    pub seq_b: u64,
    /// Program counter (identical on both sides by construction).
    pub pc: u64,
    /// Disassembly from trace B.
    pub disasm: String,
    /// Total latency delta in cycles (positive = slower under B).
    pub delta: i64,
    /// Stage-interval split of `delta`.
    pub stages: StageDeltas,
    /// Attributed cause.
    pub cause: StallCause,
    /// Human-readable evidence for the attribution.
    pub detail: String,
}

/// The full diff of two traces.
#[derive(Clone, Debug, Default)]
pub struct TraceDiff {
    /// Stream alignment (counts + match rate).
    pub alignment: Alignment,
    /// Last retire cycle of trace A.
    pub cycles_a: u64,
    /// Last retire cycle of trace B.
    pub cycles_b: u64,
    /// Sum of per-instruction latency deltas over all aligned pairs.
    pub total_delta: i64,
    /// Cycles gained by instructions that got *faster* under B (≤ 0;
    /// wrong-path cache pollution can legitimately cause this).
    pub improvement_cycles: i64,
    /// Per-stage totals over all aligned pairs.
    pub stage_totals: StageDeltas,
    /// `(cause, cycles, instruction count)` over slowed instructions, in
    /// [`ALL_CAUSES`] order.
    pub cause_totals: [(StallCause, u64, u64); 4],
    /// Every slowed instruction (delta > 0), sorted by descending delta
    /// then retire rank.
    pub stalls: Vec<Stall>,
}

impl TraceDiff {
    /// Total cycles attributed to `cause`.
    pub fn cause_cycles(&self, cause: StallCause) -> u64 {
        self.cause_totals.iter().find(|(c, ..)| *c == cause).map(|&(_, cy, _)| cy).unwrap_or(0)
    }

    /// Number of slowed instructions attributed to `cause`.
    pub fn cause_count(&self, cause: StallCause) -> u64 {
        self.cause_totals.iter().find(|(c, ..)| *c == cause).map(|&(.., n)| n).unwrap_or(0)
    }
}

/// Event index over the protected trace, keyed the ways classification
/// needs.
struct EventIndex {
    /// seq → cycles it was held as a transmitter.
    xmit_by_seq: HashMap<u64, u64>,
    /// seq → cycles its resolution was deferred.
    defer_by_seq: HashMap<u64, u64>,
    /// All `(cycle, seq)` transmitter-hold events, sorted by cycle.
    xmit_events: Vec<(u64, u64)>,
    /// All `(cycle, seq)` resolve-defer events, sorted by cycle.
    defer_events: Vec<(u64, u64)>,
    /// Cycles on which a shadow-hierarchy untaint broadcast fired.
    shadow_untaint_cycles: HashSet<u64>,
}

impl EventIndex {
    fn build(t: &ParsedTrace) -> EventIndex {
        let mut idx = EventIndex {
            xmit_by_seq: HashMap::new(),
            defer_by_seq: HashMap::new(),
            xmit_events: Vec::new(),
            defer_events: Vec::new(),
            shadow_untaint_cycles: HashSet::new(),
        };
        for e in &t.events {
            match &e.kind {
                ParsedEventKind::TransmitterDelayed { seq, .. } => {
                    *idx.xmit_by_seq.entry(*seq).or_insert(0) += 1;
                    idx.xmit_events.push((e.cycle, *seq));
                }
                ParsedEventKind::ResolutionDeferred { seq, .. } => {
                    *idx.defer_by_seq.entry(*seq).or_insert(0) += 1;
                    idx.defer_events.push((e.cycle, *seq));
                }
                ParsedEventKind::Untaint { mechanism, .. } => {
                    if mechanism.starts_with("shadow") {
                        idx.shadow_untaint_cycles.insert(e.cycle);
                    }
                }
                ParsedEventKind::Taint { .. } => {}
            }
        }
        idx.xmit_events.sort_unstable();
        idx.defer_events.sort_unstable();
        idx
    }

    /// Smallest event seq older than `seq` within `[lo, hi]` cycles, if
    /// any (used for blocked-behind attribution).
    fn older_in_window(events: &[(u64, u64)], seq: u64, lo: u64, hi: u64) -> Option<u64> {
        let start = events.partition_point(|&(c, _)| c < lo);
        events[start..]
            .iter()
            .take_while(|&&(c, _)| c <= hi)
            .filter(|&&(_, s)| s < seq)
            .map(|&(_, s)| s)
            .min()
    }
}

/// Classifies one slowed pair. `rb` is the record from the protected
/// trace.
fn classify(rb: &OwnedInstRecord, idx: &EventIndex) -> (StallCause, String) {
    if let Some(&held) = idx.xmit_by_seq.get(&rb.seq) {
        // The gate releases a transmitter the same cycle the untaint
        // broadcast lands (untaint_step runs before issue in the machine's
        // cycle order), so a shadow-mechanism broadcast on the issue cycle
        // identifies a shadow-structure wait.
        let shadow =
            rb.issue_cycle.map(|c| idx.shadow_untaint_cycles.contains(&c)).unwrap_or(false);
        let cause = if shadow { StallCause::ShadowL1Wait } else { StallCause::TransmitterDelay };
        let via = if shadow { " (released by shadow untaint)" } else { "" };
        return (cause, format!("held {held} cycle(s) by the transmitter taint gate{via}"));
    }
    if let Some(&held) = idx.defer_by_seq.get(&rb.seq) {
        return (
            StallCause::ResolutionDeferral,
            format!("own resolution deferred {held} cycle(s) while tainted"),
        );
    }
    let (lo, hi) =
        (rb.complete_cycle.unwrap_or(rb.rename_cycle), rb.retire_cycle.unwrap_or(u64::MAX));
    if let Some(older) = EventIndex::older_in_window(&idx.defer_events, rb.seq, lo, hi) {
        return (
            StallCause::ResolutionDeferral,
            format!("retire blocked behind deferred branch seq {older}"),
        );
    }
    if let Some(older) = EventIndex::older_in_window(&idx.xmit_events, rb.seq, lo, hi) {
        return (
            StallCause::TransmitterDelay,
            format!("retire blocked behind held transmitter seq {older}"),
        );
    }
    (StallCause::Backpressure, String::new())
}

/// Diffs two parsed traces of the same workload: `a` is the baseline,
/// `b` the configuration under study. Every aligned pair contributes its
/// stage deltas; every slowed pair (positive total delta) becomes a
/// [`Stall`] with a named cause.
///
/// A self-diff (`a == b`) yields zero deltas and no stalls.
pub fn diff_traces(a: &ParsedTrace, b: &ParsedTrace) -> TraceDiff {
    let alignment = align_retired(a, b);
    let idx = EventIndex::build(b);
    let mut out = TraceDiff {
        cycles_a: a.last_retire_cycle(),
        cycles_b: b.last_retire_cycle(),
        cause_totals: [
            (StallCause::TransmitterDelay, 0, 0),
            (StallCause::ShadowL1Wait, 0, 0),
            (StallCause::ResolutionDeferral, 0, 0),
            (StallCause::Backpressure, 0, 0),
        ],
        ..TraceDiff::default()
    };
    for (rank, &(ia, ib)) in alignment.pairs.iter().enumerate() {
        let (ra, rb) = (&a.records[ia], &b.records[ib]);
        let (sa, sb) = (intervals(ra), intervals(rb));
        let stages = StageDeltas {
            fetch_to_dispatch: sb[0] as i64 - sa[0] as i64,
            dispatch_to_issue: sb[1] as i64 - sa[1] as i64,
            issue_to_complete: sb[2] as i64 - sa[2] as i64,
            complete_to_retire: sb[3] as i64 - sa[3] as i64,
        };
        let delta = stages.total();
        out.total_delta += delta;
        out.stage_totals.fetch_to_dispatch += stages.fetch_to_dispatch;
        out.stage_totals.dispatch_to_issue += stages.dispatch_to_issue;
        out.stage_totals.issue_to_complete += stages.issue_to_complete;
        out.stage_totals.complete_to_retire += stages.complete_to_retire;
        if delta < 0 {
            out.improvement_cycles += delta;
            continue;
        }
        if delta == 0 {
            continue;
        }
        let (cause, mut detail) = classify(rb, &idx);
        if detail.is_empty() {
            detail = format!("no SPT event in range; dominant interval {}", stages.dominant());
        }
        let slot = out.cause_totals.iter_mut().find(|(c, ..)| *c == cause).expect("cause slot");
        slot.1 += delta as u64;
        slot.2 += 1;
        out.stalls.push(Stall {
            rank: rank as u64,
            seq_a: ra.seq,
            seq_b: rb.seq,
            pc: rb.pc,
            disasm: rb.disasm.clone(),
            delta,
            stages,
            cause,
            detail,
        });
    }
    out.stalls.sort_by(|x, y| y.delta.cmp(&x.delta).then(x.rank.cmp(&y.rank)));
    out.alignment = alignment;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_util::trace::{OwnedInstRecord, ParsedEvent};

    fn rec(
        seq: u64,
        pc: u64,
        fetch: u64,
        issue: u64,
        complete: u64,
        retire: u64,
    ) -> OwnedInstRecord {
        OwnedInstRecord {
            seq,
            pc,
            disasm: format!("inst@{pc:x}"),
            fetch_cycle: fetch,
            rename_cycle: fetch + 1,
            issue_cycle: Some(issue),
            complete_cycle: Some(complete),
            retire_cycle: Some(retire),
            squash_cycle: None,
        }
    }

    fn ev(cycle: u64, kind: ParsedEventKind) -> ParsedEvent {
        ParsedEvent { cycle, after_block: 0, kind }
    }

    #[test]
    fn self_diff_is_all_zero() {
        let t = ParsedTrace {
            records: vec![rec(1, 0x40, 0, 3, 5, 8), rec(2, 0x44, 1, 4, 6, 9)],
            events: vec![ev(3, ParsedEventKind::TransmitterDelayed { seq: 1, pc: 0x40 })],
        };
        let d = diff_traces(&t, &t);
        assert_eq!(d.total_delta, 0);
        assert!(d.stalls.is_empty());
        assert_eq!(d.stage_totals, StageDeltas::default());
        assert!((d.alignment.rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn held_transmitter_is_attributed_to_the_gate() {
        let a = ParsedTrace { records: vec![rec(1, 0x40, 0, 2, 4, 6)], events: vec![] };
        // Same instruction issues 5 cycles later under protection, with
        // xmit-delay events naming it.
        let b = ParsedTrace {
            records: vec![rec(9, 0x40, 0, 7, 9, 11)],
            events: (2..7)
                .map(|c| ev(c, ParsedEventKind::TransmitterDelayed { seq: 9, pc: 0x40 }))
                .collect(),
        };
        let d = diff_traces(&a, &b);
        assert_eq!(d.total_delta, 5);
        assert_eq!(d.stalls.len(), 1);
        let s = &d.stalls[0];
        assert_eq!(s.cause, StallCause::TransmitterDelay);
        assert_eq!(s.stages.dispatch_to_issue, 5);
        assert_eq!((s.seq_a, s.seq_b), (1, 9));
        assert!(s.detail.contains("held 5 cycle(s)"));
        assert_eq!(d.cause_cycles(StallCause::TransmitterDelay), 5);
        assert_eq!(d.cause_count(StallCause::TransmitterDelay), 1);
    }

    #[test]
    fn shadow_release_subclassifies() {
        let a = ParsedTrace { records: vec![rec(1, 0x40, 0, 2, 4, 6)], events: vec![] };
        let b = ParsedTrace {
            records: vec![rec(1, 0x40, 0, 7, 9, 11)],
            events: vec![
                ev(6, ParsedEventKind::TransmitterDelayed { seq: 1, pc: 0x40 }),
                ev(7, ParsedEventKind::Untaint { phys: 3, mechanism: "shadow-l1".into(), seq: 1 }),
            ],
        };
        let d = diff_traces(&a, &b);
        assert_eq!(d.stalls[0].cause, StallCause::ShadowL1Wait);
        assert_eq!(d.cause_cycles(StallCause::ShadowL1Wait), 5);
    }

    #[test]
    fn blocked_behind_deferred_branch() {
        let a = ParsedTrace { records: vec![rec(2, 0x44, 0, 2, 4, 6)], events: vec![] };
        // Completes on time but retires late, with an older branch's
        // resolve-defer events inside the complete→retire window.
        let b = ParsedTrace {
            records: vec![rec(8, 0x44, 0, 2, 4, 12)],
            events: vec![
                ev(5, ParsedEventKind::ResolutionDeferred { seq: 3, pc: 0x30 }),
                ev(6, ParsedEventKind::ResolutionDeferred { seq: 3, pc: 0x30 }),
            ],
        };
        let d = diff_traces(&a, &b);
        assert_eq!(d.stalls[0].cause, StallCause::ResolutionDeferral);
        assert!(d.stalls[0].detail.contains("seq 3"));
        assert_eq!(d.stalls[0].stages.complete_to_retire, 6);
    }

    #[test]
    fn residual_is_named_backpressure() {
        let a = ParsedTrace { records: vec![rec(1, 0x40, 0, 2, 4, 6)], events: vec![] };
        let b = ParsedTrace { records: vec![rec(1, 0x40, 0, 2, 8, 10)], events: vec![] };
        let d = diff_traces(&a, &b);
        assert_eq!(d.stalls[0].cause, StallCause::Backpressure);
        assert!(d.stalls[0].detail.contains("issue-to-complete"));
    }

    #[test]
    fn improvements_are_tracked_not_stalled() {
        let a = ParsedTrace { records: vec![rec(1, 0x40, 0, 2, 10, 12)], events: vec![] };
        let b = ParsedTrace { records: vec![rec(1, 0x40, 0, 2, 4, 6)], events: vec![] };
        let d = diff_traces(&a, &b);
        assert!(d.stalls.is_empty());
        assert_eq!(d.total_delta, -6);
        assert_eq!(d.improvement_cycles, -6);
    }
}
