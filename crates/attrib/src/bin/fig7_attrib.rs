//! Regenerates the Figure-7 matrix as stacked cycle-accounting
//! breakdowns: for every (workload, config) cell, where the overhead
//! cycles went (transmitter delay, resolution delay, backpressure
//! residual), with a per-cell stack-sum consistency check.
//!
//! ```text
//! cargo run -p spt-attrib --release --bin fig7_attrib -- \
//!     [--model spectre|futuristic|both] [--budget N] [--jobs N] [--seed N]
//!     [--quick] [--tolerance F] [--json FILE]
//! fig7_attrib --validate results/fig7_attrib_spectre.json
//! ```
//!
//! Exits non-zero if any cell's stacked components miss the measured
//! cycle delta by more than `--tolerance` (default 5%).

use spt_attrib::{
    account_matrix, accounting_document, render_accounting, validate_attrib_document,
    AccountingOptions, ATTRIB_SCHEMA,
};
use spt_bench::cli::exit_sweep_error;
use spt_bench::runner::bench_suite;
use spt_core::ThreatModel;
use spt_util::Json;
use std::path::{Path, PathBuf};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: fig7_attrib [--model spectre|futuristic|both] [--budget N] [--jobs N]\n\
         \x20      [--seed N] [--quick] [--verbose] [--tolerance F] [--json FILE]\n\
         \x20      fig7_attrib --validate <{ATTRIB_SCHEMA} json>"
    );
    exit(2);
}

fn model_suffixed(path: &Path, model: ThreatModel, multi: bool) -> PathBuf {
    if !multi {
        return path.to_path_buf();
    }
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("attrib");
    let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("json");
    path.with_file_name(format!("{stem}_{model}.{ext}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = AccountingOptions::default();
    let mut models = vec![ThreatModel::Futuristic, ThreatModel::Spectre];
    let mut seed = 0u64;
    let mut json_out: Option<PathBuf> = None;
    let mut validate: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--budget" => opts.budget = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--jobs" => {
                opts.jobs = value(&mut i).parse::<usize>().unwrap_or_else(|_| usage()).max(1)
            }
            "--seed" => seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--quick" => opts.budget = 5_000,
            "--verbose" => opts.verbose = true,
            "--tolerance" => opts.tolerance = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => json_out = Some(PathBuf::from(value(&mut i))),
            "--validate" => validate = Some(PathBuf::from(value(&mut i))),
            "--model" => {
                models = match value(&mut i).as_str() {
                    "spectre" => vec![ThreatModel::Spectre],
                    "futuristic" => vec![ThreatModel::Futuristic],
                    "both" => vec![ThreatModel::Futuristic, ThreatModel::Spectre],
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }

    if let Some(path) = validate {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            exit(1);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{}: not valid JSON: {e}", path.display());
            exit(1);
        });
        match validate_attrib_document(&doc) {
            Ok(kind) => println!("{}: valid {ATTRIB_SCHEMA} ({kind})", path.display()),
            Err(e) => {
                eprintln!("{}: INVALID: {e}", path.display());
                exit(1);
            }
        }
        return;
    }

    // Apply before any workload is constructed: the suites sample their
    // input data at build time.
    spt_workloads::set_input_seed(seed);
    let suite = bench_suite();
    let multi = models.len() > 1;
    let mut all_consistent = true;
    for model in models {
        eprintln!(
            "== Figure 7 cycle accounting, {model} model (budget {} retired, seed {seed}, \
             {} jobs, tolerance {:.1}%) ==",
            opts.budget,
            opts.jobs,
            opts.tolerance * 100.0
        );
        let report = account_matrix(model, &suite, opts).unwrap_or_else(|e| exit_sweep_error(&e));
        println!("\nFigure 7 stacked cycle accounting ({model} model, seed {seed})\n");
        print!("{}", render_accounting(&report));
        if !report.consistent() {
            all_consistent = false;
            for (w, c) in report.inconsistent_cells() {
                eprintln!("INCONSISTENT cell: {w} under {c}");
            }
        }
        if let Some(path) = &json_out {
            let doc = accounting_document(&report);
            let out = model_suffixed(path, model, multi);
            if let Some(dir) = out.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&out, doc.to_string_pretty()) {
                Ok(()) => eprintln!("wrote {}", out.display()),
                Err(e) => {
                    eprintln!("cannot write {}: {e}", out.display());
                    exit(1);
                }
            }
        }
    }
    if !all_consistent {
        eprintln!("stack-sum consistency check FAILED");
        exit(1);
    }
}
