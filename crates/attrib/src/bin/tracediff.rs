//! Diffs two O3PipeView traces of the same workload and attributes every
//! slowed instruction to a pipeline stage and a named stall cause.
//!
//! ```text
//! run_spt --executable mcf_like --trace base.trace
//! run_spt --executable mcf_like --enable-spt --untaint-method bwd \
//!         --enable-shadow-l1 --trace spt.trace
//! tracediff base.trace spt.trace --top 20 --json diff.json
//! tracediff --validate diff.json
//! ```
//!
//! The baseline trace comes first. Traces must be produced by
//! `run_spt --trace` (or any `O3PipeViewSink::with_events` sink) so the
//! `SPTEvent:` lines needed for cause attribution are present — a trace
//! without them still diffs, but every stall degrades to `backpressure`.
//!
//! Exits non-zero when a trace fails to parse or the alignment rate drops
//! below `--min-align` (default 0.99, the acceptance floor for
//! same-workload traces).

use spt_attrib::{diff_traces, render_diff_report, validate_attrib_document, ATTRIB_SCHEMA};
use spt_util::{parse_o3_trace, Json};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: tracediff <base-trace> <cmp-trace> [--top N] [--json FILE] [--min-align RATE]\n\
         \x20      tracediff --validate <{ATTRIB_SCHEMA} json>"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut traces: Vec<PathBuf> = Vec::new();
    let mut top = 10usize;
    let mut json_out: Option<PathBuf> = None;
    let mut validate: Option<PathBuf> = None;
    let mut min_align = 0.99f64;

    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--top" => top = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--json" => json_out = Some(PathBuf::from(value(&mut i))),
            "--validate" => validate = Some(PathBuf::from(value(&mut i))),
            "--min-align" => min_align = value(&mut i).parse().unwrap_or_else(|_| usage()),
            flag if flag.starts_with("--") => usage(),
            _ => traces.push(PathBuf::from(&args[i])),
        }
        i += 1;
    }

    if let Some(path) = validate {
        if !traces.is_empty() {
            usage();
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            exit(1);
        });
        let doc = Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("{}: not valid JSON: {e}", path.display());
            exit(1);
        });
        match validate_attrib_document(&doc) {
            Ok(kind) => println!("{}: valid {ATTRIB_SCHEMA} ({kind})", path.display()),
            Err(e) => {
                eprintln!("{}: INVALID: {e}", path.display());
                exit(1);
            }
        }
        return;
    }

    if traces.len() != 2 {
        usage();
    }
    let mut parsed = Vec::with_capacity(2);
    for path in &traces {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {e}", path.display());
            exit(1);
        });
        parsed.push(parse_o3_trace(&text).unwrap_or_else(|e| {
            eprintln!("{}: malformed O3PipeView trace: {e}", path.display());
            exit(1);
        }));
    }

    let diff = diff_traces(&parsed[0], &parsed[1]);
    println!("tracediff {} (baseline) vs {}", traces[0].display(), traces[1].display());
    print!("{}", render_diff_report(&diff, top));

    if let Some(path) = &json_out {
        let doc = spt_attrib::diff_document(
            &diff,
            &traces[0].display().to_string(),
            &traces[1].display().to_string(),
            top.max(100),
        );
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, doc.to_string_pretty()) {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        }
        eprintln!("wrote {}", path.display());
    }

    if diff.alignment.rate() < min_align {
        eprintln!(
            "alignment rate {:.4} below --min-align {min_align} — are these traces of the \
             same workload and seed?",
            diff.alignment.rate()
        );
        exit(1);
    }
}
