//! Figure-7-style stacked cycle accounting from run telemetry.
//!
//! Where [`crate::diff`] explains one run pair instruction by
//! instruction, this module explains the whole Figure-7 matrix cell by
//! cell: each (workload, config) cycle count becomes a stack of
//!
//! * **base** — the UnsafeBaseline cycles for the same workload,
//! * **transmitter-delay** — cycles transmitters spent held by the taint
//!   gate ([`spt_ooo::MachineStats::transmitter_delay_cycles`]),
//! * **resolution-delay** — cycles branch resolutions were deferred,
//! * **backpressure** — the residual of the measured delta no direct SPT
//!   counter explains (occupancy-induced second-order cost).
//!
//! # Overlap normalization
//!
//! The two SPT counters are *per-blocked-instruction per-cycle*: several
//! transmitters can be held in the same machine cycle, and a held
//! transmitter hides under a deferred branch, so their raw sum can exceed
//! the end-to-end cycle delta (they overlap). The stack therefore
//! normalizes: if the raw counters under-explain the delta, the remainder
//! is named backpressure; if they over-explain it, both components are
//! scaled by `delta / explained` (the cell records the scale factor); a
//! negative delta (protected run faster — wrong-path cache pollution can
//! legitimately do this) puts the whole delta in backpressure. The
//! stack-sum consistency check (`|stack − delta| ≤ tol·max(|delta|, 1)`)
//! then guards the arithmetic end to end, and the per-cell occupancy
//! percentiles (from the telemetry histograms) let a reader judge the
//! backpressure share.

use spt_bench::runner::{prepare_machine, run_prepared, RunRow, SweepError, BASELINE_CONFIG};
use spt_core::{Config, ThreatModel};
use spt_util::run_indexed;
use spt_workloads::Workload;

/// Knobs for [`account_matrix`].
#[derive(Clone, Copy, Debug)]
pub struct AccountingOptions {
    /// Retired-instruction budget per cell.
    pub budget: u64,
    /// Worker threads.
    pub jobs: usize,
    /// Log each cell as it is dispatched.
    pub verbose: bool,
    /// Stack-sum consistency tolerance (fraction of the measured delta).
    pub tolerance: f64,
}

impl Default for AccountingOptions {
    fn default() -> Self {
        AccountingOptions {
            budget: spt_bench::runner::DEFAULT_BUDGET,
            jobs: spt_util::default_jobs(),
            verbose: false,
            tolerance: 0.05,
        }
    }
}

/// One accounted matrix cell.
#[derive(Clone, Debug)]
pub struct AccountedCell {
    /// Workload name.
    pub workload: String,
    /// Configuration display name.
    pub config: String,
    /// Measured cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// UnsafeBaseline cycles for the same workload.
    pub base_cycles: u64,
    /// `cycles - base_cycles`.
    pub delta: i64,
    /// Raw transmitter-delay counter (pre-normalization).
    pub raw_transmitter: u64,
    /// Raw resolution-delay counter (pre-normalization).
    pub raw_resolution: u64,
    /// Normalized transmitter-delay component of the stack.
    pub transmitter_delay: f64,
    /// Normalized resolution-delay component of the stack.
    pub resolution_delay: f64,
    /// Residual component of the stack.
    pub backpressure: f64,
    /// Factor the raw SPT counters were scaled by (1.0 = unscaled; < 1.0
    /// when they over-explained the delta through overlap).
    pub scale: f64,
    /// ROB-occupancy p50 from telemetry (cycles sampled).
    pub rob_occ_p50: u64,
    /// ROB-occupancy p99 from telemetry.
    pub rob_occ_p99: u64,
    /// Per-transmitter delay p99 from telemetry.
    pub xmit_delay_p99: u64,
}

impl AccountedCell {
    /// The stacked components summed (should reproduce `delta`).
    pub fn stack_sum(&self) -> f64 {
        self.transmitter_delay + self.resolution_delay + self.backpressure
    }

    /// Whether the stack reproduces the measured delta within
    /// `tolerance` (a fraction of `max(|delta|, 1)`).
    pub fn consistent(&self, tolerance: f64) -> bool {
        self.relative_error() <= tolerance
    }

    /// `|stack − delta|` as a fraction of `max(|delta|, 1)`.
    pub fn relative_error(&self) -> f64 {
        (self.stack_sum() - self.delta as f64).abs() / (self.delta.unsigned_abs().max(1) as f64)
    }
}

/// Splits a measured cycle delta into the stacked components (see the
/// module docs for the normalization rules). Returns
/// `(transmitter, resolution, backpressure, scale)`.
pub fn breakdown(delta: i64, raw_transmitter: u64, raw_resolution: u64) -> (f64, f64, f64, f64) {
    if delta <= 0 {
        // Protected run no slower: nothing for the SPT counters to
        // explain; the (possibly negative) delta is all second-order.
        return (0.0, 0.0, delta as f64, 1.0);
    }
    let explained = (raw_transmitter + raw_resolution) as f64;
    let delta_f = delta as f64;
    if explained <= delta_f {
        (raw_transmitter as f64, raw_resolution as f64, delta_f - explained, 1.0)
    } else {
        let scale = delta_f / explained;
        (raw_transmitter as f64 * scale, raw_resolution as f64 * scale, 0.0, scale)
    }
}

/// The accounted Figure-7 matrix for one threat model.
#[derive(Clone, Debug)]
pub struct AccountingReport {
    /// Attack model.
    pub threat: ThreatModel,
    /// Budget each cell ran for.
    pub budget: u64,
    /// Consistency tolerance the report was checked against.
    pub tolerance: f64,
    /// Configuration names in Table-2 order.
    pub configs: Vec<String>,
    /// Workload names in suite order.
    pub workloads: Vec<String>,
    /// `cells[w][c]`.
    pub cells: Vec<Vec<AccountedCell>>,
}

impl AccountingReport {
    /// Whether every cell's stack reproduces its measured delta within
    /// the report tolerance.
    pub fn consistent(&self) -> bool {
        self.cells.iter().flatten().all(|c| c.consistent(self.tolerance))
    }

    /// The largest relative stack-sum error over all cells.
    pub fn worst_relative_error(&self) -> f64 {
        self.cells.iter().flatten().map(AccountedCell::relative_error).fold(0.0, f64::max)
    }

    /// Cells failing the consistency check, as `(workload, config)`.
    pub fn inconsistent_cells(&self) -> Vec<(String, String)> {
        self.cells
            .iter()
            .flatten()
            .filter(|c| !c.consistent(self.tolerance))
            .map(|c| (c.workload.clone(), c.config.clone()))
            .collect()
    }
}

/// Telemetry extract carried out of the worker closure alongside the row.
struct CellRun {
    row: RunRow,
    rob_occ_p50: u64,
    rob_occ_p99: u64,
    xmit_delay_p99: u64,
}

/// Runs the Figure-7 matrix with telemetry enabled and accounts every
/// cell. Cell order matches the sequential nested loop (workloads outer,
/// Table-2 configs inner) at any job count, like
/// [`spt_bench::runner::suite_matrix`].
///
/// # Errors
///
/// Returns the first failing cell in deterministic order if any
/// simulation deadlocks.
pub fn account_matrix(
    threat: ThreatModel,
    workloads: &[Workload],
    opts: AccountingOptions,
) -> Result<AccountingReport, SweepError> {
    let configs = Config::table2(threat);
    let cells = workloads.len() * configs.len();
    let results = run_indexed(cells, opts.jobs, |i| {
        let (w, c) = (i / configs.len(), i % configs.len());
        if opts.verbose {
            eprintln!("  accounting {} under {} ...", workloads[w].name, configs[c]);
        }
        let mut m = prepare_machine(&workloads[w], configs[c]);
        m.enable_telemetry();
        let row = run_prepared(&mut m, &workloads[w], configs[c], opts.budget)?;
        let t = m.telemetry().expect("telemetry enabled above");
        Ok(CellRun {
            row,
            rob_occ_p50: t.rob_occupancy.percentile(0.50),
            rob_occ_p99: t.rob_occupancy.percentile(0.99),
            xmit_delay_p99: t.xmit_delay.percentile(0.99),
        })
    });

    let mut runs: Vec<Vec<CellRun>> = Vec::with_capacity(workloads.len());
    let mut row = Vec::with_capacity(configs.len());
    for result in results {
        row.push(result?);
        if row.len() == configs.len() {
            runs.push(std::mem::replace(&mut row, Vec::with_capacity(configs.len())));
        }
    }

    let config_names: Vec<String> = configs.iter().map(|c| c.name().to_string()).collect();
    let baseline = config_names
        .iter()
        .position(|c| c == BASELINE_CONFIG)
        .expect("Table 2 always contains the UnsafeBaseline");

    let accounted = runs
        .into_iter()
        .map(|wrow| {
            let base_cycles = wrow[baseline].row.cycles;
            wrow.into_iter()
                .map(|cell| {
                    let delta = cell.row.cycles as i64 - base_cycles as i64;
                    let raw_t = cell.row.stats.transmitter_delay_cycles;
                    let raw_r = cell.row.stats.resolution_delay_cycles;
                    let (t, r, b, scale) = breakdown(delta, raw_t, raw_r);
                    AccountedCell {
                        workload: cell.row.workload,
                        config: cell.row.config,
                        cycles: cell.row.cycles,
                        retired: cell.row.retired,
                        base_cycles,
                        delta,
                        raw_transmitter: raw_t,
                        raw_resolution: raw_r,
                        transmitter_delay: t,
                        resolution_delay: r,
                        backpressure: b,
                        scale,
                        rob_occ_p50: cell.rob_occ_p50,
                        rob_occ_p99: cell.rob_occ_p99,
                        xmit_delay_p99: cell.xmit_delay_p99,
                    }
                })
                .collect()
        })
        .collect();

    Ok(AccountingReport {
        threat,
        budget: opts.budget,
        tolerance: opts.tolerance,
        configs: config_names,
        workloads: workloads.iter().map(|w| w.name.to_string()).collect(),
        cells: accounted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_under_explained_leaves_residual() {
        let (t, r, b, scale) = breakdown(100, 30, 20);
        assert_eq!((t, r, b, scale), (30.0, 20.0, 50.0, 1.0));
        assert_eq!(t + r + b, 100.0);
    }

    #[test]
    fn breakdown_over_explained_scales() {
        // Overlapping counters: 150 + 90 raw vs a delta of 120.
        let (t, r, b, scale) = breakdown(120, 150, 90);
        assert!((scale - 0.5).abs() < 1e-12);
        assert!((t - 75.0).abs() < 1e-9);
        assert!((r - 45.0).abs() < 1e-9);
        assert_eq!(b, 0.0);
        assert!((t + r + b - 120.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_negative_delta_is_all_backpressure() {
        let (t, r, b, scale) = breakdown(-40, 500, 10);
        assert_eq!((t, r), (0.0, 0.0));
        assert_eq!(b, -40.0);
        assert_eq!(scale, 1.0);
    }

    #[test]
    fn cell_consistency_is_relative() {
        let cell = AccountedCell {
            workload: "w".into(),
            config: "c".into(),
            cycles: 1_100,
            retired: 1_000,
            base_cycles: 1_000,
            delta: 100,
            raw_transmitter: 60,
            raw_resolution: 10,
            transmitter_delay: 60.0,
            resolution_delay: 10.0,
            backpressure: 30.0,
            scale: 1.0,
            rob_occ_p50: 0,
            rob_occ_p99: 0,
            xmit_delay_p99: 0,
        };
        assert!(cell.consistent(0.05));
        assert_eq!(cell.relative_error(), 0.0);
        let mut off = cell;
        off.backpressure = 41.0; // stack 111 vs delta 100 → 11% off
        assert!(!off.consistent(0.05));
        assert!(off.consistent(0.2));
    }
}
