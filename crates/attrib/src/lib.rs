//! Cycle attribution: turning the paper's aggregate overhead numbers into
//! per-instruction and per-component explanations.
//!
//! The bench layer measures *how much* each protection costs (Figure 7's
//! normalized execution time); this crate explains *where* those cycles
//! go, with two engines:
//!
//! * **Trace diff** ([`align`], [`diff`]) — parse two O3PipeView traces of
//!   the same workload under different configurations (emitted by
//!   `run_spt --trace`, which interleaves `SPTEvent:` lines), align the
//!   retired instruction streams, and attribute every per-instruction
//!   cycle delta to a pipeline-stage interval and a named stall cause
//!   (delayed transmitter, shadow-L1 wait, deferred branch resolution,
//!   plain backpressure). Driven by the `tracediff` binary.
//! * **Cycle accounting** ([`accounting`]) — run the Figure-7 matrix with
//!   telemetry enabled and regenerate each cell as a stacked breakdown
//!   (base cycles + transmitter-delay + resolution-delay + backpressure
//!   residual) with a per-cell stack-sum consistency check. Driven by the
//!   `fig7_attrib` binary.
//!
//! Both emit versioned `spt-attrib-v1` JSON documents ([`attribdoc`])
//! that pass their own `--validate`.
//!
//! See DESIGN.md §6e for the alignment algorithm, the stall taxonomy, and
//! the overlap normalization behind the stacked breakdown.

pub mod accounting;
pub mod align;
pub mod attribdoc;
pub mod diff;

pub use accounting::{account_matrix, AccountedCell, AccountingOptions, AccountingReport};
pub use align::{align_retired, Alignment};
pub use attribdoc::{
    accounting_document, diff_document, render_accounting, render_diff_report,
    validate_attrib_document, ATTRIB_SCHEMA,
};
pub use diff::{diff_traces, StageDeltas, Stall, StallCause, TraceDiff};
