//! The stacked cycle-accounting contract: every cell's components sum to
//! the measured cycle delta within tolerance, and the emitted
//! `spt-attrib-v1` document passes its own validator.

use spt_attrib::{
    account_matrix, accounting_document, validate_attrib_document, AccountingOptions,
};
use spt_core::ThreatModel;
use spt_util::Json;
use spt_workloads::{full_suite, Scale};

#[test]
fn stack_sums_match_measured_deltas() {
    let suite = full_suite(Scale::Bench);
    // One transmitter-heavy workload (mcf) and one resolution-heavy one
    // (leela) cover both normalization paths.
    let picked: Vec<_> =
        suite.into_iter().filter(|w| w.name == "mcf" || w.name == "leela").collect();
    assert_eq!(picked.len(), 2, "probe workloads present in the suite");

    let opts = AccountingOptions { budget: 2_000, jobs: 2, verbose: false, tolerance: 0.05 };
    let report = account_matrix(ThreatModel::Spectre, &picked, opts).expect("sweep completes");

    assert_eq!(report.cells.len(), 2);
    assert_eq!(report.cells[0].len(), report.configs.len());
    assert!(
        report.consistent(),
        "inconsistent cells: {:?} (worst error {:.3}%)",
        report.inconsistent_cells(),
        report.worst_relative_error() * 100.0
    );
    // The baseline column accounts to an all-zero stack.
    let base_col = report.configs.iter().position(|c| c == "UnsafeBaseline").unwrap();
    for wrow in &report.cells {
        let b = &wrow[base_col];
        assert_eq!(b.delta, 0);
        assert_eq!(b.stack_sum(), 0.0);
    }

    let doc = accounting_document(&report);
    assert_eq!(validate_attrib_document(&doc).unwrap(), "fig7-accounting");
    // And after a text round-trip, as `--validate` consumes it.
    let back = Json::parse(&doc.to_string_pretty()).expect("round-trips");
    assert_eq!(validate_attrib_document(&back).unwrap(), "fig7-accounting");
    assert_eq!(back.get("consistent").and_then(Json::as_bool), Some(true));
}
