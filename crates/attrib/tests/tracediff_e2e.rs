//! End-to-end trace-diff coverage: generate two `run_spt --trace`-style
//! traces of the same workload (UnsafeBaseline vs the full SPT design),
//! diff them with the real `tracediff` binary, and check the acceptance
//! invariants — ≥99% alignment, at least one transmitter-delay-attributed
//! stall for SPT, a zero-delta self-diff, and an `spt-attrib-v1` JSON
//! document that passes its own `--validate`.

use spt_attrib::{diff_traces, StallCause};
use spt_bench::runner::{prepare_machine, run_prepared};
use spt_core::{Config, ThreatModel};
use spt_util::{parse_o3_trace, Json, O3PipeViewSink};
use spt_workloads::{full_suite, Scale, Workload};
use std::path::PathBuf;
use std::process::Command;

const BUDGET: u64 = 3_000;

fn workload() -> Workload {
    // mcf: the paper's pointer-chasing proxy; its load-to-load chains keep
    // transmitters tainted long enough that SPT reliably delays them.
    full_suite(Scale::Bench).into_iter().find(|w| w.name == "mcf").expect("mcf in suite")
}

fn trace_to_file(w: &Workload, cfg: Config, path: &PathBuf) {
    let file = std::fs::File::create(path).expect("create trace file");
    let mut m = prepare_machine(w, cfg);
    m.set_trace_sink(Box::new(O3PipeViewSink::with_events(file)));
    run_prepared(&mut m, w, cfg, BUDGET).expect("run completes");
    m.take_trace_sink().expect("sink attached").flush().expect("trace flushed");
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("spt-attrib-{}-{name}", std::process::id()))
}

#[test]
fn tracediff_attributes_spt_stalls_end_to_end() {
    let w = workload();
    let base_path = temp("base.trace");
    let spt_path = temp("spt.trace");
    trace_to_file(&w, Config::unsafe_baseline(ThreatModel::Futuristic), &base_path);
    trace_to_file(&w, Config::spt_full(ThreatModel::Futuristic), &spt_path);

    // Library-level checks on the same pair the binary will see.
    let base = parse_o3_trace(&std::fs::read_to_string(&base_path).unwrap()).expect("base parses");
    let spt = parse_o3_trace(&std::fs::read_to_string(&spt_path).unwrap()).expect("spt parses");
    assert!(spt.summary().events > 0, "SPT trace carries SPTEvent lines");
    let diff = diff_traces(&base, &spt);
    assert!(
        diff.alignment.rate() >= 0.99,
        "alignment rate {} below the 99% acceptance floor",
        diff.alignment.rate()
    );
    assert!(
        diff.cause_count(StallCause::TransmitterDelay) + diff.cause_count(StallCause::ShadowL1Wait)
            >= 1,
        "expected at least one transmitter-delay-attributed stall under SPT"
    );
    // Every slowed instruction carries a named cause by construction; spot
    // check the totals are non-trivial.
    assert!(diff.total_delta > 0, "SPT should cost cycles on mcf");

    // Binary end-to-end: report + JSON document + self-validation.
    let json_path = temp("diff.json");
    let out = Command::new(env!("CARGO_BIN_EXE_tracediff"))
        .args([
            base_path.to_str().unwrap(),
            spt_path.to_str().unwrap(),
            "--top",
            "5",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("tracediff runs");
    assert!(out.status.success(), "tracediff failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).expect("utf8 report");
    assert!(stdout.contains("delayed-transmitter"), "report names the cause:\n{stdout}");
    assert!(stdout.contains("top 5 stalls"), "report has the top-N table:\n{stdout}");

    let doc = Json::parse(&std::fs::read_to_string(&json_path).unwrap()).expect("doc parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("spt-attrib-v1"));
    assert!(doc.get("stall_count").and_then(Json::as_u64).unwrap() >= 1);

    let validated = Command::new(env!("CARGO_BIN_EXE_tracediff"))
        .args(["--validate", json_path.to_str().unwrap()])
        .output()
        .expect("tracediff --validate runs");
    assert!(
        validated.status.success(),
        "--validate rejected the document: {}",
        String::from_utf8_lossy(&validated.stderr)
    );

    for p in [&base_path, &spt_path, &json_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn self_diff_reports_zero_deltas() {
    let w = workload();
    let path = temp("self.trace");
    trace_to_file(&w, Config::spt_full(ThreatModel::Futuristic), &path);

    let t = parse_o3_trace(&std::fs::read_to_string(&path).unwrap()).expect("parses");
    let diff = diff_traces(&t, &t);
    assert_eq!(diff.total_delta, 0, "self-diff must be cycle-identical");
    assert!(diff.stalls.is_empty(), "self-diff must report no stalls");
    assert!((diff.alignment.rate() - 1.0).abs() < 1e-12);
    for cause in spt_attrib::diff::ALL_CAUSES {
        assert_eq!(diff.cause_cycles(cause), 0, "{} cycles in a self-diff", cause.label());
    }

    // And through the binary, which also exercises the alignment gate.
    let out = Command::new(env!("CARGO_BIN_EXE_tracediff"))
        .args([path.to_str().unwrap(), path.to_str().unwrap()])
        .output()
        .expect("tracediff runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    assert!(stdout.contains("no slowed instructions"), "self-diff report:\n{stdout}");

    let _ = std::fs::remove_file(&path);
}
