//! Public-API behavioural tests for the branch-prediction structures.
//!
//! The inline unit tests pin implementation details; these pin the
//! *contracts* the out-of-order frontend relies on: untrained defaults,
//! trainability, aliasing behaviour, and snapshot/restore recovery after a
//! squash (the frontend recovers the RAS and GHR by restoring a clone
//! taken at the checkpointed branch).

use spt_frontend::{Btb, Ghr, Ras, Tage};

#[test]
fn ghr_tracks_and_folds_recent_history() {
    let mut ghr = Ghr::new();
    assert!(ghr.is_empty());
    assert_eq!(ghr.fold(16, 10), 0, "empty history folds to zero");

    ghr.push(true);
    ghr.push(false);
    ghr.push(true);
    assert_eq!(ghr.len(), 3);
    assert!(ghr.bit(0), "bit 0 is the most recent outcome");
    assert!(!ghr.bit(1));
    assert!(ghr.bit(2));

    // Folding is confined to out_bits and sensitive to recent outcomes.
    for bits in [1, 7, 10] {
        assert!(ghr.fold(130, bits) < (1u32 << bits), "fold must fit in {bits} bits");
    }
    let before = ghr.fold(8, 10);
    ghr.push(true);
    assert_ne!(ghr.fold(8, 10), before, "a new outcome perturbs the fold");
}

#[test]
fn ghr_snapshot_restores_across_squash() {
    let mut ghr = Ghr::new();
    for i in 0..20 {
        ghr.push(i % 3 == 0);
    }
    let checkpoint = ghr.clone();
    let fold = ghr.fold(44, 10);
    ghr.push(true); // wrong-path outcome
    ghr.push(true);
    let ghr = checkpoint; // squash: restore the checkpoint
    assert_eq!(ghr.fold(44, 10), fold);
    assert_eq!(ghr.len(), 20);
}

#[test]
fn tage_untrained_predicts_not_taken() {
    let tage = Tage::new();
    let ghr = Ghr::new();
    for pc in [4, 0x40, 0x1234, 0xfff7] {
        let (pred, _) = tage.predict(pc, &ghr);
        assert!(!pred, "untrained prediction for pc {pc:#x} should be not-taken");
    }
}

#[test]
fn tage_learns_a_strong_bias_quickly() {
    let mut tage = Tage::new();
    let ghr = Ghr::new();
    let pc = 0x100;
    for _ in 0..4 {
        let (_, info) = tage.predict(pc, &ghr);
        tage.update(pc, &info, true);
    }
    let (pred, _) = tage.predict(pc, &ghr);
    assert!(pred, "four taken outcomes must flip the bimodal counter");
}

#[test]
fn tage_learns_a_history_pattern_the_bimodal_cannot() {
    // Period-2 alternation keeps a 2-bit bimodal counter hovering around
    // the decision boundary; only the tagged history components can track
    // it. Feed the *global* history as the frontend would.
    let mut tage = Tage::new();
    let mut ghr = Ghr::new();
    let pc = 0x2a8;
    let (mut correct, mut total) = (0u32, 0u32);
    for i in 0..400u32 {
        let taken = i % 2 == 0;
        let (pred, info) = tage.predict(pc, &ghr);
        if i >= 300 {
            total += 1;
            correct += u32::from(pred == taken);
        }
        tage.update(pc, &info, taken);
        ghr.push(taken);
    }
    assert!(
        correct * 100 >= total * 90,
        "expected the tagged components to learn the alternation; got {correct}/{total}"
    );
}

#[test]
fn tage_training_does_not_bleed_into_other_pcs() {
    let mut tage = Tage::new();
    let ghr = Ghr::new();
    let trained = 0x400;
    for _ in 0..64 {
        let (_, info) = tage.predict(trained, &ghr);
        tage.update(trained, &info, true);
    }
    let (pred, _) = tage.predict(0x404, &ghr);
    assert!(!pred, "a neighbouring untrained branch keeps the default prediction");
}

#[test]
fn ras_is_lifo_and_survives_checkpoint_recovery() {
    let mut ras = Ras::new();
    ras.push(0x100);
    ras.push(0x200);
    let checkpoint = ras.clone();

    // Wrong-path speculation: a call and two returns beyond the checkpoint.
    ras.push(0xbad);
    ras.pop();
    ras.pop();
    assert_ne!(ras, checkpoint);

    // Squash: restore, then the good path sees the checkpointed stack.
    let mut ras = checkpoint;
    assert_eq!(ras.pop(), Some(0x200));
    assert_eq!(ras.pop(), Some(0x100));
    assert_eq!(ras.pop(), None);
}

#[test]
fn ras_overflow_discards_oldest_only() {
    let mut ras = Ras::new();
    let n = Ras::DEPTH as u64 + 3;
    for i in 0..n {
        ras.push(0x1000 + i);
    }
    assert_eq!(ras.len(), Ras::DEPTH, "depth is capped");
    for i in (3..n).rev() {
        assert_eq!(ras.pop(), Some(0x1000 + i), "newest DEPTH entries are intact");
    }
    // The three oldest were overwritten by the wrap, not recoverable.
    assert!(ras.pop().is_some() || ras.is_empty());
}

#[test]
fn btb_direct_mapped_aliasing() {
    let mut btb = Btb::new();
    let a = 0x80;
    let b = a + (1 << 12); // same index, different tag
    btb.update(a, 0x1111);
    assert_eq!(btb.lookup(a), Some(0x1111));
    assert_eq!(btb.lookup(b), None, "tag mismatch must not alias");

    btb.update(b, 0x2222);
    assert_eq!(btb.lookup(b), Some(0x2222));
    assert_eq!(btb.lookup(a), None, "direct-mapped conflict evicts the old entry");

    btb.update(a, 0x3333);
    assert_eq!(btb.lookup(a), Some(0x3333), "re-training restores the mapping");
}
