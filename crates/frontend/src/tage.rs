//! TAGE conditional-branch predictor (LTAGE-style, paper Table 1).
//!
//! A bimodal base table plus [`Tage::TABLES`] tagged components with
//! geometrically increasing history lengths. Prediction is provided by the
//! longest-history component whose tag matches; allocation on misprediction
//! follows the standard TAGE policy with usefulness counters and periodic
//! decay.

use crate::ghr::Ghr;

/// Per-prediction bookkeeping carried from predict to update.
#[derive(Clone, Debug)]
pub struct PredictInfo {
    /// Final predicted direction.
    pub pred: bool,
    /// Providing tagged table, or `None` for the bimodal base.
    provider: Option<usize>,
    /// Prediction of the alternate provider.
    altpred: bool,
    /// Whether the alternate provider was a tagged table.
    alt_is_tagged: bool,
    /// Index computed per tagged table.
    indices: [usize; Tage::TABLES],
    /// Tag computed per tagged table.
    tags: [u16; Tage::TABLES],
    /// Bimodal index.
    bim_idx: usize,
}

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8,    // 3-bit signed: -4..=3
    useful: u8, // 2-bit
}

/// The TAGE predictor.
#[derive(Clone, Debug)]
pub struct Tage {
    bimodal: Vec<u8>, // 2-bit counters
    tables: Vec<Vec<TaggedEntry>>,
    lfsr: u32,
    updates: u64,
}

impl Tage {
    /// Number of tagged components.
    pub const TABLES: usize = 4;
    const HIST_LENS: [u32; Self::TABLES] = [8, 16, 44, 130];
    const TABLE_BITS: u32 = 10; // 1024 entries
    const TAG_BITS: u32 = 10;
    const BIM_BITS: u32 = 12; // 4096 entries
    const U_DECAY_PERIOD: u64 = 1 << 18;

    /// Creates an untrained predictor (bimodal weakly not-taken).
    pub fn new() -> Tage {
        Tage {
            bimodal: vec![1; 1 << Self::BIM_BITS],
            tables: vec![vec![TaggedEntry::default(); 1 << Self::TABLE_BITS]; Self::TABLES],
            lfsr: 0xace1,
            updates: 0,
        }
    }

    fn bim_index(pc: u64) -> usize {
        (pc as usize) & ((1 << Self::BIM_BITS) - 1)
    }

    fn index(pc: u64, ghr: &Ghr, table: usize) -> usize {
        let h = ghr.fold(Self::HIST_LENS[table], Self::TABLE_BITS);
        ((pc as u32) ^ (pc as u32 >> Self::TABLE_BITS) ^ h) as usize & ((1 << Self::TABLE_BITS) - 1)
    }

    fn tag(pc: u64, ghr: &Ghr, table: usize) -> u16 {
        let h1 = ghr.fold(Self::HIST_LENS[table], Self::TAG_BITS);
        let h2 = ghr.fold(Self::HIST_LENS[table], Self::TAG_BITS - 1) << 1;
        (((pc as u32) ^ h1 ^ h2) & ((1 << Self::TAG_BITS) - 1)) as u16
    }

    fn next_rand(&mut self) -> u32 {
        // 16-bit Galois LFSR: deterministic allocation tie-breaking.
        let lsb = self.lfsr & 1;
        self.lfsr >>= 1;
        if lsb == 1 {
            self.lfsr ^= 0xb400;
        }
        self.lfsr
    }

    /// Predicts the direction of the branch at `pc` under history `ghr`.
    pub fn predict(&self, pc: u64, ghr: &Ghr) -> (bool, PredictInfo) {
        let mut indices = [0usize; Self::TABLES];
        let mut tags = [0u16; Self::TABLES];
        for t in 0..Self::TABLES {
            indices[t] = Self::index(pc, ghr, t);
            tags[t] = Self::tag(pc, ghr, t);
        }
        let bim_idx = Self::bim_index(pc);
        let bim_pred = self.bimodal[bim_idx] >= 2;

        let mut provider = None;
        let mut altpred = bim_pred;
        let mut alt_is_tagged = false;
        let mut pred = bim_pred;
        // Scan from longest history down; first match provides, second is alt.
        for t in (0..Self::TABLES).rev() {
            let e = &self.tables[t][indices[t]];
            if e.tag == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                    pred = e.ctr >= 0;
                } else {
                    altpred = e.ctr >= 0;
                    alt_is_tagged = true;
                    break;
                }
            }
        }
        (pred, PredictInfo { pred, provider, altpred, alt_is_tagged, indices, tags, bim_idx })
    }

    fn bump_ctr(ctr: &mut i8, taken: bool) {
        if taken {
            *ctr = (*ctr + 1).min(3);
        } else {
            *ctr = (*ctr - 1).max(-4);
        }
    }

    /// Trains the predictor with the resolved outcome.
    pub fn update(&mut self, _pc: u64, info: &PredictInfo, taken: bool) {
        self.updates += 1;
        // Periodic graceful decay of usefulness counters.
        if self.updates.is_multiple_of(Self::U_DECAY_PERIOD) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }

        let correct = info.pred == taken;

        match info.provider {
            Some(t) => {
                let e = &mut self.tables[t][info.indices[t]];
                Self::bump_ctr(&mut e.ctr, taken);
                if info.pred != info.altpred {
                    if correct {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                // Also train bimodal when the alternate was the base.
                if !info.alt_is_tagged {
                    let b = &mut self.bimodal[info.bim_idx];
                    *b = if taken { (*b + 1).min(3) } else { b.saturating_sub(1) };
                }
            }
            None => {
                let b = &mut self.bimodal[info.bim_idx];
                *b = if taken { (*b + 1).min(3) } else { b.saturating_sub(1) };
            }
        }

        // On misprediction, allocate in a longer-history table.
        if !correct {
            let start = info.provider.map_or(0, |t| t + 1);
            if start < Self::TABLES {
                // Find candidates with useful == 0.
                let mut candidates = Vec::new();
                for t in start..Self::TABLES {
                    if self.tables[t][info.indices[t]].useful == 0 {
                        candidates.push(t);
                    }
                }
                if candidates.is_empty() {
                    // Decay usefulness of all would-be victims.
                    for t in start..Self::TABLES {
                        let e = &mut self.tables[t][info.indices[t]];
                        e.useful = e.useful.saturating_sub(1);
                    }
                } else {
                    // Prefer shorter history with probability ~1/2 per step.
                    let mut chosen = candidates[0];
                    for &c in &candidates[1..] {
                        if self.next_rand() & 1 == 0 {
                            break;
                        }
                        chosen = c;
                    }
                    let e = &mut self.tables[chosen][info.indices[chosen]];
                    *e = TaggedEntry {
                        tag: info.tags[chosen],
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                }
            }
        }
    }
}

impl Default for Tage {
    fn default() -> Tage {
        Tage::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern<F: Fn(u64) -> bool>(pc: u64, iters: u64, f: F) -> u64 {
        let mut tage = Tage::new();
        let mut ghr = Ghr::new();
        let mut mispredicts = 0;
        for i in 0..iters {
            let taken = f(i);
            let (pred, info) = tage.predict(pc, &ghr);
            if pred != taken {
                mispredicts += 1;
            }
            tage.update(pc, &info, taken);
            ghr.push(taken);
        }
        mispredicts
    }

    #[test]
    fn learns_always_taken() {
        let m = run_pattern(0x40, 1000, |_| true);
        assert!(m < 10, "always-taken should be nearly perfect, got {m} mispredicts");
    }

    #[test]
    fn learns_short_period_pattern() {
        // Period-4 pattern TTTN requires history; bimodal alone can't learn it.
        let m = run_pattern(0x44, 4000, |i| i % 4 != 3);
        assert!(m < 200, "period-4 pattern should be learned, got {m} mispredicts");
    }

    #[test]
    fn learns_long_history_pattern() {
        // Period-24: needs a tagged component with history > 16.
        let m = run_pattern(0x48, 20_000, |i| (i % 24) < 12);
        assert!(m < 2_000, "period-24 pattern should be learned by long-history tables, got {m}");
    }

    #[test]
    fn random_data_near_50_percent() {
        // A pseudo-random pattern: TAGE cannot beat ~50%, but must not crash
        // or pathologically exceed it.
        let m = run_pattern(0x4c, 4000, |i| {
            let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            x ^= x >> 31;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 29;
            x & 1 == 1
        });
        assert!(m > 800, "pseudorandom branches cannot be well predicted, got {m}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_much() {
        let mut tage = Tage::new();
        let mut ghr = Ghr::new();
        let mut mispredicts = 0;
        for i in 0..2000u64 {
            for pc in [0x100u64, 0x200, 0x300] {
                let taken = pc == 0x200; // one always-taken, two never-taken
                let (pred, info) = tage.predict(pc, &ghr);
                if pred != taken && i > 16 {
                    mispredicts += 1;
                }
                tage.update(pc, &info, taken);
                ghr.push(taken);
            }
        }
        assert!(mispredicts < 60, "got {mispredicts}");
    }
}

#[cfg(test)]
mod allocation_tests {
    use super::*;

    /// The usefulness mechanism must protect a well-performing long-history
    /// entry from being clobbered by an unrelated branch's allocations.
    #[test]
    fn useful_entries_resist_eviction() {
        let mut tage = Tage::new();
        let mut ghr = Ghr::new();
        // Train a period-6 pattern until a tagged entry provides correctly.
        let pat = |i: u64| (i % 6) < 3;
        let mut correct_streak = 0;
        for i in 0..6000u64 {
            let taken = pat(i);
            let (pred, info) = tage.predict(0x80, &ghr);
            correct_streak = if pred == taken { correct_streak + 1 } else { 0 };
            tage.update(0x80, &info, taken);
            ghr.push(taken);
            if correct_streak > 64 {
                break;
            }
        }
        assert!(correct_streak > 64, "the pattern must be learned first");
        // Hammer with conflicting branches (mispredicting constantly, which
        // triggers allocation attempts).
        let mut x = 0x12345u64;
        for i in 0..2000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = 0x1000 + (x % 64);
            let taken = (x >> 33) & 1 == 1;
            let (_, info) = tage.predict(pc, &ghr);
            tage.update(pc, &info, taken);
            // Keep the victim pattern going so its history stays aligned.
            let t = pat(i);
            let (_, vinfo) = tage.predict(0x80, &ghr);
            tage.update(0x80, &vinfo, t);
            ghr.push(t);
        }
        // The victim branch must still predict far better than chance.
        let mut wrong = 0;
        for i in 0..600u64 {
            let taken = pat(i);
            let (pred, info) = tage.predict(0x80, &ghr);
            if pred != taken {
                wrong += 1;
            }
            tage.update(0x80, &info, taken);
            ghr.push(taken);
        }
        assert!(wrong < 200, "trained pattern must survive interference, {wrong}/600 wrong");
    }

    /// Prediction is a pure function: predicting twice without an update
    /// returns the same answer (no hidden state mutation in predict).
    #[test]
    fn predict_is_pure() {
        let mut tage = Tage::new();
        let mut ghr = Ghr::new();
        for i in 0..200u64 {
            let taken = i % 3 == 0;
            let (p1, _) = tage.predict(0x44, &ghr);
            let (p2, info) = tage.predict(0x44, &ghr);
            assert_eq!(p1, p2);
            tage.update(0x44, &info, taken);
            ghr.push(taken);
        }
    }
}
