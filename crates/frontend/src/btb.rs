//! Branch target buffer.

/// A direct-mapped branch target buffer mapping instruction PCs to their
/// most recent taken target. Used to predict indirect jumps and calls.
///
/// # Example
///
/// ```
/// use spt_frontend::Btb;
/// let mut btb = Btb::new();
/// assert_eq!(btb.lookup(0x40), None);
/// btb.update(0x40, 0x99);
/// assert_eq!(btb.lookup(0x40), Some(0x99));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<Option<(u64, u64)>>, // (pc tag, target)
}

impl Btb {
    const INDEX_BITS: u32 = 12; // 4096 entries

    /// Creates an empty BTB.
    pub fn new() -> Btb {
        Btb { entries: vec![None; 1 << Self::INDEX_BITS] }
    }

    fn index(pc: u64) -> usize {
        (pc as usize) & ((1 << Self::INDEX_BITS) - 1)
    }

    /// The predicted target for the instruction at `pc`, if one is cached.
    pub fn lookup(&self, pc: u64) -> Option<u64> {
        match self.entries[Self::index(pc)] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    /// Records that the instruction at `pc` most recently went to `target`.
    pub fn update(&mut self, pc: u64, target: u64) {
        self.entries[Self::index(pc)] = Some((pc, target));
    }
}

impl Default for Btb {
    fn default() -> Btb {
        Btb::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflicting_pcs_evict() {
        let mut btb = Btb::new();
        btb.update(0x10, 0xaa);
        btb.update(0x10 + (1 << 12), 0xbb); // same index, different tag
        assert_eq!(btb.lookup(0x10), None);
        assert_eq!(btb.lookup(0x10 + (1 << 12)), Some(0xbb));
    }

    #[test]
    fn update_overwrites() {
        let mut btb = Btb::new();
        btb.update(0x20, 1);
        btb.update(0x20, 2);
        assert_eq!(btb.lookup(0x20), Some(2));
    }
}
