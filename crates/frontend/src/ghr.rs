//! Global history register.

/// A 256-bit global branch-history shift register.
///
/// Bit 0 is the most recent outcome. Provides the folded-hash views used to
/// index and tag TAGE tables.
///
/// # Example
///
/// ```
/// use spt_frontend::Ghr;
/// let mut g = Ghr::new();
/// g.push(true);
/// g.push(false);
/// assert!(!g.bit(0)); // most recent
/// assert!(g.bit(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ghr {
    words: [u64; Self::WORDS],
    len: u32,
}

impl Ghr {
    const WORDS: usize = 4;
    /// Capacity in bits.
    pub const BITS: u32 = 256;

    /// Creates an empty (all-zero) history.
    pub fn new() -> Ghr {
        Ghr { words: [0; Self::WORDS], len: 0 }
    }

    /// Shifts in a new outcome as bit 0.
    pub fn push(&mut self, taken: bool) {
        let mut carry = taken as u64;
        for w in &mut self.words {
            let out = *w >> 63;
            *w = (*w << 1) | carry;
            carry = out;
        }
        self.len = (self.len + 1).min(Self::BITS);
    }

    /// The `i`-th most recent outcome (`i = 0` is the newest).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < Self::BITS);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Number of outcomes pushed so far, saturating at 256.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no outcomes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Folds the most recent `hist_bits` of history into `out_bits` bits by
    /// XOR-folding, for TAGE index/tag computation.
    ///
    /// # Panics
    ///
    /// Panics if `out_bits` is 0 or > 32, or `hist_bits > 256`.
    pub fn fold(&self, hist_bits: u32, out_bits: u32) -> u32 {
        assert!(out_bits > 0 && out_bits <= 32);
        assert!(hist_bits <= Self::BITS);
        // Word-at-a-time: gather each `out_bits`-wide chunk (the last one
        // partial) straight out of the packed words instead of bit by bit.
        let mut acc: u32 = 0;
        let mut p = 0;
        while p < hist_bits {
            let take = out_bits.min(hist_bits - p);
            let w = (p / 64) as usize;
            let off = p % 64;
            let mut chunk = self.words[w] >> off;
            let got = 64 - off;
            // `p + take <= 256` keeps this in bounds whenever it fires.
            if got < take && w + 1 < Self::WORDS {
                chunk |= self.words[w + 1] << got;
            }
            let cmask = if take == 32 { u32::MAX } else { (1u32 << take) - 1 };
            acc ^= (chunk as u32) & cmask;
            p += take;
        }
        let mask = if out_bits == 32 { u32::MAX } else { (1u32 << out_bits) - 1 };
        acc & mask
    }
}

impl Default for Ghr {
    fn default() -> Ghr {
        Ghr::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_shifts_across_words() {
        let mut g = Ghr::new();
        g.push(true);
        for _ in 0..64 {
            g.push(false);
        }
        assert!(g.bit(64), "the original bit moved into the second word");
        assert!(!g.bit(0));
    }

    #[test]
    fn len_saturates() {
        let mut g = Ghr::new();
        for _ in 0..300 {
            g.push(true);
        }
        assert_eq!(g.len(), 256);
    }

    #[test]
    fn fold_depends_on_history() {
        let mut a = Ghr::new();
        let mut b = Ghr::new();
        for i in 0..44 {
            a.push(i % 3 == 0);
            b.push(i % 5 == 0);
        }
        assert_ne!(a.fold(44, 10), b.fold(44, 10));
        // Output is masked to out_bits.
        assert!(a.fold(130, 10) < 1024);
    }

    #[test]
    fn fold_zero_history_is_zero() {
        let g = Ghr::new();
        assert_eq!(g.fold(130, 10), 0);
    }
}
