//! Branch prediction and fetch direction for the SPT reproduction.
//!
//! Implements an LTAGE-style predictor (paper Table 1): a bimodal base
//! predictor plus four TAGE tagged components with geometric history
//! lengths, a branch target buffer for direct/indirect targets, and a
//! return address stack. The [`Frontend`] facade owns the speculative
//! global history and RAS, supports checkpoint/restore across squashes,
//! and is trained at branch resolution.
//!
//! STT/SPT's implicit-channel rule "tainted data must not affect predictor
//! state" (paper §2.2.1, §6.4) is satisfied structurally: the predictor is
//! only ever trained with the outcome of a branch whose resolution effects
//! have been allowed by the protection policy (i.e. whose predicate is
//! untainted or which has reached the visibility point).
//!
//! # Example
//!
//! ```
//! use spt_frontend::Frontend;
//! use spt_isa::{BranchCond, Inst, Reg};
//!
//! let mut fe = Frontend::new();
//! let br = Inst::Branch { cond: BranchCond::Ne, rs1: Reg::R1, rs2: Reg::R0, target: 7 };
//! // Train an always-taken branch at pc 3; the predictor learns it.
//! for _ in 0..64 {
//!     let p = fe.predict(3, &br);
//!     fe.train(3, &br, true, 7, p.info.as_ref());
//! }
//! let p = fe.predict(3, &br);
//! assert!(p.predicted_taken);
//! assert_eq!(p.next_pc, 7);
//! ```

pub mod btb;
pub mod ghr;
pub mod ras;
pub mod tage;

pub use btb::Btb;
pub use ghr::Ghr;
pub use ras::Ras;
pub use tage::{PredictInfo, Tage};

use spt_isa::Inst;

/// The result of predicting one instruction at fetch.
#[derive(Clone, Debug)]
pub struct FetchPrediction {
    /// Predicted next PC.
    pub next_pc: u64,
    /// For conditional branches, the predicted direction.
    pub predicted_taken: bool,
    /// TAGE bookkeeping required to train/deallocate at resolution.
    pub info: Option<PredictInfo>,
}

/// Snapshot of speculative frontend state, restored on squash.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    ghr: Ghr,
    ras: Ras,
}

/// Prediction-volume counters, by control-flow class.
///
/// Counted at *predict* time, so wrong-path instructions are included —
/// these measure frontend work, not architectural branch counts (those
/// live in the machine's retire-side stats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendStats {
    /// Conditional branches predicted (TAGE lookups).
    pub cond_predictions: u64,
    /// Direct jumps and calls steered.
    pub direct_predictions: u64,
    /// Indirect jumps/calls predicted via the BTB.
    pub indirect_predictions: u64,
    /// Returns predicted via the RAS.
    pub ras_predictions: u64,
}

impl FrontendStats {
    /// Total predictions across classes.
    pub fn total(&self) -> u64 {
        self.cond_predictions
            + self.direct_predictions
            + self.indirect_predictions
            + self.ras_predictions
    }
}

/// The branch-prediction frontend: TAGE + BTB + RAS + speculative GHR.
#[derive(Clone, Debug)]
pub struct Frontend {
    tage: Tage,
    btb: Btb,
    ras: Ras,
    ghr: Ghr,
    stats: FrontendStats,
}

impl Default for Frontend {
    fn default() -> Frontend {
        Frontend::new()
    }
}

impl Frontend {
    /// Creates an untrained frontend.
    pub fn new() -> Frontend {
        Frontend {
            tage: Tage::new(),
            btb: Btb::new(),
            ras: Ras::new(),
            ghr: Ghr::new(),
            stats: FrontendStats::default(),
        }
    }

    /// Prediction-volume counters accumulated so far.
    pub fn stats(&self) -> &FrontendStats {
        &self.stats
    }

    /// Captures the speculative state (GHR + RAS) *before* predicting an
    /// instruction, so a later squash can rewind past it.
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint { ghr: self.ghr.clone(), ras: self.ras.clone() }
    }

    /// Restores a checkpoint taken by [`Frontend::checkpoint`].
    pub fn restore(&mut self, cp: &Checkpoint) {
        self.ghr = cp.ghr.clone();
        self.ras = cp.ras.clone();
    }

    /// Predicts the next PC for `inst` at `pc`, speculatively updating the
    /// GHR (for conditional branches) and RAS (for calls/returns).
    pub fn predict(&mut self, pc: u64, inst: &Inst) -> FetchPrediction {
        match *inst {
            Inst::Branch { target, .. } => {
                self.stats.cond_predictions += 1;
                let (taken, info) = self.tage.predict(pc, &self.ghr);
                self.ghr.push(taken);
                FetchPrediction {
                    next_pc: if taken { target as u64 } else { pc + 1 },
                    predicted_taken: taken,
                    info: Some(info),
                }
            }
            Inst::Jump { target } => {
                self.stats.direct_predictions += 1;
                FetchPrediction { next_pc: target as u64, predicted_taken: true, info: None }
            }
            Inst::Call { target, .. } => {
                self.stats.direct_predictions += 1;
                self.ras.push(pc + 1);
                FetchPrediction { next_pc: target as u64, predicted_taken: true, info: None }
            }
            Inst::CallInd { .. } => {
                self.stats.indirect_predictions += 1;
                self.ras.push(pc + 1);
                let next_pc = self.btb.lookup(pc).unwrap_or(pc + 1);
                FetchPrediction { next_pc, predicted_taken: true, info: None }
            }
            Inst::Ret { .. } => {
                self.stats.ras_predictions += 1;
                let next_pc = self.ras.pop().unwrap_or(pc + 1);
                FetchPrediction { next_pc, predicted_taken: true, info: None }
            }
            Inst::JumpInd { .. } => {
                self.stats.indirect_predictions += 1;
                let next_pc = self.btb.lookup(pc).unwrap_or(pc + 1);
                FetchPrediction { next_pc, predicted_taken: true, info: None }
            }
            _ => FetchPrediction { next_pc: pc + 1, predicted_taken: false, info: None },
        }
    }

    /// Trains the predictor with a resolved control-flow instruction.
    ///
    /// Called when the branch's resolution effects are permitted by the
    /// protection policy, so tainted data never reaches predictor state.
    pub fn train(
        &mut self,
        pc: u64,
        inst: &Inst,
        taken: bool,
        target: u64,
        info: Option<&PredictInfo>,
    ) {
        if inst.is_cond_branch() {
            if let Some(info) = info {
                self.tage.update(pc, info, taken);
            }
        }
        if inst.is_indirect() && !matches!(inst, Inst::Ret { .. }) {
            self.btb.update(pc, target);
        }
        let _ = taken;
    }

    /// Rewinds speculative state to `cp` (taken before the mispredicted
    /// instruction was predicted) and replays the instruction's own GHR/RAS
    /// effect with the *actual* outcome, so fetch restarts consistently.
    pub fn recover(&mut self, cp: &Checkpoint, pc: u64, inst: &Inst, actual_taken: bool) {
        self.restore(cp);
        match *inst {
            Inst::Branch { .. } => self.ghr.push(actual_taken),
            Inst::Call { .. } | Inst::CallInd { .. } => self.ras.push(pc + 1),
            Inst::Ret { .. } => {
                let _ = self.ras.pop();
            }
            _ => {}
        }
    }

    /// Read access to the global history register (tests).
    pub fn ghr(&self) -> &Ghr {
        &self.ghr
    }

    /// Read access to the return address stack (tests).
    pub fn ras(&self) -> &Ras {
        &self.ras
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_isa::{BranchCond, Reg};

    fn branch(target: u32) -> Inst {
        Inst::Branch { cond: BranchCond::Ne, rs1: Reg::R1, rs2: Reg::R0, target }
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut fe = Frontend::new();
        let cp = fe.checkpoint();
        fe.predict(1, &branch(10));
        fe.predict(5, &Inst::Call { target: 20, link: Reg::R31 });
        fe.restore(&cp);
        assert_eq!(fe.ghr(), &Ghr::new());
        assert!(fe.ras().is_empty());
    }

    #[test]
    fn call_ret_pairs_predict_via_ras() {
        let mut fe = Frontend::new();
        fe.predict(10, &Inst::Call { target: 50, link: Reg::R31 });
        let p = fe.predict(55, &Inst::Ret { link: Reg::R31 });
        assert_eq!(p.next_pc, 11);
    }

    #[test]
    fn indirect_jump_uses_btb_after_training() {
        let mut fe = Frontend::new();
        let jr = Inst::JumpInd { base: Reg::R4 };
        let p = fe.predict(7, &jr);
        assert_eq!(p.next_pc, 8, "untrained BTB falls through");
        fe.train(7, &jr, true, 42, None);
        let p = fe.predict(7, &jr);
        assert_eq!(p.next_pc, 42);
    }

    #[test]
    fn prediction_counters_by_class() {
        let mut fe = Frontend::new();
        fe.predict(1, &branch(9));
        fe.predict(2, &Inst::Jump { target: 8 });
        fe.predict(3, &Inst::Call { target: 20, link: Reg::R31 });
        fe.predict(21, &Inst::Ret { link: Reg::R31 });
        fe.predict(4, &Inst::JumpInd { base: Reg::R4 });
        fe.predict(5, &Inst::Nop); // non-control-flow: uncounted
        let s = fe.stats();
        assert_eq!(s.cond_predictions, 1);
        assert_eq!(s.direct_predictions, 2);
        assert_eq!(s.indirect_predictions, 1);
        assert_eq!(s.ras_predictions, 1);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn recover_replays_actual_outcome() {
        let mut fe = Frontend::new();
        let cp = fe.checkpoint();
        let p = fe.predict(3, &branch(9));
        assert!(!p.predicted_taken, "untrained predictor defaults not-taken");
        fe.recover(&cp, 3, &branch(9), true);
        // GHR now contains exactly one bit: `true`.
        assert_eq!(fe.ghr().len(), 1);
        assert!(fe.ghr().bit(0));
    }
}
