//! Return address stack.

/// A fixed-depth return address stack with wrap-around on overflow,
/// matching real hardware behaviour (deep recursion silently corrupts the
/// oldest entries rather than failing).
///
/// # Example
///
/// ```
/// use spt_frontend::Ras;
/// let mut ras = Ras::new();
/// ras.push(0x11);
/// ras.push(0x22);
/// assert_eq!(ras.pop(), Some(0x22));
/// assert_eq!(ras.pop(), Some(0x11));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ras {
    entries: [u64; Self::DEPTH],
    top: usize,
    len: usize,
}

impl Ras {
    /// Stack depth.
    pub const DEPTH: usize = 16;

    /// Creates an empty stack.
    pub fn new() -> Ras {
        Ras { entries: [0; Self::DEPTH], top: 0, len: 0 }
    }

    /// Pushes a return address; overwrites the oldest entry when full.
    pub fn push(&mut self, addr: u64) {
        self.entries[self.top] = addr;
        self.top = (self.top + 1) % Self::DEPTH;
        self.len = (self.len + 1).min(Self::DEPTH);
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        self.top = (self.top + Self::DEPTH - 1) % Self::DEPTH;
        self.len -= 1;
        Some(self.entries[self.top])
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Default for Ras {
    fn default() -> Ras {
        Ras::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_wraps_and_keeps_newest() {
        let mut ras = Ras::new();
        for i in 0..(Ras::DEPTH as u64 + 4) {
            ras.push(i);
        }
        assert_eq!(ras.len(), Ras::DEPTH);
        // The newest DEPTH entries pop in LIFO order.
        for i in (4..Ras::DEPTH as u64 + 4).rev() {
            assert_eq!(ras.pop(), Some(i));
        }
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new();
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.pop(), Some(3));
        ras.push(4);
        assert_eq!(ras.pop(), Some(4));
        assert_eq!(ras.pop(), Some(2));
    }
}
