//! Reorder buffer entry types.

use spt_core::{PhysReg, Seq, StlCondition};
use spt_frontend::{Checkpoint, PredictInfo};
use spt_isa::{Inst, Reg};

/// Execution status of an in-flight instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecState {
    /// Waiting in the reservation station for operands / protection.
    Waiting,
    /// Issued to an execution unit; completes at `done_at`.
    Issued,
    /// Result produced and written back.
    Done,
}

/// Memory-side state for load/store entries.
#[derive(Clone, Debug, Default)]
pub struct MemState {
    /// Effective address, once computed.
    pub addr: Option<u64>,
    /// Access width in bytes.
    pub bytes: u64,
    /// Loads: value read (from cache or forwarding). Stores: value to write.
    pub value: u64,
    /// Loads: the store that forwarded the data, if any.
    pub fwd_from: Option<Seq>,
    /// Loads: the `STLPublic` condition for the forwarding pair (§6.7).
    pub stl: Option<StlCondition>,
    /// Stores: the oldest younger load that executed with stale data; the
    /// squash is deferred until the implicit branch is public (§6.7).
    pub pending_violation: Option<Seq>,
    /// Loads: the access has touched the cache (state change happened).
    pub accessed: bool,
    /// Loads: the post-hoc shadow clear (§6.8 rule ②) already ran.
    pub range_cleared: bool,
    /// Loads: executed obliviously (SDO policy): fixed latency, no cache
    /// state change, no shadow interaction.
    pub oblivious: bool,
}

/// Per-stage timestamps for observability.
///
/// Recorded unconditionally (plain stores, never read back by any stage),
/// so tracing imposes no timing or digest difference when disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTiming {
    /// Cycle the instruction entered the fetch queue.
    pub fetch_cycle: u64,
    /// Cycle it was renamed into the ROB.
    pub rename_cycle: u64,
    /// Cycle it issued to a functional unit / memory port.
    pub issue_cycle: Option<u64>,
    /// Cycle its result wrote back.
    pub complete_cycle: Option<u64>,
    /// Cycles this (transmitter) instruction was ready but blocked by the
    /// protection gate — the per-instruction share of
    /// `MachineStats::transmitter_delay_cycles`.
    pub xmit_delay_cycles: u64,
}

/// One reorder buffer entry.
#[derive(Clone, Debug)]
pub struct RobEntry {
    /// Global sequence number (monotonic, never reused).
    pub seq: Seq,
    /// PC of the instruction.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Source physical registers, in `Inst::sources` order.
    pub srcs: [Option<PhysReg>; 3],
    /// Destination: `(arch, new phys, old phys)`.
    pub dest: Option<(Reg, PhysReg, PhysReg)>,
    /// Execution status.
    pub state: ExecState,
    /// Completion cycle when `Issued`.
    pub done_at: u64,
    /// Computed result (for register-writing instructions).
    pub result: u64,
    /// Whether the instruction still occupies a reservation-station slot.
    pub in_rs: bool,
    /// Number of source operands still waiting on an unready physical
    /// register (scheduler wakeup bookkeeping; duplicated sources count
    /// once per slot). The entry sits in the ready queue iff it is
    /// `Waiting` with `pending_srcs == 0`.
    pub pending_srcs: u8,
    /// Frontend state snapshot taken before this instruction was predicted.
    pub checkpoint: Checkpoint,
    /// Predicted next PC (what fetch followed).
    pub pred_next: u64,
    /// Predicted direction for conditional branches.
    pub pred_taken: bool,
    /// TAGE bookkeeping for training at retire.
    pub pred_info: Option<PredictInfo>,
    /// Actual next PC, once executed (control flow).
    pub actual_next: Option<u64>,
    /// Actual direction for conditional branches.
    pub actual_taken: bool,
    /// Control-flow resolution effects have been applied (redirect/confirm).
    /// Non-control-flow instructions are resolved from the start.
    pub resolved: bool,
    /// Reached the visibility point under the configured threat model.
    pub vp: bool,
    /// VP declassification has been performed for this entry.
    pub declassified: bool,
    /// Load/store state.
    pub mem: MemState,
    /// Stage timestamps for pipeline tracing.
    pub timing: StageTiming,
}

impl RobEntry {
    /// Creates a freshly renamed entry.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        seq: Seq,
        pc: u64,
        inst: Inst,
        srcs: [Option<PhysReg>; 3],
        dest: Option<(Reg, PhysReg, PhysReg)>,
        checkpoint: Checkpoint,
        pred_next: u64,
        pred_taken: bool,
        pred_info: Option<PredictInfo>,
    ) -> RobEntry {
        let is_cf = inst.is_control_flow();
        // Direct unconditional control flow is never mispredicted: the
        // target is program text. It resolves immediately.
        let auto_resolved = !is_cf || matches!(inst, Inst::Jump { .. } | Inst::Call { .. });
        let bytes = match inst {
            Inst::Load { size, .. } | Inst::Store { size, .. } => size.bytes(),
            _ => 0,
        };
        RobEntry {
            seq,
            pc,
            inst,
            srcs,
            dest,
            state: ExecState::Waiting,
            done_at: 0,
            result: 0,
            in_rs: true,
            pending_srcs: 0,
            checkpoint,
            pred_next,
            pred_taken,
            pred_info,
            actual_next: None,
            actual_taken: false,
            resolved: auto_resolved,
            vp: false,
            declassified: false,
            mem: MemState { bytes, ..MemState::default() },
            timing: StageTiming::default(),
        }
    }

    /// Whether this entry is a load.
    pub fn is_load(&self) -> bool {
        matches!(self.inst, Inst::Load { .. })
    }

    /// Whether this entry is a store.
    pub fn is_store(&self) -> bool {
        matches!(self.inst, Inst::Store { .. })
    }

    /// Whether execution is finished and the entry could retire (modulo
    /// being at the head and resolution).
    pub fn completed(&self) -> bool {
        self.state == ExecState::Done
    }

    /// Whether the byte ranges of two memory accesses overlap.
    pub fn ranges_overlap(a: u64, abytes: u64, b: u64, bbytes: u64) -> bool {
        a < b.wrapping_add(bbytes) && b < a.wrapping_add(abytes)
    }

    /// Whether range `(a, abytes)` fully covers `(b, bbytes)`.
    pub fn range_covers(a: u64, abytes: u64, b: u64, bbytes: u64) -> bool {
        a <= b && b.wrapping_add(bbytes) <= a.wrapping_add(abytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_and_cover() {
        assert!(RobEntry::ranges_overlap(0, 8, 4, 8));
        assert!(!RobEntry::ranges_overlap(0, 4, 4, 4));
        assert!(RobEntry::range_covers(0, 8, 0, 8));
        assert!(RobEntry::range_covers(0, 8, 4, 4));
        assert!(!RobEntry::range_covers(0, 8, 4, 8));
        assert!(!RobEntry::range_covers(4, 4, 0, 8));
    }
}
