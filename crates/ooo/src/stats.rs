//! Machine-level statistics and run outcomes.

use spt_core::SptStats;
use spt_util::Json;
use std::error::Error;
use std::fmt;

/// Counters accumulated by one simulation run.
#[derive(Clone, Debug, Default)]
pub struct MachineStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Instructions fetched (including wrong path).
    pub fetched: u64,
    /// Pipeline squashes (mispredictions + memory-order violations).
    pub squashes: u64,
    /// Conditional-branch mispredictions (resolved wrong path).
    pub branch_mispredicts: u64,
    /// Indirect-target mispredictions.
    pub indirect_mispredicts: u64,
    /// Retired conditional branches.
    pub retired_branches: u64,
    /// Memory-order violations (store found a younger load with stale data).
    pub mem_violations: u64,
    /// Cycle-counts during which a ready transmitter was blocked only by
    /// the protection policy.
    pub transmitter_delay_cycles: u64,
    /// Cycle-counts during which branch-resolution effects were deferred by
    /// the protection policy.
    pub resolution_delay_cycles: u64,
    /// Loads that received forwarded store data.
    pub stl_forwards: u64,
    /// SPT taint-engine statistics (zeroed for non-SPT configurations).
    pub spt: SptStats,
}

impl MachineStats {
    /// Retired instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired as f64 / self.cycles as f64
        }
    }

    /// Misprediction rate over retired conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.retired_branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.retired_branches as f64
        }
    }

    /// Renders every counter (plus derived rates and the SPT sub-block) as
    /// one JSON object — the `machine` section of the stats document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cycles", Json::U64(self.cycles)),
            ("retired", Json::U64(self.retired)),
            ("fetched", Json::U64(self.fetched)),
            ("ipc", Json::F64(self.ipc())),
            ("squashes", Json::U64(self.squashes)),
            ("branch_mispredicts", Json::U64(self.branch_mispredicts)),
            ("indirect_mispredicts", Json::U64(self.indirect_mispredicts)),
            ("retired_branches", Json::U64(self.retired_branches)),
            ("mispredict_rate", Json::F64(self.mispredict_rate())),
            ("mem_violations", Json::U64(self.mem_violations)),
            ("transmitter_delay_cycles", Json::U64(self.transmitter_delay_cycles)),
            ("resolution_delay_cycles", Json::U64(self.resolution_delay_cycles)),
            ("stl_forwards", Json::U64(self.stl_forwards)),
            ("spt", self.spt.to_json()),
        ])
    }
}

/// Why a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The program retired `Halt`.
    Halted,
    /// The retired-instruction budget was reached.
    RetireBudget,
    /// The cycle budget was reached.
    CycleBudget,
}

/// Summary of a completed run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Cycles executed.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

/// A simulation error (machine wedged — always a simulator bug, never a
/// legal program outcome).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No instruction retired for an implausibly long time.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Instructions retired before the machine wedged.
        retired: u64,
        /// PC of the reorder-buffer head, if any.
        head_pc: Option<u64>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, retired, head_pc } => {
                write!(
                    f,
                    "pipeline deadlock at cycle {cycle} after {retired} retired \
                     (head pc {head_pc:?})"
                )
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = MachineStats::default();
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn rates() {
        let s = MachineStats {
            cycles: 100,
            retired: 250,
            retired_branches: 10,
            branch_mispredicts: 2,
            ..MachineStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mispredict_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn json_has_counters_and_spt_block() {
        let s = MachineStats {
            cycles: 100,
            retired: 250,
            transmitter_delay_cycles: 17,
            ..MachineStats::default()
        };
        let j = s.to_json();
        assert_eq!(j.get("cycles").and_then(Json::as_u64), Some(100));
        assert_eq!(j.get("transmitter_delay_cycles").and_then(Json::as_u64), Some(17));
        assert!((j.get("ipc").and_then(Json::as_f64).unwrap() - 2.5).abs() < 1e-12);
        assert!(j.get("spt").and_then(|s| s.get("untaint_events_total")).is_some());
        // Round-trips through the text form.
        let back = Json::parse(&j.to_string()).unwrap();
        assert_eq!(back.get("retired").and_then(Json::as_u64), Some(250));
    }

    #[test]
    fn sim_error_display() {
        let e = SimError::Deadlock { cycle: 10, retired: 7, head_pc: Some(3) };
        let text = e.to_string();
        assert!(text.contains("deadlock"));
        assert!(text.contains("7 retired"));
    }
}
