//! Register renaming: RAT, physical register file and free list.

use spt_core::PhysReg;
use spt_isa::Reg;

/// Register alias table + physical register file + free list.
///
/// Architectural register `r0` is pinned to physical register 0, which
/// always reads zero and is never reallocated.
///
/// # Example
///
/// ```
/// use spt_ooo::rename::RegisterFile;
/// use spt_isa::Reg;
///
/// let mut rf = RegisterFile::new(64);
/// let (new, old) = rf.allocate(Reg::R1).unwrap();
/// assert_ne!(new, old);
/// rf.write(new, 42);
/// assert_eq!(rf.read(rf.lookup(Reg::R1)), 42);
/// ```
#[derive(Clone, Debug)]
pub struct RegisterFile {
    rat: [PhysReg; Reg::COUNT],
    free: Vec<PhysReg>,
    val: Vec<u64>,
    ready: Vec<bool>,
}

impl RegisterFile {
    /// Creates a register file with `num_phys` physical registers; the
    /// first 32 are the initial architectural mappings (all ready, zero).
    ///
    /// # Panics
    ///
    /// Panics if `num_phys < 64` (not enough headroom to rename).
    pub fn new(num_phys: usize) -> RegisterFile {
        assert!(num_phys >= 64, "need headroom beyond the 32 architectural registers");
        let mut rat = [0 as PhysReg; Reg::COUNT];
        for (i, slot) in rat.iter_mut().enumerate() {
            *slot = i as PhysReg;
        }
        RegisterFile {
            rat,
            free: (Reg::COUNT as PhysReg..num_phys as PhysReg).rev().collect(),
            val: vec![0; num_phys],
            ready: vec![true; num_phys],
        }
    }

    /// Total physical registers.
    pub fn num_phys(&self) -> usize {
        self.val.len()
    }

    /// Free physical registers remaining.
    pub fn free_count(&self) -> usize {
        self.free.len()
    }

    /// Current physical mapping of an architectural register.
    pub fn lookup(&self, reg: Reg) -> PhysReg {
        self.rat[reg.index()]
    }

    /// Allocates a fresh physical register for a write to `reg`, returning
    /// `(new, old)` mappings, or `None` if the free list is empty.
    /// Allocation for `r0` is rejected (writes to `r0` are discarded).
    pub fn allocate(&mut self, reg: Reg) -> Option<(PhysReg, PhysReg)> {
        if reg.is_zero() {
            return None;
        }
        let new = self.free.pop()?;
        let old = self.rat[reg.index()];
        self.rat[reg.index()] = new;
        self.ready[new as usize] = false;
        self.val[new as usize] = 0;
        Some((new, old))
    }

    /// Returns a no-longer-referenced physical register to the free list
    /// (at retire: the *old* mapping; at squash: the *new* mapping).
    ///
    /// # Panics
    ///
    /// Panics if `phys` is the pinned zero register.
    pub fn release(&mut self, phys: PhysReg) {
        assert_ne!(phys, 0, "the zero register is never freed");
        self.ready[phys as usize] = true;
        self.free.push(phys);
    }

    /// Rolls back a squashed allocation: restores `reg → old` and frees the
    /// squashed instruction's destination. Must be applied youngest-first.
    pub fn rollback(&mut self, reg: Reg, new: PhysReg, old: PhysReg) {
        debug_assert_eq!(self.rat[reg.index()], new);
        self.rat[reg.index()] = old;
        self.release(new);
    }

    /// Value of a physical register.
    pub fn read(&self, phys: PhysReg) -> u64 {
        self.val[phys as usize]
    }

    /// Writes a physical register and marks it ready.
    pub fn write(&mut self, phys: PhysReg, value: u64) {
        if phys != 0 {
            self.val[phys as usize] = value;
        }
        self.ready[phys as usize] = true;
    }

    /// Whether a physical register holds its final value.
    pub fn is_ready(&self, phys: PhysReg) -> bool {
        self.ready[phys as usize]
    }

    /// Architectural read (through the RAT) — valid when the pipeline is
    /// drained, used for test inspection and machine setup.
    pub fn arch_read(&self, reg: Reg) -> u64 {
        self.read(self.lookup(reg))
    }

    /// Architectural write (through the RAT) — for machine setup only.
    pub fn arch_write(&mut self, reg: Reg, value: u64) {
        let p = self.lookup(reg);
        self.write(p, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_pinned() {
        let mut rf = RegisterFile::new(64);
        assert_eq!(rf.lookup(Reg::R0), 0);
        assert!(rf.allocate(Reg::R0).is_none());
        rf.write(0, 99);
        assert_eq!(rf.read(0), 0, "writes to phys 0 are discarded");
    }

    #[test]
    fn allocate_write_read_cycle() {
        let mut rf = RegisterFile::new(64);
        let (new, old) = rf.allocate(Reg::R5).unwrap();
        assert_eq!(old, 5, "initial mapping is identity");
        assert!(!rf.is_ready(new));
        rf.write(new, 7);
        assert!(rf.is_ready(new));
        assert_eq!(rf.arch_read(Reg::R5), 7);
    }

    #[test]
    fn rollback_restores_mapping() {
        let mut rf = RegisterFile::new(64);
        let before = rf.lookup(Reg::R3);
        let (new, old) = rf.allocate(Reg::R3).unwrap();
        let frees = rf.free_count();
        rf.rollback(Reg::R3, new, old);
        assert_eq!(rf.lookup(Reg::R3), before);
        assert_eq!(rf.free_count(), frees + 1);
    }

    #[test]
    fn nested_rollback_youngest_first() {
        let mut rf = RegisterFile::new(64);
        let (n1, o1) = rf.allocate(Reg::R2).unwrap();
        let (n2, o2) = rf.allocate(Reg::R2).unwrap();
        assert_eq!(o2, n1);
        rf.rollback(Reg::R2, n2, o2);
        rf.rollback(Reg::R2, n1, o1);
        assert_eq!(rf.lookup(Reg::R2), 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rf = RegisterFile::new(64);
        let mut n = 0;
        while rf.allocate(Reg::R1).is_some() {
            n += 1;
        }
        assert_eq!(n, 32, "64 phys - 32 architectural = 32 allocations");
    }
}
