//! A cycle-level out-of-order core simulator with pluggable speculative-
//! execution protections, reproducing the evaluation platform of the SPT
//! paper (MICRO 2021, Table 1): an 8-wide core with a 192-entry ROB, 32/32
//! load/store queues, an LTAGE-style branch predictor, and a three-level
//! cache hierarchy.
//!
//! The simulator models exactly the mechanisms SPT's overhead comes from:
//!
//! * register renaming with rename-time taint computation;
//! * a reorder buffer with per-threat-model visibility-point tracking;
//! * delayed execution of tainted transmitters (loads/stores);
//! * deferred branch-resolution effects (wrong-path fetch continues while
//!   a tainted predicate blocks the squash);
//! * a load/store queue with store-to-load forwarding, memory-dependence
//!   speculation, deferred violation squashes, and `STLPublic` gating;
//! * the shadow L1 mirroring L1D fills/evictions.
//!
//! Architectural behaviour is independent of the protection configuration:
//! integration tests check every workload produces bit-identical results
//! on every Table-2 configuration and on the reference interpreter.
//!
//! # Example
//!
//! ```
//! use spt_ooo::{CoreConfig, Machine, RunLimits};
//! use spt_core::{Config, ThreatModel};
//! use spt_isa::asm::Assembler;
//! use spt_isa::Reg;
//!
//! let mut a = Assembler::new();
//! a.mov_imm(Reg::R1, 0x1000);
//! a.mov_imm(Reg::R2, 7);
//! a.st(Reg::R2, Reg::R1, 0);
//! a.ld(Reg::R3, Reg::R1, 0);
//! a.halt();
//! let program = a.assemble()?;
//!
//! for threat in [ThreatModel::Spectre, ThreatModel::Futuristic] {
//!     let mut m = Machine::new(program.clone(), CoreConfig::default(),
//!                              Config::spt_full(threat));
//!     m.run(RunLimits::default())?;
//!     assert_eq!(m.reg(Reg::R3), 7);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod machine;
pub mod rename;
pub mod rob;
mod sched;
pub mod stats;
pub mod telemetry;
pub mod validate;

pub use config::CoreConfig;
pub use machine::{Machine, RunLimits};
pub use stats::{MachineStats, RunOutcome, SimError, StopReason};
pub use telemetry::Telemetry;
pub use validate::SecurityValidator;
