//! Core (pipeline) configuration — paper Table 1.

/// Out-of-order core parameters. Defaults reproduce paper Table 1: 8-wide
/// fetch/issue/commit, 192-entry ROB, 32/32 LQ/SQ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Instructions renamed/dispatched per cycle.
    pub rename_width: usize,
    /// Instructions issued to execution per cycle.
    pub issue_width: usize,
    /// Instructions retired per cycle.
    pub retire_width: usize,
    /// Memory operations (loads/stores) issued per cycle (L1D ports).
    pub mem_ports: usize,
    /// Reorder buffer capacity.
    pub rob_size: usize,
    /// Unified reservation-station capacity (instructions waiting to issue).
    pub rs_size: usize,
    /// Load-queue capacity.
    pub lq_size: usize,
    /// Store-queue capacity.
    pub sq_size: usize,
    /// Physical register file size.
    pub num_phys: usize,
    /// Fetch-queue capacity (fetched but not yet renamed).
    pub fetch_queue: usize,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            fetch_width: 8,
            rename_width: 8,
            issue_width: 8,
            retire_width: 8,
            mem_ports: 2,
            rob_size: 192,
            rs_size: 64,
            lq_size: 32,
            sq_size: 32,
            num_phys: 320,
            fetch_queue: 16,
        }
    }
}

impl CoreConfig {
    /// A scaled-down core for fast unit tests.
    pub fn tiny() -> CoreConfig {
        CoreConfig {
            fetch_width: 2,
            rename_width: 2,
            issue_width: 2,
            retire_width: 2,
            mem_ports: 1,
            rob_size: 16,
            rs_size: 8,
            lq_size: 4,
            sq_size: 4,
            num_phys: 64,
            fetch_queue: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = CoreConfig::default();
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.rob_size, 192);
        assert_eq!(c.lq_size, 32);
        assert_eq!(c.sq_size, 32);
        assert!(c.num_phys > c.rob_size + 32, "enough physical registers for a full ROB");
    }
}
