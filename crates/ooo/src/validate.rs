//! An executable version of the paper's security proof (§8).
//!
//! Theorem 1 (the contrapositive of Definition 1) says: *if data gets
//! untainted in SPT's speculative execution, then it is not secret in the
//! non-speculative execution* — i.e. its value is `f(O)` for a function
//! `f` known to the attacker and operands `O` of transmitters that reached
//! the visibility point.
//!
//! [`SecurityValidator`] checks this dynamically. It plays the §8 model
//! attacker: it sees the dynamic instruction stream (Property 1: the ROB
//! contents are public), the operands of transmitters/branches that reach
//! the VP (the declassification axiom), and nothing else. Every time the
//! SPT machinery untaints a register or memory range, the validator must
//! *independently re-derive the value* from its own knowledge:
//!
//! * `LoadImm` — the value is program text (an immediate or `pc + 1`);
//! * `DeclassifyTransmit` / `DeclassifyBranch` — axiom: the operand leaks
//!   in the non-speculative execution (the VP construction guarantees the
//!   instruction retires — see the Spectre-model data-speculation
//!   augmentation in [`crate::machine`]);
//! * `Forward` — recompute `f(srcs)` from known source values and compare;
//! * `Backward` — invert a consuming instruction from its known output and
//!   remaining inputs and compare;
//! * `StlForward` / `StlBackward` — equate the forwarding pair's values;
//! * `ShadowL1` / `ShadowMem` — assemble the value from known memory bytes;
//! * memory ranges cleared by the §6.8 rules — require the proving
//!   register/bytes to be known.
//!
//! Knowledge is keyed by *dynamic value* — the sequence number of the
//! producing instruction — because physical registers are recycled while
//! the attacker's memory of leaked values is permanent.
//!
//! Any failure is recorded as a violation: it would mean SPT revealed a
//! value the attacker could not already infer — exactly what Theorem 1
//! forbids. The integration tests run every workload and both attacks
//! under every SPT configuration with the validator enabled and assert
//! zero violations.

use spt_core::{PhysReg, Seq, UntaintKind};
use spt_isa::{AluOp, Inst};
use std::collections::{BTreeMap, HashMap};

/// Partially-known value: `mask` bit `i` set means byte `i` is known.
#[derive(Clone, Copy, Debug, Default)]
struct Known {
    value: u64,
    mask: u8,
}

impl Known {
    const FULL: u8 = 0xff;

    fn full(value: u64) -> Known {
        Known { value, mask: Known::FULL }
    }

    fn is_full(&self) -> bool {
        self.mask == Known::FULL
    }

    fn byte(&self, i: u64) -> Option<u8> {
        if (self.mask >> i) & 1 == 1 {
            Some((self.value >> (8 * i)) as u8)
        } else {
            None
        }
    }
}

/// A source operand reference: the physical register and the dynamic value
/// identity (producing instruction) it held at rename.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ValRef {
    phys: PhysReg,
    /// Producing instruction, or `None` for initial architectural state
    /// (which is tainted program data — unknown to the attacker).
    producer: Option<Seq>,
}

#[derive(Clone, Debug)]
struct Recorded {
    pc: u64,
    inst: Inst,
    srcs: [Option<ValRef>; 3],
    dest: Option<PhysReg>,
    /// The value the destination register held before this rename, so a
    /// squash can roll the mapping back.
    prev_producer: Option<Seq>,
    /// Effective address, once issued (loads/stores).
    addr: Option<u64>,
    retired: bool,
}

#[derive(Clone, Debug)]
enum Check {
    /// A register broadcast as untainted must be justifiable. `producer`
    /// is the dynamic value the register held at broadcast time.
    Broadcast { producer: Seq, kind: UntaintKind, phys: PhysReg },
    /// A destination that was public at rename must be computable.
    RenameClear { seq: Seq },
    /// A memory range whose taint was cleared must be derivable from the
    /// proving value.
    MemInferable { addr: u64, bytes: u64, producer: Seq },
    /// Bytes a store drained with a public taint must carry known data.
    StoreDrain { store_seq: Seq, addr: u64, data_idx: usize, public_mask: u8 },
}

/// The §8 model attacker (see module docs).
#[derive(Clone, Debug, Default)]
pub struct SecurityValidator {
    /// Attacker-derived values, keyed by producing instruction.
    known: HashMap<Seq, Known>,
    known_mem: HashMap<u64, u8>,
    insts: BTreeMap<Seq, Recorded>,
    /// Current dynamic value held by each physical register.
    producer_of: HashMap<PhysReg, Seq>,
    stl_pairs: Vec<(Seq, Seq, usize)>, // (load, store, data operand index)
    pending: Vec<Check>,
    violations: Vec<String>,
    checks_passed: u64,
    /// Diagnostic log of accepted broadcast checks.
    pub accepted_log: Vec<(Seq, UntaintKind)>,
}

impl SecurityValidator {
    /// Creates an attacker with no knowledge (all data secret).
    pub fn new() -> SecurityValidator {
        SecurityValidator::default()
    }

    /// Violations found so far (empty = Theorem 1 held).
    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Number of untaint decisions successfully justified.
    pub fn checks_passed(&self) -> u64 {
        self.checks_passed
    }

    fn violate(&mut self, msg: String) {
        if self.violations.len() < 32 {
            self.violations.push(msg);
        }
    }

    fn val_ref(&self, phys: PhysReg) -> ValRef {
        ValRef { phys, producer: self.producer_of.get(&phys).copied() }
    }

    /// Known value of a source reference: the zero register is the public
    /// constant 0; otherwise look up the dynamic value.
    fn lookup(&self, r: ValRef) -> Option<Known> {
        if r.phys == 0 {
            return Some(Known::full(0));
        }
        self.known.get(&r.producer?).copied()
    }

    fn lookup_full(&self, r: ValRef) -> Option<u64> {
        self.lookup(r).filter(|k| k.is_full()).map(|k| k.value)
    }

    /// Records a renamed instruction (the attacker sees the ROB contents).
    pub fn on_rename(
        &mut self,
        seq: Seq,
        pc: u64,
        inst: Inst,
        srcs: [Option<PhysReg>; 3],
        dest: Option<PhysReg>,
        dest_clear: bool,
    ) {
        let src_refs = srcs.map(|s| s.map(|p| self.val_ref(p)));
        let mut prev_producer = None;
        if let Some(d) = dest {
            prev_producer = self.producer_of.insert(d, seq);
            // Zero-extension knowledge: a k-byte load's upper bytes are
            // architecturally zero — program semantics, hence public.
            if let Inst::Load { size, .. } = inst {
                let mut mask = 0u8;
                for b in size.bytes()..8 {
                    mask |= 1 << b;
                }
                if mask != 0 {
                    self.known.insert(seq, Known { value: 0, mask });
                }
            }
        }
        self.insts.insert(
            seq,
            Recorded { pc, inst, srcs: src_refs, dest, prev_producer, addr: None, retired: false },
        );
        if dest_clear {
            self.pending.push(Check::RenameClear { seq });
        }
        // Bound the window by pruning old retired instructions (the
        // attacker forgets nothing in principle; the checker only needs
        // the active window).
        while self.insts.len() > 8192 {
            let (&oldest, rec) = self.insts.iter().next().expect("non-empty");
            if !rec.retired {
                break;
            }
            self.insts.remove(&oldest);
            self.known.remove(&oldest);
        }
    }

    /// Records a load/store effective address (public once the access is
    /// allowed to execute).
    pub fn on_mem_addr(&mut self, seq: Seq, addr: u64) {
        if let Some(r) = self.insts.get_mut(&seq) {
            r.addr = Some(addr);
        }
    }

    /// Records a broadcast untaint to be justified once the value is
    /// architecturally available.
    pub fn on_broadcast(&mut self, phys: PhysReg, kind: UntaintKind) {
        match self.producer_of.get(&phys).copied() {
            Some(producer) => self.pending.push(Check::Broadcast { producer, kind, phys }),
            None => {
                if phys != 0 {
                    self.violate(format!("broadcast p{phys} ({kind}) with no recorded producer"));
                }
            }
        }
    }

    /// Records an established `STLPublic` forwarding pair.
    pub fn on_stl_pair(&mut self, load_seq: Seq, store_seq: Seq, data_idx: usize) {
        if !self.stl_pairs.iter().any(|&(l, s, _)| l == load_seq && s == store_seq) {
            self.stl_pairs.push((load_seq, store_seq, data_idx));
            if self.stl_pairs.len() > 256 {
                self.stl_pairs.remove(0);
            }
        }
    }

    /// The machine cleared the taint of memory range `[addr, addr+bytes)`
    /// because register `phys` (holding those bytes) is public. Checked at
    /// drain time, after the broadcast that justifies the value resolves.
    pub fn on_mem_inferable(&mut self, addr: u64, bytes: u64, phys: PhysReg) {
        match self.producer_of.get(&phys).copied() {
            Some(producer) => self.pending.push(Check::MemInferable { addr, bytes, producer }),
            None => self.violate(format!(
                "mem range {addr:#x}+{bytes} cleared by p{phys} with no producer"
            )),
        }
    }

    /// A store drained to memory: bytes written with a public taint
    /// (`public_mask` bit per byte) must carry attacker-known data; tainted
    /// bytes erase memory knowledge immediately.
    pub fn on_store_drain(
        &mut self,
        store_seq: Seq,
        addr: u64,
        bytes: u64,
        data_idx: usize,
        public_mask: u8,
    ) {
        for i in 0..bytes.min(8) {
            if (public_mask >> i) & 1 == 0 {
                self.known_mem.remove(&(addr + i));
            }
        }
        if public_mask != 0 {
            self.pending.push(Check::StoreDrain { store_seq, addr, data_idx, public_mask });
        }
    }

    /// Marks an instruction retired (it stays usable as justification).
    pub fn on_retire(&mut self, seq: Seq) {
        if let Some(r) = self.insts.get_mut(&seq) {
            r.retired = true;
        }
    }

    /// Drops squashed instructions: their dataflow never happened and must
    /// not justify anything.
    pub fn on_squash(&mut self, from: Seq) {
        let removed = self.insts.split_off(&from);
        self.known.retain(|&s, _| s < from);
        // Roll the register mappings back, youngest squashed rename first,
        // mirroring the machine's RAT rollback.
        for (&seq, rec) in removed.iter().rev() {
            if let Some(d) = rec.dest {
                if self.producer_of.get(&d) == Some(&seq) {
                    match rec.prev_producer {
                        Some(prev) => {
                            self.producer_of.insert(d, prev);
                        }
                        None => {
                            self.producer_of.remove(&d);
                        }
                    }
                }
            }
        }
        self.stl_pairs.retain(|&(l, s, _)| l < from && s < from);
        self.pending.retain(|c| match c {
            Check::Broadcast { producer, .. } => *producer < from,
            Check::RenameClear { seq } => *seq < from,
            Check::MemInferable { producer, .. } => *producer < from,
            Check::StoreDrain { store_seq, .. } => *store_seq < from,
        });
    }

    fn eval_inst(inst: &Inst, pc: u64, src_vals: &[Option<u64>]) -> Option<u64> {
        Some(match *inst {
            Inst::MovImm { imm, .. } => imm as u64,
            Inst::Mov { .. } => src_vals.first().copied().flatten()?,
            Inst::Alu { op, .. } => op.eval(src_vals[0]?, src_vals[1]?),
            Inst::AluImm { op, imm, .. } => op.eval(src_vals[0]?, imm as u64),
            Inst::Call { .. } | Inst::CallInd { .. } => pc + 1,
            _ => return None,
        })
    }

    /// Inverse of an invertible consumer: recover the unknown source from
    /// the known output and remaining inputs.
    fn invert_inst(
        inst: &Inst,
        dest_val: u64,
        src_vals: &[Option<u64>],
        unknown_idx: usize,
    ) -> Option<u64> {
        match *inst {
            Inst::Mov { .. } => Some(dest_val),
            Inst::AluImm { op: AluOp::Add, imm, .. } => Some(dest_val.wrapping_sub(imm as u64)),
            Inst::AluImm { op: AluOp::Sub, imm, .. } => Some(dest_val.wrapping_add(imm as u64)),
            Inst::AluImm { op: AluOp::Xor, imm, .. } => Some(dest_val ^ imm as u64),
            Inst::Alu { op: AluOp::Add, .. } => {
                Some(dest_val.wrapping_sub(src_vals[1 - unknown_idx]?))
            }
            Inst::Alu { op: AluOp::Sub, .. } => {
                if unknown_idx == 0 {
                    Some(dest_val.wrapping_add(src_vals[1]?))
                } else {
                    Some(src_vals[0]?.wrapping_sub(dest_val))
                }
            }
            Inst::Alu { op: AluOp::Xor, .. } => Some(dest_val ^ src_vals[1 - unknown_idx]?),
            _ => None,
        }
    }

    fn src_vals(&self, rec: &Recorded) -> Vec<Option<u64>> {
        rec.srcs.iter().map(|s| s.and_then(|r| self.lookup_full(r))).collect()
    }

    /// Whether `producer`'s register still holds that dynamic value (so it
    /// can be observed through the PRF). Values overwritten by newer
    /// renames can only be justified structurally.
    fn observable(&self, producer: Seq, dest: PhysReg) -> bool {
        self.producer_of.get(&dest) == Some(&producer)
    }

    /// Attempts one pending check. `Ok(Some(..))` = justified (knowledge to
    /// record), `Ok(None)` = not resolvable yet, `Err` = violation.
    fn try_check(
        &self,
        check: &Check,
        value_of: &impl Fn(PhysReg) -> Option<u64>,
    ) -> Result<Option<(Seq, Known)>, String> {
        match *check {
            Check::MemInferable { addr, bytes, producer } => {
                let Some(k) = self.known.get(&producer).copied() else {
                    return Err(format!(
                        "mem range {addr:#x}+{bytes}: proving value (seq {producer}) unknown"
                    ));
                };
                for i in 0..bytes.min(8) {
                    if k.byte(i).is_none() {
                        return Err(format!(
                            "mem range {addr:#x}+{bytes}: byte {i} of seq {producer} unknown"
                        ));
                    }
                }
                Ok(Some((producer, k)))
            }
            Check::StoreDrain { store_seq, addr, data_idx, public_mask } => {
                let Some(rec) = self.insts.get(&store_seq) else {
                    // Store pruned from the window: cannot re-check.
                    return Ok(Some((store_seq, Known::default())));
                };
                let Some(data_ref) = rec.srcs.get(data_idx).copied().flatten() else {
                    return Err(format!("store @{addr:#x}: missing data operand"));
                };
                let Some(k) = self.lookup(data_ref) else {
                    return Err(format!(
                        "store @{addr:#x}: bytes public but data {data_ref:?} unknown"
                    ));
                };
                for i in 0..8u64 {
                    if (public_mask >> i) & 1 == 1 && k.byte(i).is_none() {
                        return Err(format!(
                            "store @{addr:#x}: byte {i} public but unknown in {data_ref:?}"
                        ));
                    }
                }
                Ok(Some((store_seq, k)))
            }
            Check::RenameClear { seq } => {
                let Some(rec) = self.insts.get(&seq) else { return Ok(None) };
                let Some(dest) = rec.dest else { return Ok(None) };
                let src_vals = self.src_vals(rec);
                let computed = Self::eval_inst(&rec.inst, rec.pc, &src_vals);
                if !self.observable(seq, dest) {
                    // Overwritten before observation: structural check only.
                    return match computed {
                        Some(v) => Ok(Some((seq, Known::full(v)))),
                        None => Err(format!(
                            "rename-clear {seq}: cannot compute {} from attacker knowledge",
                            rec.inst
                        )),
                    };
                }
                let Some(actual) = value_of(dest) else { return Ok(None) };
                match computed {
                    Some(v) if v == actual => Ok(Some((seq, Known::full(actual)))),
                    Some(v) => Err(format!(
                        "rename-clear {seq}: computed {v:#x} != actual {actual:#x} for {}",
                        rec.inst
                    )),
                    None => Err(format!(
                        "rename-clear {seq}: cannot compute {} from attacker knowledge",
                        rec.inst
                    )),
                }
            }
            Check::Broadcast { producer, kind, phys } => {
                self.check_broadcast(producer, kind, value_of).map_err(|e| format!("{e} (p{phys})"))
            }
        }
    }

    fn check_broadcast(
        &self,
        producer: Seq,
        kind: UntaintKind,
        value_of: &impl Fn(PhysReg) -> Option<u64>,
    ) -> Result<Option<(Seq, Known)>, String> {
        let Some(rec) = self.insts.get(&producer) else {
            // Producer pruned from the window: accept axiomatic kinds only.
            return match kind {
                UntaintKind::DeclassifyTransmit | UntaintKind::DeclassifyBranch => {
                    Ok(Some((producer, Known::default())))
                }
                _ => Err(format!("{kind} seq {producer}: producer left the window")),
            };
        };
        let Some(dest) = rec.dest else {
            return Err(format!("{kind} seq {producer}: producer has no destination"));
        };
        let observable = self.observable(producer, dest);
        let actual = if observable {
            match value_of(dest) {
                Some(v) => Some(v),
                None => return Ok(None), // value not architecturally ready yet
            }
        } else {
            None
        };
        let accept = |v: u64| -> Result<Option<(Seq, Known)>, String> {
            match actual {
                Some(a) if a != v => {
                    Err(format!("{kind} seq {producer}: derived {v:#x} != actual {a:#x}"))
                }
                _ => Ok(Some((producer, Known::full(v)))),
            }
        };

        match kind {
            UntaintKind::LoadImm => match Self::eval_inst(&rec.inst, rec.pc, &[None, None, None]) {
                Some(v) => accept(v),
                None => Err(format!("load-imm seq {producer}: {} is not a constant", rec.inst)),
            },
            UntaintKind::DeclassifyTransmit | UntaintKind::DeclassifyBranch => {
                // Axiom — but the value must really be a leaking operand of
                // some recorded transmitter/control-flow instruction.
                let justified = self.insts.values().any(|r| {
                    (r.inst.is_transmitter()
                        || r.inst.is_control_flow()
                        || r.inst.is_variable_time())
                        && r.inst.sources().iter().enumerate().any(|(i, (_, role))| {
                            role.leaks_at_vp()
                                && r.srcs[i].is_some_and(|s| s.producer == Some(producer))
                        })
                });
                if justified {
                    Ok(Some((producer, actual.map(Known::full).unwrap_or_default())))
                } else {
                    Err(format!(
                        "declassify seq {producer}: not an operand of any transmitter/branch"
                    ))
                }
            }
            UntaintKind::Forward => {
                let src_vals = self.src_vals(rec);
                match Self::eval_inst(&rec.inst, rec.pc, &src_vals) {
                    Some(v) => accept(v),
                    None => Err(format!(
                        "forward seq {producer}: {} not computable from knowledge",
                        rec.inst
                    )),
                }
            }
            UntaintKind::Backward => {
                for (&cseq, consumer) in &self.insts {
                    let Some(dest_val) =
                        self.known.get(&cseq).filter(|k| k.is_full()).map(|k| k.value)
                    else {
                        continue;
                    };
                    for i in 0..3 {
                        if consumer.srcs[i].is_none_or(|s| s.producer != Some(producer)) {
                            continue;
                        }
                        let src_vals = self.src_vals(consumer);
                        if let Some(v) = Self::invert_inst(&consumer.inst, dest_val, &src_vals, i) {
                            if actual.is_none_or(|a| a == v) {
                                return Ok(Some((producer, Known::full(v))));
                            }
                        }
                    }
                }
                Err(format!("backward seq {producer}: no invertible justification"))
            }
            UntaintKind::StlForward => {
                for &(l, s, data_idx) in &self.stl_pairs {
                    if l != producer {
                        continue;
                    }
                    let (Some(lr), Some(sr)) = (self.insts.get(&l), self.insts.get(&s)) else {
                        continue;
                    };
                    let Some(data) =
                        sr.srcs.get(data_idx).copied().flatten().and_then(|r| self.lookup_full(r))
                    else {
                        continue;
                    };
                    let (Some(la), Some(sa)) = (lr.addr, sr.addr) else { continue };
                    let shifted = data >> (8 * (la - sa));
                    let bytes = match lr.inst {
                        Inst::Load { size, .. } => size.bytes(),
                        _ => 8,
                    };
                    let masked =
                        if bytes == 8 { shifted } else { shifted & ((1u64 << (8 * bytes)) - 1) };
                    if actual.is_none_or(|a| a == masked) {
                        return Ok(Some((producer, Known::full(masked))));
                    }
                }
                Err(format!("stl-forward seq {producer}: no public forwarding pair"))
            }
            UntaintKind::StlBackward => {
                // `producer` here is the *store data* value revealed by the
                // load's output under STLPublic.
                for &(l, s, data_idx) in &self.stl_pairs {
                    let (Some(lr), Some(sr)) = (self.insts.get(&l), self.insts.get(&s)) else {
                        continue;
                    };
                    if sr.srcs.get(data_idx).copied().flatten().map(|r| r.producer)
                        != Some(Some(producer))
                    {
                        continue;
                    }
                    let Some(out) = self.known.get(&l).filter(|k| k.is_full()) else { continue };
                    let (Some(la), Some(sa)) = (lr.addr, sr.addr) else { continue };
                    let lbytes = match lr.inst {
                        Inst::Load { size, .. } => size.bytes(),
                        _ => 8,
                    };
                    let sbytes = match sr.inst {
                        Inst::Store { size, .. } => size.bytes(),
                        _ => 8,
                    };
                    // The load reveals the store data when it reads the
                    // whole stored range from the same base.
                    if la == sa && lbytes >= sbytes {
                        let v = if sbytes == 8 {
                            out.value
                        } else {
                            out.value & ((1u64 << (8 * sbytes)) - 1)
                        };
                        // The store data register may hold more than the
                        // stored bytes; only those bytes are revealed.
                        let mut mask = 0u8;
                        for b in 0..sbytes {
                            mask |= 1 << b;
                        }
                        if actual.is_none_or(|a| sbytes == 8 && a == v || sbytes < 8) {
                            return Ok(Some((producer, Known { value: v, mask })));
                        }
                    }
                }
                Err(format!("stl-backward seq {producer}: no public forwarding pair"))
            }
            UntaintKind::ShadowL1 | UntaintKind::ShadowMem => {
                let Some(addr) = rec.addr else {
                    return Err(format!("shadow seq {producer}: producing load has no address"));
                };
                let bytes = match rec.inst {
                    Inst::Load { size, .. } => size.bytes(),
                    _ => return Err(format!("shadow seq {producer}: producer is not a load")),
                };
                let mut v = 0u64;
                for i in 0..bytes {
                    match self.known_mem.get(&(addr + i)) {
                        Some(&b) => v |= (b as u64) << (8 * i),
                        None => {
                            return Err(format!(
                                "shadow seq {producer}: byte {:#x} not attacker-known",
                                addr + i
                            ))
                        }
                    }
                }
                accept(v)
            }
        }
    }

    /// Resolves pending checks whose values are now available; call once
    /// per cycle with a reader for ready physical registers.
    pub fn drain(&mut self, value_of: impl Fn(PhysReg) -> Option<u64>) {
        loop {
            let mut progressed = false;
            let mut i = 0;
            while i < self.pending.len() {
                let check = self.pending[i].clone();
                match self.try_check(&check, &value_of) {
                    Ok(Some((seq, knowledge))) => {
                        if let Check::Broadcast { kind, .. } = check {
                            self.accepted_log.push((seq, kind));
                        }
                        match check {
                            Check::MemInferable { addr, bytes, .. } => {
                                for b in 0..bytes.min(8) {
                                    if let Some(byte) = knowledge.byte(b) {
                                        self.known_mem.insert(addr + b, byte);
                                    }
                                }
                            }
                            Check::StoreDrain { addr, public_mask, .. } => {
                                for b in 0..8u64 {
                                    if (public_mask >> b) & 1 == 1 {
                                        if let Some(byte) = knowledge.byte(b) {
                                            self.known_mem.insert(addr + b, byte);
                                        }
                                    }
                                }
                            }
                            _ => {
                                if knowledge.mask != 0 {
                                    self.known.insert(seq, knowledge);
                                }
                            }
                        }
                        self.checks_passed += 1;
                        self.pending.swap_remove(i);
                        progressed = true;
                    }
                    Ok(None) => i += 1,
                    Err(_) => i += 1, // maybe resolvable later; final pass reports
                }
            }
            if !progressed {
                break;
            }
        }
    }

    /// Diagnostic: explains the knowledge status of a recorded instruction
    /// and its source ancestry (used when debugging violations).
    pub fn explain(&self, seq: Seq, depth: usize) -> String {
        let mut out = String::new();
        let indent = "  ".repeat(depth);
        let Some(rec) = self.insts.get(&seq) else {
            return format!("{indent}seq {seq}: <not recorded>\n");
        };
        let k = self.known.get(&seq);
        out.push_str(&format!("{indent}seq {seq}: {} @pc{} known={:?}\n", rec.inst, rec.pc, k));
        if depth < 6 {
            for s in rec.srcs.iter().flatten() {
                match s.producer {
                    Some(p) => out.push_str(&self.explain(p, depth + 1)),
                    None => out.push_str(&format!(
                        "{}p{}: <initial architectural state>\n",
                        "  ".repeat(depth + 1),
                        s.phys
                    )),
                }
            }
        }
        out
    }

    /// Final sweep at end of run: anything still unjustifiable whose value
    /// exists is a violation.
    pub fn finish(&mut self, value_of: impl Fn(PhysReg) -> Option<u64>) {
        self.drain(&value_of);
        let pending = std::mem::take(&mut self.pending);
        for check in pending {
            match self.try_check(&check, &value_of) {
                Ok(Some(_)) | Ok(None) => {}
                Err(msg) => self.violate(msg),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_isa::{AluOp, MemSize, Reg};

    fn load(rd: Reg, base: Reg) -> Inst {
        Inst::Load { rd, base, index: Reg::R0, scale: 0, offset: 0, size: MemSize::B8 }
    }

    fn add(rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        Inst::Alu { op: AluOp::Add, rd, rs1, rs2 }
    }

    /// Forward justification: the attacker recomputes `f(srcs)` and accepts
    /// only a matching value.
    #[test]
    fn forward_justification_checks_the_value() {
        let mut v = SecurityValidator::new();
        // seq 1: movi p5, 10 (public at rename).
        v.on_rename(1, 0, Inst::MovImm { rd: Reg::R5, imm: 10 }, [None, None, None], Some(5), true);
        // seq 2: movi p6, 32.
        v.on_rename(2, 1, Inst::MovImm { rd: Reg::R6, imm: 32 }, [None, None, None], Some(6), true);
        // seq 3: p7 = p5 + p6 — forward-broadcast as public.
        v.on_rename(3, 2, add(Reg::R7, Reg::R5, Reg::R6), [Some(5), Some(6), None], Some(7), false);
        v.on_broadcast(7, UntaintKind::Forward);
        v.finish(|p| match p {
            5 => Some(10),
            6 => Some(32),
            7 => Some(42),
            _ => None,
        });
        assert!(v.violations().is_empty(), "{:?}", v.violations());
        assert!(v.checks_passed() >= 3);
    }

    /// A forward broadcast with a wrong value (planted corruption) is
    /// flagged.
    #[test]
    fn forward_justification_rejects_wrong_values() {
        let mut v = SecurityValidator::new();
        v.on_rename(1, 0, Inst::MovImm { rd: Reg::R5, imm: 10 }, [None, None, None], Some(5), true);
        v.on_rename(2, 1, Inst::MovImm { rd: Reg::R6, imm: 32 }, [None, None, None], Some(6), true);
        v.on_rename(3, 2, add(Reg::R7, Reg::R5, Reg::R6), [Some(5), Some(6), None], Some(7), false);
        v.on_broadcast(7, UntaintKind::Forward);
        v.finish(|p| match p {
            5 => Some(10),
            6 => Some(32),
            7 => Some(99), // corrupted: 10 + 32 != 99
            _ => None,
        });
        assert!(!v.violations().is_empty());
    }

    /// Backward justification: the unknown addend is recovered by
    /// inverting a consumer whose output and other input are known.
    #[test]
    fn backward_justification_inverts_the_consumer() {
        let mut v = SecurityValidator::new();
        // p5 = secret (load, no knowledge).
        v.on_rename(1, 0, load(Reg::R5, Reg::R1), [Some(1), None, None], Some(5), false);
        v.on_mem_addr(1, 0x100);
        // p6 = movi 7 (public).
        v.on_rename(2, 1, Inst::MovImm { rd: Reg::R6, imm: 7 }, [None, None, None], Some(6), true);
        // p7 = p5 + p6; p7 later used as a load address and declassified.
        v.on_rename(3, 2, add(Reg::R7, Reg::R5, Reg::R6), [Some(5), Some(6), None], Some(7), false);
        v.on_rename(4, 3, load(Reg::R8, Reg::R7), [Some(7), None, None], Some(8), false);
        v.on_mem_addr(4, 107);
        v.on_broadcast(7, UntaintKind::DeclassifyTransmit); // addr operand at VP
        v.on_broadcast(5, UntaintKind::Backward); // p5 = p7 - p6 = 100
        v.finish(|p| match p {
            5 => Some(100),
            6 => Some(7),
            7 => Some(107),
            _ => None,
        });
        assert!(v.violations().is_empty(), "{:?}", v.violations());
    }

    /// A declassification of a value that never fed any transmitter or
    /// branch is unjustifiable.
    #[test]
    fn unfounded_declassification_is_flagged() {
        let mut v = SecurityValidator::new();
        v.on_rename(1, 0, load(Reg::R5, Reg::R1), [Some(1), None, None], Some(5), false);
        // p5 never appears as a leak-role operand anywhere.
        v.on_broadcast(5, UntaintKind::DeclassifyTransmit);
        v.finish(|_| Some(0));
        assert!(!v.violations().is_empty());
    }

    /// Squash rolls back register mappings so later broadcasts attribute to
    /// the surviving producer.
    #[test]
    fn squash_rolls_back_value_identity() {
        let mut v = SecurityValidator::new();
        // seq 1 writes p5 (movi 10).
        v.on_rename(1, 0, Inst::MovImm { rd: Reg::R5, imm: 10 }, [None, None, None], Some(5), true);
        // Wrong path: seq 2 overwrites p5's identity.
        v.on_rename(2, 1, load(Reg::R5, Reg::R1), [Some(1), None, None], Some(5), false);
        v.on_squash(2);
        // A transmitter uses p5; at broadcast time the identity must be
        // seq 1 again.
        v.on_rename(3, 2, load(Reg::R9, Reg::R5), [Some(5), None, None], Some(9), false);
        v.on_mem_addr(3, 10);
        v.on_broadcast(5, UntaintKind::DeclassifyTransmit);
        v.finish(|p| match p {
            5 => Some(10),
            _ => None,
        });
        assert!(v.violations().is_empty(), "{:?}", v.violations());
    }

    /// Shadow justification requires the memory bytes to be known.
    #[test]
    fn shadow_requires_known_memory() {
        let mut v = SecurityValidator::new();
        // A store of a known value makes the bytes known.
        v.on_rename(
            1,
            0,
            Inst::MovImm { rd: Reg::R2, imm: 0xab },
            [None, None, None],
            Some(2),
            true,
        );
        v.on_rename(
            2,
            1,
            Inst::Store {
                src: Reg::R2,
                base: Reg::R3,
                index: Reg::R0,
                scale: 0,
                offset: 0,
                size: MemSize::B8,
            },
            [Some(3), Some(2), None],
            None,
            false,
        );
        v.on_store_drain(2, 0x2000, 8, 1, 0xff);
        // A later load of those bytes broadcast as shadow-public.
        v.on_rename(3, 2, load(Reg::R6, Reg::R4), [Some(4), None, None], Some(6), false);
        v.on_mem_addr(3, 0x2000);
        v.on_broadcast(6, UntaintKind::ShadowL1);
        v.finish(|p| match p {
            2 => Some(0xab),
            6 => Some(0xab),
            _ => None,
        });
        assert!(v.violations().is_empty(), "{:?}", v.violations());

        // Without the store, the same broadcast is a violation.
        let mut v = SecurityValidator::new();
        v.on_rename(3, 2, load(Reg::R6, Reg::R4), [Some(4), None, None], Some(6), false);
        v.on_mem_addr(3, 0x2000);
        v.on_broadcast(6, UntaintKind::ShadowL1);
        v.finish(|p| (p == 6).then_some(0xab));
        assert!(!v.violations().is_empty());
    }
}
