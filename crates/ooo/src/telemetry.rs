//! Opt-in run telemetry: per-cycle structure occupancy and SPT latency
//! distributions.
//!
//! A [`Telemetry`] block is carried by the machine as an
//! `Option<Box<Telemetry>>`: disabled runs pay one null test per cycle and
//! nothing else. Telemetry only *reads* simulator state (occupancy counts,
//! broadcast events), never feeds back, so enabling it cannot change cycle
//! counts or attacker-observation digests.

use spt_core::PhysReg;
use spt_util::{Histogram, Json, Log2Histogram};

/// Histograms accumulated over a run when telemetry is enabled.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// ROB entries in flight, sampled once per cycle.
    pub rob_occupancy: Histogram,
    /// Reservation-station slots in use, sampled once per cycle.
    pub rs_occupancy: Histogram,
    /// Load-queue slots in use, sampled once per cycle.
    pub lq_occupancy: Histogram,
    /// Store-queue slots in use, sampled once per cycle.
    pub sq_occupancy: Histogram,
    /// L1D misses outstanding (MSHR utilization), sampled once per cycle.
    pub mshr_inflight: Histogram,
    /// Cycles from a register being born tainted at rename to its untaint
    /// broadcast (registers that die tainted are not counted).
    pub taint_latency: Log2Histogram,
    /// Per-transmitter total cycles blocked by the protection gate
    /// (recorded at retire; zero-delay transmitters are included so the
    /// distribution has a baseline).
    pub xmit_delay: Log2Histogram,
    /// Per-physical-register taint birth cycle + 1 (0 = not tainted),
    /// feeding `taint_latency`.
    taint_born: Vec<u64>,
}

impl Telemetry {
    /// Creates an empty telemetry block for a machine with `num_phys`
    /// physical registers.
    pub fn new(num_phys: usize) -> Telemetry {
        Telemetry {
            rob_occupancy: Histogram::new(8),
            rs_occupancy: Histogram::new(4),
            lq_occupancy: Histogram::new(2),
            sq_occupancy: Histogram::new(2),
            mshr_inflight: Histogram::new(1),
            taint_latency: Log2Histogram::new(),
            xmit_delay: Log2Histogram::new(),
            taint_born: vec![0; num_phys],
        }
    }

    /// Notes that `phys` was born tainted at `cycle`.
    pub fn on_taint(&mut self, phys: PhysReg, cycle: u64) {
        if let Some(slot) = self.taint_born.get_mut(phys as usize) {
            *slot = cycle + 1;
        }
    }

    /// Notes that `phys` was untainted at `cycle`, recording the
    /// taint-to-untaint latency if the birth was seen.
    pub fn on_untaint(&mut self, phys: PhysReg, cycle: u64) {
        if let Some(slot) = self.taint_born.get_mut(phys as usize) {
            if *slot > 0 {
                self.taint_latency.record(cycle.saturating_sub(*slot - 1));
                *slot = 0;
            }
        }
    }

    /// Notes that `phys` was rolled back by a squash while still tainted —
    /// its birth no longer corresponds to a live register.
    pub fn on_squash_reg(&mut self, phys: PhysReg) {
        if let Some(slot) = self.taint_born.get_mut(phys as usize) {
            *slot = 0;
        }
    }

    /// Renders every histogram as one JSON object (the `telemetry` section
    /// of the stats document).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rob_occupancy", self.rob_occupancy.to_json()),
            ("rs_occupancy", self.rs_occupancy.to_json()),
            ("lq_occupancy", self.lq_occupancy.to_json()),
            ("sq_occupancy", self.sq_occupancy.to_json()),
            ("mshr_inflight", self.mshr_inflight.to_json()),
            ("taint_to_untaint_cycles", self.taint_latency.to_json()),
            ("transmitter_delay_cycles", self.xmit_delay.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taint_latency_measures_birth_to_broadcast() {
        let mut t = Telemetry::new(8);
        t.on_taint(3, 10);
        t.on_untaint(3, 25);
        assert_eq!(t.taint_latency.samples(), 1);
        assert_eq!(t.taint_latency.max(), 15);
        // A second untaint of the same register without a rebirth is a
        // no-op.
        t.on_untaint(3, 30);
        assert_eq!(t.taint_latency.samples(), 1);
    }

    #[test]
    fn squashed_registers_do_not_pollute_latency() {
        let mut t = Telemetry::new(8);
        t.on_taint(2, 5);
        t.on_squash_reg(2);
        t.on_untaint(2, 1000);
        assert_eq!(t.taint_latency.samples(), 0);
    }

    #[test]
    fn out_of_range_phys_ignored() {
        let mut t = Telemetry::new(4);
        t.on_taint(100, 1);
        t.on_untaint(100, 2);
        assert_eq!(t.taint_latency.samples(), 0);
    }

    #[test]
    fn json_has_all_sections() {
        let t = Telemetry::new(4);
        let j = t.to_json();
        for key in [
            "rob_occupancy",
            "rs_occupancy",
            "lq_occupancy",
            "sq_occupancy",
            "mshr_inflight",
            "taint_to_untaint_cycles",
            "transmitter_delay_cycles",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
    }
}
