//! The out-of-order machine: fetch → rename → issue → execute → resolve →
//! retire, with SPT / STT / baseline protection hooks.
//!
//! # Stage ordering
//!
//! Each [`Machine::step_cycle`] processes stages in reverse pipeline order
//! so that information never flows through more than one stage per cycle:
//! visibility-point update, retire, untaint propagation, writeback,
//! resolution, issue/execute, rename/dispatch, fetch.
//!
//! # Protection semantics (paper §6)
//!
//! * **Transmitters** (loads and stores, §9.1) may only issue when the
//!   protection policy allows: always (Unsafe), at the VP (SecureBaseline),
//!   when their leaking operands are untainted or at the VP (SPT), or when
//!   their operands are not s-tainted (STT).
//! * **Branch-resolution effects** (redirect/squash, and the confirmation
//!   that unblocks the VP of younger instructions) are deferred until the
//!   predicate/target is untainted or the branch reaches the VP — STT's
//!   implicit-channel rule, inherited by SPT (§6.4). Wrong-path
//!   instructions keep fetching and executing (under protection) in the
//!   meantime.
//! * **Predictor state** is only ever trained at retire, with resolved
//!   (hence declassified) outcomes, so tainted data never reaches it.
//! * **Store-to-load forwarding** always performs the cache access under
//!   protection, and untaint propagates across a forwarding pair only once
//!   `STLPublic` holds (§6.7). Memory-dependence-violation squashes are
//!   likewise deferred until the implicit branch is public.

use crate::config::CoreConfig;
use crate::rename::RegisterFile;
use crate::rob::{ExecState, RobEntry};
use crate::sched::{RetiredLoadTable, Scheduler};
use crate::stats::{MachineStats, RunOutcome, SimError, StopReason};
use crate::telemetry::Telemetry;
use crate::validate::SecurityValidator;
use spt_core::{
    Config, ProtectionKind, RenameInfo, Seq, ShadowTaint, StlCondition, SttTracker, TaintEngine,
    TaintMask, UntaintKind,
};
use spt_frontend::{Checkpoint, FetchPrediction, Frontend, PredictInfo};
use spt_isa::{Inst, Program, Reg};
use spt_mem::{Cache, HierarchyConfig, Level, MemSystem, Tlb};
use spt_util::{InstRecord, SptTraceEvent, TraceHandle, TraceSink};
use std::cmp::Reverse;
use std::collections::VecDeque;

/// O(1) seq → ROB index. The ROB is sorted by seq but squashes leave gaps,
/// so index arithmetic alone is not enough; this keeps a sequence-keyed
/// window over the in-flight range mapping each seq to its *absolute*
/// dispatch position (stable under `pop_front`), from which the current
/// physical index is `abs - popped`. The window only ever grows at the back
/// (dispatch), shrinks at the front (retire), and truncates (squash) —
/// mirroring the only three ways the ROB itself mutates.
#[derive(Clone, Debug, Default)]
struct RobIndex {
    /// Seq corresponding to `win[0]` (meaningful while `win` is non-empty).
    base: Seq,
    /// Absolute dispatch position per seq; `u64::MAX` marks a squash gap.
    win: VecDeque<u64>,
    /// Entries retired off the ROB front so far.
    popped: u64,
    /// Entries ever dispatched (the next absolute position).
    pushed: u64,
}

impl RobIndex {
    const GAP: u64 = u64::MAX;

    fn get(&self, seq: Seq) -> Option<usize> {
        let off = seq.checked_sub(self.base)?;
        match self.win.get(off as usize) {
            Some(&abs) if abs != Self::GAP => Some((abs - self.popped) as usize),
            _ => None,
        }
    }

    /// Records a dispatch; seqs are strictly increasing, so any skipped
    /// range (a squashed suffix refetched under fresh seqs) becomes gaps.
    fn push(&mut self, seq: Seq) {
        if self.win.is_empty() {
            self.base = seq;
        }
        while self.base + (self.win.len() as u64) < seq {
            self.win.push_back(Self::GAP);
        }
        self.win.push_back(self.pushed);
        self.pushed += 1;
    }

    /// Records the head retiring, then sheds any leading gaps.
    fn pop_front(&mut self) {
        let abs = self.win.pop_front().expect("retired head is indexed");
        debug_assert_eq!(abs, self.popped);
        self.base += 1;
        self.popped += 1;
        while let Some(&Self::GAP) = self.win.front() {
            self.win.pop_front();
            self.base += 1;
        }
    }

    /// Drops every seq younger than `seq` (suffix squash). Rolls `pushed`
    /// back so absolute positions stay contiguous over the surviving
    /// entries — the invariant `physical = abs - popped` depends on it.
    fn squash_after(&mut self, seq: Seq) {
        let keep = (seq + 1).saturating_sub(self.base);
        if keep == 0 {
            self.win.clear();
        } else if (keep as usize) < self.win.len() {
            self.win.truncate(keep as usize);
        }
        while let Some(&Self::GAP) = self.win.back() {
            self.win.pop_back();
        }
        self.pushed = match self.win.back() {
            Some(&abs) => abs + 1,
            None => self.popped,
        };
    }
}

/// Limits for [`Machine::run`].
#[derive(Clone, Copy, Debug)]
pub struct RunLimits {
    /// Stop after this many cycles.
    pub max_cycles: u64,
    /// Stop once this many instructions have retired.
    pub max_retired: u64,
}

impl Default for RunLimits {
    fn default() -> RunLimits {
        RunLimits { max_cycles: u64::MAX, max_retired: u64::MAX }
    }
}

impl RunLimits {
    /// Limit by retired instructions only.
    pub fn retired(n: u64) -> RunLimits {
        RunLimits { max_retired: n, ..RunLimits::default() }
    }

    /// Limit by cycles only.
    pub fn cycles(n: u64) -> RunLimits {
        RunLimits { max_cycles: n, ..RunLimits::default() }
    }
}

#[derive(Clone, Debug)]
struct Fetched {
    pc: u64,
    inst: Inst,
    checkpoint: Checkpoint,
    pred_next: u64,
    pred_taken: bool,
    pred_info: Option<PredictInfo>,
    fetch_cycle: u64,
}

/// The simulated machine.
///
/// # Example
///
/// ```
/// use spt_ooo::{CoreConfig, Machine, RunLimits};
/// use spt_core::{Config, ThreatModel};
/// use spt_isa::asm::Assembler;
/// use spt_isa::Reg;
///
/// let mut a = Assembler::new();
/// a.mov_imm(Reg::R1, 2);
/// a.mov_imm(Reg::R2, 40);
/// a.add(Reg::R3, Reg::R1, Reg::R2);
/// a.halt();
/// let p = a.assemble()?;
///
/// let mut m = Machine::new(p, CoreConfig::default(),
///                          Config::spt_full(ThreatModel::Futuristic));
/// let out = m.run(RunLimits::default())?;
/// assert_eq!(m.reg(Reg::R3), 42);
/// assert_eq!(out.retired, 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Machine {
    core: CoreConfig,
    prot: Config,
    program: Program,
    mem: MemSystem,
    fe: Frontend,
    rf: RegisterFile,
    rob: VecDeque<RobEntry>,
    rob_pos: RobIndex,
    fetch_q: VecDeque<Fetched>,
    engine: Option<TaintEngine>,
    stt: Option<SttTracker>,
    shadow: ShadowTaint,
    fetch_pc: u64,
    fetch_stalled: bool,
    next_seq: Seq,
    cycle: u64,
    halted: bool,
    rs_used: usize,
    lq_used: usize,
    sq_used: usize,
    stats: MachineStats,
    last_retire_cycle: u64,
    /// Recently retired, non-forwarded loads whose output register may
    /// still be declassified by an in-flight consumer's visibility point.
    /// When a broadcast untaints such an output, the §6.8 load rule ②
    /// applies (paper §8, proof case 3): the load is non-speculative, its
    /// address is public, so the read bytes become inferable.
    retired_loads: RetiredLoadTable,
    /// Event-driven scheduler bookkeeping: wakeup lists, ready queue,
    /// completion heap, candidate index sets and the VP cursor (see
    /// `sched` module docs). Pure acceleration structures over the ROB.
    sched: Scheduler,
    /// Optional §8 model attacker cross-checking every untaint decision.
    validator: Option<SecurityValidator>,
    /// L1 instruction cache (Table 1: 32 KiB, 4-way, 2-cycle). Instructions
    /// are 8 bytes, so a 64-byte line holds 8 of them. Misses stall fetch
    /// for an L2-hit latency (code is assumed L2-resident).
    icache: Cache,
    ifetch_stall_until: u64,
    last_fetch_line: u64,
    /// Data TLB: 64 entries, 4-way, 30-cycle page walk. Translation happens
    /// at issue time, so the §7.4 rule "delaying execution (including TLB
    /// accesses, etc.)" is covered by the transmitter gate.
    dtlb: Tlb,
    /// Worst-case memory latency, used by the SDO oblivious policy.
    worst_mem_latency: u64,
    /// Rolling digest of `(pc, cycle)` for every retired transmitter — the
    /// retire-timing side of the attacker observation (a transmitter's
    /// completion time is exactly what a contention/timing attacker
    /// measures). Folded into [`Machine::observation_digest`].
    transmit_obs: spt_util::Fnv64,
    /// Pipeline trace probe: a null test when disabled, an O3PipeView (or
    /// test) sink when attached. Never read by any stage, so it cannot
    /// affect timing. Cloning the machine yields a disabled handle.
    trace: TraceHandle,
    /// Per-physical-register producer seq of the live taint episode, so
    /// `Untaint` trace events can name the instruction whose output they
    /// declassify. Written only when a trace sink is attached (grown
    /// lazily from empty) and never read by any stage, so it cannot
    /// affect timing.
    taint_src: Vec<u64>,
    /// Opt-in occupancy/latency histograms; one null test per cycle when
    /// disabled.
    telemetry: Option<Box<Telemetry>>,
}

impl Machine {
    /// Creates a machine with the default (paper Table 1) memory hierarchy.
    pub fn new(program: Program, core: CoreConfig, prot: Config) -> Machine {
        Machine::with_memory(program, core, prot, MemSystem::new(HierarchyConfig::default()))
    }

    /// Creates a machine over a pre-built (possibly pre-initialized) memory
    /// system.
    pub fn with_memory(
        program: Program,
        core: CoreConfig,
        prot: Config,
        mem: MemSystem,
    ) -> Machine {
        let engine = match prot.kind {
            ProtectionKind::Spt => {
                let mut e = TaintEngine::new(prot, core.num_phys);
                // The pinned zero register is architecturally the constant
                // 0, i.e. program text: public under any SPT variant that
                // tracks taint. SecureBaseline deliberately tracks nothing.
                if prot.untaint.forward() {
                    let _ = &mut e; // phys 0 handled below via rename of const
                }
                Some(e)
            }
            _ => None,
        };
        let stt = match prot.kind {
            ProtectionKind::Stt => Some(SttTracker::new(core.num_phys)),
            _ => None,
        };
        let shadow = match prot.kind {
            ProtectionKind::Spt => ShadowTaint::new(prot.shadow),
            _ => ShadowTaint::new(spt_core::ShadowMode::None),
        };
        let mut m = Machine {
            core,
            prot,
            program,
            mem,
            fe: Frontend::new(),
            rf: RegisterFile::new(core.num_phys),
            rob: VecDeque::with_capacity(core.rob_size),
            rob_pos: RobIndex::default(),
            fetch_q: VecDeque::with_capacity(core.fetch_queue),
            engine,
            stt,
            shadow,
            fetch_pc: 0,
            fetch_stalled: false,
            next_seq: 1,
            cycle: 0,
            halted: false,
            rs_used: 0,
            lq_used: 0,
            sq_used: 0,
            stats: MachineStats::default(),
            last_retire_cycle: 0,
            retired_loads: RetiredLoadTable::new(core.num_phys, 128),
            sched: Scheduler::new(core.num_phys),
            validator: None,
            icache: Cache::new(spt_mem::CacheConfig {
                geometry: spt_mem::CacheGeometry {
                    size_bytes: 32 * 1024,
                    assoc: 4,
                    line_bytes: 64,
                },
                hit_latency: 2,
                mshrs: 16,
            }),
            ifetch_stall_until: 0,
            last_fetch_line: u64::MAX,
            dtlb: Tlb::new(64, 4, 30),
            worst_mem_latency: 0,
            transmit_obs: spt_util::Fnv64::new(),
            trace: TraceHandle::disabled(),
            taint_src: Vec::new(),
            telemetry: None,
        };
        {
            let h = m.mem.config();
            m.worst_mem_latency =
                h.l1.hit_latency + h.l2.hit_latency + h.l3.hit_latency + h.dram_latency;
        }
        m.mark_zero_reg_public();
        m
    }

    /// Marks physical register 0 (the architectural constant zero) public:
    /// its value is program text. SecureBaseline tracks no taint, so there
    /// it stays tainted and transmitters wait for the VP regardless.
    fn mark_zero_reg_public(&mut self) {
        if let Some(e) = &mut self.engine {
            if self.prot.untaint.forward() {
                // A synthetic Const rename on phys 0, immediately retired.
                e.rename(RenameInfo {
                    seq: 0,
                    class: spt_isa::InstClass::Const,
                    srcs: [None, None, None],
                    dest: Some(0),
                    load_bytes: None,
                });
                e.retire(0);
            }
        }
    }

    /// The protection configuration.
    pub fn protection(&self) -> &Config {
        &self.prot
    }

    /// Enables the §8 security validator: every subsequent untaint decision
    /// must be independently derivable by the model attacker. Only
    /// meaningful for SPT configurations (the validator models SPT's
    /// semantics).
    pub fn enable_validation(&mut self) {
        if self.engine.is_some() {
            self.validator = Some(SecurityValidator::new());
        }
    }

    /// Attaches a pipeline trace sink. Every subsequently retired or
    /// squashed instruction is reported to it, along with SPT taint/untaint
    /// and delay events. Replaces any previous sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = TraceHandle::new(sink);
    }

    /// Detaches and returns the trace sink, if one was attached. Callers
    /// should [`TraceSink::flush`] it to surface buffered I/O errors.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Enables occupancy/latency telemetry from this point on.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::new(Telemetry::new(self.core.num_phys)));
        }
    }

    /// The telemetry histograms, if [`Machine::enable_telemetry`] was
    /// called.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// L1 instruction-cache statistics.
    pub fn icache_stats(&self) -> &spt_mem::CacheStats {
        self.icache.stats()
    }

    /// Data-TLB hit/miss counters.
    pub fn dtlb_stats(&self) -> (u64, u64) {
        (self.dtlb.hits(), self.dtlb.misses())
    }

    /// Frontend prediction-volume counters.
    pub fn frontend_stats(&self) -> &spt_frontend::FrontendStats {
        self.fe.stats()
    }

    /// Whether the data TLB currently caches `addr`'s page (the TLB-side
    /// attacker observation, paper §2.1).
    pub fn probe_tlb(&self, addr: u64) -> bool {
        self.dtlb.probe(addr)
    }

    /// Whether the shadow taint for the byte at `addr` is (still) tainted —
    /// the persistence check for declared secrets. Always true when no
    /// memory taint is tracked.
    pub fn shadow_byte_tainted(&self, addr: u64) -> bool {
        self.shadow.probe_byte(addr)
    }

    /// Number of live taint-engine slots (diagnostics).
    pub fn engine_live_slots(&self) -> Option<usize> {
        self.engine.as_ref().map(|e| e.live_slots())
    }

    /// Number of tracked recently retired loads (diagnostics; bounded by
    /// the table capacity of 128).
    pub fn retired_loads_live(&self) -> usize {
        self.retired_loads.live()
    }

    /// O(1) seq → current ROB index via the side window; `None` means the
    /// instruction was squashed or retired.
    fn rob_index(&self, seq: Seq) -> Option<usize> {
        let idx = self.rob_pos.get(seq);
        debug_assert_eq!(
            idx,
            self.rob.binary_search_by_key(&seq, |e| e.seq).ok(),
            "side index out of sync for seq {seq}"
        );
        idx
    }

    /// Read access to the validator (diagnostics).
    pub fn validator_ref(&self) -> Option<&SecurityValidator> {
        self.validator.as_ref()
    }

    /// Finalizes and returns the validator's findings: the number of
    /// justified untaint decisions and any Theorem-1 violations.
    pub fn validation_report(&mut self) -> Option<(u64, Vec<String>)> {
        let mut v = self.validator.take()?;
        let rf = &self.rf;
        v.finish(|p| if rf.is_ready(p) { Some(rf.read(p)) } else { None });
        let report = (v.checks_passed(), v.violations().to_vec());
        self.validator = Some(v);
        Some(report)
    }

    /// The memory system (for initialization and attack-receiver probing).
    pub fn mem_mut(&mut self) -> &mut MemSystem {
        &mut self.mem
    }

    /// Read-only memory system access.
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Innermost cache level holding `addr` — the covert-channel receiver.
    pub fn probe(&self, addr: u64) -> Level {
        self.mem.probe(addr)
    }

    /// Architectural register value (meaningful when the pipeline is
    /// drained, i.e. after `run` returns or before it starts).
    pub fn reg(&self, reg: Reg) -> u64 {
        self.rf.arch_read(reg)
    }

    /// Sets an architectural register before the run starts. The value is
    /// treated as tainted program data (paper §6.3: all data starts
    /// tainted).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        self.rf.arch_write(reg, value);
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether `Halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Snapshot of every architectural register, indexed by register
    /// number. Meaningful when the pipeline is drained (after `run` returns
    /// or before it starts) — the differential harness compares this
    /// against the reference interpreter.
    pub fn arch_regs(&self) -> Vec<u64> {
        Reg::all().map(|r| self.rf.arch_read(r)).collect()
    }

    /// Digest of everything a microarchitectural attacker can observe
    /// about this run: the tag state of the data-side cache hierarchy and
    /// the L1I, the data-TLB reach, the retire timing of every transmitter,
    /// total cycles and retired count, and (under SPT) every untaint
    /// decision the taint engine took.
    ///
    /// The relational fuzzing harness runs a program twice with only the
    /// secret bytes varied: under a sound protection this digest must be
    /// identical (the paper's Theorem-1 non-interference claim), while
    /// under UnsafeBaseline a transient secret-indexed access makes it
    /// diverge.
    pub fn observation_digest(&self) -> u64 {
        let mut h = spt_util::Fnv64::new();
        h.write_u64(self.transmit_obs.finish());
        h.write_u64(self.mem.cache_digest());
        h.write_u64(self.icache.state_digest());
        h.write_u64(self.dtlb.state_digest());
        h.write_u64(self.cycle);
        h.write_u64(self.stats.retired);
        h.write_u64(self.stats.squashes);
        if let Some(e) = &self.engine {
            h.write_u64(e.stats().decision_digest());
        }
        h.finish()
    }

    /// Statistics snapshot (includes taint-engine statistics).
    pub fn stats(&self) -> MachineStats {
        let mut s = self.stats.clone();
        s.cycles = self.cycle;
        if let Some(e) = &self.engine {
            s.spt = e.stats().clone();
        }
        s
    }

    /// Runs until `Halt` retires or a limit is hit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no instruction retires for an
    /// implausibly long stretch (a simulator bug, not a program outcome).
    pub fn run(&mut self, limits: RunLimits) -> Result<RunOutcome, SimError> {
        const WATCHDOG: u64 = 100_000;
        while !self.halted {
            if self.cycle >= limits.max_cycles {
                return Ok(self.outcome(StopReason::CycleBudget));
            }
            if self.stats.retired >= limits.max_retired {
                return Ok(self.outcome(StopReason::RetireBudget));
            }
            self.step_cycle();
            if self.cycle - self.last_retire_cycle > WATCHDOG {
                return Err(SimError::Deadlock {
                    cycle: self.cycle,
                    retired: self.stats.retired,
                    head_pc: self.rob.front().map(|e| e.pc),
                });
            }
        }
        Ok(self.outcome(StopReason::Halted))
    }

    fn outcome(&self, reason: StopReason) -> RunOutcome {
        RunOutcome { cycles: self.cycle, retired: self.stats.retired, reason }
    }

    /// Advances the machine by one cycle.
    pub fn step_cycle(&mut self) {
        self.update_vp();
        self.retire();
        self.untaint_step();
        // Resolve validator checks before rename can recycle registers:
        // the attacker observes leaked values when they leak, not later.
        if let Some(mut v) = self.validator.take() {
            let rf = &self.rf;
            v.drain(|p| if rf.is_ready(p) { Some(rf.read(p)) } else { None });
            self.validator = Some(v);
        }
        self.writeback();
        self.resolve();
        self.issue();
        self.rename();
        self.fetch();
        if let Some(mut v) = self.validator.take() {
            let rf = &self.rf;
            v.drain(|p| if rf.is_ready(p) { Some(rf.read(p)) } else { None });
            self.validator = Some(v);
        }
        if let Some(t) = &mut self.telemetry {
            t.rob_occupancy.record(self.rob.len() as u64);
            t.rs_occupancy.record(self.rs_used as u64);
            t.lq_occupancy.record(self.lq_used as u64);
            t.sq_occupancy.record(self.sq_used as u64);
            t.mshr_inflight.record(self.mem.l1().mshrs_in_flight(self.cycle) as u64);
        }
        self.cycle += 1;
    }

    // ------------------------------------------------------------------
    // Visibility point
    // ------------------------------------------------------------------

    /// Advances the visibility-point cursor over entries that have become
    /// "self-ok", marking newly uncovered entries as having reached the
    /// VP, performs VP declassification (§6.6), and advances the STT
    /// frontier.
    ///
    /// Self-ok — whether this entry is non-speculative enough for younger
    /// instructions — is monotone per entry (each conjunct only ever flips
    /// towards ok while the entry lives), and the VP prefix survives both
    /// retirement (head entries leave it) and squashes (only younger
    /// entries are removed), so the persistent cursor visits each entry
    /// O(1) times total instead of once per cycle.
    fn update_vp(&mut self) {
        let futuristic = matches!(self.prot.threat, spt_core::ThreatModel::Futuristic);
        let len = self.rob.len();
        let mut newly_vp = std::mem::take(&mut self.sched.newly_vp);
        newly_vp.clear();

        loop {
            // Entries up to (and including) the cursor are at the VP.
            while self.sched.vp_len < (self.sched.ok_count + 1).min(len) {
                let e = &mut self.rob[self.sched.vp_len];
                debug_assert!(!e.vp);
                e.vp = true;
                e.declassified = true;
                newly_vp.push(e.seq);
                self.sched.vp_len += 1;
            }
            if self.sched.ok_count >= len {
                break;
            }
            // Is this entry itself non-speculative enough for younger
            // instructions? Spectre: only unresolved control flow keeps
            // younger instructions speculative. Futuristic: any incomplete
            // instruction does.
            let e = &self.rob[self.sched.ok_count];
            let self_ok = if futuristic {
                e.completed() && e.resolved && e.mem.pending_violation.is_none()
            } else {
                // Spectre model, augmented for data speculation (paper §8:
                // "a variant of the Spectre model where the VP is augmented
                // to consider data speculation"): a store whose address is
                // still unknown keeps younger instructions speculative,
                // because a memory-order violation could squash them. This
                // makes reaching the VP imply retirement, which the
                // declassification axiom relies on.
                (!e.inst.is_control_flow() || e.resolved)
                    && (!e.is_store() || e.state != ExecState::Waiting)
                    && e.mem.pending_violation.is_none()
            };
            if !self_ok {
                break;
            }
            self.sched.ok_count += 1;
        }
        let frontier = self.sched.ok_count.checked_sub(1).map(|i| self.rob[i].seq);

        if let Some(engine) = &mut self.engine {
            for &seq in &newly_vp {
                engine.declassify_vp(seq);
            }
        }
        if let (Some(stt), Some(f)) = (&mut self.stt, frontier) {
            stt.advance_vp_frontier(f);
        }
        self.sched.newly_vp = newly_vp;
    }

    // ------------------------------------------------------------------
    // Trace emission
    // ------------------------------------------------------------------

    /// Reports a departing instruction (retired or squashed) to the trace
    /// sink. The disassembly string is only formatted when a sink is
    /// attached.
    fn emit_inst(&mut self, e: &RobEntry, retire_cycle: Option<u64>, squash_cycle: Option<u64>) {
        if !self.trace.enabled() {
            return;
        }
        let disasm = e.inst.to_string();
        if let Some(sink) = self.trace.sink() {
            sink.inst(&InstRecord {
                seq: e.seq,
                pc: e.pc,
                disasm: &disasm,
                fetch_cycle: e.timing.fetch_cycle,
                rename_cycle: e.timing.rename_cycle,
                issue_cycle: e.timing.issue_cycle,
                complete_cycle: e.timing.complete_cycle,
                retire_cycle,
                squash_cycle,
            });
        }
    }

    /// Counts a transmitter-slot cycle blocked by the protection gate,
    /// both globally and on the blocked instruction itself.
    fn note_xmit_blocked(&mut self, i: usize) {
        self.stats.transmitter_delay_cycles += 1;
        self.rob[i].timing.xmit_delay_cycles += 1;
        if self.trace.enabled() {
            let (seq, pc, cycle) = (self.rob[i].seq, self.rob[i].pc, self.cycle);
            if let Some(sink) = self.trace.sink() {
                sink.event(cycle, &SptTraceEvent::TransmitterDelayed { seq, pc });
            }
        }
    }

    /// Counts a deferred branch-resolution cycle for the entry at ROB
    /// index `i`.
    fn note_resolution_deferred(&mut self, i: usize) {
        self.stats.resolution_delay_cycles += 1;
        if self.trace.enabled() {
            let (seq, pc, cycle) = (self.rob[i].seq, self.rob[i].pc, self.cycle);
            if let Some(sink) = self.trace.sink() {
                sink.event(cycle, &SptTraceEvent::ResolutionDeferred { seq, pc });
            }
        }
    }

    // ------------------------------------------------------------------
    // Retire
    // ------------------------------------------------------------------

    fn retire(&mut self) {
        for _ in 0..self.core.retire_width {
            let Some(head) = self.rob.front() else { break };
            if !(head.completed() && head.resolved && head.mem.pending_violation.is_none()) {
                break;
            }
            let seq = head.seq;

            if head.is_store() {
                let addr = head.mem.addr.expect("completed store has an address");
                let bytes = head.mem.bytes;
                let value = head.mem.value;
                let data_idx = head.inst.store_data_src().expect("store has data operand");
                let data_mask = self
                    .engine
                    .as_ref()
                    .and_then(|e| e.operand_mask(seq, data_idx))
                    .unwrap_or(TaintMask::ALL);
                match self.mem.write_timed(addr, value, bytes, self.cycle) {
                    Err(_busy) => break, // retry next cycle
                    Ok(out) => {
                        for ev in out.l1_events {
                            self.shadow.on_l1_event(ev);
                        }
                        // §6.8 store rule ①: the written bytes take the data
                        // operand's taint.
                        self.shadow.store(addr, bytes, data_mask);
                        if let Some(v) = self.validator.as_mut() {
                            let mut public_mask = 0u8;
                            for i in 0..bytes.min(8) {
                                if !data_mask.byte_tainted(i) {
                                    public_mask |= 1 << i;
                                }
                            }
                            v.on_store_drain(seq, addr, bytes, data_idx, public_mask);
                        }
                    }
                }
            }

            let head = self.rob.pop_front().expect("head exists");
            self.rob_pos.pop_front();
            // The retired head satisfied the retire condition, which
            // implies self-ok under both threat models, so it was inside
            // the VP cursor's prefix.
            debug_assert!(self.sched.ok_count > 0 && self.sched.vp_len > 0);
            self.sched.ok_count = self.sched.ok_count.saturating_sub(1);
            self.sched.vp_len = self.sched.vp_len.saturating_sub(1);
            if head.is_load() {
                self.sched.loads.remove(&seq);
                self.sched.fwd_loads.remove(&seq);
                self.sched.shadow_wait.remove(&seq);
            }
            if head.is_store() {
                self.sched.stores.remove(&seq);
            }
            self.emit_inst(&head, Some(self.cycle), None);
            if let Some(t) = &mut self.telemetry {
                if head.inst.is_transmitter() {
                    t.xmit_delay.record(head.timing.xmit_delay_cycles);
                }
            }
            if head.inst.is_transmitter() {
                self.transmit_obs.write_u64(head.pc);
                self.transmit_obs.write_u64(self.cycle);
            }
            if head.is_load()
                && head.mem.fwd_from.is_none()
                && head.mem.accessed
                && !matches!(self.prot.shadow, spt_core::ShadowMode::None)
            {
                if let (Some(addr), Some((_, phys, _))) = (head.mem.addr, head.dest) {
                    if self
                        .engine
                        .as_ref()
                        .is_some_and(|e| e.dest_mask(seq).is_some_and(|m| m.is_clear()))
                        || head.mem.range_cleared
                    {
                        // Already public: nothing more to track.
                    } else {
                        self.retired_loads.insert(phys, addr, head.mem.bytes);
                    }
                }
            }
            if head.inst.is_control_flow() {
                let target = head.actual_next.unwrap_or(head.pred_next);
                self.fe.train(
                    head.pc,
                    &head.inst,
                    head.actual_taken,
                    target,
                    head.pred_info.as_ref(),
                );
                if head.inst.is_cond_branch() {
                    self.stats.retired_branches += 1;
                }
            }
            if let Some((_, _new, old)) = head.dest {
                self.rf.release(old);
            }
            if let Some(engine) = &mut self.engine {
                engine.retire(seq);
            }
            if let Some(v) = self.validator.as_mut() {
                v.on_retire(seq);
            }
            if head.is_load() {
                self.lq_used -= 1;
            }
            if head.is_store() {
                self.sq_used -= 1;
            }
            self.stats.retired += 1;
            self.last_retire_cycle = self.cycle;
            if matches!(head.inst, Inst::Halt) {
                self.halted = true;
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Untaint propagation + store-to-load untaint gating
    // ------------------------------------------------------------------

    fn untaint_step(&mut self) {
        if self.engine.is_some() {
            let step = self.engine.as_mut().expect("checked").step();
            if let Some(v) = self.validator.as_mut() {
                for &(phys, kind) in &step.broadcasts {
                    v.on_broadcast(phys, kind);
                }
            }
            if self.trace.enabled() || self.telemetry.is_some() {
                for &(phys, kind) in &step.broadcasts {
                    let cycle = self.cycle;
                    // Producer seq of the episode being closed (0 when the
                    // birth was never observed, e.g. sink attached late).
                    let seq = self.taint_src.get(phys as usize).copied().unwrap_or(0);
                    if let Some(sink) = self.trace.sink() {
                        sink.event(
                            cycle,
                            &SptTraceEvent::Untaint { phys, mechanism: kind.label(), seq },
                        );
                    }
                    if let Some(t) = &mut self.telemetry {
                        t.on_untaint(phys, cycle);
                    }
                }
            }
            if !matches!(self.prot.shadow, spt_core::ShadowMode::None) {
                for &(phys, _) in &step.broadcasts {
                    if let Some(r) = self.retired_loads.take(phys) {
                        self.shadow.clear_range(r.addr, r.bytes);
                        if let Some(v) = self.validator.as_mut() {
                            v.on_mem_inferable(r.addr, r.bytes, phys);
                        }
                    }
                }
            }
            self.stl_pass();
        }
    }

    /// Recomputes `STLPublic` for forwarding pairs and propagates untaint
    /// across public pairs (§6.7 rules ① and ②).
    fn stl_pass(&mut self) {
        let Some(engine) = &mut self.engine else { return };
        if !engine.config().untaint.forward() {
            return;
        }
        let backward = engine.config().untaint.backward();

        // Forwarded loads, oldest first (the scheduler tracks them).
        let mut snapshot = std::mem::take(&mut self.sched.stl_snapshot);
        snapshot.clear();
        snapshot.extend(self.sched.fwd_loads.iter().copied());

        for &l_seq in &snapshot {
            let i = self.rob_pos.get(l_seq).expect("tracked forwarded load is in the ROB");
            let (s_seq, already_public) = {
                let l = &self.rob[i];
                debug_assert!(l.is_load());
                (l.mem.fwd_from.expect("tracked"), l.mem.stl.is_some_and(|c| c.is_public()))
            };
            let public = already_public || {
                // ② all of the load's address operands are public,
                let load_addr_public = engine.leak_operands_clear(l_seq);
                // ③ every store older than L and younger than or equal to S
                // has a public address. Stores that already retired reached
                // their VP, which declassified their addresses.
                let stores_public =
                    self.sched.stores.range(s_seq..l_seq).all(|&s| engine.leak_operands_clear(s));
                load_addr_public && stores_public
            };
            self.rob[i].mem.stl =
                Some(if public { StlCondition::public() } else { StlCondition::pending(1) });
            if !public {
                continue;
            }
            // Rule ①: forward untaint of the load output from the store's
            // data operand. If the store already retired we can no longer
            // observe its data taint; stay conservative.
            let data_idx = self.rob_pos.get(s_seq).and_then(|j| self.rob[j].inst.store_data_src());
            let Some(data_idx) = data_idx else { continue };
            if let Some(v) = self.validator.as_mut() {
                v.on_stl_pair(l_seq, s_seq, data_idx);
            }
            if let Some(mask) = engine.operand_mask(s_seq, data_idx) {
                if mask.is_clear() {
                    engine.set_load_output(l_seq, TaintMask::NONE, UntaintKind::StlForward);
                }
            }
            // Rule ②: backward untaint of the store data from the load
            // output.
            if backward {
                if let Some(dmask) = engine.dest_mask(l_seq) {
                    if dmask.is_clear() {
                        engine.untaint_operand(s_seq, data_idx, UntaintKind::StlBackward);
                    }
                }
            }
        }

        // Post-hoc shadow rule ② (§6.8, justified by the §8 proof's third
        // case): once a load has reached the VP (its address is public and
        // the access is publicly known) and its output register becomes
        // untainted — typically because a younger transmitter declassified
        // it — the read bytes are inferable, so the L1 taint can clear.
        // This is what lets hot, repeatedly-leaked data (jump tables,
        // indices, node pointers) become public in the shadow L1.
        if !matches!(self.prot.shadow, spt_core::ShadowMode::None) {
            // Candidates: completed, non-forwarded loads (writeback adds
            // them to `shadow_wait`); they wait here until they reach the
            // VP and their output untaints, or leave the ROB.
            snapshot.clear();
            snapshot.extend(self.sched.shadow_wait.iter().copied());
            for &seq in &snapshot {
                let i = self.rob_index(seq).expect("tracked load is in the ROB");
                let e = &self.rob[i];
                debug_assert!(
                    e.is_load() && e.state == ExecState::Done && e.mem.fwd_from.is_none()
                );
                if !e.vp || e.mem.range_cleared {
                    continue;
                }
                let Some(addr) = e.mem.addr else { continue };
                let engine = self.engine.as_ref().expect("stl_pass runs with engine");
                if engine.dest_mask(seq).is_some_and(|m| m.is_clear()) {
                    let bytes = e.mem.bytes;
                    let phys = e.dest.map(|(_, p, _)| p);
                    self.shadow.clear_range(addr, bytes);
                    self.rob[i].mem.range_cleared = true;
                    self.sched.shadow_wait.remove(&seq);
                    if let (Some(v), Some(p)) = (self.validator.as_mut(), phys) {
                        v.on_mem_inferable(addr, bytes, p);
                    }
                }
            }
        }
        snapshot.clear();
        self.sched.stl_snapshot = snapshot;
    }

    // ------------------------------------------------------------------
    // Writeback
    // ------------------------------------------------------------------

    fn writeback(&mut self) {
        // Pop due completions; skip heap entries whose instruction was
        // squashed (seqs are never reused, so absence from the ROB — or a
        // state other than `Issued` — means stale). Same-cycle
        // completions must apply oldest-first (a younger load's shadow
        // read-mask observes an older load's clear-range), so the due set
        // is re-sorted by seq before processing.
        let mut due = std::mem::take(&mut self.sched.due);
        due.clear();
        while let Some(&Reverse((t, seq))) = self.sched.completions.peek() {
            if t > self.cycle {
                break;
            }
            self.sched.completions.pop();
            if let Some(i) = self.rob_index(seq) {
                if self.rob[i].state == ExecState::Issued {
                    due.push(seq);
                }
            }
        }
        due.sort_unstable();
        for &seq in &due {
            let i = self.rob_index(seq).expect("validated on pop");
            let e = &self.rob[i];
            debug_assert!(e.state == ExecState::Issued && e.done_at <= self.cycle);
            let is_load = e.is_load();
            let dest = e.dest;
            let result = if is_load { self.rob[i].mem.value } else { self.rob[i].result };
            self.rob[i].state = ExecState::Done;
            self.rob[i].timing.complete_cycle = Some(self.cycle);
            if let Some((_, phys, _)) = dest {
                self.rf.write(phys, result);
                self.wake_dependents(phys);
            }
            if is_load {
                self.finish_load_taint(i, seq);
                if self.rob[i].mem.fwd_from.is_none() && self.stl_shadow_tracking() {
                    self.sched.shadow_wait.insert(seq);
                }
            }
        }
        due.clear();
        self.sched.due = due;
    }

    /// Whether the post-hoc §6.8 rule-② pass at the end of `stl_pass` can
    /// ever run (it needs the taint engine, forward untainting and a
    /// shadow memory) — the gate for tracking `shadow_wait` candidates.
    fn stl_shadow_tracking(&self) -> bool {
        self.engine.is_some()
            && self.prot.untaint.forward()
            && !matches!(self.prot.shadow, spt_core::ShadowMode::None)
    }

    /// Wakes instructions waiting on `phys` after it was written: each
    /// drops one pending operand and enters the ready queue at zero.
    /// Stale seqs (squashed consumers of a previous life of `phys`) no
    /// longer resolve to a ROB entry and are skipped.
    fn wake_dependents(&mut self, phys: spt_core::PhysReg) {
        let mut list = std::mem::take(&mut self.sched.waiters[phys as usize]);
        for &seq in &list {
            if let Some(i) = self.rob_index(seq) {
                let e = &mut self.rob[i];
                debug_assert!(e.state == ExecState::Waiting && e.pending_srcs > 0);
                e.pending_srcs -= 1;
                if e.pending_srcs == 0 {
                    self.sched.ready.insert(seq);
                }
            }
        }
        list.clear();
        self.sched.waiters[phys as usize] = list;
    }

    /// Applies the §6.8 load rules when a load's data arrives.
    fn finish_load_taint(&mut self, idx: usize, seq: Seq) {
        let Some(engine) = &mut self.engine else { return };
        let e = &self.rob[idx];
        if e.mem.fwd_from.is_some() || e.mem.oblivious {
            // Forwarded data flows via STLPublic (stl_pass); oblivious loads
            // bypassed the cache entirely, so the shadow has nothing to say.
            return;
        }
        let Some(addr) = e.mem.addr else { return };
        let bytes = e.mem.bytes;
        let kind = match self.prot.shadow {
            spt_core::ShadowMode::L1 => UntaintKind::ShadowL1,
            spt_core::ShadowMode::Mem => UntaintKind::ShadowMem,
            spt_core::ShadowMode::None => UntaintKind::ShadowL1, // unused
        };
        let dest_clear = engine.dest_mask(seq).is_some_and(|m| m.is_clear());
        if dest_clear {
            // Load rule ②: the output is already public, so the read bytes
            // are provably public.
            self.shadow.clear_range(addr, bytes);
            let phys = self.rob[idx].dest.map(|(_, p, _)| p);
            if let (Some(v), Some(p)) = (self.validator.as_mut(), phys) {
                v.on_mem_inferable(addr, bytes, p);
            }
        } else {
            let mask = self.shadow.read_mask(addr, bytes);
            engine.set_load_output(seq, mask, kind);
        }
    }

    // ------------------------------------------------------------------
    // Resolution (branches + deferred memory-order violations)
    // ------------------------------------------------------------------

    fn resolution_allowed(&self, e: &RobEntry) -> bool {
        match self.prot.kind {
            ProtectionKind::Unsafe => true,
            ProtectionKind::Spt => {
                e.vp || self.engine.as_ref().is_some_and(|eng| eng.leak_operands_clear(e.seq))
            }
            ProtectionKind::Stt => {
                e.vp || {
                    let stt = self.stt.as_ref().expect("stt tracker");
                    e.inst.sources().iter().enumerate().all(|(i, (_, role))| {
                        !role.leaks_at_vp() || e.srcs[i].is_none_or(|p| !stt.tainted(p))
                    })
                }
            }
        }
    }

    fn resolve(&mut self) {
        let mut snapshot = std::mem::take(&mut self.sched.resolve_snapshot);
        // At most one squash per cycle: violations are only considered
        // when no branch squashed (short-circuit).
        let _ = self.resolve_branches(&mut snapshot) || self.resolve_violations(&mut snapshot);
        snapshot.clear();
        self.sched.resolve_snapshot = snapshot;
    }

    /// Branch resolution: apply effects for allowed, completed control
    /// flow, oldest first; at most one squash per cycle (the oldest).
    /// Returns whether a squash happened.
    fn resolve_branches(&mut self, snapshot: &mut Vec<Seq>) -> bool {
        snapshot.clear();
        snapshot.extend(self.sched.unresolved_cf.iter().copied());
        for &seq in snapshot.iter() {
            let i = self.rob_index(seq).expect("tracked control flow is in the ROB");
            let e = &self.rob[i];
            debug_assert!(e.inst.is_control_flow() && !e.resolved);
            if e.state != ExecState::Done {
                continue;
            }
            if !self.resolution_allowed(e) {
                self.note_resolution_deferred(i);
                continue;
            }
            let e = &mut self.rob[i];
            e.resolved = true;
            self.sched.unresolved_cf.remove(&seq);
            let actual = e.actual_next.expect("executed control flow has a target");
            if actual != e.pred_next {
                let pc = e.pc;
                let inst = e.inst;
                let taken = e.actual_taken;
                let cp = e.checkpoint.clone();
                if inst.is_cond_branch() {
                    self.stats.branch_mispredicts += 1;
                } else {
                    self.stats.indirect_mispredicts += 1;
                }
                self.squash_after(seq);
                self.fe.recover(&cp, pc, &inst, taken);
                self.fetch_pc = actual;
                self.fetch_stalled = false;
                self.fetch_q.clear();
                self.stats.squashes += 1;
                return true;
            }
        }
        false
    }

    /// Deferred memory-order violation squashes (§6.7): allowed when the
    /// implicit branch (the store/load addresses) is public or the store
    /// reached the VP. Returns whether a squash happened.
    fn resolve_violations(&mut self, snapshot: &mut Vec<Seq>) -> bool {
        snapshot.clear();
        snapshot.extend(self.sched.pending_viol.iter().copied());
        for &seq in snapshot.iter() {
            let i = self.rob_index(seq).expect("tracked store is in the ROB");
            let e = &self.rob[i];
            let Some(victim_seq) = e.mem.pending_violation else { continue };
            let allowed = match self.prot.kind {
                ProtectionKind::Unsafe => true,
                ProtectionKind::Spt => {
                    e.vp || self.engine.as_ref().is_some_and(|eng| eng.leak_operands_clear(e.seq))
                }
                ProtectionKind::Stt => {
                    e.vp || {
                        let stt = self.stt.as_ref().expect("stt");
                        e.inst.sources().iter().enumerate().all(|(i, (_, role))| {
                            !role.leaks_at_vp() || e.srcs[i].is_none_or(|p| !stt.tainted(p))
                        })
                    }
                }
            };
            if !allowed {
                self.note_resolution_deferred(i);
                continue;
            }
            let Some(vi) = self.rob_index(victim_seq) else {
                self.rob[i].mem.pending_violation = None;
                self.sched.pending_viol.remove(&seq);
                continue;
            };
            let victim = &self.rob[vi];
            let pc = victim.pc;
            let cp = victim.checkpoint.clone();
            self.squash_after(victim_seq - 1);
            self.rob[i].mem.pending_violation = None;
            self.sched.pending_viol.remove(&seq);
            self.fe.restore(&cp);
            self.fetch_pc = pc;
            self.fetch_stalled = false;
            self.fetch_q.clear();
            self.stats.squashes += 1;
            return true;
        }
        false
    }

    /// Removes every entry younger than `seq`, rolling back renaming.
    fn squash_after(&mut self, seq: Seq) {
        while let Some(tail) = self.rob.back() {
            if tail.seq <= seq {
                break;
            }
            let e = self.rob.pop_back().expect("tail exists");
            self.emit_inst(&e, None, Some(self.cycle));
            if let Some((arch, new, old)) = e.dest {
                self.rf.rollback(arch, new, old);
                if let Some(t) = &mut self.telemetry {
                    t.on_squash_reg(new);
                }
            }
            if e.in_rs {
                self.rs_used -= 1;
            }
            if e.is_load() {
                self.lq_used -= 1;
            }
            if e.is_store() {
                self.sq_used -= 1;
            }
        }
        self.rob_pos.squash_after(seq);
        self.sched.squash_from(seq + 1);
        self.sched.ok_count = self.sched.ok_count.min(self.rob.len());
        self.sched.vp_len = self.sched.vp_len.min(self.rob.len());
        // Clear dangling violation victims (the completion heap and
        // wakeup lists shed squashed seqs lazily).
        let mut snapshot = std::mem::take(&mut self.sched.squash_snapshot);
        snapshot.clear();
        snapshot.extend(self.sched.pending_viol.iter().copied());
        for &s in &snapshot {
            let i = self.rob_index(s).expect("tracked store is in the ROB");
            if self.rob[i].mem.pending_violation.is_some_and(|v| v > seq) {
                self.rob[i].mem.pending_violation = None;
                self.sched.pending_viol.remove(&s);
            }
        }
        snapshot.clear();
        self.sched.squash_snapshot = snapshot;
        if let Some(engine) = &mut self.engine {
            engine.squash_from(seq + 1);
        }
        if let Some(v) = self.validator.as_mut() {
            v.on_squash(seq + 1);
        }
    }

    // ------------------------------------------------------------------
    // Issue / execute
    // ------------------------------------------------------------------

    fn srcs_ready(&self, e: &RobEntry) -> bool {
        e.srcs.iter().flatten().all(|&p| self.rf.is_ready(p))
    }

    /// The protection gate for transmitters (loads/stores).
    fn transmit_allowed(&self, e: &RobEntry) -> bool {
        match self.prot.kind {
            ProtectionKind::Unsafe => true,
            ProtectionKind::Spt => {
                e.vp || self.engine.as_ref().is_some_and(|eng| eng.leak_operands_clear(e.seq))
            }
            ProtectionKind::Stt => {
                let stt = self.stt.as_ref().expect("stt tracker");
                e.inst.sources().iter().enumerate().all(|(i, (_, role))| {
                    !role.leaks_at_vp() || e.srcs[i].is_none_or(|p| !stt.tainted(p))
                })
            }
        }
    }

    fn issue(&mut self) {
        let mut issued = 0;
        let mut mem_issued = 0;
        // The ready queue holds exactly the dispatched entries with all
        // operands ready, in age order — the set and order the full ROB
        // scan used to select. Entries blocked by a structural or
        // protection gate stay queued and retry next cycle.
        let mut snapshot = std::mem::take(&mut self.sched.ready_snapshot);
        snapshot.clear();
        snapshot.extend(self.sched.ready.iter().copied());
        for &seq in &snapshot {
            if issued >= self.core.issue_width {
                break;
            }
            let i = self.rob_index(seq).expect("ready entry is in the ROB");
            debug_assert!(self.rob[i].state == ExecState::Waiting);
            debug_assert!(self.srcs_ready(&self.rob[i]));
            let inst = self.rob[i].inst;
            match inst {
                Inst::Load { .. } => {
                    if mem_issued >= self.core.mem_ports {
                        continue;
                    }
                    if !self.transmit_allowed(&self.rob[i]) {
                        // SDO-style policy (§6.3): execute the unsafe load
                        // obliviously instead of delaying it.
                        if self.prot.policy == spt_core::Policy::Oblivious
                            && self.try_issue_load_oblivious(i)
                        {
                            issued += 1;
                            mem_issued += 1;
                        } else {
                            self.note_xmit_blocked(i);
                        }
                        continue;
                    }
                    if self.try_issue_load(i) {
                        issued += 1;
                        mem_issued += 1;
                    }
                }
                Inst::Store { .. } => {
                    if mem_issued >= self.core.mem_ports {
                        continue;
                    }
                    if !self.transmit_allowed(&self.rob[i]) {
                        self.note_xmit_blocked(i);
                        continue;
                    }
                    self.issue_store(i);
                    issued += 1;
                    mem_issued += 1;
                }
                _ => {
                    // Variable-time instructions are transmitters when the
                    // configuration protects that channel (§2.1).
                    if self.rob[i].inst.is_variable_time()
                        && self.prot.protected()
                        && self.prot.variable_time_transmitters
                        && !self.transmit_allowed(&self.rob[i])
                    {
                        self.note_xmit_blocked(i);
                        continue;
                    }
                    self.issue_alu(i);
                    issued += 1;
                }
            }
        }
        snapshot.clear();
        self.sched.ready_snapshot = snapshot;
    }

    fn read_src(&self, e: &RobEntry, idx: usize) -> u64 {
        e.srcs[idx].map_or(0, |p| self.rf.read(p))
    }

    /// Effective address of a load/store entry (operands must be ready).
    fn effective_addr(&self, e: &RobEntry) -> u64 {
        match e.inst {
            Inst::Load { index, scale, offset, .. } => {
                let base = self.read_src(e, 0);
                let idx = if index.is_zero() { 0 } else { self.read_src(e, 1) };
                base.wrapping_add(idx << scale).wrapping_add(offset as u64)
            }
            Inst::Store { index, scale, offset, .. } => {
                let base = self.read_src(e, 0);
                let idx = if index.is_zero() { 0 } else { self.read_src(e, 1) };
                base.wrapping_add(idx << scale).wrapping_add(offset as u64)
            }
            _ => unreachable!("effective_addr on non-memory instruction"),
        }
    }

    fn issue_alu(&mut self, i: usize) {
        let e = &self.rob[i];
        let pc = e.pc;
        let (result, actual_next, actual_taken, latency) = match e.inst {
            Inst::Nop | Inst::Halt => (0, None, false, 1),
            Inst::MovImm { imm, .. } => (imm as u64, None, false, 1),
            Inst::Mov { .. } => (self.read_src(e, 0), None, false, 1),
            Inst::Alu { op, .. } => {
                let (a, b) = (self.read_src(e, 0), self.read_src(e, 1));
                (op.eval(a, b), None, false, op.variable_latency(a, b))
            }
            Inst::AluImm { op, imm, .. } => {
                let a = self.read_src(e, 0);
                (op.eval(a, imm as u64), None, false, op.variable_latency(a, imm as u64))
            }
            Inst::Branch { cond, target, .. } => {
                let taken = cond.eval(self.read_src(e, 0), self.read_src(e, 1));
                (0, Some(if taken { target as u64 } else { pc + 1 }), taken, 1)
            }
            Inst::Jump { target } => (0, Some(target as u64), true, 1),
            Inst::JumpInd { .. } => (0, Some(self.read_src(e, 0)), true, 1),
            Inst::Call { target, .. } => (pc + 1, Some(target as u64), true, 1),
            Inst::CallInd { .. } => (pc + 1, Some(self.read_src(e, 0)), true, 1),
            Inst::Ret { .. } => (0, Some(self.read_src(e, 0)), true, 1),
            Inst::Load { .. } | Inst::Store { .. } => unreachable!("handled by memory paths"),
        };
        let e = &mut self.rob[i];
        e.result = result;
        e.actual_next = actual_next;
        e.actual_taken = actual_taken;
        e.state = ExecState::Issued;
        e.done_at = self.cycle + latency;
        e.timing.issue_cycle = Some(self.cycle);
        e.in_rs = false;
        let (seq, done_at) = (e.seq, e.done_at);
        self.rs_used -= 1;
        self.sched.ready.remove(&seq);
        self.sched.completions.push(Reverse((done_at, seq)));
    }

    /// Attempts to issue the load at ROB index `i`. Returns `false` if it
    /// must retry later (forwarding blocked or MSHRs busy).
    fn try_issue_load(&mut self, i: usize) -> bool {
        let e = &self.rob[i];
        debug_assert!(e.is_load());
        let addr = self.effective_addr(e);
        let bytes = e.mem.bytes;
        let seq = e.seq;

        // Store-queue search, youngest older store first.
        let mut forward: Option<(Seq, u64)> = None;
        for &s_seq in self.sched.stores.range(..seq).rev() {
            let j = self.rob_index(s_seq).expect("tracked store is in the ROB");
            let s = &self.rob[j];
            let Some(sa) = s.mem.addr else { continue }; // unknown address: speculate no-alias
            if RobEntry::range_covers(sa, s.mem.bytes, addr, bytes) {
                // Full cover: forward the store's data.
                let shifted = s.mem.value >> (8 * (addr - sa));
                let masked =
                    if bytes == 8 { shifted } else { shifted & ((1u64 << (8 * bytes)) - 1) };
                forward = Some((s.seq, masked));
                break;
            }
            if RobEntry::ranges_overlap(sa, s.mem.bytes, addr, bytes) {
                // Partial overlap: wait until the store drains to memory.
                return false;
            }
        }

        let protected = self.prot.protected();
        // Address translation (the TLB channel, §2.1/§7.4): charged before
        // the cache access, covered by the same transmitter gate.
        let tlb_extra = self.dtlb.translate(addr);
        let (value, done_at, fwd_from) = match forward {
            Some((s_seq, v)) => {
                if protected {
                    // STT/SPT forwarding security: the load always accesses
                    // the cache so the forwarding decision is invisible.
                    match self.mem.access_timed(addr, self.cycle, false) {
                        Err(_busy) => return false,
                        Ok(out) => {
                            for ev in out.l1_events {
                                self.shadow.on_l1_event(ev);
                            }
                            (v, out.done_at + tlb_extra, Some(s_seq))
                        }
                    }
                } else {
                    (v, self.cycle + 1 + tlb_extra, Some(s_seq))
                }
            }
            None => match self.mem.read_timed(addr, bytes, self.cycle) {
                Err(_busy) => return false,
                Ok((v, out)) => {
                    for ev in out.l1_events {
                        self.shadow.on_l1_event(ev);
                    }
                    (v, out.done_at + tlb_extra, None)
                }
            },
        };

        if fwd_from.is_some() {
            self.stats.stl_forwards += 1;
        }
        if let Some(v) = self.validator.as_mut() {
            v.on_mem_addr(seq, addr);
        }
        let e = &mut self.rob[i];
        e.mem.addr = Some(addr);
        e.mem.value = value;
        e.mem.fwd_from = fwd_from;
        e.mem.accessed = true;
        e.state = ExecState::Issued;
        e.done_at = done_at;
        e.timing.issue_cycle = Some(self.cycle);
        e.in_rs = false;
        self.rs_used -= 1;
        self.sched.ready.remove(&seq);
        self.sched.completions.push(Reverse((done_at, seq)));
        if fwd_from.is_some() {
            self.sched.fwd_loads.insert(seq);
        }
        true
    }

    /// SDO-style oblivious issue: the load completes in worst-case time
    /// without touching any cache state, so its execution reveals nothing
    /// about its (tainted) address. Store-queue forwarding still applies
    /// (it is invisible to the attacker); partial overlaps fall back to the
    /// delay policy.
    fn try_issue_load_oblivious(&mut self, i: usize) -> bool {
        let e = &self.rob[i];
        debug_assert!(e.is_load());
        if !self.srcs_ready(e) {
            return false;
        }
        let addr = self.effective_addr(e);
        let bytes = e.mem.bytes;
        let seq = e.seq;

        let mut forward: Option<(Seq, u64)> = None;
        for &s_seq in self.sched.stores.range(..seq).rev() {
            let j = self.rob_index(s_seq).expect("tracked store is in the ROB");
            let s = &self.rob[j];
            let Some(sa) = s.mem.addr else { continue };
            if RobEntry::range_covers(sa, s.mem.bytes, addr, bytes) {
                let shifted = s.mem.value >> (8 * (addr - sa));
                let masked =
                    if bytes == 8 { shifted } else { shifted & ((1u64 << (8 * bytes)) - 1) };
                forward = Some((s.seq, masked));
                break;
            }
            if RobEntry::ranges_overlap(sa, s.mem.bytes, addr, bytes) {
                return false; // partial overlap: fall back to delaying
            }
        }
        let value = match forward {
            Some((_, v)) => v,
            None => self.mem.store_ref().read(addr, bytes),
        };

        if let Some(v) = self.validator.as_mut() {
            v.on_mem_addr(seq, addr);
        }
        let done_at = self.cycle + self.worst_mem_latency;
        let e = &mut self.rob[i];
        e.mem.addr = Some(addr);
        e.mem.value = value;
        e.mem.fwd_from = forward.map(|(s, _)| s);
        e.mem.accessed = true;
        e.mem.oblivious = true;
        e.state = ExecState::Issued;
        e.done_at = done_at;
        e.timing.issue_cycle = Some(self.cycle);
        e.in_rs = false;
        self.rs_used -= 1;
        self.sched.ready.remove(&seq);
        self.sched.completions.push(Reverse((done_at, seq)));
        if forward.is_some() {
            self.sched.fwd_loads.insert(seq);
        }
        true
    }

    fn issue_store(&mut self, i: usize) {
        let e = &self.rob[i];
        let Inst::Store { size, .. } = e.inst else { unreachable!() };
        let addr = self.effective_addr(e);
        let data_idx = e.inst.store_data_src().expect("store has data operand");
        let value = size.truncate(self.read_src(e, data_idx));
        let bytes = e.mem.bytes;
        let seq = e.seq;

        // Memory-order violation check: younger loads that already executed
        // with data not sourced from this store.
        let mut victim: Option<Seq> = None;
        for &l_seq in self.sched.loads.range(seq + 1..) {
            let k = self.rob_index(l_seq).expect("tracked load is in the ROB");
            let l = &self.rob[k];
            if l.state == ExecState::Waiting || !l.mem.accessed {
                continue;
            }
            let Some(la) = l.mem.addr else { continue };
            if !RobEntry::ranges_overlap(addr, bytes, la, l.mem.bytes) {
                continue;
            }
            let got_ours = l.mem.fwd_from == Some(seq);
            let got_younger_store = l.mem.fwd_from.is_some_and(|f| f > seq);
            if !got_ours && !got_younger_store {
                victim = Some(l.seq);
                break;
            }
        }

        if let Some(v) = self.validator.as_mut() {
            v.on_mem_addr(seq, addr);
        }
        let tlb_extra = self.dtlb.translate(addr);
        let e = &mut self.rob[i];
        e.mem.addr = Some(addr);
        e.mem.value = value;
        e.state = ExecState::Issued;
        e.done_at = self.cycle + 1 + tlb_extra;
        e.timing.issue_cycle = Some(self.cycle);
        e.in_rs = false;
        let done_at = e.done_at;
        if let Some(v) = victim {
            e.mem.pending_violation = Some(v);
            self.stats.mem_violations += 1;
            self.sched.pending_viol.insert(seq);
        }
        self.rs_used -= 1;
        self.sched.ready.remove(&seq);
        self.sched.completions.push(Reverse((done_at, seq)));
    }

    // ------------------------------------------------------------------
    // Rename / dispatch
    // ------------------------------------------------------------------

    fn rename(&mut self) {
        for _ in 0..self.core.rename_width {
            if self.halted {
                break;
            }
            if self.rob.len() >= self.core.rob_size || self.rs_used >= self.core.rs_size {
                break;
            }
            let Some(f) = self.fetch_q.front() else { break };
            let inst = f.inst;
            if inst.is_transmitter() {
                if matches!(inst, Inst::Load { .. }) && self.lq_used >= self.core.lq_size {
                    break;
                }
                if matches!(inst, Inst::Store { .. }) && self.sq_used >= self.core.sq_size {
                    break;
                }
            }
            if inst.dest().is_some() && self.rf.free_count() == 0 {
                break;
            }
            let f = self.fetch_q.pop_front().expect("front exists");

            // Look up sources before allocating the destination (an
            // instruction may read and write the same architectural reg).
            let mut srcs: [Option<spt_core::PhysReg>; 3] = [None, None, None];
            for (k, (reg, _)) in inst.sources().iter().enumerate() {
                srcs[k] = Some(self.rf.lookup(reg));
            }
            let dest = inst.dest().map(|arch| {
                let (new, old) = self.rf.allocate(arch).expect("free list checked");
                // A recycled physical register no longer refers to the
                // retired load's value, and any leftover waiters belong to
                // squashed consumers of its previous life.
                self.retired_loads.clear_phys(new);
                self.sched.waiters[new as usize].clear();
                (arch, new, old)
            });

            let seq = self.next_seq;
            self.next_seq += 1;

            if let Some(engine) = &mut self.engine {
                let mut info_srcs: [Option<(spt_core::PhysReg, spt_isa::OperandRole)>; 3] =
                    [None, None, None];
                for (k, (_, role)) in inst.sources().iter().enumerate() {
                    info_srcs[k] = Some((srcs[k].expect("looked up"), role));
                }
                let dest_taint = engine.rename(RenameInfo {
                    seq,
                    class: inst.class(),
                    srcs: info_srcs,
                    dest: dest.map(|(_, new, _)| new),
                    load_bytes: match inst {
                        Inst::Load { size, .. } => Some(size.bytes()),
                        _ => None,
                    },
                });
                if let Some(v) = self.validator.as_mut() {
                    v.on_rename(
                        seq,
                        f.pc,
                        inst,
                        srcs,
                        dest.map(|(_, new, _)| new),
                        dest.is_some() && dest_taint.is_clear(),
                    );
                }
                if !dest_taint.is_clear() {
                    if let Some((_, new, _)) = dest {
                        let cycle = self.cycle;
                        if self.trace.enabled() {
                            let idx = new as usize;
                            if idx >= self.taint_src.len() {
                                self.taint_src.resize(idx + 1, 0);
                            }
                            self.taint_src[idx] = seq;
                        }
                        if let Some(sink) = self.trace.sink() {
                            sink.event(cycle, &SptTraceEvent::TaintDest { seq, phys: new });
                        }
                        if let Some(t) = &mut self.telemetry {
                            t.on_taint(new, cycle);
                        }
                    }
                }
            }
            if let Some(stt) = &mut self.stt {
                if matches!(inst, Inst::Load { .. }) {
                    if let Some((_, new, _)) = dest {
                        stt.rename_load(seq, new);
                    }
                } else {
                    stt.rename_alu(&srcs, dest.map(|(_, new, _)| new));
                }
            }

            let fetch_cycle = f.fetch_cycle;
            let mut entry = RobEntry::new(
                seq,
                f.pc,
                inst,
                srcs,
                dest,
                f.checkpoint,
                f.pred_next,
                f.pred_taken,
                f.pred_info,
            );
            entry.timing.fetch_cycle = fetch_cycle;
            entry.timing.rename_cycle = self.cycle;
            // Scheduler dispatch: register on the wakeup list of every
            // unready source (duplicates count once per operand slot), or
            // go straight to the ready queue.
            let mut pending = 0u8;
            for &p in entry.srcs.iter().flatten() {
                if !self.rf.is_ready(p) {
                    self.sched.waiters[p as usize].push(seq);
                    pending += 1;
                }
            }
            entry.pending_srcs = pending;
            if pending == 0 {
                self.sched.ready.insert(seq);
            }
            if entry.is_load() {
                self.lq_used += 1;
                self.sched.loads.insert(seq);
            }
            if entry.is_store() {
                self.sq_used += 1;
                self.sched.stores.insert(seq);
            }
            if entry.inst.is_control_flow() && !entry.resolved {
                self.sched.unresolved_cf.insert(seq);
            }
            self.rs_used += 1;
            self.rob_pos.push(entry.seq);
            self.rob.push_back(entry);
        }
    }

    // ------------------------------------------------------------------
    // Fetch
    // ------------------------------------------------------------------

    fn fetch(&mut self) {
        for _ in 0..self.core.fetch_width {
            if self.fetch_stalled || self.halted {
                break;
            }
            if self.fetch_q.len() >= self.core.fetch_queue {
                break;
            }
            if self.cycle < self.ifetch_stall_until {
                break;
            }
            let pc = self.fetch_pc;
            // L1I timing: 8-byte instructions, 8 per 64-byte line.
            let line = pc / 8;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                if !self.icache.lookup(line * 64, false) {
                    self.icache.fill(line * 64, false);
                    // Code is L2-resident: a miss costs an L2 round trip.
                    self.ifetch_stall_until = self.cycle + 20;
                    break;
                }
            }
            let Some(inst) = self.program.fetch(pc) else {
                // Wrong-path fetch ran off the program; wait for a redirect.
                self.fetch_stalled = true;
                break;
            };
            let checkpoint = self.fe.checkpoint();
            let pred = if inst.is_control_flow() {
                self.fe.predict(pc, &inst)
            } else {
                FetchPrediction { next_pc: pc + 1, predicted_taken: false, info: None }
            };
            self.stats.fetched += 1;
            let stall = matches!(inst, Inst::Halt);
            self.fetch_q.push_back(Fetched {
                pc,
                inst,
                checkpoint,
                pred_next: pred.next_pc,
                pred_taken: pred.predicted_taken,
                pred_info: pred.info,
                fetch_cycle: self.cycle,
            });
            self.fetch_pc = pred.next_pc;
            if stall {
                self.fetch_stalled = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_core::ThreatModel;
    use spt_isa::asm::Assembler;
    use spt_isa::interp::Interp;

    fn all_configs() -> Vec<Config> {
        let mut v = Vec::new();
        for t in [ThreatModel::Spectre, ThreatModel::Futuristic] {
            v.extend(Config::table2(t));
        }
        v
    }

    fn sum_program() -> Program {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0);
        a.mov_imm(Reg::R2, 0);
        a.mov_imm(Reg::R3, 100);
        a.label("loop");
        a.add(Reg::R2, Reg::R2, Reg::R1);
        a.addi(Reg::R1, Reg::R1, 1);
        a.blt(Reg::R1, Reg::R3, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn loop_sum_matches_interpreter_under_every_config() {
        let p = sum_program();
        let mut interp = Interp::new(&p);
        interp.run(10_000).unwrap();
        let expected = interp.reg(Reg::R2);
        assert_eq!(expected, 4950);
        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            let out = m.run(RunLimits::default()).unwrap_or_else(|e| panic!("{cfg}: {e}"));
            assert_eq!(m.reg(Reg::R2), expected, "config {cfg}");
            assert_eq!(out.reason, StopReason::Halted, "config {cfg}");
        }
    }

    #[test]
    fn store_load_roundtrip_all_sizes() {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x2000);
        a.mov_imm(Reg::R2, 0x1122_3344_5566_7788u64 as i64);
        a.store(Reg::R2, Reg::R1, 0, spt_isa::MemSize::B8);
        a.load(Reg::R3, Reg::R1, 0, spt_isa::MemSize::B8);
        a.load(Reg::R4, Reg::R1, 0, spt_isa::MemSize::B4);
        a.load(Reg::R5, Reg::R1, 2, spt_isa::MemSize::B2);
        a.load(Reg::R6, Reg::R1, 7, spt_isa::MemSize::B1);
        a.halt();
        let p = a.assemble().unwrap();
        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R3), 0x1122_3344_5566_7788, "{cfg}");
            assert_eq!(m.reg(Reg::R4), 0x5566_7788, "{cfg}");
            // Bytes 2..4 little-endian: 0x66, 0x55.
            assert_eq!(m.reg(Reg::R5), 0x5566, "{cfg}");
            assert_eq!(m.reg(Reg::R6), 0x11, "{cfg}");
        }
    }

    #[test]
    fn store_to_load_forwarding_is_architecturally_invisible() {
        // Tight store→load with data still in flight: forwarding must give
        // the new value under every configuration.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x3000);
        a.mov_imm(Reg::R2, 11);
        a.mov_imm(Reg::R3, 22);
        a.st(Reg::R2, Reg::R1, 0);
        a.st(Reg::R3, Reg::R1, 0);
        a.ld(Reg::R4, Reg::R1, 0);
        a.halt();
        let p = a.assemble().unwrap();
        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R4), 22, "{cfg}");
        }
    }

    #[test]
    fn pointer_chase_matches_interpreter() {
        // A linked-list walk seeded in memory, exercising load→address
        // dependences under protection.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x4000); // head
        a.mov_imm(Reg::R2, 0); // sum of payloads
        a.mov_imm(Reg::R3, 0); // count
        a.mov_imm(Reg::R4, 8);
        a.label("walk");
        a.ld(Reg::R5, Reg::R1, 8); // payload
        a.add(Reg::R2, Reg::R2, Reg::R5);
        a.ld(Reg::R1, Reg::R1, 0); // next
        a.addi(Reg::R3, Reg::R3, 1);
        a.bne(Reg::R1, Reg::R0, "walk");
        a.halt();
        let p = a.assemble().unwrap();

        let nodes = 16u64;
        let mut init = Vec::new();
        for i in 0..nodes {
            let base = 0x4000 + i * 0x40;
            let next = if i + 1 < nodes { base + 0x40 } else { 0 };
            init.push((base, next));
            init.push((base + 8, i * 3 + 1));
        }

        let mut interp = Interp::new(&p);
        for &(addr, v) in &init {
            interp.mem_mut().write(addr, v, 8);
        }
        interp.run(100_000).unwrap();
        let expected = interp.reg(Reg::R2);

        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            for &(addr, v) in &init {
                m.mem_mut().store().write(addr, v, 8);
            }
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R2), expected, "{cfg}");
            assert_eq!(m.reg(Reg::R3), nodes, "{cfg}");
        }
    }

    #[test]
    fn call_ret_and_indirect_jumps() {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R10, 0);
        a.mov_imm(Reg::R11, 5);
        a.label("loop");
        a.call("inc", Reg::R31);
        a.addi(Reg::R11, Reg::R11, -1);
        a.bne(Reg::R11, Reg::R0, "loop");
        a.halt();
        a.label("inc");
        a.addi(Reg::R10, Reg::R10, 7);
        a.ret(Reg::R31);
        let p = a.assemble().unwrap();
        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R10), 35, "{cfg}");
        }
    }

    #[test]
    fn unsafe_is_fastest_secure_baseline_slowest() {
        // The canonical overhead ordering on a memory-bound loop.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x8000);
        a.mov_imm(Reg::R2, 0);
        a.mov_imm(Reg::R3, 256);
        a.mov_imm(Reg::R4, 0);
        a.label("loop");
        a.ld(Reg::R5, Reg::R1, 0);
        a.add(Reg::R2, Reg::R2, Reg::R5);
        a.addi(Reg::R1, Reg::R1, 8);
        a.addi(Reg::R4, Reg::R4, 1);
        a.blt(Reg::R4, Reg::R3, "loop");
        a.halt();
        let p = a.assemble().unwrap();

        let run = |cfg: Config| {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.run(RunLimits::default()).unwrap().cycles
        };
        let t = ThreatModel::Futuristic;
        let unsafe_c = run(Config::unsafe_baseline(t));
        let spt_c = run(Config::spt_full(t));
        let secure_c = run(Config::secure_baseline(t));
        assert!(unsafe_c <= spt_c, "unsafe {unsafe_c} vs spt {spt_c}");
        assert!(spt_c <= secure_c, "spt {spt_c} vs secure {secure_c}");
        assert!(
            secure_c > unsafe_c * 3 / 2,
            "SecureBaseline must pay heavily on a load loop: {secure_c} vs {unsafe_c}"
        );
    }

    #[test]
    fn branch_mispredictions_are_squashed_correctly() {
        // A data-dependent branch pattern the predictor cannot learn:
        // results must still be exact.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x9000); // array of pseudo-random bits
        a.mov_imm(Reg::R2, 0); // taken count
        a.mov_imm(Reg::R3, 64);
        a.mov_imm(Reg::R4, 0);
        a.label("loop");
        a.ld(Reg::R5, Reg::R1, 0);
        a.beq(Reg::R5, Reg::R0, "skip");
        a.addi(Reg::R2, Reg::R2, 1);
        a.label("skip");
        a.addi(Reg::R1, Reg::R1, 8);
        a.addi(Reg::R4, Reg::R4, 1);
        a.blt(Reg::R4, Reg::R3, "loop");
        a.halt();
        let p = a.assemble().unwrap();

        let mut expected = 0;
        let bits: Vec<u64> = (0..64u64)
            .map(|i| {
                let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0x1234);
                x ^= x >> 31;
                x & 1
            })
            .collect();
        for &b in &bits {
            if b != 0 {
                expected += 1;
            }
        }

        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            for (i, &b) in bits.iter().enumerate() {
                m.mem_mut().store().write(0x9000 + 8 * i as u64, b, 8);
            }
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R2), expected, "{cfg}");
            if cfg.kind == ProtectionKind::Unsafe {
                assert!(m.stats().branch_mispredicts > 0, "pattern must mispredict");
            }
        }
    }

    #[test]
    fn run_limits_stop_early() {
        let p = sum_program();
        let mut m = Machine::new(
            p.clone(),
            CoreConfig::default(),
            Config::unsafe_baseline(ThreatModel::Spectre),
        );
        let out = m.run(RunLimits::retired(50)).unwrap();
        assert_eq!(out.reason, StopReason::RetireBudget);
        assert!(out.retired >= 50);

        let mut m =
            Machine::new(p, CoreConfig::default(), Config::unsafe_baseline(ThreatModel::Spectre));
        let out = m.run(RunLimits::cycles(10)).unwrap();
        assert_eq!(out.reason, StopReason::CycleBudget);
        assert_eq!(out.cycles, 10);
    }

    #[test]
    fn tiny_core_still_correct() {
        let p = sum_program();
        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::tiny(), cfg);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R2), 4950, "{cfg}");
        }
    }

    #[test]
    fn spt_produces_untaint_events() {
        let p = sum_program();
        let mut m =
            Machine::new(p, CoreConfig::default(), Config::spt_full(ThreatModel::Futuristic));
        m.run(RunLimits::default()).unwrap();
        let s = m.stats();
        assert!(s.spt.events.total() > 0, "SPT must record untaint events");
        assert!(s.spt.events[UntaintKind::LoadImm] > 0);
    }

    #[test]
    fn transient_load_changes_cache_state() {
        // The essence of Spectre: on the unsafe baseline, a squashed load
        // still fills the cache.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 1);
        // A branch that is always taken but predicted not-taken initially.
        a.beq(Reg::R1, Reg::R0, "cold"); // never taken... predictor default is not-taken, so
                                         // actually use the reverse: bne is taken; untrained predicts not-taken -> wrong path
                                         // falls through into the transient load.
        a.jmp("done");
        a.label("cold");
        a.nop();
        a.label("done");
        a.halt();
        // Simpler deterministic construction below.
        let mut b = Assembler::new();
        b.mov_imm(Reg::R1, 1);
        b.mov_imm(Reg::R2, 0xA000);
        b.bne(Reg::R1, Reg::R0, "skip"); // taken, but untrained predictor says not-taken
        b.ld(Reg::R3, Reg::R2, 0); // transient wrong-path load
        b.label("skip");
        b.halt();
        let p = b.assemble().unwrap();
        drop(a);

        let mut m = Machine::new(
            p.clone(),
            CoreConfig::default(),
            Config::unsafe_baseline(ThreatModel::Futuristic),
        );
        m.run(RunLimits::default()).unwrap();
        assert_ne!(m.probe(0xA000), Level::Dram, "transient load must fill the cache");
        assert_eq!(m.reg(Reg::R3), 0, "the load was squashed architecturally");
    }

    #[test]
    fn spt_blocks_transient_load_with_tainted_address() {
        // Same shape, but the wrong-path load's address comes from program
        // data (a prior load) that was never leaked: SPT must delay it
        // until squash, leaving the cache untouched. The branch predicate
        // hangs off a slow dependent-load chain so the speculation window
        // is wide enough for the gadget to fire on the unsafe baseline.
        let mut b = Assembler::new();
        b.mov_imm(Reg::R2, 0x5000);
        b.mov_imm(Reg::R6, 0x20000);
        b.ld(Reg::R8, Reg::R6, 0); // cold load (reads 0)
        b.ld(Reg::R7, Reg::R8, 0x30000); // dependent cold load (reads 0)
        b.ld(Reg::R4, Reg::R2, 0); // secret value (never leaked elsewhere)
        b.beq(Reg::R7, Reg::R0, "skip"); // taken; untrained predictor says not-taken
        b.shli(Reg::R5, Reg::R4, 6); // wrong path: secret * 64
        b.addi(Reg::R5, Reg::R5, 0xB000);
        b.ld(Reg::R3, Reg::R5, 0); // transmit(secret)
        b.label("skip");
        b.halt();
        let p = b.assemble().unwrap();

        let secret = 3u64;
        let leak_line = 0xB000 + secret * 64;

        let run = |cfg: Config| {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.mem_mut().store().write(0x5000, secret, 8);
            m.run(RunLimits::default()).unwrap();
            m.probe(leak_line)
        };
        assert_ne!(
            run(Config::unsafe_baseline(ThreatModel::Futuristic)),
            Level::Dram,
            "unsafe baseline leaks"
        );
        assert_eq!(
            run(Config::spt_full(ThreatModel::Futuristic)),
            Level::Dram,
            "SPT blocks the transient transmitter"
        );
        assert_eq!(
            run(Config::spt_full(ThreatModel::Spectre)),
            Level::Dram,
            "SPT blocks under Spectre model too"
        );
        assert_eq!(run(Config::secure_baseline(ThreatModel::Futuristic)), Level::Dram);
    }
}

#[cfg(test)]
mod memory_order_tests {
    use super::*;
    use spt_core::ThreatModel;
    use spt_isa::asm::Assembler;

    fn all_configs() -> Vec<Config> {
        let mut v = Vec::new();
        for t in [ThreatModel::Spectre, ThreatModel::Futuristic] {
            v.extend(Config::table2(t));
        }
        v
    }

    #[test]
    fn memory_dependence_violation_is_detected_and_squashed() {
        // The store's address arrives late (dependent on a cold load); the
        // younger load to the same address issues speculatively, reads
        // stale data, and must be squashed and re-executed.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x6000);
        a.ld(Reg::R2, Reg::R1, 0); // cold load, reads 0
        a.addi(Reg::R3, Reg::R2, 0x7000); // store address, known late
        a.mov_imm(Reg::R4, 99);
        a.st(Reg::R4, Reg::R3, 0);
        a.mov_imm(Reg::R5, 0x7000);
        a.ld(Reg::R6, Reg::R5, 0); // speculates past the unknown store addr
        a.halt();
        let p = a.assemble().unwrap();

        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R6), 99, "{cfg}: load must see the store's value");
        }
        // On the unprotected machine the speculation definitely happens.
        let mut m = Machine::new(
            p,
            CoreConfig::default(),
            Config::unsafe_baseline(ThreatModel::Futuristic),
        );
        m.run(RunLimits::default()).unwrap();
        assert!(m.stats().mem_violations > 0, "violation must be detected");
        assert!(m.stats().squashes > 0, "violation must squash");
    }

    #[test]
    fn partial_overlap_store_blocks_load_until_drain() {
        // An 8-byte store partially overlapping a 4-byte load cannot
        // forward; the load must wait for the store to drain and then read
        // the merged bytes from memory.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x2000);
        a.mov_imm(Reg::R2, 0x1111_2222_3333_4444);
        a.st(Reg::R2, Reg::R1, 0); // bytes 0x2000..0x2008
        a.load(Reg::R3, Reg::R1, 4, spt_isa::MemSize::B8); // 0x2004..0x200c: partial
        a.halt();
        let p = a.assemble().unwrap();
        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            // Pre-existing bytes above the store.
            m.mem_mut().store().write(0x2008, 0xaabb_ccdd, 4);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R3), 0xaabb_ccdd_1111_2222, "{cfg}");
        }
    }

    #[test]
    fn forwarding_extracts_subrange_of_wider_store() {
        // A narrow load fully covered by a wider store forwards the right
        // byte slice.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x3000);
        a.mov_imm(Reg::R2, 0x8877_6655_4433_2211u64 as i64);
        a.st(Reg::R2, Reg::R1, 0);
        a.load(Reg::R3, Reg::R1, 2, spt_isa::MemSize::B2); // bytes 2..4
        a.load(Reg::R4, Reg::R1, 5, spt_isa::MemSize::B1); // byte 5
        a.halt();
        let p = a.assemble().unwrap();
        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R3), 0x4433, "{cfg}");
            assert_eq!(m.reg(Reg::R4), 0x66, "{cfg}");
        }
    }

    #[test]
    fn indexed_addressing_through_the_pipeline() {
        // base + index*scale + offset, with the index loaded from memory.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x4000); // index array
        a.mov_imm(Reg::R2, 0x5000); // data array
        a.ld(Reg::R3, Reg::R1, 0); // index = 6
        a.load_idx(Reg::R4, Reg::R2, Reg::R3, 3, 8, spt_isa::MemSize::B8); // data[6+1]
        a.store_idx(Reg::R4, Reg::R2, Reg::R3, 3, -8, spt_isa::MemSize::B8); // data[6-1] = it
        a.halt();
        let p = a.assemble().unwrap();
        for cfg in all_configs() {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.mem_mut().store().write(0x4000, 6, 8);
            m.mem_mut().store().write(0x5000 + 7 * 8, 777, 8);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R4), 777, "{cfg}");
            assert_eq!(m.mem().store_ref().read(0x5000 + 5 * 8, 8), 777, "{cfg}");
        }
    }

    #[test]
    fn wrong_path_fetch_past_program_end_recovers() {
        // A mispredicted indirect jump sends fetch to garbage; the machine
        // must stall fetch and recover on resolution.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x9000);
        a.ld(Reg::R2, Reg::R1, 0); // loads a huge bogus target slowly
        a.jr(Reg::R2); // untrained BTB predicts fall-through
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            p,
            CoreConfig::default(),
            Config::unsafe_baseline(ThreatModel::Futuristic),
        );
        // The actual target is the halt instruction (pc 3).
        m.mem_mut().store().write(0x9000, 3, 8);
        let out = m.run(RunLimits::default()).unwrap();
        assert_eq!(out.reason, StopReason::Halted);
    }
}

#[cfg(test)]
mod sdo_tests {
    use super::*;
    use spt_core::ThreatModel;
    use spt_isa::asm::Assembler;

    fn gather_program() -> Program {
        // Gather loop: each gather's address comes from a loaded index, the
        // pattern the delay policy pays for most.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x1000); // index array
        a.mov_imm(Reg::R2, 0x8000); // data array
        a.mov_imm(Reg::R3, 0); // k
        a.mov_imm(Reg::R4, 64); // count
        a.mov_imm(Reg::R6, 0); // acc
        a.label("loop");
        a.ldx8(Reg::R5, Reg::R1, Reg::R3);
        a.ldx8(Reg::R5, Reg::R2, Reg::R5);
        a.add(Reg::R6, Reg::R6, Reg::R5);
        a.addi(Reg::R3, Reg::R3, 1);
        a.blt(Reg::R3, Reg::R4, "loop");
        a.halt();
        a.assemble().unwrap()
    }

    fn init_machine(cfg: Config) -> Machine {
        let mut m = Machine::new(gather_program(), CoreConfig::default(), cfg);
        for k in 0..64u64 {
            m.mem_mut().store().write(0x1000 + 8 * k, (k * 7) % 64, 8);
            m.mem_mut().store().write(0x8000 + 8 * ((k * 7) % 64), k + 1, 8);
        }
        m
    }

    #[test]
    fn oblivious_policy_is_architecturally_identical() {
        let mut delay = init_machine(Config::spt_full(ThreatModel::Futuristic));
        delay.run(RunLimits::default()).unwrap();
        let mut sdo = init_machine(Config::spt_sdo(ThreatModel::Futuristic));
        sdo.run(RunLimits::default()).unwrap();
        assert_eq!(delay.reg(Reg::R6), sdo.reg(Reg::R6));
        assert!(delay.reg(Reg::R6) > 0);
    }

    #[test]
    fn oblivious_loads_leave_no_cache_footprint() {
        // Under SDO, the gathers into the data array execute obliviously on
        // their first encounter (tainted index), leaving the data lines
        // uncached — while the delay policy eventually performs real,
        // cache-filling accesses.
        let mut sdo = init_machine(Config::spt_sdo(ThreatModel::Futuristic));
        sdo.run(RunLimits::cycles(300)).unwrap();
        // Early in the run, before any index is declassified at the VP, no
        // data-array line may be cached.
        let touched = (0..8u64).filter(|k| sdo.probe(0x8000 + 64 * k) != Level::Dram).count();
        assert_eq!(touched, 0, "oblivious execution must not fill data lines early");
    }

    #[test]
    fn sdo_config_name_and_policy() {
        let c = Config::spt_sdo(ThreatModel::Spectre);
        assert_eq!(c.name(), "SPT{Bwd,ShadowL1}+SDO");
        assert_eq!(c.policy, spt_core::Policy::Oblivious);
    }
}

#[cfg(test)]
mod vp_tests {
    use super::*;
    use spt_core::ThreatModel;
    use spt_isa::asm::Assembler;

    /// A slow load followed by independent ALU work and a dependent
    /// transmitter: under Futuristic the transmitter's VP waits for the slow
    /// load; under Spectre it only waits for branch resolution.
    fn vp_program() -> Program {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x20000); // cold address
        a.mov_imm(Reg::R2, 0x1000); // warm-ish address
        a.ld(Reg::R3, Reg::R1, 0); // slow independent load
        a.ld(Reg::R4, Reg::R2, 0); // load whose output feeds an address
        a.ldx8(Reg::R5, Reg::R2, Reg::R4); // transmitter with tainted index
        a.halt();
        a.assemble().unwrap()
    }

    fn cycles(threat: ThreatModel) -> u64 {
        let mut m =
            Machine::new(vp_program(), CoreConfig::default(), Config::secure_baseline(threat));
        m.run(RunLimits::default()).unwrap().cycles
    }

    #[test]
    fn futuristic_vp_waits_for_all_older_instructions() {
        // SecureBaseline releases transmitters at the VP: the dependent
        // gather must wait for the slow load's completion only under the
        // Futuristic model, making it measurably slower than Spectre.
        let fut = cycles(ThreatModel::Futuristic);
        let spe = cycles(ThreatModel::Spectre);
        assert!(
            fut > spe + 50,
            "Futuristic ({fut}) must serialize behind the cold load vs Spectre ({spe})"
        );
    }

    #[test]
    fn unresolved_branch_blocks_spectre_vp() {
        // A branch whose predicate depends on a slow load blocks the VP of
        // younger transmitters under both models.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x30000);
        a.ld(Reg::R2, Reg::R1, 0); // slow load (reads 0)
        a.beq(Reg::R2, Reg::R0, "next"); // resolution waits on the load
        a.label("next");
        a.mov_imm(Reg::R3, 0x1000);
        a.ld(Reg::R4, Reg::R3, 0); // transmitter behind the branch
        a.halt();
        let p = a.assemble().unwrap();

        let run = |cfg: Config| {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.run(RunLimits::default()).unwrap().cycles
        };
        let unprotected = run(Config::unsafe_baseline(ThreatModel::Spectre));
        let secure = run(Config::secure_baseline(ThreatModel::Spectre));
        assert!(
            secure > unprotected + 50,
            "the delayed transmitter must wait for branch resolution: {secure} vs {unprotected}"
        );
    }

    #[test]
    fn icache_misses_are_counted_but_small_loops_hit() {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0);
        a.mov_imm(Reg::R2, 2000);
        a.label("spin");
        a.addi(Reg::R1, Reg::R1, 1);
        a.blt(Reg::R1, Reg::R2, "spin");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m =
            Machine::new(p, CoreConfig::default(), Config::unsafe_baseline(ThreatModel::Spectre));
        let out = m.run(RunLimits::default()).unwrap();
        // The loop spans one or two I-lines: a couple of cold misses, then
        // pure hits — fetch must not bottleneck the loop.
        assert!(out.cycles < 4000, "loop must run near 2 IPC, got {} cycles", out.cycles);
    }
}

#[cfg(test)]
mod structural_tests {
    use super::*;
    use spt_core::ThreatModel;
    use spt_isa::asm::Assembler;

    /// Saturate the store queue: a burst of stores larger than the SQ must
    /// stall rename, drain in order, and still produce correct memory.
    #[test]
    fn store_queue_saturation() {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x2000);
        for k in 0..48 {
            a.mov_imm(Reg::R2, 100 + k);
            a.st(Reg::R2, Reg::R1, 8 * k);
        }
        a.halt();
        let p = a.assemble().unwrap();
        for cfg in [
            Config::unsafe_baseline(ThreatModel::Futuristic),
            Config::spt_full(ThreatModel::Futuristic),
        ] {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            m.run(RunLimits::default()).unwrap();
            for k in 0..48u64 {
                assert_eq!(m.mem().store_ref().read(0x2000 + 8 * k, 8), 100 + k, "{cfg}");
            }
        }
    }

    /// Saturate the load queue with independent cache misses.
    #[test]
    fn load_queue_saturation() {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x10000);
        a.mov_imm(Reg::R2, 0);
        for k in 0..40 {
            a.ld(Reg::R3, Reg::R1, 4096 * k); // distinct pages: misses + TLB walks
            a.add(Reg::R2, Reg::R2, Reg::R3);
        }
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(
            p,
            CoreConfig::default(),
            Config::unsafe_baseline(ThreatModel::Futuristic),
        );
        for k in 0..40u64 {
            m.mem_mut().store().write(0x10000 + 4096 * k, k + 1, 8);
        }
        m.run(RunLimits::default()).unwrap();
        assert_eq!(m.reg(Reg::R2), (1..=40).sum::<u64>());
    }

    /// Deep nested mispredictions: alternating data-dependent branches that
    /// the predictor cannot learn, squashing into each other.
    #[test]
    fn nested_misprediction_recovery() {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x3000);
        a.mov_imm(Reg::R2, 0); // i
        a.mov_imm(Reg::R3, 32);
        a.mov_imm(Reg::R4, 0); // acc
        a.label("loop");
        a.ldx8(Reg::R5, Reg::R1, Reg::R2);
        a.beq(Reg::R5, Reg::R0, "a0");
        a.addi(Reg::R4, Reg::R4, 1);
        a.andi(Reg::R6, Reg::R5, 2);
        a.beq(Reg::R6, Reg::R0, "a1");
        a.addi(Reg::R4, Reg::R4, 10);
        a.label("a1");
        a.label("a0");
        a.addi(Reg::R2, Reg::R2, 1);
        a.blt(Reg::R2, Reg::R3, "loop");
        a.halt();
        let p = a.assemble().unwrap();

        // Pseudo-random cell values 0..4.
        let vals: Vec<u64> = (0..32u64)
            .map(|i| {
                let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xabcdef;
                x ^= x >> 29;
                x % 4
            })
            .collect();
        let expected: u64 = vals
            .iter()
            .map(|&v| {
                if v == 0 {
                    0
                } else if v & 2 == 0 {
                    1
                } else {
                    11
                }
            })
            .sum();

        for cfg in [
            Config::unsafe_baseline(ThreatModel::Spectre),
            Config::spt_full(ThreatModel::Spectre),
            Config::spt_full(ThreatModel::Futuristic),
            Config::stt(ThreatModel::Futuristic),
        ] {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), cfg);
            for (i, &v) in vals.iter().enumerate() {
                m.mem_mut().store().write(0x3000 + 8 * i as u64, v, 8);
            }
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R4), expected, "{cfg}");
        }
    }

    /// The retired-load table (§6.8 rule-② tracking) must stay capacity-
    /// bounded and evict its oldest live entry when full, with execution
    /// still architecturally exact.
    ///
    /// Loads of secret data whose values are never consumed by a
    /// transmitter retire tainted and are never declassified, so their
    /// table entries persist until the destination register is recycled
    /// through rename. The enlarged core lets every load rename before
    /// most of them retire; after the last rename no allocation ever
    /// recycles a register, so the entries accumulate past the 128-entry
    /// capacity and the eviction path must run.
    #[test]
    fn retired_load_table_hits_capacity_and_stays_bounded() {
        const LOADS: u64 = 300;
        let mut a = Assembler::new();
        a.mov_imm(Reg::R29, 0x6000);
        for i in 0..LOADS {
            // One cache line per load: every access misses, so retirement
            // falls far behind fetch and the post-rename window holds well
            // over 128 tainted loads.
            a.ld(Reg::R1, Reg::R29, (64 * i) as i64);
        }
        a.halt();
        let p = a.assemble().unwrap();

        let core = CoreConfig {
            rob_size: 384,
            rs_size: 384,
            lq_size: 384,
            num_phys: 512,
            ..CoreConfig::default()
        };
        let mut m = Machine::new(p, core, Config::spt_full(ThreatModel::Futuristic));
        for i in 0..LOADS {
            m.mem_mut().store().write(0x6000 + 64 * i, i * 7 + 3, 8);
        }

        let mut max_live = 0;
        let mut cycles = 0u64;
        while !m.halted() {
            m.step_cycle();
            let live = m.retired_loads_live();
            assert!(live <= 128, "table exceeded its capacity: {live}");
            max_live = max_live.max(live);
            cycles += 1;
            assert!(cycles < 100_000, "watchdog");
        }
        assert_eq!(max_live, 128, "the workload must fill the table and force eviction");
        assert_eq!(m.reg(Reg::R1), (LOADS - 1) * 7 + 3);
    }

    /// Register-file pressure: a long dependence chain that renames every
    /// architectural register repeatedly.
    #[test]
    fn physical_register_recycling() {
        let mut a = Assembler::new();
        for r in 1..30u8 {
            a.mov_imm(Reg::from_index(r as usize), r as i64);
        }
        a.mov_imm(Reg::R30, 0);
        a.mov_imm(Reg::R31, 50);
        a.label("loop");
        for r in 1..30u8 {
            let reg = Reg::from_index(r as usize);
            a.addi(reg, reg, 1);
        }
        a.addi(Reg::R30, Reg::R30, 1);
        a.blt(Reg::R30, Reg::R31, "loop");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m =
            Machine::new(p, CoreConfig::default(), Config::spt_full(ThreatModel::Futuristic));
        m.run(RunLimits::default()).unwrap();
        for r in 1..30u64 {
            assert_eq!(m.reg(Reg::from_index(r as usize)), r + 50);
        }
    }
}
