//! Event-driven scheduler bookkeeping for the machine hot loop.
//!
//! The straightforward pipeline model walks the whole ROB once (or more)
//! per stage per cycle, making simulation cost O(ROB size) even when
//! almost nothing happens in a cycle. The structures here turn each stage
//! into O(work actually done):
//!
//! * [`Scheduler::waiters`] — per-physical-register wakeup lists. A
//!   renamed instruction with unready operands registers itself on each
//!   unready source; writeback wakes exactly the dependents of the
//!   register it wrote.
//! * [`Scheduler::ready`] — an age-ordered ready queue. Issue iterates
//!   only instructions that are dispatched *and* have all operands ready,
//!   in sequence (= age) order, exactly the set the full ROB scan would
//!   have selected.
//! * [`Scheduler::completions`] — a min-heap of `(done_at, seq)` for
//!   issued instructions. Writeback pops due completions instead of
//!   scanning for them. Due entries are re-sorted by seq before
//!   processing so same-cycle completions apply in age order (the shadow
//!   read-mask vs. clear-range ordering is observable).
//! * Age-ordered index sets ([`Scheduler::stores`], [`Scheduler::loads`],
//!   [`Scheduler::unresolved_cf`], [`Scheduler::pending_viol`],
//!   [`Scheduler::fwd_loads`], [`Scheduler::shadow_wait`]) so the LSQ
//!   searches, branch/violation resolution and the §6.7/§6.8 passes visit
//!   only candidate entries, still in the original scan order.
//! * The visibility-point cursor ([`Scheduler::ok_count`],
//!   [`Scheduler::vp_len`]). Per-entry "self-ok" (see
//!   `Machine::update_vp`) is monotone — once an entry stops blocking
//!   younger instructions' VP it never starts again — and the VP prefix
//!   survives squashes (only younger entries are removed) and retirement
//!   (head entries leave the prefix), so a persistent cursor replaces the
//!   full walk.
//!
//! Everything here is bookkeeping over `Seq` values; the ROB entries stay
//! the single source of truth. Lists tolerate stale seqs (squashed
//! instructions): sequence numbers are never reused, so a stale seq
//! simply no longer resolves to a ROB entry and is skipped. The
//! `tests/equivalence.rs` harness pins the rewrite to bit-identical
//! results against goldens captured from the pre-rewrite walk-everything
//! scheduler.

use spt_core::{PhysReg, Seq};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

/// Scheduler-side index structures (see module docs). Owned by `Machine`;
/// the pipeline stages keep them in sync with the ROB.
#[derive(Clone, Debug, Default)]
pub(crate) struct Scheduler {
    /// Per-physical-register wakeup lists: seqs of dispatched instructions
    /// waiting on this register. Drained when the register is written;
    /// cleared when the register is reallocated (any residue then belongs
    /// to squashed consumers of its previous life).
    pub waiters: Vec<Vec<Seq>>,
    /// Dispatched entries whose operands are all ready, in age order.
    pub ready: BTreeSet<Seq>,
    /// `(done_at, seq)` for issued, not yet written-back entries. Entries
    /// for squashed instructions are skipped lazily on pop.
    pub completions: BinaryHeap<Reverse<(u64, Seq)>>,
    /// Control-flow entries whose resolution effects are still pending.
    pub unresolved_cf: BTreeSet<Seq>,
    /// Stores carrying a deferred memory-order violation (§6.7).
    pub pending_viol: BTreeSet<Seq>,
    /// Stores currently in the ROB (store-queue searches).
    pub stores: BTreeSet<Seq>,
    /// Loads currently in the ROB (violation searches).
    pub loads: BTreeSet<Seq>,
    /// Loads that received store-to-load forwarded data (§6.7 pass).
    pub fwd_loads: BTreeSet<Seq>,
    /// Completed non-forwarded loads awaiting the post-hoc §6.8 rule-②
    /// shadow clear (only populated when that pass can ever run).
    pub shadow_wait: BTreeSet<Seq>,
    /// Visibility-point cursor: number of leading ROB entries that were
    /// "self-ok" as of the last `update_vp` (monotone per entry).
    pub ok_count: usize,
    /// Number of leading ROB entries marked `vp` (= `min(ok_count + 1,
    /// rob.len())` after each `update_vp`).
    pub vp_len: usize,

    // Reusable per-cycle scratch buffers (the hot loop allocates nothing).
    pub newly_vp: Vec<Seq>,
    pub due: Vec<Seq>,
    pub ready_snapshot: Vec<Seq>,
    pub resolve_snapshot: Vec<Seq>,
    pub stl_snapshot: Vec<Seq>,
    pub squash_snapshot: Vec<Seq>,
}

impl Scheduler {
    pub fn new(num_phys: usize) -> Scheduler {
        Scheduler { waiters: vec![Vec::new(); num_phys], ..Scheduler::default() }
    }

    /// Drops every tracked seq `>= first` (a squash removed them from the
    /// ROB). The completion heap and the wakeup lists are cleaned lazily.
    pub fn squash_from(&mut self, first: Seq) {
        let _ = self.ready.split_off(&first);
        let _ = self.unresolved_cf.split_off(&first);
        let _ = self.pending_viol.split_off(&first);
        let _ = self.stores.split_off(&first);
        let _ = self.loads.split_off(&first);
        let _ = self.fwd_loads.split_off(&first);
        let _ = self.shadow_wait.split_off(&first);
    }
}

/// One tracked recently retired load (its output register may still be
/// declassified by an in-flight consumer's visibility point, clearing the
/// read bytes in the shadow — §6.8 rule ②, paper §8 proof case 3).
#[derive(Clone, Copy, Debug)]
pub(crate) struct RetiredLoad {
    pub addr: u64,
    pub bytes: u64,
}

/// Capacity-bounded, phys-indexed table of recently retired loads.
///
/// Replaces a `VecDeque` that rename scanned linearly on every allocation
/// (`retain(|r| r.phys != new)`) and untaint broadcasts searched
/// linearly. Lookup/removal by physical register is O(1); insertion-order
/// eviction uses a FIFO of `(phys, generation)` with lazily skipped
/// tombstones, so the capacity bound evicts the oldest *live* entry,
/// exactly like the old `pop_front`.
///
/// Invariant (inherited from the old structure): at most one live entry
/// per physical register — a register must be recycled through rename
/// (which clears its entry) before another load can retire into it.
#[derive(Clone, Debug)]
pub(crate) struct RetiredLoadTable {
    /// Live entry per phys: `(generation, load)`.
    slots: Vec<Option<(u64, RetiredLoad)>>,
    /// Insertion order; stale `(phys, gen)` pairs are skipped on eviction.
    fifo: VecDeque<(PhysReg, u64)>,
    next_gen: u64,
    live: usize,
    cap: usize,
}

impl RetiredLoadTable {
    pub fn new(num_phys: usize, cap: usize) -> RetiredLoadTable {
        RetiredLoadTable {
            slots: vec![None; num_phys],
            fifo: VecDeque::with_capacity(cap),
            next_gen: 0,
            live: 0,
            cap,
        }
    }

    /// Number of live entries (diagnostics / tests).
    pub fn live(&self) -> usize {
        self.live
    }

    /// Records a retired load, evicting the oldest live entry when full.
    pub fn insert(&mut self, phys: PhysReg, addr: u64, bytes: u64) {
        while self.live >= self.cap {
            let (p, g) = self.fifo.pop_front().expect("live entries imply FIFO nodes");
            if self.slots[p as usize].is_some_and(|(gen, _)| gen == g) {
                self.slots[p as usize] = None;
                self.live -= 1;
            }
        }
        debug_assert!(
            self.slots[phys as usize].is_none(),
            "a register is recycled through rename before it can host a second retired load"
        );
        let gen = self.next_gen;
        self.next_gen += 1;
        self.slots[phys as usize] = Some((gen, RetiredLoad { addr, bytes }));
        self.fifo.push_back((phys, gen));
        self.live += 1;
    }

    /// Removes and returns the entry for `phys`, if any (its tombstone
    /// stays in the FIFO and is skipped on eviction).
    pub fn take(&mut self, phys: PhysReg) -> Option<RetiredLoad> {
        let (_, load) = self.slots[phys as usize].take()?;
        self.live -= 1;
        Some(load)
    }

    /// Drops the entry for `phys` (rename recycled the register).
    pub fn clear_phys(&mut self, phys: PhysReg) {
        let _ = self.take(phys);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_squash_drops_young_seqs_from_every_set() {
        let mut s = Scheduler::new(8);
        for seq in [1u64, 5, 9] {
            s.ready.insert(seq);
            s.unresolved_cf.insert(seq);
            s.pending_viol.insert(seq);
            s.stores.insert(seq);
            s.loads.insert(seq);
            s.fwd_loads.insert(seq);
            s.shadow_wait.insert(seq);
        }
        s.squash_from(5);
        for set in [
            &s.ready,
            &s.unresolved_cf,
            &s.pending_viol,
            &s.stores,
            &s.loads,
            &s.fwd_loads,
            &s.shadow_wait,
        ] {
            assert_eq!(set.iter().copied().collect::<Vec<_>>(), vec![1]);
        }
    }

    #[test]
    fn retired_load_table_caps_and_evicts_oldest_live() {
        let mut t = RetiredLoadTable::new(16, 3);
        t.insert(1, 0x100, 8);
        t.insert(2, 0x200, 8);
        t.insert(3, 0x300, 8);
        assert_eq!(t.live(), 3);
        // Full: the next insert evicts phys 1 (oldest).
        t.insert(4, 0x400, 8);
        assert_eq!(t.live(), 3);
        assert!(t.take(1).is_none(), "oldest entry was evicted");
        assert_eq!(t.take(2).map(|r| r.addr), Some(0x200));
    }

    #[test]
    fn retired_load_table_eviction_skips_tombstones() {
        let mut t = RetiredLoadTable::new(16, 2);
        t.insert(1, 0x100, 8);
        t.insert(2, 0x200, 8);
        // Rename recycles phys 1: its FIFO node becomes a tombstone.
        t.clear_phys(1);
        assert_eq!(t.live(), 1);
        t.insert(3, 0x300, 8);
        // Full again; the eviction must skip phys 1's tombstone and evict
        // phys 2, the oldest *live* entry.
        t.insert(4, 0x400, 8);
        assert_eq!(t.live(), 2);
        assert!(t.take(2).is_none(), "phys 2 evicted, not a tombstone");
        assert_eq!(t.take(3).map(|r| r.addr), Some(0x300));
        assert_eq!(t.take(4).map(|r| r.addr), Some(0x400));
    }

    #[test]
    fn retired_load_table_generations_disambiguate_reinsertion() {
        let mut t = RetiredLoadTable::new(16, 2);
        t.insert(1, 0x100, 8);
        t.clear_phys(1);
        // Phys 1 hosts a new load: the old FIFO node must not evict it.
        t.insert(1, 0x111, 8);
        t.insert(2, 0x200, 8);
        // Table is full; evicting must pop the stale (1, gen0) node,
        // recognise it as stale, and evict the *current* phys-1 entry.
        t.insert(3, 0x300, 8);
        assert_eq!(t.live(), 2);
        assert!(t.take(1).is_none(), "current phys-1 entry was the oldest live");
        assert_eq!(t.take(2).map(|r| r.addr), Some(0x200));
    }
}
