//! Property test: the O3PipeView emitter and parser are exact inverses.
//!
//! Arbitrary instruction lifecycles (retired and squashed, with stages
//! legally skipped) interleaved with arbitrary `SPTEvent:` lines are
//! emitted through `O3PipeViewSink::with_events`, parsed back with
//! `parse_o3_trace`, and re-emitted with `ParsedTrace::reemit` — the
//! round trip must be byte-identical and the recovered cycle fields
//! exact.

use proptest::prelude::*;
use spt_util::trace::{parse_o3_trace, InstRecord, O3PipeViewSink, SptTraceEvent, TraceSink};

/// One generated trace element: an instruction lifecycle or an event.
#[derive(Clone, Debug)]
enum Element {
    Inst {
        pc: u64,
        disasm_tag: u64,
        fetch: u64,
        rename_gap: u64,
        issue_gap: u64,
        complete_gap: u64,
        retire_gap: u64,
        /// 0 = retired, 1 = squashed before issue, 2 = squashed after
        /// complete.
        fate: u8,
    },
    Event(u64, SptTraceEvent),
}

fn event_strategy() -> impl Strategy<Value = Element> {
    let cycle = 0u64..100_000;
    prop_oneof![
        (cycle.clone(), any::<u64>(), 0u32..256)
            .prop_map(|(c, seq, phys)| Element::Event(c, SptTraceEvent::TaintDest { seq, phys })),
        (cycle.clone(), 0u32..256, 0usize..4, any::<u64>()).prop_map(|(c, phys, mech, seq)| {
            let mechanism = ["forward", "backward", "shadow-l1", "stl-fwd"][mech];
            Element::Event(c, SptTraceEvent::Untaint { phys, mechanism, seq })
        }),
        (cycle.clone(), any::<u64>(), any::<u64>()).prop_map(|(c, seq, pc)| Element::Event(
            c,
            SptTraceEvent::TransmitterDelayed { seq, pc }
        )),
        (cycle, any::<u64>(), any::<u64>()).prop_map(|(c, seq, pc)| Element::Event(
            c,
            SptTraceEvent::ResolutionDeferred { seq, pc }
        )),
    ]
}

fn inst_strategy() -> impl Strategy<Value = Element> {
    (any::<u64>(), 0u64..1_000, 0u64..10_000, 0u64..16, 0u64..64, 0u64..512, 0u64..64, 0u8..3)
        .prop_map(
            |(pc, disasm_tag, fetch, rename_gap, issue_gap, complete_gap, retire_gap, fate)| {
                Element::Inst {
                    pc,
                    disasm_tag,
                    fetch,
                    rename_gap,
                    issue_gap,
                    complete_gap,
                    retire_gap,
                    fate,
                }
            },
        )
}

fn element_strategy() -> impl Strategy<Value = Vec<Element>> {
    proptest::collection::vec(prop_oneof![inst_strategy(), event_strategy()], 0..40)
}

proptest! {
    #[test]
    fn o3_roundtrip_is_byte_identical(elements in element_strategy()) {
        let mut buf = Vec::new();
        {
            let mut sink = O3PipeViewSink::with_events(&mut buf);
            let mut seq = 0u64;
            for el in &elements {
                match el {
                    Element::Event(cycle, ev) => sink.event(*cycle, ev),
                    Element::Inst {
                        pc,
                        disasm_tag,
                        fetch,
                        rename_gap,
                        issue_gap,
                        complete_gap,
                        retire_gap,
                        fate,
                    } => {
                        seq += 1;
                        let rename = fetch + rename_gap;
                        let issue = rename + issue_gap;
                        let complete = issue + complete_gap;
                        let retire = complete + retire_gap;
                        let disasm = format!("op{disasm_tag} r1, r2");
                        let rec = match fate {
                            // Retired: all stages populated.
                            0 => InstRecord {
                                seq,
                                pc: *pc,
                                disasm: &disasm,
                                fetch_cycle: *fetch,
                                rename_cycle: rename,
                                issue_cycle: Some(issue),
                                complete_cycle: Some(complete),
                                retire_cycle: Some(retire),
                                squash_cycle: None,
                            },
                            // Squashed before issue.
                            1 => InstRecord {
                                seq,
                                pc: *pc,
                                disasm: &disasm,
                                fetch_cycle: *fetch,
                                rename_cycle: rename,
                                issue_cycle: None,
                                complete_cycle: None,
                                retire_cycle: None,
                                squash_cycle: Some(issue),
                            },
                            // Squashed after completing (wrong path ran to
                            // the end).
                            _ => InstRecord {
                                seq,
                                pc: *pc,
                                disasm: &disasm,
                                fetch_cycle: *fetch,
                                rename_cycle: rename,
                                issue_cycle: Some(issue),
                                complete_cycle: Some(complete),
                                retire_cycle: None,
                                squash_cycle: Some(retire),
                            },
                        };
                        sink.inst(&rec);
                    }
                }
            }
            sink.flush().expect("in-memory flush");
        }
        let text = String::from_utf8(buf).expect("emitter writes utf8");
        let parsed = parse_o3_trace(&text).expect("emitter output parses");
        prop_assert_eq!(parsed.reemit(), text);

        // Parsed counts match what was generated.
        let insts =
            elements.iter().filter(|e| matches!(e, Element::Inst { .. })).count() as u64;
        let squashed = elements
            .iter()
            .filter(|e| matches!(e, Element::Inst { fate: 1 | 2, .. }))
            .count() as u64;
        let events = elements.iter().filter(|e| matches!(e, Element::Event(..))).count() as u64;
        let summary = parsed.summary();
        prop_assert_eq!(summary.instructions, insts);
        prop_assert_eq!(summary.squashed, squashed);
        prop_assert_eq!(summary.events, events);

        // Cycle fields survive the tick encoding exactly.
        let mut gen_iter = elements.iter().filter_map(|e| match e {
            Element::Inst { fetch, rename_gap, .. } => Some((*fetch, fetch + rename_gap)),
            _ => None,
        });
        for rec in &parsed.records {
            let (fetch, rename) = gen_iter.next().expect("record count matches");
            prop_assert_eq!(rec.fetch_cycle, fetch);
            prop_assert_eq!(rec.rename_cycle, rename);
        }
    }
}
