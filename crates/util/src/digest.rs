//! A tiny deterministic folding digest.
//!
//! The relational fuzzing harness compares *attacker-observable*
//! microarchitectural state across two runs that differ only in secret
//! bytes. Each component (cache tags, TLB reach, transmitter retire
//! timing, untaint decisions) folds itself into an [`Fnv64`]; equality of
//! the final digests is the paper's non-interference check. FNV-1a is used
//! because it is trivially portable and has no per-process randomization —
//! digests must be comparable across runs, job counts, and machines.

/// 64-bit FNV-1a folding hasher.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// The standard FNV-1a 64-bit offset basis.
    pub const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Folds in raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        }
    }

    /// Folds in one little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

/// One-shot digest of a `u64` sequence.
pub fn fnv64_of(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = Fnv64::new();
    for v in values {
        h.write_u64(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        assert_eq!(fnv64_of([1, 2, 3]), fnv64_of([1, 2, 3]));
        assert_ne!(fnv64_of([1, 2, 3]), fnv64_of([3, 2, 1]));
        assert_ne!(fnv64_of([0]), fnv64_of([]));
    }

    #[test]
    fn matches_reference_fnv1a() {
        // FNV-1a of the bytes "a" (0x61) per the published reference.
        let mut h = Fnv64::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }
}
