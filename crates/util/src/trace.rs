//! Pipeline trace plumbing: the [`TraceSink`] trait, the cheap
//! [`TraceHandle`] probe the simulator carries, a gem5
//! O3PipeView-compatible emitter whose output loads directly in Konata —
//! and the matching strict parser ([`parse_o3_trace`]) the attribution
//! tooling (`spt-attrib`) builds on.
//!
//! The design goal is *zero cost when disabled*: the machine carries a
//! `TraceHandle` (an `Option<Box<dyn TraceSink>>` newtype) and checks
//! `enabled()` — a null test — before formatting anything. Timestamps the
//! sink needs are plain `u64` stores into the ROB entry that happen
//! unconditionally; they never feed back into timing, so cycle counts and
//! attacker-observation digests are bit-identical with tracing on or off.
//!
//! # O3PipeView format
//!
//! gem5's `O3PipeView` debug-flag format, one record block per retired
//! (or squashed) instruction, ticks at 500 per cycle (the 2 GHz gem5
//! convention Konata expects):
//!
//! ```text
//! O3PipeView:fetch:500:0x0000000000000040:0:12:ld      r3, [r1]
//! O3PipeView:decode:1000
//! O3PipeView:rename:1000
//! O3PipeView:dispatch:1500
//! O3PipeView:issue:2000
//! O3PipeView:complete:2500
//! O3PipeView:retire:3000:store:0
//! ```
//!
//! Squashed instructions carry `retire:0` (Konata greys them out). Records
//! are flushed per instruction at retire/squash time, so all lines of one
//! instruction are contiguous as the parser requires.
//!
//! # SPT event lines
//!
//! A sink built with [`O3PipeViewSink::with_events`] additionally writes
//! one `SPTEvent:` line per SPT security event, in stream order (always
//! *between* instruction blocks, never inside one, because each block is
//! written atomically at retire/squash):
//!
//! ```text
//! SPTEvent:taint:<cycle>:<seq>:<phys>
//! SPTEvent:untaint:<cycle>:<phys>:<mechanism>:<producer-seq>
//! SPTEvent:xmit-delay:<cycle>:<seq>:0x<pc>
//! SPTEvent:resolve-defer:<cycle>:<seq>:0x<pc>
//! ```
//!
//! Cycles in event lines are plain machine cycles (not ticks). Konata and
//! gem5's own tooling key on the `O3PipeView:` prefix and skip foreign
//! lines; strict consumers can drop them with `grep -v '^SPTEvent:'`.
//! [`parse_o3_trace`] understands both line families and preserves the
//! interleaving, so emit → parse → [`ParsedTrace::reemit`] is
//! byte-identical.

use crate::json::Json;
use std::fmt;
use std::io::{self, Write};

/// Ticks per simulated cycle in emitted O3PipeView traces (gem5's 2 GHz
/// default tick rate, which Konata's importer assumes).
pub const TICKS_PER_CYCLE: u64 = 500;

/// Per-instruction lifecycle timestamps, handed to the sink when the
/// instruction leaves the pipeline (retire or squash).
///
/// Cycles are absolute machine cycles. `None` means the instruction never
/// reached that stage (e.g. squashed before issue).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstRecord<'a> {
    /// Global sequence number (fetch order).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Disassembly for the trace viewer.
    pub disasm: &'a str,
    /// Cycle the instruction entered the fetch queue.
    pub fetch_cycle: u64,
    /// Cycle it was renamed into the ROB.
    pub rename_cycle: u64,
    /// Cycle it issued to a functional unit / memory port.
    pub issue_cycle: Option<u64>,
    /// Cycle its result wrote back.
    pub complete_cycle: Option<u64>,
    /// Cycle it retired (`None` if squashed).
    pub retire_cycle: Option<u64>,
    /// Cycle it was squashed (`None` if retired).
    pub squash_cycle: Option<u64>,
}

/// SPT-specific events, emitted as they happen (not buffered per
/// instruction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SptTraceEvent {
    /// An instruction's destination register was born tainted.
    TaintDest {
        /// Sequence number of the producing instruction.
        seq: u64,
        /// Physical register that became tainted.
        phys: u32,
    },
    /// A physical register was untainted.
    Untaint {
        /// Physical register that became untainted.
        phys: u32,
        /// Untaint mechanism label (e.g. `"fwd"`, `"shadow_l1"`).
        mechanism: &'static str,
        /// Sequence number of the instruction whose rename tainted `phys`
        /// (the producer of the taint episode that just ended); 0 when the
        /// birth was not observed (e.g. sink attached mid-run). Lets the
        /// attribution tooling tie an untaint broadcast back to the
        /// instruction whose output it declassifies.
        seq: u64,
    },
    /// A ready transmitter was held back this cycle because an operand was
    /// still tainted.
    TransmitterDelayed {
        /// Sequence number of the blocked transmitter.
        seq: u64,
        /// Its program counter.
        pc: u64,
    },
    /// A resolved branch's squash/redirect was deferred because the branch
    /// was still tainted.
    ResolutionDeferred {
        /// Sequence number of the deferred branch.
        seq: u64,
        /// Its program counter.
        pc: u64,
    },
}

/// Consumer of pipeline trace events.
///
/// Implementations must not influence simulation state; the machine calls
/// them only when tracing is enabled and never reads anything back.
pub trait TraceSink {
    /// One instruction left the pipeline (retired or squashed).
    fn inst(&mut self, rec: &InstRecord<'_>);
    /// An SPT security event occurred at `cycle`.
    fn event(&mut self, cycle: u64, ev: &SptTraceEvent) {
        let _ = (cycle, ev);
    }
    /// Flush buffered output (called once at end of run).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The probe the simulator carries: `None` when tracing is off.
///
/// This is a newtype rather than a bare `Option<Box<dyn TraceSink>>` so
/// the machine can keep `#[derive(Clone, Debug)]`: cloning a machine
/// yields a handle with tracing disabled (sinks own writers and are not
/// duplicable), and `Debug` prints only the enabled flag.
#[derive(Default)]
pub struct TraceHandle(Option<Box<dyn TraceSink>>);

impl TraceHandle {
    /// A disabled handle (the default).
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// Wraps a sink.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        TraceHandle(Some(sink))
    }

    /// Whether a sink is attached. Callers gate all event formatting on
    /// this so the disabled path is a single null test.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The sink, if attached.
    #[inline]
    pub fn sink(&mut self) -> Option<&mut (dyn TraceSink + '_)> {
        match &mut self.0 {
            Some(s) => Some(s.as_mut()),
            None => None,
        }
    }

    /// Detaches and returns the sink.
    pub fn take(&mut self) -> Option<Box<dyn TraceSink>> {
        self.0.take()
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TraceHandle").field(&self.enabled()).finish()
    }
}

impl Clone for TraceHandle {
    /// Cloning a machine must not duplicate an output sink; the clone
    /// starts with tracing disabled.
    fn clone(&self) -> Self {
        TraceHandle(None)
    }
}

/// Renders one 7-line O3PipeView record block, exactly as
/// [`O3PipeViewSink`] writes it (shared with [`ParsedTrace::reemit`] so
/// round-tripping is byte-identical).
pub fn o3_block(rec: &InstRecord<'_>) -> String {
    use fmt::Write as _;
    let tick = |c: u64| c * TICKS_PER_CYCLE;
    // fetch tick 0 is reserved-ish in viewers; the machine's first
    // fetch happens at cycle 0, so shift every stage by one cycle.
    let fetch = tick(rec.fetch_cycle + 1);
    let rename = tick(rec.rename_cycle + 1);
    let mut out = String::with_capacity(160 + rec.disasm.len());
    let _ = writeln!(
        out,
        "O3PipeView:fetch:{fetch}:0x{pc:016x}:0:{seq}:{disasm}",
        pc = rec.pc,
        seq = rec.seq,
        disasm = rec.disasm
    );
    // This pipeline has no distinct decode stage; gem5's importer
    // requires the line, so it coincides with fetch-queue entry.
    let _ = writeln!(out, "O3PipeView:decode:{fetch}");
    let _ = writeln!(out, "O3PipeView:rename:{rename}");
    // Rename and dispatch are a single stage here.
    let _ = writeln!(out, "O3PipeView:dispatch:{rename}");
    let issue = rec.issue_cycle.map(|c| tick(c + 1)).unwrap_or(0);
    let _ = writeln!(out, "O3PipeView:issue:{issue}");
    let complete = rec.complete_cycle.map(|c| tick(c + 1)).unwrap_or(0);
    let _ = writeln!(out, "O3PipeView:complete:{complete}");
    // Squashed instructions carry retire tick 0.
    let retire = rec.retire_cycle.map(|c| tick(c + 1)).unwrap_or(0);
    let _ = writeln!(out, "O3PipeView:retire:{retire}:store:0");
    out
}

/// Renders one `SPTEvent:` line (shared between the emitter and
/// [`ParsedEvent::line`], so round-tripping is byte-identical).
pub fn o3_event_line(cycle: u64, ev: &SptTraceEvent) -> String {
    match *ev {
        SptTraceEvent::TaintDest { seq, phys } => format!("SPTEvent:taint:{cycle}:{seq}:{phys}\n"),
        SptTraceEvent::Untaint { phys, mechanism, seq } => {
            format!("SPTEvent:untaint:{cycle}:{phys}:{mechanism}:{seq}\n")
        }
        SptTraceEvent::TransmitterDelayed { seq, pc } => {
            format!("SPTEvent:xmit-delay:{cycle}:{seq}:0x{pc:016x}\n")
        }
        SptTraceEvent::ResolutionDeferred { seq, pc } => {
            format!("SPTEvent:resolve-defer:{cycle}:{seq}:0x{pc:016x}\n")
        }
    }
}

/// Writes gem5 O3PipeView records to any [`Write`] target, optionally
/// interleaved with `SPTEvent:` lines (see the module docs).
pub struct O3PipeViewSink<W: Write> {
    out: io::BufWriter<W>,
    error: Option<io::Error>,
    events: bool,
}

impl<W: Write> O3PipeViewSink<W> {
    /// Creates a sink writing pure O3PipeView record blocks to `out`.
    pub fn new(out: W) -> Self {
        O3PipeViewSink { out: io::BufWriter::new(out), error: None, events: false }
    }

    /// Creates a sink that also writes one `SPTEvent:` line per SPT
    /// security event — the format the `tracediff` attribution tool
    /// expects (viewers that key on the `O3PipeView:` prefix skip them).
    pub fn with_events(out: W) -> Self {
        O3PipeViewSink { out: io::BufWriter::new(out), error: None, events: true }
    }

    fn write_str(&mut self, s: &str) {
        if self.error.is_none() {
            if let Err(e) = self.out.write_all(s.as_bytes()) {
                self.error = Some(e);
            }
        }
    }
}

impl<W: Write> TraceSink for O3PipeViewSink<W> {
    fn inst(&mut self, rec: &InstRecord<'_>) {
        let block = o3_block(rec);
        self.write_str(&block);
    }

    fn event(&mut self, cycle: u64, ev: &SptTraceEvent) {
        if self.events {
            let line = o3_event_line(cycle, ev);
            self.write_str(&line);
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// A sink that records everything in memory — for tests and programmatic
/// trace inspection.
#[derive(Default)]
pub struct MemorySink {
    /// Owned copies of every instruction record, in emission order.
    pub insts: Vec<OwnedInstRecord>,
    /// Every SPT event with its cycle, in emission order.
    pub events: Vec<(u64, SptTraceEvent)>,
}

/// An [`InstRecord`] with an owned disassembly string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedInstRecord {
    /// See [`InstRecord::seq`].
    pub seq: u64,
    /// See [`InstRecord::pc`].
    pub pc: u64,
    /// See [`InstRecord::disasm`].
    pub disasm: String,
    /// See [`InstRecord::fetch_cycle`].
    pub fetch_cycle: u64,
    /// See [`InstRecord::rename_cycle`].
    pub rename_cycle: u64,
    /// See [`InstRecord::issue_cycle`].
    pub issue_cycle: Option<u64>,
    /// See [`InstRecord::complete_cycle`].
    pub complete_cycle: Option<u64>,
    /// See [`InstRecord::retire_cycle`].
    pub retire_cycle: Option<u64>,
    /// See [`InstRecord::squash_cycle`].
    pub squash_cycle: Option<u64>,
}

impl OwnedInstRecord {
    /// A borrowed view suitable for re-emission through a [`TraceSink`].
    pub fn as_record(&self) -> InstRecord<'_> {
        InstRecord {
            seq: self.seq,
            pc: self.pc,
            disasm: &self.disasm,
            fetch_cycle: self.fetch_cycle,
            rename_cycle: self.rename_cycle,
            issue_cycle: self.issue_cycle,
            complete_cycle: self.complete_cycle,
            retire_cycle: self.retire_cycle,
            squash_cycle: self.squash_cycle,
        }
    }

    /// Whether the record describes a retired (vs. squashed) instruction.
    pub fn retired(&self) -> bool {
        self.retire_cycle.is_some()
    }
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for MemorySink {
    fn inst(&mut self, rec: &InstRecord<'_>) {
        self.insts.push(OwnedInstRecord {
            seq: rec.seq,
            pc: rec.pc,
            disasm: rec.disasm.to_string(),
            fetch_cycle: rec.fetch_cycle,
            rename_cycle: rec.rename_cycle,
            issue_cycle: rec.issue_cycle,
            complete_cycle: rec.complete_cycle,
            retire_cycle: rec.retire_cycle,
            squash_cycle: rec.squash_cycle,
        });
    }

    fn event(&mut self, cycle: u64, ev: &SptTraceEvent) {
        self.events.push((cycle, ev.clone()));
    }
}

/// Summary returned by [`validate_o3_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct O3TraceSummary {
    /// Instruction record blocks (one `fetch` line each).
    pub instructions: u64,
    /// Blocks with a non-zero retire tick.
    pub retired: u64,
    /// Blocks with retire tick 0 (squashed).
    pub squashed: u64,
    /// `SPTEvent:` lines.
    pub events: u64,
}

/// One parsed `SPTEvent:` line (an [`SptTraceEvent`] with owned strings
/// plus its position in the stream).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedEvent {
    /// Machine cycle the event occurred.
    pub cycle: u64,
    /// Number of instruction blocks that preceded this line — preserves
    /// the emission interleaving so [`ParsedTrace::reemit`] is exact.
    pub after_block: u64,
    /// The event payload.
    pub kind: ParsedEventKind,
}

/// Owned payload of a parsed `SPTEvent:` line. Field meanings mirror
/// [`SptTraceEvent`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParsedEventKind {
    /// `SPTEvent:taint:` — a destination register was born tainted.
    Taint {
        /// Producing instruction.
        seq: u64,
        /// Tainted physical register.
        phys: u32,
    },
    /// `SPTEvent:untaint:` — a physical register was untainted.
    Untaint {
        /// Untainted physical register.
        phys: u32,
        /// Untaint mechanism label.
        mechanism: String,
        /// Producer seq of the ended taint episode (0 = unknown).
        seq: u64,
    },
    /// `SPTEvent:xmit-delay:` — a ready transmitter was held this cycle.
    TransmitterDelayed {
        /// Blocked transmitter.
        seq: u64,
        /// Its program counter.
        pc: u64,
    },
    /// `SPTEvent:resolve-defer:` — a branch's resolution was deferred.
    ResolutionDeferred {
        /// Deferred branch (or store with a pending violation).
        seq: u64,
        /// Its program counter.
        pc: u64,
    },
}

impl ParsedEvent {
    /// Renders the line exactly as the emitter wrote it.
    pub fn line(&self) -> String {
        match &self.kind {
            ParsedEventKind::Taint { seq, phys } => {
                format!("SPTEvent:taint:{}:{seq}:{phys}\n", self.cycle)
            }
            ParsedEventKind::Untaint { phys, mechanism, seq } => {
                format!("SPTEvent:untaint:{}:{phys}:{mechanism}:{seq}\n", self.cycle)
            }
            ParsedEventKind::TransmitterDelayed { seq, pc } => {
                format!("SPTEvent:xmit-delay:{}:{seq}:0x{pc:016x}\n", self.cycle)
            }
            ParsedEventKind::ResolutionDeferred { seq, pc } => {
                format!("SPTEvent:resolve-defer:{}:{seq}:0x{pc:016x}\n", self.cycle)
            }
        }
    }
}

/// A fully parsed trace: instruction records in emission order plus every
/// `SPTEvent:` line with its interleaving position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParsedTrace {
    /// Instruction records, in emission (retire/squash) order.
    pub records: Vec<OwnedInstRecord>,
    /// Event lines, in emission order.
    pub events: Vec<ParsedEvent>,
}

impl ParsedTrace {
    /// Block/event counts, as [`validate_o3_trace`] reports them.
    pub fn summary(&self) -> O3TraceSummary {
        let retired = self.records.iter().filter(|r| r.retired()).count() as u64;
        O3TraceSummary {
            instructions: self.records.len() as u64,
            retired,
            squashed: self.records.len() as u64 - retired,
            events: self.events.len() as u64,
        }
    }

    /// Re-emits the trace text. For traces produced by
    /// [`O3PipeViewSink`], the output is byte-identical to the input of
    /// [`parse_o3_trace`] (the round-trip the proptest pins).
    pub fn reemit(&self) -> String {
        let mut out = String::new();
        let mut ev = self.events.iter().peekable();
        for (i, rec) in self.records.iter().enumerate() {
            while let Some(e) = ev.peek() {
                if e.after_block <= i as u64 {
                    out.push_str(&e.line());
                    ev.next();
                } else {
                    break;
                }
            }
            out.push_str(&o3_block(&rec.as_record()));
        }
        for e in ev {
            out.push_str(&e.line());
        }
        out
    }

    /// The retired records, in retire order (the order blocks are
    /// emitted), paired with their 0-based retire rank.
    pub fn retired(&self) -> impl Iterator<Item = (u64, &OwnedInstRecord)> {
        self.records.iter().filter(|r| r.retired()).enumerate().map(|(i, r)| (i as u64, r))
    }

    /// Cycle of the last retirement (0 for a trace with no retired
    /// records).
    pub fn last_retire_cycle(&self) -> u64 {
        self.records.iter().filter_map(|r| r.retire_cycle).max().unwrap_or(0)
    }
}

/// Converts a non-zero O3PipeView tick back to the machine cycle the
/// emitter encoded (`tick = (cycle + 1) * TICKS_PER_CYCLE`).
fn tick_to_cycle(tick: u64, lineno: usize) -> Result<u64, String> {
    if !tick.is_multiple_of(TICKS_PER_CYCLE) || tick == 0 {
        return Err(format!(
            "line {lineno}: tick {tick} is not a positive multiple of {TICKS_PER_CYCLE}"
        ));
    }
    Ok(tick / TICKS_PER_CYCLE - 1)
}

fn parse_event_line(rest: &str, lineno: usize, after_block: u64) -> Result<ParsedEvent, String> {
    let err = |what: &str| format!("line {lineno}: {what}");
    let fields: Vec<&str> = rest.split(':').collect();
    let num = |s: &str, what: &str| -> Result<u64, String> {
        s.parse::<u64>().map_err(|_| err(&format!("bad {what} `{s}`")))
    };
    let pc_of = |s: &str| -> Result<u64, String> {
        let hex = s.strip_prefix("0x").ok_or_else(|| err(&format!("bad pc `{s}`")))?;
        u64::from_str_radix(hex, 16).map_err(|_| err(&format!("bad pc `{s}`")))
    };
    let kind = match fields.first().copied() {
        Some("taint") if fields.len() == 4 => ParsedEventKind::Taint {
            seq: num(fields[2], "seq")?,
            phys: num(fields[3], "phys")? as u32,
        },
        Some("untaint") if fields.len() == 5 => ParsedEventKind::Untaint {
            phys: num(fields[2], "phys")? as u32,
            mechanism: fields[3].to_string(),
            seq: num(fields[4], "seq")?,
        },
        Some("xmit-delay") if fields.len() == 4 => ParsedEventKind::TransmitterDelayed {
            seq: num(fields[2], "seq")?,
            pc: pc_of(fields[3])?,
        },
        Some("resolve-defer") if fields.len() == 4 => ParsedEventKind::ResolutionDeferred {
            seq: num(fields[2], "seq")?,
            pc: pc_of(fields[3])?,
        },
        _ => return Err(err("malformed SPTEvent record")),
    };
    let cycle = num(fields[1], "cycle")?;
    Ok(ParsedEvent { cycle, after_block, kind })
}

/// Strictly parses an O3PipeView trace (optionally with interleaved
/// `SPTEvent:` lines) into instruction records and events.
///
/// Strictness matches the old inline validator and then some: every
/// `O3PipeView:` line must belong to a well-formed 7-line record block
/// (`fetch`, `decode`, `rename`, `dispatch`, `issue`, `complete`,
/// `retire`) with monotone non-decreasing ticks within a block (ignoring
/// the 0 "never reached" marker), ticks must be positive multiples of
/// [`TICKS_PER_CYCLE`], and `SPTEvent:` lines may only appear between
/// blocks.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based).
pub fn parse_o3_trace(text: &str) -> Result<ParsedTrace, String> {
    const STAGES: [&str; 7] =
        ["fetch", "decode", "rename", "dispatch", "issue", "complete", "retire"];
    let mut trace = ParsedTrace::default();
    let mut stage_idx = 0usize; // next expected stage within the block
    let mut last_tick = 0u64;
    // Fields of the block being assembled.
    let mut cur = OwnedInstRecord {
        seq: 0,
        pc: 0,
        disasm: String::new(),
        fetch_cycle: 0,
        rename_cycle: 0,
        issue_cycle: None,
        complete_cycle: None,
        retire_cycle: None,
        squash_cycle: None,
    };
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if let Some(rest) = line.strip_prefix("SPTEvent:") {
            if stage_idx != 0 {
                return Err(format!("line {lineno}: SPTEvent inside a record block"));
            }
            trace.events.push(parse_event_line(rest, lineno, trace.records.len() as u64)?);
            continue;
        }
        let rest = line
            .strip_prefix("O3PipeView:")
            .ok_or_else(|| format!("line {lineno}: missing O3PipeView prefix"))?;
        let expected = STAGES[stage_idx];
        let rest = rest
            .strip_prefix(expected)
            .and_then(|r| r.strip_prefix(':'))
            .ok_or_else(|| format!("line {lineno}: expected `{expected}` record"))?;
        let tick_str = rest.split(':').next().unwrap_or("");
        let tick: u64 =
            tick_str.parse().map_err(|_| format!("line {lineno}: bad tick `{tick_str}`"))?;
        match expected {
            "fetch" => {
                // fetch:<tick>:0x<pc>:0:<seq>:<disasm>
                let fields: Vec<&str> = rest.splitn(5, ':').collect();
                if fields.len() != 5 || !fields[1].starts_with("0x") {
                    return Err(format!("line {lineno}: malformed fetch record"));
                }
                cur.pc = u64::from_str_radix(&fields[1][2..], 16)
                    .map_err(|_| format!("line {lineno}: bad pc `{}`", fields[1]))?;
                cur.seq = fields[3]
                    .parse::<u64>()
                    .map_err(|_| format!("line {lineno}: bad seq `{}`", fields[3]))?;
                cur.disasm = fields[4].to_string();
                cur.fetch_cycle = tick_to_cycle(tick, lineno)?;
                last_tick = tick;
            }
            "retire" => {
                if !rest.contains(":store:") {
                    return Err(format!("line {lineno}: retire record missing store field"));
                }
                if tick == 0 {
                    cur.retire_cycle = None;
                } else {
                    if tick < last_tick {
                        return Err(format!("line {lineno}: retire tick regressed"));
                    }
                    cur.retire_cycle = Some(tick_to_cycle(tick, lineno)?);
                }
            }
            _ => {
                // Tick 0 marks a stage the instruction never reached.
                if tick != 0 {
                    if tick < last_tick {
                        return Err(format!("line {lineno}: tick regressed in `{expected}`"));
                    }
                    last_tick = tick;
                    let cycle = tick_to_cycle(tick, lineno)?;
                    match expected {
                        "rename" => cur.rename_cycle = cycle,
                        "issue" => cur.issue_cycle = Some(cycle),
                        "complete" => cur.complete_cycle = Some(cycle),
                        // decode/dispatch coincide with fetch/rename in
                        // this pipeline; their ticks are validated but not
                        // stored.
                        _ => {}
                    }
                }
            }
        }
        stage_idx = (stage_idx + 1) % STAGES.len();
        if stage_idx == 0 {
            trace.records.push(std::mem::replace(
                &mut cur,
                OwnedInstRecord {
                    seq: 0,
                    pc: 0,
                    disasm: String::new(),
                    fetch_cycle: 0,
                    rename_cycle: 0,
                    issue_cycle: None,
                    complete_cycle: None,
                    retire_cycle: None,
                    squash_cycle: None,
                },
            ));
        }
    }
    if stage_idx != 0 {
        return Err("trace ends mid-record".into());
    }
    Ok(trace)
}

/// Strictly validates an O3PipeView trace and reports block counts.
///
/// This is [`parse_o3_trace`] with the records thrown away — kept as the
/// cheap entry point for the CLI tests and the CI observability gate.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based).
pub fn validate_o3_trace(text: &str) -> Result<O3TraceSummary, String> {
    parse_o3_trace(text).map(|t| t.summary())
}

/// Renders a trace-validation summary as JSON (used by the CI gate's
/// machine-readable output).
pub fn o3_summary_json(s: &O3TraceSummary) -> Json {
    Json::obj([
        ("instructions", Json::U64(s.instructions)),
        ("retired", Json::U64(s.retired)),
        ("squashed", Json::U64(s.squashed)),
        ("events", Json::U64(s.events)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> InstRecord<'static> {
        InstRecord {
            seq,
            pc: 0x40 + seq * 4,
            disasm: "add r1, r2, r3",
            fetch_cycle: seq,
            rename_cycle: seq + 1,
            issue_cycle: Some(seq + 2),
            complete_cycle: Some(seq + 3),
            retire_cycle: Some(seq + 4),
            squash_cycle: None,
        }
    }

    fn squashed(seq: u64) -> InstRecord<'static> {
        InstRecord {
            issue_cycle: None,
            complete_cycle: None,
            retire_cycle: None,
            squash_cycle: Some(seq + 7),
            ..rec(seq)
        }
    }

    #[test]
    fn o3_emitter_output_validates() {
        let mut buf = Vec::new();
        {
            let mut sink = O3PipeViewSink::new(&mut buf);
            sink.inst(&rec(0));
            sink.inst(&rec(1));
            sink.inst(&squashed(2));
            sink.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let summary = validate_o3_trace(&text).unwrap();
        assert_eq!(summary.instructions, 3);
        assert_eq!(summary.retired, 2);
        assert_eq!(summary.squashed, 1);
        assert!(text.starts_with("O3PipeView:fetch:500:0x0000000000000040:0:0:add"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_o3_trace("not a trace\n").is_err());
        assert!(validate_o3_trace("O3PipeView:fetch:500:0x40:0:1:nop\n").is_err()); // mid-record
                                                                                    // Tick regression within a block.
        let bad = "O3PipeView:fetch:1000:0x0000000000000040:0:0:nop\n\
                   O3PipeView:decode:1000\nO3PipeView:rename:500\nO3PipeView:dispatch:500\n\
                   O3PipeView:issue:0\nO3PipeView:complete:0\nO3PipeView:retire:0:store:0\n";
        assert!(validate_o3_trace(bad).unwrap_err().contains("regressed"));
    }

    #[test]
    fn empty_trace_is_valid_and_empty() {
        assert_eq!(validate_o3_trace("").unwrap(), O3TraceSummary::default());
    }

    #[test]
    fn handle_clone_disables() {
        let handle = TraceHandle::new(Box::new(MemorySink::new()));
        assert!(handle.enabled());
        let cloned = handle.clone();
        assert!(!cloned.enabled());
        assert_eq!(format!("{handle:?}"), "TraceHandle(true)");
    }

    #[test]
    fn memory_sink_captures_events() {
        let mut sink = MemorySink::new();
        sink.event(3, &SptTraceEvent::Untaint { phys: 7, mechanism: "fwd", seq: 12 });
        sink.inst(&rec(5));
        assert_eq!(sink.events.len(), 1);
        assert_eq!(sink.insts[0].seq, 5);
        assert_eq!(sink.insts[0].retire_cycle, Some(9));
    }

    #[test]
    fn parse_recovers_cycles_exactly() {
        let mut buf = Vec::new();
        {
            let mut sink = O3PipeViewSink::new(&mut buf);
            sink.inst(&rec(3));
            sink.inst(&squashed(4));
            sink.flush().unwrap();
        }
        let trace = parse_o3_trace(&String::from_utf8(buf).unwrap()).unwrap();
        assert_eq!(trace.records.len(), 2);
        let r = &trace.records[0];
        assert_eq!((r.seq, r.pc), (3, 0x40 + 12));
        assert_eq!(r.fetch_cycle, 3);
        assert_eq!(r.rename_cycle, 4);
        assert_eq!(r.issue_cycle, Some(5));
        assert_eq!(r.complete_cycle, Some(6));
        assert_eq!(r.retire_cycle, Some(7));
        assert_eq!(r.disasm, "add r1, r2, r3");
        let s = &trace.records[1];
        assert!(!s.retired());
        assert_eq!(s.issue_cycle, None);
        assert_eq!(trace.last_retire_cycle(), 7);
        assert_eq!(trace.retired().count(), 1);
    }

    #[test]
    fn event_lines_parse_and_interleave() {
        let mut buf = Vec::new();
        {
            let mut sink = O3PipeViewSink::with_events(&mut buf);
            sink.event(2, &SptTraceEvent::TaintDest { seq: 1, phys: 33 });
            sink.inst(&rec(0));
            sink.event(9, &SptTraceEvent::TransmitterDelayed { seq: 2, pc: 0x48 });
            sink.event(10, &SptTraceEvent::Untaint { phys: 33, mechanism: "shadow-l1", seq: 1 });
            sink.inst(&rec(1));
            sink.event(11, &SptTraceEvent::ResolutionDeferred { seq: 3, pc: 0x50 });
            sink.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let trace = parse_o3_trace(&text).unwrap();
        assert_eq!(trace.summary().events, 4);
        assert_eq!(trace.events[0].after_block, 0);
        assert_eq!(trace.events[1].after_block, 1);
        assert_eq!(trace.events[3].after_block, 2);
        assert_eq!(
            trace.events[2].kind,
            ParsedEventKind::Untaint { phys: 33, mechanism: "shadow-l1".into(), seq: 1 }
        );
        assert_eq!(trace.events[3].kind, ParsedEventKind::ResolutionDeferred { seq: 3, pc: 0x50 });
        // The old strict validator contract still holds on event traces.
        let summary = validate_o3_trace(&text).unwrap();
        assert_eq!(summary.instructions, 2);
    }

    #[test]
    fn event_line_inside_block_is_rejected() {
        let text = "O3PipeView:fetch:500:0x0000000000000040:0:0:nop\n\
                    SPTEvent:taint:1:2:3\n";
        assert!(parse_o3_trace(text).unwrap_err().contains("inside a record block"));
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let mut buf = Vec::new();
        {
            let mut sink = O3PipeViewSink::with_events(&mut buf);
            sink.event(0, &SptTraceEvent::TaintDest { seq: 7, phys: 5 });
            sink.inst(&rec(0));
            sink.inst(&squashed(1));
            sink.event(12, &SptTraceEvent::Untaint { phys: 5, mechanism: "forward", seq: 7 });
            sink.inst(&rec(2));
            sink.event(20, &SptTraceEvent::TransmitterDelayed { seq: 9, pc: 0xabc });
            sink.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let trace = parse_o3_trace(&text).unwrap();
        assert_eq!(trace.reemit(), text);
    }
}
