//! Pipeline trace plumbing: the [`TraceSink`] trait, the cheap
//! [`TraceHandle`] probe the simulator carries, and a gem5
//! O3PipeView-compatible emitter whose output loads directly in Konata.
//!
//! The design goal is *zero cost when disabled*: the machine carries a
//! `TraceHandle` (an `Option<Box<dyn TraceSink>>` newtype) and checks
//! `enabled()` — a null test — before formatting anything. Timestamps the
//! sink needs are plain `u64` stores into the ROB entry that happen
//! unconditionally; they never feed back into timing, so cycle counts and
//! attacker-observation digests are bit-identical with tracing on or off.
//!
//! # O3PipeView format
//!
//! gem5's `O3PipeView` debug-flag format, one record block per retired
//! (or squashed) instruction, ticks at 500 per cycle (the 2 GHz gem5
//! convention Konata expects):
//!
//! ```text
//! O3PipeView:fetch:500:0x0000000000000040:0:12:ld      r3, [r1]
//! O3PipeView:decode:1000
//! O3PipeView:rename:1000
//! O3PipeView:dispatch:1500
//! O3PipeView:issue:2000
//! O3PipeView:complete:2500
//! O3PipeView:retire:3000:store:0
//! ```
//!
//! Squashed instructions carry `retire:0` (Konata greys them out). Records
//! are flushed per instruction at retire/squash time, so all lines of one
//! instruction are contiguous as the parser requires.

use crate::json::Json;
use std::fmt;
use std::io::{self, Write};

/// Ticks per simulated cycle in emitted O3PipeView traces (gem5's 2 GHz
/// default tick rate, which Konata's importer assumes).
pub const TICKS_PER_CYCLE: u64 = 500;

/// Per-instruction lifecycle timestamps, handed to the sink when the
/// instruction leaves the pipeline (retire or squash).
///
/// Cycles are absolute machine cycles. `None` means the instruction never
/// reached that stage (e.g. squashed before issue).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InstRecord<'a> {
    /// Global sequence number (fetch order).
    pub seq: u64,
    /// Program counter.
    pub pc: u64,
    /// Disassembly for the trace viewer.
    pub disasm: &'a str,
    /// Cycle the instruction entered the fetch queue.
    pub fetch_cycle: u64,
    /// Cycle it was renamed into the ROB.
    pub rename_cycle: u64,
    /// Cycle it issued to a functional unit / memory port.
    pub issue_cycle: Option<u64>,
    /// Cycle its result wrote back.
    pub complete_cycle: Option<u64>,
    /// Cycle it retired (`None` if squashed).
    pub retire_cycle: Option<u64>,
    /// Cycle it was squashed (`None` if retired).
    pub squash_cycle: Option<u64>,
}

/// SPT-specific events, emitted as they happen (not buffered per
/// instruction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SptTraceEvent {
    /// An instruction's destination register was born tainted.
    TaintDest {
        /// Sequence number of the producing instruction.
        seq: u64,
        /// Physical register that became tainted.
        phys: u32,
    },
    /// A physical register was untainted.
    Untaint {
        /// Physical register that became untainted.
        phys: u32,
        /// Untaint mechanism label (e.g. `"fwd"`, `"shadow_l1"`).
        mechanism: &'static str,
    },
    /// A ready transmitter was held back this cycle because an operand was
    /// still tainted.
    TransmitterDelayed {
        /// Sequence number of the blocked transmitter.
        seq: u64,
        /// Its program counter.
        pc: u64,
    },
    /// A resolved branch's squash/redirect was deferred because the branch
    /// was still tainted.
    ResolutionDeferred {
        /// Sequence number of the deferred branch.
        seq: u64,
        /// Its program counter.
        pc: u64,
    },
}

/// Consumer of pipeline trace events.
///
/// Implementations must not influence simulation state; the machine calls
/// them only when tracing is enabled and never reads anything back.
pub trait TraceSink {
    /// One instruction left the pipeline (retired or squashed).
    fn inst(&mut self, rec: &InstRecord<'_>);
    /// An SPT security event occurred at `cycle`.
    fn event(&mut self, cycle: u64, ev: &SptTraceEvent) {
        let _ = (cycle, ev);
    }
    /// Flush buffered output (called once at end of run).
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The probe the simulator carries: `None` when tracing is off.
///
/// This is a newtype rather than a bare `Option<Box<dyn TraceSink>>` so
/// the machine can keep `#[derive(Clone, Debug)]`: cloning a machine
/// yields a handle with tracing disabled (sinks own writers and are not
/// duplicable), and `Debug` prints only the enabled flag.
#[derive(Default)]
pub struct TraceHandle(Option<Box<dyn TraceSink>>);

impl TraceHandle {
    /// A disabled handle (the default).
    pub fn disabled() -> Self {
        TraceHandle(None)
    }

    /// Wraps a sink.
    pub fn new(sink: Box<dyn TraceSink>) -> Self {
        TraceHandle(Some(sink))
    }

    /// Whether a sink is attached. Callers gate all event formatting on
    /// this so the disabled path is a single null test.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The sink, if attached.
    #[inline]
    pub fn sink(&mut self) -> Option<&mut (dyn TraceSink + '_)> {
        match &mut self.0 {
            Some(s) => Some(s.as_mut()),
            None => None,
        }
    }

    /// Detaches and returns the sink.
    pub fn take(&mut self) -> Option<Box<dyn TraceSink>> {
        self.0.take()
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("TraceHandle").field(&self.enabled()).finish()
    }
}

impl Clone for TraceHandle {
    /// Cloning a machine must not duplicate an output sink; the clone
    /// starts with tracing disabled.
    fn clone(&self) -> Self {
        TraceHandle(None)
    }
}

/// Writes gem5 O3PipeView records to any [`Write`] target.
pub struct O3PipeViewSink<W: Write> {
    out: io::BufWriter<W>,
    error: Option<io::Error>,
}

impl<W: Write> O3PipeViewSink<W> {
    /// Creates a sink writing to `out`.
    pub fn new(out: W) -> Self {
        O3PipeViewSink { out: io::BufWriter::new(out), error: None }
    }

    fn emit(&mut self, rec: &InstRecord<'_>) -> io::Result<()> {
        let tick = |c: u64| c * TICKS_PER_CYCLE;
        // fetch tick 0 is reserved-ish in viewers; the machine's first
        // fetch happens at cycle 0, so shift every stage by one cycle.
        let fetch = tick(rec.fetch_cycle + 1);
        let rename = tick(rec.rename_cycle + 1);
        writeln!(
            self.out,
            "O3PipeView:fetch:{fetch}:0x{pc:016x}:0:{seq}:{disasm}",
            pc = rec.pc,
            seq = rec.seq,
            disasm = rec.disasm
        )?;
        // This pipeline has no distinct decode stage; gem5's importer
        // requires the line, so it coincides with fetch-queue entry.
        writeln!(self.out, "O3PipeView:decode:{fetch}")?;
        writeln!(self.out, "O3PipeView:rename:{rename}")?;
        // Rename and dispatch are a single stage here.
        writeln!(self.out, "O3PipeView:dispatch:{rename}")?;
        let issue = rec.issue_cycle.map(|c| tick(c + 1)).unwrap_or(0);
        writeln!(self.out, "O3PipeView:issue:{issue}")?;
        let complete = rec.complete_cycle.map(|c| tick(c + 1)).unwrap_or(0);
        writeln!(self.out, "O3PipeView:complete:{complete}")?;
        // Squashed instructions carry retire tick 0.
        let retire = rec.retire_cycle.map(|c| tick(c + 1)).unwrap_or(0);
        writeln!(self.out, "O3PipeView:retire:{retire}:store:0")?;
        Ok(())
    }
}

impl<W: Write> TraceSink for O3PipeViewSink<W> {
    fn inst(&mut self, rec: &InstRecord<'_>) {
        if self.error.is_none() {
            if let Err(e) = self.emit(rec) {
                self.error = Some(e);
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// A sink that records everything in memory — for tests and programmatic
/// trace inspection.
#[derive(Default)]
pub struct MemorySink {
    /// Owned copies of every instruction record, in emission order.
    pub insts: Vec<OwnedInstRecord>,
    /// Every SPT event with its cycle, in emission order.
    pub events: Vec<(u64, SptTraceEvent)>,
}

/// An [`InstRecord`] with an owned disassembly string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedInstRecord {
    /// See [`InstRecord::seq`].
    pub seq: u64,
    /// See [`InstRecord::pc`].
    pub pc: u64,
    /// See [`InstRecord::disasm`].
    pub disasm: String,
    /// See [`InstRecord::fetch_cycle`].
    pub fetch_cycle: u64,
    /// See [`InstRecord::rename_cycle`].
    pub rename_cycle: u64,
    /// See [`InstRecord::issue_cycle`].
    pub issue_cycle: Option<u64>,
    /// See [`InstRecord::complete_cycle`].
    pub complete_cycle: Option<u64>,
    /// See [`InstRecord::retire_cycle`].
    pub retire_cycle: Option<u64>,
    /// See [`InstRecord::squash_cycle`].
    pub squash_cycle: Option<u64>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for MemorySink {
    fn inst(&mut self, rec: &InstRecord<'_>) {
        self.insts.push(OwnedInstRecord {
            seq: rec.seq,
            pc: rec.pc,
            disasm: rec.disasm.to_string(),
            fetch_cycle: rec.fetch_cycle,
            rename_cycle: rec.rename_cycle,
            issue_cycle: rec.issue_cycle,
            complete_cycle: rec.complete_cycle,
            retire_cycle: rec.retire_cycle,
            squash_cycle: rec.squash_cycle,
        });
    }

    fn event(&mut self, cycle: u64, ev: &SptTraceEvent) {
        self.events.push((cycle, ev.clone()));
    }
}

/// Summary returned by [`validate_o3_trace`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct O3TraceSummary {
    /// Instruction record blocks (one `fetch` line each).
    pub instructions: u64,
    /// Blocks with a non-zero retire tick.
    pub retired: u64,
    /// Blocks with retire tick 0 (squashed).
    pub squashed: u64,
}

/// Strictly validates an O3PipeView trace: every line must belong to a
/// well-formed 7-line record block (`fetch`, `decode`, `rename`,
/// `dispatch`, `issue`, `complete`, `retire`), monotone non-decreasing
/// ticks within a block (ignoring the 0 "never reached" marker).
///
/// Used by the CLI tests and the CI observability gate.
///
/// # Errors
///
/// Returns a message naming the first offending line (1-based).
pub fn validate_o3_trace(text: &str) -> Result<O3TraceSummary, String> {
    const STAGES: [&str; 7] =
        ["fetch", "decode", "rename", "dispatch", "issue", "complete", "retire"];
    let mut summary = O3TraceSummary::default();
    let mut stage_idx = 0usize; // next expected stage within the block
    let mut last_tick = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let rest = line
            .strip_prefix("O3PipeView:")
            .ok_or_else(|| format!("line {lineno}: missing O3PipeView prefix"))?;
        let expected = STAGES[stage_idx];
        let rest = rest
            .strip_prefix(expected)
            .and_then(|r| r.strip_prefix(':'))
            .ok_or_else(|| format!("line {lineno}: expected `{expected}` record"))?;
        let tick_str = rest.split(':').next().unwrap_or("");
        let tick: u64 =
            tick_str.parse().map_err(|_| format!("line {lineno}: bad tick `{tick_str}`"))?;
        match expected {
            "fetch" => {
                // fetch:<tick>:0x<pc>:0:<seq>:<disasm>
                let fields: Vec<&str> = rest.splitn(5, ':').collect();
                if fields.len() != 5 || !fields[1].starts_with("0x") {
                    return Err(format!("line {lineno}: malformed fetch record"));
                }
                u64::from_str_radix(&fields[1][2..], 16)
                    .map_err(|_| format!("line {lineno}: bad pc `{}`", fields[1]))?;
                fields[3]
                    .parse::<u64>()
                    .map_err(|_| format!("line {lineno}: bad seq `{}`", fields[3]))?;
                summary.instructions += 1;
                last_tick = tick;
            }
            "retire" => {
                if !rest.contains(":store:") {
                    return Err(format!("line {lineno}: retire record missing store field"));
                }
                if tick == 0 {
                    summary.squashed += 1;
                } else {
                    if tick < last_tick {
                        return Err(format!("line {lineno}: retire tick regressed"));
                    }
                    summary.retired += 1;
                }
            }
            _ => {
                // Tick 0 marks a stage the instruction never reached.
                if tick != 0 {
                    if tick < last_tick {
                        return Err(format!("line {lineno}: tick regressed in `{expected}`"));
                    }
                    last_tick = tick;
                }
            }
        }
        stage_idx = (stage_idx + 1) % STAGES.len();
    }
    if stage_idx != 0 {
        return Err("trace ends mid-record".into());
    }
    Ok(summary)
}

/// Renders a trace-validation summary as JSON (used by the CI gate's
/// machine-readable output).
pub fn o3_summary_json(s: &O3TraceSummary) -> Json {
    Json::obj([
        ("instructions", Json::U64(s.instructions)),
        ("retired", Json::U64(s.retired)),
        ("squashed", Json::U64(s.squashed)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64) -> InstRecord<'static> {
        InstRecord {
            seq,
            pc: 0x40 + seq * 4,
            disasm: "add r1, r2, r3",
            fetch_cycle: seq,
            rename_cycle: seq + 1,
            issue_cycle: Some(seq + 2),
            complete_cycle: Some(seq + 3),
            retire_cycle: Some(seq + 4),
            squash_cycle: None,
        }
    }

    #[test]
    fn o3_emitter_output_validates() {
        let mut buf = Vec::new();
        {
            let mut sink = O3PipeViewSink::new(&mut buf);
            sink.inst(&rec(0));
            sink.inst(&rec(1));
            let squashed = InstRecord {
                issue_cycle: None,
                complete_cycle: None,
                retire_cycle: None,
                squash_cycle: Some(9),
                ..rec(2)
            };
            sink.inst(&squashed);
            sink.flush().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let summary = validate_o3_trace(&text).unwrap();
        assert_eq!(summary.instructions, 3);
        assert_eq!(summary.retired, 2);
        assert_eq!(summary.squashed, 1);
        assert!(text.starts_with("O3PipeView:fetch:500:0x0000000000000040:0:0:add"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_o3_trace("not a trace\n").is_err());
        assert!(validate_o3_trace("O3PipeView:fetch:500:0x40:0:1:nop\n").is_err()); // mid-record
                                                                                    // Tick regression within a block.
        let bad = "O3PipeView:fetch:1000:0x0000000000000040:0:0:nop\n\
                   O3PipeView:decode:1000\nO3PipeView:rename:500\nO3PipeView:dispatch:500\n\
                   O3PipeView:issue:0\nO3PipeView:complete:0\nO3PipeView:retire:0:store:0\n";
        assert!(validate_o3_trace(bad).unwrap_err().contains("regressed"));
    }

    #[test]
    fn empty_trace_is_valid_and_empty() {
        assert_eq!(validate_o3_trace("").unwrap(), O3TraceSummary::default());
    }

    #[test]
    fn handle_clone_disables() {
        let handle = TraceHandle::new(Box::new(MemorySink::new()));
        assert!(handle.enabled());
        let cloned = handle.clone();
        assert!(!cloned.enabled());
        assert_eq!(format!("{handle:?}"), "TraceHandle(true)");
    }

    #[test]
    fn memory_sink_captures_events() {
        let mut sink = MemorySink::new();
        sink.event(3, &SptTraceEvent::Untaint { phys: 7, mechanism: "fwd" });
        sink.inst(&rec(5));
        assert_eq!(sink.events.len(), 1);
        assert_eq!(sink.insts[0].seq, 5);
        assert_eq!(sink.insts[0].retire_cycle, Some(9));
    }
}
