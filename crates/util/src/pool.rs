//! Bounded deterministic worker pool.
//!
//! Every cell of a sweep or fuzzing campaign is an independent task, so
//! drivers fan out over a scoped pool sized by
//! [`std::thread::available_parallelism`] and overridable with a `--jobs N`
//! flag. Results are written into pre-indexed slots, so everything derived
//! from them — CSV tables, fuzzing reports — is byte-identical to a
//! sequential run regardless of scheduling.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Worker count used when `--jobs` is not given: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Runs `n` independent tasks on a bounded scoped worker pool of `jobs`
/// threads and returns their results in task-index order.
///
/// Tasks are claimed from a shared atomic counter (so long tasks don't
/// serialize behind a static partition) and every result is placed into
/// its pre-indexed slot; output order therefore never depends on thread
/// scheduling. `jobs <= 1` degenerates to a plain sequential loop on the
/// calling thread — bit-identical results either way.
pub fn run_indexed<T, F>(n: usize, jobs: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(n);
    let mut slots: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
    if jobs <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = Some(task(i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let tx = tx.clone();
                let (next, task) = (&next, &task);
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if tx.send((i, task(i))).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            for (i, value) in rx {
                slots[i] = Some(value);
            }
        });
    }
    slots.into_iter().map(|s| s.expect("every task index was executed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_preserves_index_order() {
        for jobs in [1, 2, 7, 64] {
            let out = run_indexed(33, jobs, |i| i * i);
            assert_eq!(out, (0..33).map(|i| i * i).collect::<Vec<_>>(), "jobs = {jobs}");
        }
    }

    #[test]
    fn pool_handles_empty_and_oversized() {
        assert!(run_indexed(0, 8, |i| i).is_empty());
        assert_eq!(run_indexed(1, 8, |i| i + 1), vec![1]);
    }

    #[test]
    fn pool_results_can_carry_errors() {
        let out: Vec<Result<usize, String>> =
            run_indexed(8, 4, |i| if i == 5 { Err(format!("cell {i}")) } else { Ok(i) });
        assert_eq!(out[5], Err("cell 5".to_string()));
        assert_eq!(out[4], Ok(4));
    }
}
