//! Shared infrastructure with no simulator dependencies: the bounded
//! deterministic worker pool every sweep and fuzz driver fans out over
//! ([`run_indexed`]), and a tiny platform-independent folding digest
//! ([`Fnv64`]) used to summarize attacker-observable microarchitectural
//! state.
//!
//! This crate sits at the bottom of the dependency DAG (next to `spt-isa`)
//! precisely so that both the measurement side (`spt-bench`) and the
//! correctness side (`spt-fuzz`) can share one pool and one digest without
//! depending on each other.

pub mod digest;
pub mod pool;

pub use digest::Fnv64;
pub use pool::{default_jobs, run_indexed};
