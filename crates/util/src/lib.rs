//! Shared infrastructure with no simulator dependencies: the bounded
//! deterministic worker pool every sweep and fuzz driver fans out over
//! ([`run_indexed`]), a tiny platform-independent folding digest
//! ([`Fnv64`]) used to summarize attacker-observable microarchitectural
//! state, and the observability substrate — a hand-rolled [`Json`] tree
//! (the workspace is offline, so no serde), telemetry [`Histogram`]s, and
//! the [`TraceSink`] pipeline-trace plumbing with its gem5
//! O3PipeView-compatible emitter.
//!
//! This crate sits at the bottom of the dependency DAG (next to `spt-isa`)
//! precisely so that both the measurement side (`spt-bench`) and the
//! correctness side (`spt-fuzz`) can share one pool and one digest without
//! depending on each other.

pub mod digest;
pub mod hist;
pub mod json;
pub mod pool;
pub mod trace;

pub use digest::Fnv64;
pub use hist::{Histogram, Log2Histogram};
pub use json::{Json, JsonError};
pub use pool::{default_jobs, run_indexed};
pub use trace::{
    parse_o3_trace, validate_o3_trace, InstRecord, MemorySink, O3PipeViewSink, O3TraceSummary,
    OwnedInstRecord, ParsedEvent, ParsedEventKind, ParsedTrace, SptTraceEvent, TraceHandle,
    TraceSink, TICKS_PER_CYCLE,
};
