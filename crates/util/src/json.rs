//! A hand-rolled JSON value type, writer, and parser.
//!
//! The build environment is offline (no registry), so the telemetry layer
//! cannot depend on `serde`. This module provides the small subset the
//! stats documents need: a [`Json`] tree with deterministic object key
//! order (insertion order, so emitted documents are byte-stable across
//! runs), a compact and a pretty writer, and a strict recursive-descent
//! parser used by the round-trip tests and the CI trace validator.
//!
//! Numbers are kept in three lexical classes — `U64`, `I64`, `F64` — so
//! that 64-bit counters round-trip exactly (a plain `f64` representation
//! would silently lose precision above 2^53, and cycle counters and
//! digests get there).
//!
//! # Example
//!
//! ```
//! use spt_util::Json;
//! let doc = Json::obj([("cycles", Json::U64(1234)), ("ipc", Json::F64(2.5))]);
//! let text = doc.to_string();
//! assert_eq!(text, r#"{"cycles":1234,"ipc":2.5}"#);
//! assert_eq!(Json::parse(&text).unwrap(), doc);
//! ```

use std::fmt;

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (u64-exact).
    U64(u64),
    /// A negative integer (i64-exact; non-negative values parse as `U64`).
    I64(i64),
    /// A floating-point number. Non-finite values serialize as `null`
    /// (JSON has no representation for them).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Appends a field to an object.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            other => panic!("Json::push on non-object {other:?}"),
        }
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` counter, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` (unsigned values narrow when in range), if
    /// integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    #[allow(clippy::inherent_to_string_shadow_display)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation (for files meant to be read).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let mut buf = [0u8; 20];
                out.push_str(fmt_u64(*v, &mut buf));
            }
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest-roundtrip float formatting; force a
                    // fractional part so the value re-parses as F64.
                    let s = v.to_string();
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset on malformed input,
    /// including trailing garbage after the top-level value.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string())
    }
}

fn fmt_u64(v: u64, buf: &mut [u8; 20]) -> &str {
    let mut i = buf.len();
    let mut v = v;
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect a low surrogate.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue; // hex4 already advanced
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("peek saw a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
                Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
                Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for doc in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::F64(2.5),
            Json::F64(-1.0e-3),
            Json::str("hello \"quoted\" \\ \n\t world"),
        ] {
            let text = doc.to_string();
            assert_eq!(Json::parse(&text).unwrap(), doc, "text: {text}");
        }
    }

    #[test]
    fn u64_counters_are_exact() {
        // 2^53 + 1 is not representable in f64; the writer/parser must keep
        // it exact (digests and cycle counters live up here).
        let v = (1u64 << 53) + 1;
        let text = Json::U64(v).to_string();
        assert_eq!(text, "9007199254740993");
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(v));
    }

    #[test]
    fn nested_structure_roundtrips() {
        let doc = Json::obj([
            ("schema", Json::str("spt-stats-v1")),
            ("counts", Json::arr([Json::U64(1), Json::U64(2), Json::U64(3)])),
            (
                "nested",
                Json::obj([("empty_arr", Json::arr([])), ("empty_obj", Json::obj::<&str>([]))]),
            ),
            ("neg", Json::I64(-7)),
        ]);
        for text in [doc.to_string(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "text: {text}");
        }
    }

    #[test]
    fn object_key_order_is_preserved() {
        let doc = Json::obj([("z", Json::U64(1)), ("a", Json::U64(2))]);
        assert_eq!(doc.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::str("Aé"));
        // Surrogate pair for U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::str("\u{1F600}"));
    }

    #[test]
    fn float_without_fraction_reparses_as_float() {
        let text = Json::F64(3.0).to_string();
        assert_eq!(text, "3.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::F64(3.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn malformed_inputs_error_with_offset() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2", "01x"] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
        let e = Json::parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
    }

    #[test]
    fn getters() {
        let doc = Json::parse(r#"{"a": 1, "b": [true, "x"], "c": 1.5}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(doc.get("c").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("missing"), None);
    }
}
