//! Small fixed-overhead histograms for run telemetry.
//!
//! Two shapes cover everything the observability layer records:
//!
//! * [`Histogram`] — linear buckets of configurable width, auto-growing.
//!   Used for per-cycle structure occupancy (ROB/RS/LQ/SQ, MSHRs in
//!   flight) where the domain is small and bounded by a config knob.
//! * [`Log2Histogram`] — one bucket per bit-length. Used for latency
//!   distributions (taint-to-untaint, transmitter delay) whose tails are
//!   long and where the interesting resolution is "tens vs. thousands of
//!   cycles", not exact counts.
//!
//! Both render to [`Json`] with explicit bucket bounds so downstream
//! tooling never has to re-derive the bucketing scheme.

use crate::json::Json;

/// A linear-bucket histogram over `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    counts: Vec<u64>,
    samples: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram whose bucket `i` counts samples in
    /// `[i*width, (i+1)*width)`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: u64) -> Self {
        assert!(bucket_width > 0, "histogram bucket width must be positive");
        Histogram { bucket_width, counts: Vec::new(), samples: 0, sum: 0, max: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (value / self.bucket_width) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.samples += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest sample recorded (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Count in bucket `i` (0 beyond the populated range).
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts.get(i).copied().unwrap_or(0)
    }

    /// Upper-bound estimate of the `p`-quantile (`p` in `(0, 1]`): the
    /// inclusive upper edge of the bucket holding the `⌈p·samples⌉`-th
    /// smallest sample, clamped to the observed maximum. 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_rank(self.samples, p)
            .map(|rank| {
                let mut seen = 0u64;
                for (i, &c) in self.counts.iter().enumerate() {
                    seen += c;
                    if seen >= rank {
                        return ((i as u64 + 1) * self.bucket_width - 1).min(self.max);
                    }
                }
                self.max
            })
            .unwrap_or(0)
    }

    /// Renders as a JSON object with bucket bounds, counts, and summary
    /// statistics.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                Json::obj([
                    ("lo", Json::U64(i as u64 * self.bucket_width)),
                    ("hi", Json::U64((i as u64 + 1) * self.bucket_width)),
                    ("count", Json::U64(c)),
                ])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("kind", Json::str("linear")),
            ("bucket_width", Json::U64(self.bucket_width)),
            ("samples", Json::U64(self.samples)),
            ("sum", Json::U64(self.sum)),
            ("max", Json::U64(self.max)),
            ("mean", Json::F64(self.mean())),
            ("p50", Json::U64(self.percentile(0.50))),
            ("p90", Json::U64(self.percentile(0.90))),
            ("p99", Json::U64(self.percentile(0.99))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// Bucket-walk target for a quantile: the 1-based rank of the sample the
/// `p`-quantile falls on, or `None` for an empty histogram.
fn percentile_rank(samples: u64, p: f64) -> Option<u64> {
    if samples == 0 {
        return None;
    }
    let p = p.clamp(0.0, 1.0);
    Some(((p * samples as f64).ceil() as u64).clamp(1, samples))
}

/// A power-of-two-bucket histogram: bucket `i` counts samples whose bit
/// length is `i`, i.e. bucket 0 holds the value 0, bucket `i >= 1` holds
/// `[2^(i-1), 2^i)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; 65],
    samples: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { counts: [0; 65], samples: 0, sum: 0, max: 0 }
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = (u64::BITS - value.leading_zeros()) as usize;
        self.counts[idx] += 1;
        self.samples += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Largest sample recorded (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of all samples (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Count of samples with bit length `i` (bucket 0 = the value 0).
    pub fn bucket(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Upper-bound estimate of the `p`-quantile (`p` in `(0, 1]`): the
    /// inclusive upper edge of the bucket holding the `⌈p·samples⌉`-th
    /// smallest sample, clamped to the observed maximum. 0 if empty.
    pub fn percentile(&self, p: f64) -> u64 {
        percentile_rank(self.samples, p)
            .map(|rank| {
                let mut seen = 0u64;
                for (i, &c) in self.counts.iter().enumerate() {
                    seen += c;
                    if seen >= rank {
                        let hi = if i == 0 {
                            0
                        } else if i == 64 {
                            u64::MAX
                        } else {
                            (1u64 << i) - 1
                        };
                        return hi.min(self.max);
                    }
                }
                self.max
            })
            .unwrap_or(0)
    }

    /// Renders as a JSON object with bucket bounds, counts, and summary
    /// statistics.
    pub fn to_json(&self) -> Json {
        let buckets = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = if i == 0 { (0, 1) } else { (1u64 << (i - 1), 1u64 << i) };
                Json::obj([("lo", Json::U64(lo)), ("hi", Json::U64(hi)), ("count", Json::U64(c))])
            })
            .collect::<Vec<_>>();
        Json::obj([
            ("kind", Json::str("log2")),
            ("samples", Json::U64(self.samples)),
            ("sum", Json::U64(self.sum)),
            ("max", Json::U64(self.max)),
            ("mean", Json::F64(self.mean())),
            ("p50", Json::U64(self.percentile(0.50))),
            ("p90", Json::U64(self.percentile(0.90))),
            ("p99", Json::U64(self.percentile(0.99))),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_and_stats() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 3, 4, 7, 12] {
            h.record(v);
        }
        assert_eq!(h.samples(), 6);
        assert_eq!(h.max(), 12);
        assert_eq!(h.bucket(0), 3); // 0, 1, 3
        assert_eq!(h.bucket(1), 2); // 4, 7
        assert_eq!(h.bucket(2), 0);
        assert_eq!(h.bucket(3), 1); // 12
        assert!((h.mean() - 27.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn linear_json_has_bounds() {
        let mut h = Histogram::new(10);
        h.record(5);
        h.record(25);
        let j = h.to_json();
        let buckets = j.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].get("lo").and_then(Json::as_u64), Some(0));
        assert_eq!(buckets[1].get("lo").and_then(Json::as_u64), Some(20));
        assert_eq!(buckets[1].get("hi").and_then(Json::as_u64), Some(30));
    }

    #[test]
    fn log2_bucket_edges() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 1); // 0
        assert_eq!(h.bucket(1), 1); // 1
        assert_eq!(h.bucket(2), 2); // 2, 3
        assert_eq!(h.bucket(3), 2); // 4, 7
        assert_eq!(h.bucket(4), 1); // 8..16
        assert_eq!(h.bucket(10), 1); // 512..1024
        assert_eq!(h.bucket(11), 1); // 1024..2048
        assert_eq!(h.samples(), 9);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn log2_handles_u64_max() {
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.bucket(64), 1);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn empty_histograms_render() {
        assert_eq!(Histogram::new(1).to_json().get("samples").and_then(Json::as_u64), Some(0));
        assert_eq!(Log2Histogram::new().mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let _ = Histogram::new(0);
    }

    #[test]
    fn linear_percentiles() {
        let mut h = Histogram::new(1);
        for v in 1..=100u64 {
            h.record(v);
        }
        // Width-1 buckets make the bucket upper bound exact.
        assert_eq!(h.percentile(0.50), 50);
        assert_eq!(h.percentile(0.90), 90);
        assert_eq!(h.percentile(0.99), 99);
        assert_eq!(h.percentile(1.0), 100);
        // Coarse buckets report the bucket's inclusive upper edge,
        // clamped to the observed max.
        let mut c = Histogram::new(10);
        c.record(3);
        c.record(4);
        c.record(27);
        assert_eq!(c.percentile(0.50), 9);
        assert_eq!(c.percentile(0.99), 27); // bucket hi 29 clamped to max
        assert_eq!(Histogram::new(4).percentile(0.5), 0); // empty
    }

    #[test]
    fn log2_percentiles() {
        let mut h = Log2Histogram::new();
        for _ in 0..90 {
            h.record(1);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.percentile(0.50), 1);
        assert_eq!(h.percentile(0.90), 1);
        assert_eq!(h.percentile(0.99), 1000); // bucket hi 1023 clamped to max
        let mut z = Log2Histogram::new();
        z.record(0);
        assert_eq!(z.percentile(0.99), 0);
        z.record(u64::MAX);
        assert_eq!(z.percentile(1.0), u64::MAX);
        assert_eq!(Log2Histogram::new().percentile(0.5), 0); // empty
    }

    #[test]
    fn percentiles_in_json() {
        let mut h = Histogram::new(1);
        for v in 1..=10u64 {
            h.record(v);
        }
        let j = h.to_json();
        assert_eq!(j.get("p50").and_then(Json::as_u64), Some(5));
        assert_eq!(j.get("p90").and_then(Json::as_u64), Some(9));
        assert_eq!(j.get("p99").and_then(Json::as_u64), Some(10));
        let lj = Log2Histogram::new().to_json();
        assert_eq!(lj.get("p99").and_then(Json::as_u64), Some(0));
    }
}
