//! The full memory system: L1D → L2 → L3 → DRAM timing over a functional
//! backing store.

use crate::cache::{Cache, CacheConfig, CacheGeometry, LineEvent};
use spt_isa::interp::SparseMem;
use std::error::Error;
use std::fmt;

/// Which level of the hierarchy served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// L1 data cache.
    L1,
    /// Unified L2.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory.
    Dram,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::L3 => "L3",
            Level::Dram => "DRAM",
        };
        f.write_str(s)
    }
}

/// Latency/geometry parameters for the whole hierarchy (defaults = paper
/// Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// L2 cache.
    pub l2: CacheConfig,
    /// L3 cache.
    pub l3: CacheConfig,
    /// DRAM access latency (applied after the L3 lookup misses).
    pub dram_latency: u64,
}

impl Default for HierarchyConfig {
    fn default() -> HierarchyConfig {
        HierarchyConfig {
            l1: CacheConfig {
                geometry: CacheGeometry { size_bytes: 32 * 1024, assoc: 8, line_bytes: 64 },
                hit_latency: 2,
                mshrs: 16,
            },
            l2: CacheConfig {
                geometry: CacheGeometry { size_bytes: 256 * 1024, assoc: 16, line_bytes: 64 },
                hit_latency: 20,
                mshrs: 16,
            },
            l3: CacheConfig {
                geometry: CacheGeometry { size_bytes: 2 * 1024 * 1024, assoc: 16, line_bytes: 64 },
                hit_latency: 40,
                mshrs: 16,
            },
            // 50ns at 2GHz.
            dram_latency: 100,
        }
    }
}

/// Successful access: when the data is available and what happened to L1.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycle at which the access completes.
    pub done_at: u64,
    /// The level that had the line.
    pub served_by: Level,
    /// L1 line fills/evictions caused by this access, in order. SPT's
    /// shadow L1 consumes these to mirror the L1D (paper §7.5).
    pub l1_events: Vec<LineEvent>,
}

/// The access could not start because L1 MSHRs are exhausted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Earliest cycle at which retrying can succeed.
    pub retry_at: u64,
}

impl fmt::Display for Busy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "all MSHRs busy; retry at cycle {}", self.retry_at)
    }
}

impl Error for Busy {}

/// The complete memory system: three timing caches over functional memory.
///
/// # Example
///
/// ```
/// use spt_mem::{MemSystem, Level};
///
/// let mut m = MemSystem::default();
/// m.store().write(0x1000, 42, 8);
/// let (v, out) = m.read_timed(0x1000, 8, 0).unwrap();
/// assert_eq!(v, 42);
/// assert_eq!(out.served_by, Level::Dram); // cold miss
/// let (_, out) = m.read_timed(0x1000, 8, out.done_at).unwrap();
/// assert_eq!(out.served_by, Level::L1);
/// ```
#[derive(Clone, Debug)]
pub struct MemSystem {
    cfg: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    l3: Cache,
    store: SparseMem,
}

impl Default for MemSystem {
    fn default() -> MemSystem {
        MemSystem::new(HierarchyConfig::default())
    }
}

impl MemSystem {
    /// Creates an empty memory system.
    pub fn new(cfg: HierarchyConfig) -> MemSystem {
        MemSystem {
            cfg,
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            store: SparseMem::new(),
        }
    }

    /// The functional backing store (for initialization and inspection).
    pub fn store(&mut self) -> &mut SparseMem {
        &mut self.store
    }

    /// Read-only view of the backing store.
    pub fn store_ref(&self) -> &SparseMem {
        &self.store
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// The L1 data cache (stats, probing).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// The L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The L3 cache.
    pub fn l3(&self) -> &Cache {
        &self.l3
    }

    /// Digest of the attacker-observable tag state of all three data-side
    /// cache levels (see `Cache::fold_state`). Two runs with identical
    /// digests present an identical probe surface to a cache-timing
    /// receiver at every level.
    pub fn cache_digest(&self) -> u64 {
        let mut h = spt_util::Fnv64::new();
        for (level, cache) in [(1u64, &self.l1), (2, &self.l2), (3, &self.l3)] {
            h.write_u64(level);
            cache.fold_state(&mut h);
        }
        h.finish()
    }

    /// The innermost level currently holding `addr`'s line, without
    /// disturbing any state. This is the cache-timing attacker's receiver:
    /// a real attacker measures probe latency; the level is the same
    /// information.
    pub fn probe(&self, addr: u64) -> Level {
        if self.l1.probe(addr) {
            Level::L1
        } else if self.l2.probe(addr) {
            Level::L2
        } else if self.l3.probe(addr) {
            Level::L3
        } else {
            Level::Dram
        }
    }

    /// Computes the timing of an access beginning at `now` and updates the
    /// cache state, *without* touching data.
    ///
    /// # Errors
    ///
    /// Returns [`Busy`] if the access misses L1 and no L1 MSHR is free.
    pub fn access_timed(
        &mut self,
        addr: u64,
        now: u64,
        write: bool,
    ) -> Result<AccessOutcome, Busy> {
        // Coalesce with an in-flight miss on the same line: the access
        // completes when the outstanding fill does.
        if let Some(ready_at) = self.l1.outstanding_miss(addr) {
            if ready_at > now {
                // The fill already installed the line's future state; treat
                // as served by whichever level the original miss went to —
                // report L2 to approximate "partial hit under miss".
                return Ok(AccessOutcome {
                    done_at: ready_at,
                    served_by: Level::L2,
                    l1_events: Vec::new(),
                });
            }
        }

        let mut latency = self.l1.hit_latency();
        if self.l1.lookup(addr, write) {
            return Ok(AccessOutcome {
                done_at: now + latency,
                served_by: Level::L1,
                l1_events: Vec::new(),
            });
        }

        // L1 miss: need an MSHR.
        if !self.l1.mshr_available(addr, now) {
            let retry_at = self.l1.earliest_mshr_free().unwrap_or(now + 1).max(now + 1);
            return Err(Busy { retry_at });
        }

        let served_by;
        if self.l2.lookup(addr, write) {
            latency += self.l2.hit_latency();
            served_by = Level::L2;
        } else if self.l3.lookup(addr, write) {
            latency += self.l2.hit_latency() + self.l3.hit_latency();
            served_by = Level::L3;
            self.l2.fill(addr, write);
        } else {
            latency += self.l2.hit_latency() + self.l3.hit_latency() + self.cfg.dram_latency;
            served_by = Level::Dram;
            self.l3.fill(addr, write);
            self.l2.fill(addr, write);
        }

        let done_at = now + latency;
        self.l1.allocate_mshr(addr, now, done_at);
        let l1_events = self.l1.fill(addr, write);
        Ok(AccessOutcome { done_at, served_by, l1_events })
    }

    /// Timed read: returns the value and the access outcome.
    ///
    /// # Errors
    ///
    /// Returns [`Busy`] if no L1 MSHR is free.
    ///
    /// # Panics
    ///
    /// Panics if `size > 8`.
    pub fn read_timed(
        &mut self,
        addr: u64,
        size: u64,
        now: u64,
    ) -> Result<(u64, AccessOutcome), Busy> {
        let outcome = self.access_timed(addr, now, false)?;
        Ok((self.store.read(addr, size), outcome))
    }

    /// Timed write: updates the backing store and returns the outcome.
    ///
    /// # Errors
    ///
    /// Returns [`Busy`] if no L1 MSHR is free.
    ///
    /// # Panics
    ///
    /// Panics if `size > 8`.
    pub fn write_timed(
        &mut self,
        addr: u64,
        value: u64,
        size: u64,
        now: u64,
    ) -> Result<AccessOutcome, Busy> {
        let outcome = self.access_timed(addr, now, true)?;
        self.store.write(addr, value, size);
        Ok(outcome)
    }

    /// Evicts `addr`'s line from every level (a `clflush` equivalent, used
    /// by the attack programs' receiver phases). Returns L1 events.
    pub fn flush_line(&mut self, addr: u64) -> Vec<LineEvent> {
        let mut events = Vec::new();
        if let Some(e) = self.l1.invalidate(addr) {
            events.push(e);
        }
        self.l2.invalidate(addr);
        self.l3.invalidate(addr);
        events
    }

    /// Flushes all caches (between pen-test phases). Returns L1 events.
    pub fn flush_all(&mut self) -> Vec<LineEvent> {
        let events = self.l1.flush();
        self.l2.flush();
        self.l3.flush();
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_accumulates_by_level() {
        let mut m = MemSystem::default();
        let cfg = *m.config();
        // Cold: DRAM.
        let (_, out) = m.read_timed(0x4000, 8, 0).unwrap();
        assert_eq!(out.served_by, Level::Dram);
        assert_eq!(
            out.done_at,
            cfg.l1.hit_latency + cfg.l2.hit_latency + cfg.l3.hit_latency + cfg.dram_latency
        );
        // Warm: L1.
        let t = out.done_at;
        let (_, out) = m.read_timed(0x4000, 8, t).unwrap();
        assert_eq!(out.served_by, Level::L1);
        assert_eq!(out.done_at, t + cfg.l1.hit_latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = MemSystem::default();
        m.read_timed(0x0, 8, 0).unwrap();
        // Evict from L1 only.
        m.l1.invalidate(0x0);
        let (_, out) = m.read_timed(0x0, 8, 1000).unwrap();
        assert_eq!(out.served_by, Level::L2);
    }

    #[test]
    fn probe_reports_innermost_level() {
        let mut m = MemSystem::default();
        assert_eq!(m.probe(0x40), Level::Dram);
        m.read_timed(0x40, 8, 0).unwrap();
        assert_eq!(m.probe(0x40), Level::L1);
        m.l1.invalidate(0x40);
        assert_eq!(m.probe(0x40), Level::L2);
        m.flush_line(0x40);
        assert_eq!(m.probe(0x40), Level::Dram);
    }

    #[test]
    fn fill_events_reported_for_l1() {
        let mut m = MemSystem::default();
        let (_, out) = m.read_timed(0x1234, 8, 0).unwrap();
        assert_eq!(out.l1_events, vec![LineEvent::Fill { line_addr: 0x1200 }]);
    }

    #[test]
    fn writes_update_backing_store() {
        let mut m = MemSystem::default();
        m.write_timed(0x100, 0xabcd, 8, 0).unwrap();
        let (v, _) = m.read_timed(0x100, 8, 50).unwrap();
        assert_eq!(v, 0xabcd);
        assert_eq!(m.store_ref().read(0x100, 8), 0xabcd);
    }

    #[test]
    fn mshr_exhaustion_returns_busy() {
        let mut cfg = HierarchyConfig::default();
        cfg.l1.mshrs = 1;
        let mut m = MemSystem::new(cfg);
        m.read_timed(0x0, 8, 0).unwrap();
        // Second distinct-line miss at the same time: L1 MSHR busy.
        let err = m.read_timed(0x10000, 8, 0).unwrap_err();
        assert!(err.retry_at > 0);
        // After the first completes, it succeeds.
        assert!(m.read_timed(0x10000, 8, err.retry_at).is_ok());
    }

    #[test]
    fn coalesced_miss_completes_with_outstanding_fill() {
        let mut m = MemSystem::default();
        let (_, first) = m.read_timed(0x2000, 8, 0).unwrap();
        // Another access to the same line while the miss is in flight.
        let (_, second) = m.read_timed(0x2010, 8, 1).unwrap();
        assert_eq!(second.done_at, first.done_at);
    }
}
