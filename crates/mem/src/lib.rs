//! Memory hierarchy for the SPT reproduction.
//!
//! Models the machine of paper Table 1: a 3-level write-back cache
//! hierarchy (L1D 32 KiB/8-way/2-cycle, L2 256 KiB/16-way/20-cycle, L3
//! 2 MiB/16-way/40-cycle) in front of a fixed-latency DRAM, with a bounded
//! number of MSHRs per cache.
//!
//! Data is kept *functionally* in a single sparse backing store
//! ([`spt_isa::interp::SparseMem`]); the caches track only tags, validity,
//! dirtiness and recency, and are consulted to compute access *timing*.
//! This functional/timing split is exact for a single core (there is no
//! other agent that could observe stale data) and keeps the simulator fast.
//!
//! The cache *state* is nevertheless fully architectural from the attacker's
//! perspective: [`MemSystem::probe`] reports which level currently holds a
//! line, which is exactly the observation a cache-timing receiver makes.
//! The penetration tests (paper §9.1) use it as their covert-channel
//! receiver.

pub mod cache;
pub mod system;
pub mod tlb;

pub use cache::{Cache, CacheConfig, CacheGeometry, CacheStats, LineEvent};
pub use system::{AccessOutcome, Busy, HierarchyConfig, Level, MemSystem};
pub use tlb::Tlb;
