//! A single set-associative, write-back, write-allocate cache with LRU
//! replacement and a bounded MSHR file.

use std::fmt;

/// Geometric parameters of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: usize,
}

impl CacheGeometry {
    /// Number of sets.
    ///
    /// This is the construction-time validator: indexing uses masks derived
    /// from it exactly once (in [`Cache::new`] / `Tlb::new`), so the
    /// assertions here run per cache built, not per access.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent: capacity not divisible by
    /// `assoc * line_bytes`, line size not a power of two, or a
    /// non-power-of-two set count. The last is load-bearing for
    /// correctness, not just speed — set selection masks with `sets - 1`
    /// while the tag drops `log2(sets)` bits, and both are only consistent
    /// when `sets` is a power of two (a non-pow2 count would silently alias
    /// distinct lines into one set while giving them distinct tags).
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let per_way = self.size_bytes / self.assoc;
        assert!(
            per_way.is_multiple_of(self.line_bytes) && per_way > 0,
            "inconsistent cache geometry {self:?}"
        );
        let sets = per_way / self.line_bytes;
        assert!(sets.is_power_of_two(), "set count {sets} must be a power of two ({self:?})");
        sets
    }

    /// The line-aligned address containing `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes as u64 - 1)
    }
}

/// Full configuration of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Geometry (capacity, associativity, line size).
    pub geometry: CacheGeometry,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
    /// Number of miss-status-holding registers (outstanding misses).
    pub mshrs: usize,
}

/// Counters accumulated by a cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines evicted to make room for fills.
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Accesses rejected because all MSHRs were busy.
    pub mshr_rejections: u64,
}

impl CacheStats {
    /// Miss rate over all accesses, or 0 if there were none.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A line-granularity state-change event, reported so that SPT's shadow L1
/// (paper §7.5) can mirror fill/evict decisions without owning tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineEvent {
    /// A line was filled (allocated); its shadow taint must be set to
    /// all-tainted (paper §7.5: "when an L1D line is filled, it is
    /// considered tainted").
    Fill {
        /// Line-aligned address of the filled line.
        line_addr: u64,
    },
    /// A line was evicted or invalidated.
    Evict {
        /// Line-aligned address of the evicted line.
        line_addr: u64,
    },
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u64,
    lru: u64,
}

#[derive(Clone, Copy, Debug)]
struct Mshr {
    line_addr: u64,
    ready_at: u64,
}

/// The result of a tag lookup with fill-on-miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// For a miss that coalesced onto an in-flight MSHR for the same line,
    /// the cycle at which that miss completes.
    pub coalesced_ready_at: Option<u64>,
    /// L1-relevant line events (fills/evictions) caused by this access.
    pub events: Vec<LineEvent>,
}

/// One level of the cache hierarchy.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    mshrs: Vec<Mshr>,
    tick: u64,
    stats: CacheStats,
    // Indexing constants derived from the geometry once at construction
    // (validated by `CacheGeometry::sets`); set selection and tag
    // extraction sit on the hottest loop in the simulator and must not
    // re-run the geometry assertions per access.
    set_mask: usize,
    line_shift: u32,
    set_shift: u32,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent geometry (see [`CacheGeometry::sets`]).
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.geometry.sets();
        Cache {
            cfg,
            sets: vec![vec![Line::default(); cfg.geometry.assoc]; sets],
            mshrs: Vec::with_capacity(cfg.mshrs),
            tick: 0,
            stats: CacheStats::default(),
            set_mask: sets - 1,
            line_shift: cfg.geometry.line_bytes.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
        }
    }

    #[inline]
    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) as usize) & self.set_mask
    }

    #[inline]
    fn tag(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) >> self.set_shift
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr & !((1u64 << self.line_shift) - 1)
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Checks whether a line is present *without* disturbing LRU state or
    /// statistics. This is the attacker's observation primitive and is also
    /// used by tests.
    pub fn probe(&self, addr: u64) -> bool {
        let set = &self.sets[self.set_index(addr)];
        let tag = self.tag(addr);
        set.iter().any(|l| l.valid && l.tag == tag)
    }

    /// Returns `true` if a free MSHR is available at `now` (expired entries
    /// are recycled), or if the line at `addr` can coalesce onto an
    /// outstanding miss.
    pub fn mshr_available(&mut self, addr: u64, now: u64) -> bool {
        self.expire_mshrs(now);
        let line = self.line_of(addr);
        self.mshrs.len() < self.cfg.mshrs || self.mshrs.iter().any(|m| m.line_addr == line)
    }

    /// The earliest cycle at which an MSHR will free up.
    pub fn earliest_mshr_free(&self) -> Option<u64> {
        self.mshrs.iter().map(|m| m.ready_at).min()
    }

    /// Number of misses still outstanding at `now` (telemetry probe; does
    /// not recycle expired entries).
    pub fn mshrs_in_flight(&self, now: u64) -> usize {
        self.mshrs.iter().filter(|m| m.ready_at > now).count()
    }

    fn expire_mshrs(&mut self, now: u64) {
        self.mshrs.retain(|m| m.ready_at > now);
    }

    /// Records an outstanding miss completing at `ready_at`.
    ///
    /// Returns `false` (and counts an MSHR rejection) if no MSHR is free;
    /// returns `true` without allocating if the line already has one.
    pub fn allocate_mshr(&mut self, addr: u64, now: u64, ready_at: u64) -> bool {
        self.expire_mshrs(now);
        let line = self.line_of(addr);
        if self.mshrs.iter().any(|m| m.line_addr == line) {
            return true;
        }
        if self.mshrs.len() >= self.cfg.mshrs {
            self.stats.mshr_rejections += 1;
            return false;
        }
        self.mshrs.push(Mshr { line_addr: line, ready_at });
        true
    }

    /// The completion cycle of an outstanding miss on `addr`'s line, if any.
    pub fn outstanding_miss(&self, addr: u64) -> Option<u64> {
        let line = self.line_of(addr);
        self.mshrs.iter().find(|m| m.line_addr == line).map(|m| m.ready_at)
    }

    /// Performs a tag lookup; on hit, updates LRU (and dirtiness for
    /// writes). Does *not* fill on miss — the hierarchy decides that.
    pub fn lookup(&mut self, addr: u64, write: bool) -> bool {
        self.tick += 1;
        let tag = self.tag(addr);
        let set_idx = self.set_index(addr);
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        for line in set.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = tick;
                if write {
                    line.dirty = true;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Allocates a line for `addr` (after a miss), evicting the LRU way if
    /// needed. Returns the events (eviction, then fill).
    pub fn fill(&mut self, addr: u64, write: bool) -> Vec<LineEvent> {
        self.tick += 1;
        let tag = self.tag(addr);
        let set_idx = self.set_index(addr);
        let line_addr = self.line_of(addr);
        let sets = self.sets.len() as u64;
        let line_bytes = self.cfg.geometry.line_bytes as u64;
        let tick = self.tick;

        let mut events = Vec::new();
        let set = &mut self.sets[set_idx];
        // Prefer an invalid way; otherwise evict LRU.
        let victim = set.iter().position(|l| !l.valid).unwrap_or_else(|| {
            set.iter()
                .enumerate()
                .min_by_key(|(_, l)| l.lru)
                .map(|(i, _)| i)
                .expect("cache set cannot be empty")
        });
        let v = &mut set[victim];
        if v.valid {
            let victim_addr = (v.tag * sets + set_idx as u64) * line_bytes;
            events.push(LineEvent::Evict { line_addr: victim_addr });
            self.stats.evictions += 1;
            if v.dirty {
                self.stats.writebacks += 1;
            }
        }
        *v = Line { valid: true, dirty: write, tag, lru: tick };
        events.push(LineEvent::Fill { line_addr });
        events
    }

    /// Folds the attacker-observable tag state into a digest: for every
    /// set, the sorted `(tag, dirty)` pairs of its valid lines.
    ///
    /// This is exactly the state a probe-based receiver can reconstruct
    /// (which lines are present, and — via writeback timing — which are
    /// dirty). LRU tick values are deliberately excluded: they encode the
    /// absolute access count, not a per-line observable, and would make
    /// digests of behaviourally identical runs differ spuriously.
    pub fn fold_state(&self, h: &mut spt_util::Fnv64) {
        for (set_idx, set) in self.sets.iter().enumerate() {
            let mut present: Vec<(u64, bool)> =
                set.iter().filter(|l| l.valid).map(|l| (l.tag, l.dirty)).collect();
            present.sort_unstable();
            if present.is_empty() {
                continue;
            }
            h.write_u64(set_idx as u64);
            for (tag, dirty) in present {
                h.write_u64(tag);
                h.write_u64(u64::from(dirty));
            }
        }
    }

    /// One-shot [`Self::fold_state`] digest.
    pub fn state_digest(&self) -> u64 {
        let mut h = spt_util::Fnv64::new();
        self.fold_state(&mut h);
        h.finish()
    }

    /// Invalidates the line containing `addr` if present, returning the
    /// eviction event.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineEvent> {
        let tag = self.tag(addr);
        let set_idx = self.set_index(addr);
        let line_addr = self.line_of(addr);
        for line in &mut self.sets[set_idx] {
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                return Some(LineEvent::Evict { line_addr });
            }
        }
        None
    }

    /// Invalidates every line (used between penetration-test phases).
    pub fn flush(&mut self) -> Vec<LineEvent> {
        let mut events = Vec::new();
        let sets = self.sets.len() as u64;
        let line_bytes = self.cfg.geometry.line_bytes as u64;
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for line in set.iter_mut() {
                if line.valid {
                    let addr = (line.tag * sets + set_idx as u64) * line_bytes;
                    events.push(LineEvent::Evict { line_addr: addr });
                    line.valid = false;
                    line.dirty = false;
                }
            }
        }
        events
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B {}-way {}B-line cache: {} hits, {} misses ({:.1}% miss)",
            self.cfg.geometry.size_bytes,
            self.cfg.geometry.assoc,
            self.cfg.geometry.line_bytes,
            self.stats.hits,
            self.stats.misses,
            self.stats.miss_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512B.
        Cache::new(CacheConfig {
            geometry: CacheGeometry { size_bytes: 512, assoc: 2, line_bytes: 64 },
            hit_latency: 2,
            mshrs: 2,
        })
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry { size_bytes: 32 * 1024, assoc: 8, line_bytes: 64 };
        assert_eq!(g.sets(), 64);
        assert_eq!(g.line_addr(0x12345), 0x12340);
    }

    // Regression: a geometry with a non-power-of-two set count (3 sets
    // here) used to pass `sets()` validation while `set_index` masked with
    // `sets - 1`, silently aliasing sets 1/2/3 and making tag/index
    // inconsistent. It must be rejected at validation time.
    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_set_count_rejected() {
        let g = CacheGeometry { size_bytes: 3 * 64, assoc: 1, line_bytes: 64 };
        let _ = g.sets();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_cache_construction_rejected() {
        let _ = Cache::new(CacheConfig {
            geometry: CacheGeometry { size_bytes: 6 * 64, assoc: 2, line_bytes: 64 },
            hit_latency: 1,
            mshrs: 1,
        });
    }

    #[test]
    fn mshrs_in_flight_counts_outstanding() {
        let mut c = small_cache();
        assert_eq!(c.mshrs_in_flight(0), 0);
        c.allocate_mshr(0x1000, 0, 100);
        c.allocate_mshr(0x2000, 0, 50);
        assert_eq!(c.mshrs_in_flight(0), 2);
        assert_eq!(c.mshrs_in_flight(50), 1); // the 0x2000 miss completed
        assert_eq!(c.mshrs_in_flight(100), 0);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small_cache();
        assert!(!c.lookup(0x1000, false));
        c.fill(0x1000, false);
        assert!(c.lookup(0x1000, false));
        assert!(c.lookup(0x1038, false), "same line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small_cache();
        c.fill(0x1000, false);
        let before = *c.stats();
        assert!(c.probe(0x1000));
        assert!(!c.probe(0x2000));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache();
        // Set index = (addr/64) & 3. Addresses with the same set: step 256.
        c.fill(0x0, false); // set 0
        c.fill(0x100, false); // set 0
        c.lookup(0x0, false); // touch first line: now 0x100 is LRU
        let events = c.fill(0x200, false);
        assert!(events.contains(&LineEvent::Evict { line_addr: 0x100 }));
        assert!(c.probe(0x0));
        assert!(!c.probe(0x100));
        assert!(c.probe(0x200));
    }

    #[test]
    fn dirty_writeback_counted() {
        let mut c = small_cache();
        c.fill(0x0, true); // dirty fill
        c.fill(0x100, false);
        c.fill(0x200, false); // evicts 0x0 (LRU), which is dirty
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn mshr_limits_and_coalescing() {
        let mut c = small_cache(); // 2 MSHRs
        assert!(c.allocate_mshr(0x1000, 0, 100));
        assert!(c.allocate_mshr(0x2000, 0, 120));
        // Same line as the first: coalesces, no new MSHR.
        assert!(c.allocate_mshr(0x1020, 0, 999));
        assert_eq!(c.outstanding_miss(0x1008), Some(100));
        // A third distinct line is rejected.
        assert!(!c.allocate_mshr(0x3000, 0, 130));
        assert_eq!(c.stats().mshr_rejections, 1);
        // After the first completes, space frees up.
        assert!(c.allocate_mshr(0x3000, 101, 130));
    }

    #[test]
    fn invalidate_and_flush() {
        let mut c = small_cache();
        c.fill(0x0, false);
        c.fill(0x40, false);
        assert_eq!(c.invalidate(0x0), Some(LineEvent::Evict { line_addr: 0x0 }));
        assert_eq!(c.invalidate(0x0), None);
        let evs = c.flush();
        assert_eq!(evs, vec![LineEvent::Evict { line_addr: 0x40 }]);
        assert!(!c.probe(0x40));
    }
}
