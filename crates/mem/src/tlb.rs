//! Data TLB model.
//!
//! The TLB is one of the paper's §2.1 covert channels ("attacks have been
//! demonstrated that create program data-dependent contention on ... TLBs
//! ... page tables"), which is why §7.4 delays a protected load/store's
//! *entire* execution — "including TLB accesses, etc." — until its address
//! operands are untainted. The simulator performs translation at issue
//! time, so that gating automatically covers the TLB channel; this module
//! supplies the timing: a TLB miss adds a page-walk latency to the access.
//!
//! Translation itself is identity (the simulator is single-address-space);
//! only the timing and the reach-tracking matter.

/// A set-associative data TLB with LRU replacement.
///
/// # Example
///
/// ```
/// use spt_mem::Tlb;
/// let mut tlb = Tlb::new(64, 4, 30);
/// assert_eq!(tlb.translate(0x1234), 30, "cold miss pays the walk");
/// assert_eq!(tlb.translate(0x1ff8), 0, "same page hits");
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    sets: Vec<Vec<TlbEntry>>,
    // Precomputed at construction (set count validated power-of-two there);
    // `translate` runs on every memory issue and must not redo the math.
    set_mask: usize,
    walk_latency: u64,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct TlbEntry {
    valid: bool,
    vpn: u64,
    lru: u64,
}

impl Tlb {
    /// Page size in bytes.
    pub const PAGE: u64 = 4096;

    /// Creates a TLB with `entries` total entries, `assoc` ways, and a
    /// fixed `walk_latency` charged on each miss.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `assoc` with a
    /// power-of-two set count.
    pub fn new(entries: usize, assoc: usize, walk_latency: u64) -> Tlb {
        assert!(assoc > 0 && entries.is_multiple_of(assoc), "inconsistent TLB geometry");
        let sets = entries / assoc;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Tlb {
            sets: vec![vec![TlbEntry::default(); assoc]; sets],
            set_mask: sets - 1,
            walk_latency,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates `addr`, returning the extra latency (0 on a hit, the
    /// page-walk latency on a miss). Fills the entry on a miss.
    pub fn translate(&mut self, addr: u64) -> u64 {
        self.tick += 1;
        let vpn = addr / Self::PAGE;
        let set_idx = (vpn as usize) & self.set_mask;
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        for e in set.iter_mut() {
            if e.valid && e.vpn == vpn {
                e.lru = tick;
                self.hits += 1;
                return 0;
            }
        }
        self.misses += 1;
        let victim = set.iter().position(|e| !e.valid).unwrap_or_else(|| {
            set.iter().enumerate().min_by_key(|(_, e)| e.lru).map(|(i, _)| i).expect("ways")
        });
        set[victim] = TlbEntry { valid: true, vpn, lru: tick };
        self.walk_latency
    }

    /// Whether a page is currently cached, without disturbing state (the
    /// TLB-side attacker observation).
    pub fn probe(&self, addr: u64) -> bool {
        let vpn = addr / Self::PAGE;
        let set = &self.sets[(vpn as usize) & self.set_mask];
        set.iter().any(|e| e.valid && e.vpn == vpn)
    }

    /// Folds the attacker-observable reach state into a digest: for every
    /// set, the sorted VPNs of its valid entries (a contention-channel
    /// attacker learns exactly which pages are cached). LRU ticks are
    /// excluded for the same reason as in `Cache::fold_state`.
    pub fn fold_state(&self, h: &mut spt_util::Fnv64) {
        for (set_idx, set) in self.sets.iter().enumerate() {
            let mut vpns: Vec<u64> = set.iter().filter(|e| e.valid).map(|e| e.vpn).collect();
            vpns.sort_unstable();
            if vpns.is_empty() {
                continue;
            }
            h.write_u64(set_idx as u64);
            for vpn in vpns {
                h.write_u64(vpn);
            }
        }
    }

    /// One-shot [`Self::fold_state`] digest.
    pub fn state_digest(&self) -> u64 {
        let mut h = spt_util::Fnv64::new();
        self.fold_state(&mut h);
        h.finish()
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses (page walks) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut t = Tlb::new(8, 2, 25);
        assert_eq!(t.translate(0x0000), 25);
        assert_eq!(t.translate(0x0fff), 0, "same page");
        assert_eq!(t.translate(0x1000), 25, "next page misses");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut t = Tlb::new(8, 2, 25); // 4 sets
                                        // Pages mapping to the same set: vpn step = 4.
        let page = |i: u64| i * 4 * Tlb::PAGE;
        t.translate(page(0));
        t.translate(page(1));
        t.translate(page(0)); // touch: page(1) becomes LRU
        t.translate(page(2)); // evicts page(1)
        assert!(t.probe(page(0)));
        assert!(!t.probe(page(1)));
        assert!(t.probe(page(2)));
    }

    // Regression companion to the cache-geometry fix: a non-pow2 set
    // count would make the `set_mask` indexing alias sets.
    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_set_count_rejected() {
        let _ = Tlb::new(12, 2, 25); // 6 sets
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut t = Tlb::new(8, 2, 25);
        t.translate(0x5000);
        let (h, m) = (t.hits(), t.misses());
        assert!(t.probe(0x5000));
        assert!(!t.probe(0x9000));
        assert_eq!((t.hits(), t.misses()), (h, m));
    }
}
