//! Property-based tests for the memory hierarchy: functional/timing-split
//! consistency, probe monotonicity, and inclusion-style invariants.

use proptest::prelude::*;
use spt_mem::{HierarchyConfig, Level, MemSystem};

#[derive(Clone, Debug)]
enum MemOp {
    Read { addr: u32, size_sel: u8 },
    Write { addr: u32, value: u64, size_sel: u8 },
    FlushLine { addr: u32 },
}

fn op_strategy() -> impl Strategy<Value = MemOp> {
    prop_oneof![
        (any::<u32>(), any::<u8>()).prop_map(|(addr, size_sel)| MemOp::Read { addr, size_sel }),
        (any::<u32>(), any::<u64>(), any::<u8>())
            .prop_map(|(addr, value, size_sel)| MemOp::Write { addr, value, size_sel }),
        any::<u32>().prop_map(|addr| MemOp::FlushLine { addr }),
    ]
}

fn size(sel: u8) -> u64 {
    [1u64, 2, 4, 8][sel as usize % 4]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The caches are timing-only: an oracle flat memory always agrees
    /// with the hierarchy's functional results, no matter the op sequence.
    #[test]
    fn functional_results_match_flat_memory(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let mut sys = MemSystem::new(HierarchyConfig::default());
        let mut oracle = spt_isa::interp::SparseMem::new();
        let mut now = 0u64;
        for op in &ops {
            now += 500; // generous spacing: no MSHR pressure
            match *op {
                MemOp::Read { addr, size_sel } => {
                    let addr = addr as u64 % 1_000_000;
                    let sz = size(size_sel);
                    let (got, _) = sys.read_timed(addr, sz, now).expect("no busy at this pace");
                    prop_assert_eq!(got, oracle.read(addr, sz));
                }
                MemOp::Write { addr, value, size_sel } => {
                    let addr = addr as u64 % 1_000_000;
                    let sz = size(size_sel);
                    sys.write_timed(addr, value, sz, now).expect("no busy");
                    oracle.write(addr, value, sz);
                }
                MemOp::FlushLine { addr } => {
                    sys.flush_line(addr as u64 % 1_000_000);
                }
            }
        }
    }

    /// Timing sanity: completion is never before the L1 hit latency, and a
    /// repeat access to the same line is at least as fast.
    #[test]
    fn latency_bounds(addr in any::<u32>()) {
        let mut sys = MemSystem::new(HierarchyConfig::default());
        let cfg = *sys.config();
        let addr = addr as u64;
        let (_, first) = sys.read_timed(addr, 8, 0).unwrap();
        prop_assert!(first.done_at >= cfg.l1.hit_latency);
        let (_, second) = sys.read_timed(addr, 8, first.done_at).unwrap();
        prop_assert!(second.done_at - first.done_at <= first.done_at);
        prop_assert_eq!(second.served_by, Level::L1);
    }

    /// Probe never lies: immediately after a completed access, the line is
    /// resident in L1; after flushing, it is gone from every level.
    #[test]
    fn probe_tracks_residency(addr in any::<u32>()) {
        let addr = addr as u64;
        let mut sys = MemSystem::new(HierarchyConfig::default());
        sys.read_timed(addr, 1, 0).unwrap();
        prop_assert_eq!(sys.probe(addr), Level::L1);
        sys.flush_line(addr);
        prop_assert_eq!(sys.probe(addr), Level::Dram);
    }
}
