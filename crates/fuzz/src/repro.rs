//! Textual reproducers: a [`TestProgram`] rendered as the ISA's textual
//! assembly plus `;@` metadata directives, round-trippable through
//! [`to_text`] / [`from_text`]. Files live in `fuzz/corpus/` and are
//! replayed by `tests/corpus.rs` on every test run.
//!
//! Directives (all lines are `;`-comments to the assembly parser):
//!
//! ```text
//! ;@ spt-fuzz reproducer
//! ;@ note <free text>                  (repeatable)
//! ;@ secret <base-hex> <len>
//! ;@ secretbytes <hex of variant A>
//! ;@ expect arch-leak                  (program leaks architecturally)
//! ;@ expect unsafe-diverge             (gadget: unsafe baseline must leak)
//! ;@ mem <addr-hex> <word-hex>         (repeatable)
//! ```

use crate::generator::{TestProgram, SECRET_BASE};
use spt_isa::parse::parse_program;

/// A parsed reproducer file.
pub struct ReproFile {
    /// Program plus inputs and expectations.
    pub tp: TestProgram,
    /// Free-text notes from the header.
    pub notes: Vec<String>,
}

fn hex_bytes(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("odd-length hex string".to_string());
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16)
                .map_err(|e| format!("bad hex byte at {}: {e}", 2 * i))
        })
        .collect()
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    r.map_err(|e| format!("bad number {s:?}: {e}"))
}

/// Renders `tp` as a reproducer file.
pub fn to_text(tp: &TestProgram, notes: &[String]) -> String {
    let mut out = String::new();
    out.push_str(";@ spt-fuzz reproducer\n");
    for note in notes {
        out.push_str(&format!(";@ note {note}\n"));
    }
    out.push_str(&format!(";@ secret {SECRET_BASE:#x} {}\n", tp.secret.len()));
    let hex: String = tp.secret.iter().map(|b| format!("{b:02x}")).collect();
    out.push_str(&format!(";@ secretbytes {hex}\n"));
    if tp.expect_arch_leak {
        out.push_str(";@ expect arch-leak\n");
    }
    if tp.has_gadget {
        out.push_str(";@ expect unsafe-diverge\n");
    }
    for &(addr, word) in &tp.mem_words {
        out.push_str(&format!(";@ mem {addr:#x} {word:#x}\n"));
    }
    out.push('\n');
    out.push_str(&tp.program.to_string());
    out
}

/// Parses a reproducer file.
pub fn from_text(text: &str) -> Result<ReproFile, String> {
    let mut notes = Vec::new();
    let mut secret = Vec::new();
    let mut mem_words = Vec::new();
    let mut expect_arch_leak = false;
    let mut expect_unsafe_diverge = false;
    for line in text.lines() {
        let Some(rest) = line.trim().strip_prefix(";@") else { continue };
        let rest = rest.trim();
        let mut tok = rest.split_whitespace();
        match tok.next() {
            Some("note") => notes.push(rest["note".len()..].trim().to_string()),
            Some("secret") => {
                let base = parse_u64(tok.next().ok_or("secret: missing base")?)?;
                if base != SECRET_BASE {
                    return Err(format!(
                        "secret base {base:#x} unsupported (must be {SECRET_BASE:#x})"
                    ));
                }
            }
            Some("secretbytes") => {
                secret = hex_bytes(tok.next().ok_or("secretbytes: missing hex")?)?;
            }
            Some("expect") => match tok.next() {
                Some("arch-leak") => expect_arch_leak = true,
                Some("unsafe-diverge") => expect_unsafe_diverge = true,
                other => return Err(format!("unknown expectation {other:?}")),
            },
            Some("mem") => {
                let addr = parse_u64(tok.next().ok_or("mem: missing addr")?)?;
                let word = parse_u64(tok.next().ok_or("mem: missing word")?)?;
                mem_words.push((addr, word));
            }
            _ => {} // Header marker or unknown directive: ignore.
        }
    }
    if secret.is_empty() {
        return Err("missing ;@ secretbytes directive".to_string());
    }
    let program = parse_program(text).map_err(|e| format!("assembly: {e}"))?;
    Ok(ReproFile {
        tp: TestProgram {
            program,
            mem_words,
            secret,
            expect_arch_leak,
            has_gadget: expect_unsafe_diverge,
        },
        notes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn round_trips_a_generated_program() {
        let tp = generate(11);
        let text = to_text(&tp, &["example note".to_string()]);
        let back = from_text(&text).expect("parses");
        assert_eq!(back.tp.program.insts(), tp.program.insts());
        assert_eq!(back.tp.mem_words, tp.mem_words);
        assert_eq!(back.tp.secret, tp.secret);
        assert_eq!(back.tp.expect_arch_leak, tp.expect_arch_leak);
        assert_eq!(back.tp.has_gadget, tp.has_gadget);
        assert_eq!(back.notes, vec!["example note".to_string()]);
    }

    #[test]
    fn rejects_malformed_headers() {
        assert!(from_text("halt\n").is_err(), "missing secretbytes");
        assert!(from_text(";@ secretbytes abc\nhalt\n").is_err(), "odd hex");
        assert!(from_text(";@ expect nonsense\nhalt\n").is_err(), "unknown expectation");
    }
}
