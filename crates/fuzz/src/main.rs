//! `spt-fuzz`: differential + relational fuzzing campaign driver.
//!
//! ```text
//! spt-fuzz [--seed N] [--iters N] [--jobs N] [--corpus-dir DIR]
//! spt-fuzz --emit-samples [--corpus-dir DIR]
//! ```
//!
//! Exit status 0 means no findings *and* the unsafe-baseline positive
//! control demonstrated a leak. Findings are shrunk and written to the
//! corpus directory as replayable `.s` reproducers.

use std::path::PathBuf;
use std::process::ExitCode;

use spt_fuzz::campaign::{run_campaign, CampaignConfig};
use spt_fuzz::harness::{differential, relational};
use spt_fuzz::{generator, repro};

fn usage() -> ! {
    eprintln!(
        "usage: spt-fuzz [--seed N] [--iters N] [--jobs N] [--corpus-dir DIR]\n\
         \u{20}      spt-fuzz --emit-samples [--corpus-dir DIR]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = CampaignConfig::default();
    let mut corpus_dir = PathBuf::from("fuzz/corpus");
    let mut emit_samples = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage();
            })
        };
        match arg.as_str() {
            "--seed" => match value("--seed").parse() {
                Ok(v) => cfg.seed = v,
                Err(_) => usage(),
            },
            "--iters" => match value("--iters").parse() {
                Ok(v) => cfg.iters = v,
                Err(_) => usage(),
            },
            "--jobs" => match value("--jobs").parse() {
                Ok(v) if v >= 1 => cfg.jobs = v,
                _ => usage(),
            },
            "--corpus-dir" => corpus_dir = PathBuf::from(value("--corpus-dir")),
            "--emit-samples" => emit_samples = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    if emit_samples {
        return emit_corpus_samples(&corpus_dir);
    }

    let report = run_campaign(&cfg);
    print!("{}", report.text);
    if !report.repros.is_empty() {
        if let Err(e) = std::fs::create_dir_all(&corpus_dir) {
            eprintln!("cannot create {}: {e}", corpus_dir.display());
            return ExitCode::from(2);
        }
        for r in &report.repros {
            let path = corpus_dir.join(&r.file_name);
            match std::fs::write(&path, &r.text) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("cannot write {}: {e}", path.display()),
            }
        }
    }
    if report.ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Seeds the corpus with three curated, verified sample programs: a
/// Spectre-gadget positive control, a quiet dataflow program, and an
/// architectural-leak classifier exercise. Deterministic, so re-running
/// regenerates the committed corpus byte-for-byte.
fn emit_corpus_samples(corpus_dir: &PathBuf) -> ExitCode {
    const BASE: u64 = 0x00c0_ffee;
    let mut picks: Vec<(&str, &str, generator::TestProgram)> = Vec::new();
    let (mut want_gadget, mut want_quiet, mut want_leak) = (true, true, true);
    for n in 0..4096u64 {
        if !(want_gadget || want_quiet || want_leak) {
            break;
        }
        let tp = generator::generate(BASE + n);
        if want_gadget && tp.has_gadget && !tp.expect_arch_leak {
            let rel = relational(&tp);
            if differential(&tp).is_empty() && rel.findings.is_empty() && rel.unsafe_diverged {
                picks.push((
                    "spectre_gadget.s",
                    "Spectre-v1 gadget: transient secret-indexed probe load; the \
                     unsafe baseline must leak, every protected config must not",
                    tp,
                ));
                want_gadget = false;
            }
            continue;
        }
        if want_quiet && !tp.has_gadget && !tp.expect_arch_leak {
            let rel = relational(&tp);
            if differential(&tp).is_empty() && rel.findings.is_empty() {
                picks.push((
                    "quiet_dataflow.s",
                    "secret-free control/data flow with loops, store-forwarding and \
                     pointer chases; all configs must agree with the interpreter",
                    tp,
                ));
                want_quiet = false;
            }
            continue;
        }
        if want_leak && tp.expect_arch_leak && !tp.has_gadget {
            let rel = relational(&tp);
            if differential(&tp).is_empty() && rel.arch_leak && rel.findings.is_empty() {
                picks.push((
                    "arch_leak_branch.s",
                    "branches architecturally on a secret bit; the harness must \
                     classify it as an architectural leak, not a protection bug",
                    tp,
                ));
                want_leak = false;
            }
        }
    }
    if want_gadget || want_quiet || want_leak {
        eprintln!("could not find all three sample classes");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::create_dir_all(corpus_dir) {
        eprintln!("cannot create {}: {e}", corpus_dir.display());
        return ExitCode::from(2);
    }
    for (name, note, tp) in &picks {
        let text = repro::to_text(tp, &[note.to_string()]);
        let path = corpus_dir.join(name);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
