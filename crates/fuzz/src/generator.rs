//! Seeded, constrained program generator.
//!
//! Programs are built from templates whose union covers the behaviours the
//! pipeline and the taint engine must agree on: ALU dataflow, masked
//! data-dependent loads, store→load-forwarding pairs, pointer chases,
//! counted loops, data-dependent forward branches, architectural secret
//! reads, and a Spectre-v1 gadget whose *transient* secret-indexed probe
//! load is the relational harness's positive control (it must leak under
//! the unsafe baseline and must not under any protected configuration).
//!
//! Three construction rules make every generated program safe to assert on:
//!
//! 1. **Termination** — back-edges exist only in counted loops with a
//!    dedicated counter register, so every program halts.
//! 2. **Bounded footprint** — every address is `region base + masked or
//!    bounded offset` into one of the disjoint regions below, so the
//!    architectural end-state can be compared byte-for-byte.
//! 3. **Taint discipline** — the generator tracks which scratch registers
//!    hold secret-derived values and never routes them into addresses or
//!    branch predicates, except in the deliberate-leak template, which
//!    sets [`TestProgram::expect_arch_leak`] so the relational harness
//!    classifies the program instead of asserting on it. Inside loops the
//!    tracking is made path-insensitive by confining secret writes to a
//!    register pool chosen at loop entry (a register written with a secret
//!    late in the body is live at the body's *top* on iterations ≥ 2).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spt_isa::asm::Assembler;
use spt_isa::{AluOp, BranchCond, MemSize, Program, Reg};

/// Public data readable through masked data-dependent indices.
pub const DATA_BASE: u64 = 0x1_0000;
/// Bytes in the data region.
pub const DATA_LEN: u64 = 4096;
/// Offsets below the split are read via masked indices; offsets at or
/// above are reserved for store→load-forwarding pairs (which may store
/// secret-derived values). Disjoint halves guarantee a masked public load
/// can never read back a secret-derived value.
pub const DATA_RW_SPLIT: u64 = 2048;
/// Base of the designated secret region (one cache line).
pub const SECRET_BASE: u64 = 0x2_0000;
/// Secret bytes per program.
pub const SECRET_LEN: u64 = 64;
/// Flush+reload style probe array indexed by `secret_byte << 6`.
pub const PROBE_BASE: u64 = 0x3_0000;
/// Probe bytes (256 cache lines).
pub const PROBE_LEN: u64 = 256 * 64;
/// Pointer-chase ring of 8-byte nodes forming a single cycle.
pub const PTR_BASE: u64 = 0x4_0000;
/// Nodes in the pointer ring.
pub const PTR_NODES: u64 = 64;
/// Write-only sink; secret-derived values may be stored here (fixed,
/// public addresses) and are never loaded back.
pub const SINK_BASE: u64 = 0x5_0000;
/// Sink bytes.
pub const SINK_LEN: u64 = 64;
/// Never-initialized, never-warmed region: reads miss to DRAM, giving the
/// Spectre gadget its long transient window.
pub const COLD_BASE: u64 = 0x8_0000;
/// Cold bytes the gadget may touch.
pub const COLD_LEN: u64 = 1024;

const DATA_PTR: Reg = Reg::R1;
const SECRET_PTR: Reg = Reg::R2;
const PROBE_PTR: Reg = Reg::R3;
const CHASE: Reg = Reg::R4;
const COLD_PTR: Reg = Reg::R5;
const SINK_PTR: Reg = Reg::R6;
const COUNTERS: [Reg; 2] = [Reg::R8, Reg::R9];
const FIRST_SCRATCH: usize = 16;
const NUM_SCRATCH: usize = 16;

/// Secret variant B is variant A with every byte XORed by this. It is odd,
/// so bit 0 of every secret byte flips — the deliberate-leak template
/// branches on that bit to guarantee an architectural trace divergence.
pub const SECRET_FLIP: u8 = 0xa5;

const FIXED_ALU: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
    AluOp::Sar,
    AluOp::Mul,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Seq,
    AluOp::Sne,
];

const CONDS: [BranchCond; 6] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Lt,
    BranchCond::Ge,
    BranchCond::Ltu,
    BranchCond::Geu,
];

/// A generated program plus the initial-memory and secret inputs needed to
/// run it, and the generator's own expectations about it.
#[derive(Clone, Debug)]
pub struct TestProgram {
    /// The program text.
    pub program: Program,
    /// Initial public memory as `(address, 8-byte word)` pairs.
    pub mem_words: Vec<(u64, u64)>,
    /// Secret variant A, written at [`SECRET_BASE`].
    pub secret: Vec<u8>,
    /// The program branches architecturally on a secret bit, so the
    /// non-speculative leak traces of the two secret variants must differ.
    pub expect_arch_leak: bool,
    /// The program contains a Spectre-v1 gadget, so the unsafe baseline's
    /// observation digests should diverge across secret variants.
    pub has_gadget: bool,
}

impl TestProgram {
    /// The same inputs and expectations with a different program (used by
    /// the shrinker).
    pub fn with_program(&self, program: Program) -> TestProgram {
        TestProgram { program, ..self.clone() }
    }

    /// The disjoint regions a generated program confines its memory
    /// accesses to, as `(base, len)`; the differential harness compares
    /// the architectural end-state of exactly these bytes.
    pub fn footprint() -> [(u64, u64); 6] {
        [
            (DATA_BASE, DATA_LEN),
            (SECRET_BASE, SECRET_LEN),
            (PROBE_BASE, PROBE_LEN),
            (PTR_BASE, PTR_NODES * 8),
            (SINK_BASE, SINK_LEN),
            (COLD_BASE, COLD_LEN),
        ]
    }
}

struct Gen {
    a: Assembler,
    rng: SmallRng,
    /// Per-scratch-register "may hold a secret-derived value" flags.
    secret: [bool; NUM_SCRATCH],
    /// While inside a loop: the mask of scratch registers secret writes are
    /// confined to. Pool registers stay flagged secret for the whole loop.
    pool: Option<[bool; NUM_SCRATCH]>,
    labels: u32,
    gadgets: u32,
    arch_leak: bool,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            a: Assembler::new(),
            rng: SmallRng::seed_from_u64(seed),
            secret: [false; NUM_SCRATCH],
            pool: None,
            labels: 0,
            gadgets: 0,
            arch_leak: false,
        }
    }

    fn fresh_label(&mut self) -> String {
        self.labels += 1;
        format!("L{}", self.labels)
    }

    fn scratch(&mut self) -> Reg {
        Reg::from_index(FIRST_SCRATCH + self.rng.gen_range(0..NUM_SCRATCH))
    }

    fn flag(&self, r: Reg) -> bool {
        self.secret[r.index() - FIRST_SCRATCH]
    }

    fn set_flag(&mut self, r: Reg, v: bool) {
        self.secret[r.index() - FIRST_SCRATCH] = v;
    }

    fn in_pool(&self, r: Reg) -> bool {
        self.pool.is_some_and(|m| m[r.index() - FIRST_SCRATCH])
    }

    /// Destination for a value the generator wants to treat as clean. When
    /// a loop pool is active and the pick lands in the pool, the register
    /// keeps its conservative secret flag.
    fn any_dest(&mut self, value_secret: bool, conditional: bool) -> Reg {
        let d = self.scratch();
        let idx = d.index() - FIRST_SCRATCH;
        if self.in_pool(d) {
            // Pool registers stay flagged for the loop's duration.
        } else if conditional {
            self.secret[idx] |= value_secret;
        } else {
            self.secret[idx] = value_secret;
        }
        d
    }

    /// Destination for a secret-derived value: confined to the pool while
    /// one is active.
    fn secret_dest(&mut self) -> Reg {
        if let Some(mask) = self.pool {
            for _ in 0..32 {
                let i = self.rng.gen_range(0..NUM_SCRATCH);
                if mask[i] {
                    let r = Reg::from_index(FIRST_SCRATCH + i);
                    self.set_flag(r, true);
                    return r;
                }
            }
            // Pools always contain at least one register; scan as backstop.
            let i = (0..NUM_SCRATCH).find(|&i| mask[i]).expect("non-empty pool");
            let r = Reg::from_index(FIRST_SCRATCH + i);
            self.set_flag(r, true);
            r
        } else {
            let r = self.scratch();
            self.set_flag(r, true);
            r
        }
    }

    /// A register that is guaranteed secret-free on every dynamic path.
    /// Mints a constant if no scratch register qualifies; falls back to
    /// `r0` in the degenerate all-secret-in-a-loop case.
    fn clean_scratch(&mut self) -> Reg {
        for _ in 0..12 {
            let r = self.scratch();
            if !self.flag(r) {
                return r;
            }
        }
        if let Some(i) = (0..NUM_SCRATCH).find(|&i| !self.secret[i]) {
            return Reg::from_index(FIRST_SCRATCH + i);
        }
        if self.pool.is_none() {
            let r = self.scratch();
            let imm = self.rng.gen_range(1..512);
            self.a.mov_imm(r, imm);
            self.set_flag(r, false);
            return r;
        }
        Reg::ZERO
    }

    fn prologue(&mut self) {
        self.a.mov_imm(DATA_PTR, DATA_BASE as i64);
        self.a.mov_imm(SECRET_PTR, SECRET_BASE as i64);
        self.a.mov_imm(PROBE_PTR, PROBE_BASE as i64);
        self.a.mov_imm(CHASE, PTR_BASE as i64);
        self.a.mov_imm(COLD_PTR, COLD_BASE as i64);
        self.a.mov_imm(SINK_PTR, SINK_BASE as i64);
        for i in 0..NUM_SCRATCH {
            let imm = self.rng.gen_range(0..1024);
            self.a.mov_imm(Reg::from_index(FIRST_SCRATCH + i), imm);
        }
    }

    fn alu_inst(&mut self, conditional: bool) {
        let op = FIXED_ALU[self.rng.gen_range(0..FIXED_ALU.len())];
        let s1 = self.scratch();
        if self.rng.gen_range(0..2) == 0 {
            let s2 = self.scratch();
            let t = self.flag(s1) || self.flag(s2);
            let d = if t { self.secret_dest() } else { self.any_dest(false, conditional) };
            self.a.alu(op, d, s1, s2);
        } else {
            let imm = self.rng.gen_range(-64..64);
            let t = self.flag(s1);
            let d = if t { self.secret_dest() } else { self.any_dest(false, conditional) };
            self.a.alu_imm(op, d, s1, imm);
        }
    }

    /// Data-dependent load at a masked, always-public index.
    fn public_load(&mut self) {
        let s = self.clean_scratch();
        let idx = self.any_dest(false, false);
        let mask = (DATA_RW_SPLIT - 8) as i64 & !7;
        self.a.andi(idx, s, mask);
        let d = self.any_dest(false, false);
        self.a.load_idx(d, DATA_PTR, idx, 0, 0, MemSize::B8);
    }

    /// Architectural secret read (a byte of the secret region).
    fn secret_load(&mut self) {
        let off = self.rng.gen_range(0..SECRET_LEN) as i64;
        let d = self.secret_dest();
        self.a.load(d, SECRET_PTR, off, MemSize::B1);
    }

    /// Store then reload the same address (exercises the store queue and
    /// the STLPublic forwarding rules). Secretness of the reload equals the
    /// secretness of the stored value *at store time*.
    fn store_forward(&mut self) {
        let slots = (DATA_LEN - DATA_RW_SPLIT) / 8;
        let off = (DATA_RW_SPLIT + 8 * self.rng.gen_range(0..slots)) as i64;
        let v = self.scratch();
        let vs = self.flag(v);
        self.a.store(v, DATA_PTR, off, MemSize::B8);
        let fillers = self.rng.gen_range(0..=2);
        for _ in 0..fillers {
            self.alu_inst(false);
        }
        let d = if vs { self.secret_dest() } else { self.any_dest(false, false) };
        self.a.load(d, DATA_PTR, off, MemSize::B8);
    }

    /// Walk the pointer ring a few hops.
    fn ptr_chase(&mut self) {
        let hops = self.rng.gen_range(1..=3);
        for _ in 0..hops {
            self.a.ld(CHASE, CHASE, 0);
        }
    }

    /// Forward branch on public data, conditionally skipping a few ALU ops.
    fn data_branch(&mut self) {
        let l = self.fresh_label();
        let s1 = self.clean_scratch();
        let s2 = if self.rng.gen_range(0..2) == 0 { Reg::ZERO } else { self.clean_scratch() };
        let cond = CONDS[self.rng.gen_range(0..CONDS.len())];
        self.a.branch(cond, s1, s2, &l);
        let skipped = self.rng.gen_range(1..=3);
        for _ in 0..skipped {
            self.alu_inst(true);
        }
        self.a.label(&l);
    }

    /// Store a (possibly secret) value to the write-only sink at a fixed
    /// public address.
    fn sink_store(&mut self) {
        let v = self.scratch();
        let off = 8 * self.rng.gen_range(0..(SINK_LEN / 8)) as i64;
        self.a.store(v, SINK_PTR, off, MemSize::B8);
    }

    /// Deliberate architectural leak: branch on bit 0 of a *freshly loaded*
    /// secret byte. [`SECRET_FLIP`] is odd, so that bit flips between the
    /// two variants and the non-speculative leak traces are guaranteed to
    /// differ — a may-depend register would not give that guarantee.
    fn secret_branch(&mut self) {
        let off = self.rng.gen_range(0..SECRET_LEN) as i64;
        let t = self.secret_dest();
        self.a.ldb(t, SECRET_PTR, off);
        self.a.andi(t, t, 1);
        let l = self.fresh_label();
        self.a.bne(t, Reg::ZERO, &l);
        self.a.nop();
        self.a.label(&l);
        self.arch_leak = true;
    }

    /// Spectre-v1 gadget. Two chained cold-DRAM loads feed an untrained
    /// branch, opening a transient window hundreds of cycles long; the
    /// wrong path loads a (pre-warmed) secret byte and uses it to index the
    /// probe array. Architectural state is unaffected — the branch is
    /// always taken — but under the unsafe baseline the probe access
    /// imprints `secret << 6` on the cache digest.
    fn gadget(&mut self) {
        let mut idxs: Vec<usize> = (FIRST_SCRATCH..FIRST_SCRATCH + NUM_SCRATCH).collect();
        for k in 0..5 {
            let j = k + self.rng.gen_range(0..(idxs.len() - k));
            idxs.swap(k, j);
        }
        let [tw, t0, t0b, t1, t2] = [0, 1, 2, 3, 4].map(|k| Reg::from_index(idxs[k]));
        let g = self.gadgets as i64;
        self.gadgets += 1;
        let warm_off = self.rng.gen_range(0..SECRET_LEN) as i64;
        let leak_off = self.rng.gen_range(0..SECRET_LEN) as i64;
        let l = self.fresh_label();
        // Warm the (single-line) secret region so the transient secret load
        // hits L1 inside the window. This is an architectural secret read.
        self.a.ldb(tw, SECRET_PTR, warm_off);
        self.set_flag(tw, true);
        // Chained cold loads: the second's address depends on the first, so
        // the branch resolves only after two DRAM round trips.
        self.a.ld(t0, COLD_PTR, g * 128);
        self.set_flag(t0, false);
        self.a.load_idx(t0b, COLD_PTR, t0, 0, g * 128 + 64, MemSize::B8);
        self.set_flag(t0b, false);
        // Cold memory is all-zero, so this branch is always taken; the
        // untrained predictor says fall-through.
        self.a.beq(t0b, Reg::ZERO, &l);
        // Transient-only path: t1/t2 are architecturally dead.
        self.a.ldb(t1, SECRET_PTR, leak_off);
        self.a.shli(t1, t1, 6);
        self.a.load_idx(t2, PROBE_PTR, t1, 0, 0, MemSize::B8);
        self.a.label(&l);
    }

    fn counted_loop(&mut self, depth: usize) {
        let ctr = COUNTERS[depth];
        let trips = self.rng.gen_range(2..=4);
        self.a.mov_imm(ctr, trips);
        let outermost = self.pool.is_none();
        if outermost {
            // Secret writes inside the loop are confined to the currently
            // secret registers plus a few extras, all flagged for the whole
            // loop (a late secret write is live at the body top from
            // iteration 2 on).
            let mut mask = self.secret;
            let mut extras = 4;
            let mut attempts = 0;
            while extras > 0 && attempts < 64 {
                attempts += 1;
                let i = self.rng.gen_range(0..NUM_SCRATCH);
                if !mask[i] {
                    mask[i] = true;
                    extras -= 1;
                }
            }
            for (i, &pooled) in mask.iter().enumerate() {
                if pooled {
                    self.secret[i] = true;
                }
            }
            self.pool = Some(mask);
        }
        let l = self.fresh_label();
        self.a.label(&l);
        let blocks = self.rng.gen_range(1..=3);
        for _ in 0..blocks {
            self.block(depth + 1);
        }
        self.a.subi(ctr, ctr, 1);
        self.a.bne(ctr, Reg::ZERO, &l);
        if outermost {
            self.pool = None;
        }
    }

    fn block(&mut self, depth: usize) {
        let roll = self.rng.gen_range(0..100);
        match roll {
            0..=21 => {
                let n = self.rng.gen_range(1..=4);
                for _ in 0..n {
                    self.alu_inst(false);
                }
            }
            22..=35 => self.public_load(),
            36..=47 => self.store_forward(),
            48..=57 => self.ptr_chase(),
            58..=69 => self.data_branch(),
            70..=79 => self.secret_load(),
            80..=84 => self.sink_store(),
            85..=87 => self.secret_branch(),
            88..=89 if depth < COUNTERS.len() => self.counted_loop(depth),
            90..=99 if depth == 0 && self.gadgets < 2 => self.gadget(),
            _ => {
                // Re-rolled loop/gadget slots at disallowed depth.
                let n = self.rng.gen_range(1..=3);
                for _ in 0..n {
                    self.alu_inst(false);
                }
            }
        }
    }
}

/// Generates the test program for `seed`. Deterministic: equal seeds give
/// byte-identical programs, memory images, and secrets.
pub fn generate(seed: u64) -> TestProgram {
    let mut g = Gen::new(seed);
    g.prologue();
    let blocks = g.rng.gen_range(4..=9);
    for _ in 0..blocks {
        g.block(0);
    }
    g.a.halt();
    let Gen { a, mut rng, gadgets, arch_leak, .. } = g;
    let program = a.assemble().expect("generated programs always assemble");

    let mut mem_words = Vec::new();
    for i in 0..(DATA_LEN / 8) {
        mem_words.push((DATA_BASE + i * 8, rng.gen::<u64>()));
    }
    // Pointer ring: a single cycle through all nodes (any odd stride is
    // coprime with the power-of-two node count).
    let stride = 2 * rng.gen_range(0..(PTR_NODES / 2)) + 1;
    for i in 0..PTR_NODES {
        mem_words.push((PTR_BASE + i * 8, PTR_BASE + ((i + stride) % PTR_NODES) * 8));
    }
    let secret: Vec<u8> = (0..SECRET_LEN).map(|_| rng.gen::<u8>()).collect();

    TestProgram { program, mem_words, secret, expect_arch_leak: arch_leak, has_gadget: gadgets > 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spt_isa::interp::Interp;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.program.to_string(), b.program.to_string());
        assert_eq!(a.mem_words, b.mem_words);
        assert_eq!(a.secret, b.secret);
        assert_eq!((a.expect_arch_leak, a.has_gadget), (b.expect_arch_leak, b.has_gadget));
        let c = generate(43);
        assert_ne!(a.program.to_string(), c.program.to_string(), "seeds decorrelate");
    }

    #[test]
    fn generated_programs_halt_on_the_interpreter() {
        for seed in 0..32 {
            let tp = generate(seed);
            let mut mem = spt_isa::interp::SparseMem::new();
            for &(addr, word) in &tp.mem_words {
                mem.write(addr, word, 8);
            }
            mem.write_bytes(SECRET_BASE, &tp.secret);
            let mut it = Interp::with_memory(&tp.program, mem);
            it.run(400_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn feature_mix_is_reachable() {
        let (mut gadgets, mut leaks) = (0, 0);
        for seed in 0..64 {
            let tp = generate(seed);
            gadgets += u32::from(tp.has_gadget);
            leaks += u32::from(tp.expect_arch_leak);
        }
        assert!(gadgets >= 8, "gadget template too rare: {gadgets}/64");
        assert!(leaks >= 2, "arch-leak template too rare: {leaks}/64");
        assert!(leaks <= 40, "arch-leak template too common: {leaks}/64");
    }
}
