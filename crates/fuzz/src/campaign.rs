//! Campaign driver: fans program seeds out across a worker pool, gathers
//! findings, shrinks them, and renders a deterministic report.
//!
//! Determinism contract: for a fixed `(seed, iters)` the report text and
//! every reproducer are byte-identical at any `--jobs` value. Per-iteration
//! program seeds are derived by a SplitMix-style mix of the base seed and
//! the iteration index, results come back order-preserving from
//! [`run_indexed`], and the report contains no timing.

use std::fmt::Write as _;

use crate::generator::generate;
use crate::harness::{differential, relational, reproduces, Finding, FindingKind, THREATS};
use crate::{repro, shrink};
use spt_core::Config;
use spt_util::{default_jobs, run_indexed};

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Base seed; per-iteration program seeds are derived from it.
    pub seed: u64,
    /// Number of programs to generate and check.
    pub iters: usize,
    /// Worker threads.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig { seed: 1, iters: 200, jobs: default_jobs() }
    }
}

/// A shrunk, rendered reproducer ready to be written to `fuzz/corpus/`.
#[derive(Clone, Debug)]
pub struct ReproOut {
    /// Suggested file name (deterministic).
    pub file_name: String,
    /// One-line summary for the report.
    pub summary: String,
    /// Full reproducer file contents.
    pub text: String,
}

/// Everything a campaign produced.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Deterministic human-readable report.
    pub text: String,
    /// Reproducers for every finding.
    pub repros: Vec<ReproOut>,
    /// `true` when there were no findings and the unsafe-baseline positive
    /// control fired at least once.
    pub ok: bool,
}

struct IterOut {
    insts: usize,
    arch_leak: bool,
    secret_read: bool,
    unsafe_checked: bool,
    unsafe_diverged: bool,
    findings: Vec<(Finding, String)>,
}

/// SplitMix64-style mixer deriving the per-iteration program seed.
fn mix(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn run_iter(seed: u64, iter: usize) -> IterOut {
    let program_seed = mix(seed, iter as u64);
    let tp = generate(program_seed);
    let mut findings = differential(&tp);
    let rel = relational(&tp);
    findings.extend(rel.findings);
    let findings = findings
        .into_iter()
        .map(|f| {
            let shrunk = shrink::shrink(&tp, |cand| reproduces(cand, &f));
            let notes = vec![
                format!(
                    "found by spt-fuzz: seed {seed} iter {iter} (program seed {program_seed:#x})"
                ),
                format!("{} at {}", f.kind.label(), f.location()),
                format!("detail: {}", f.detail),
            ];
            let text = repro::to_text(&shrunk, &notes);
            (f, text)
        })
        .collect();
    IterOut {
        insts: tp.program.len(),
        arch_leak: rel.arch_leak,
        secret_read: rel.secret_read,
        unsafe_checked: rel.unsafe_checked,
        unsafe_diverged: rel.unsafe_diverged,
        findings,
    }
}

/// Runs a full campaign.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let seed = cfg.seed;
    let outs = run_indexed(cfg.iters, cfg.jobs, move |i| run_iter(seed, i));

    let mut repros = Vec::new();
    let mut counts = [0usize; 4]; // indexed by FindingKind order below
    let kinds = [
        FindingKind::Differential,
        FindingKind::RelationalLeak,
        FindingKind::Timeout,
        FindingKind::Generator,
    ];
    let (mut arch_leaks, mut secret_reads) = (0usize, 0usize);
    let (mut unsafe_checked, mut unsafe_diverged) = (0usize, 0usize);
    let mut total_insts = 0usize;
    for (iter, out) in outs.iter().enumerate() {
        total_insts += out.insts;
        arch_leaks += usize::from(out.arch_leak);
        secret_reads += usize::from(out.secret_read);
        unsafe_checked += usize::from(out.unsafe_checked);
        unsafe_diverged += usize::from(out.unsafe_diverged);
        for (j, (f, text)) in out.findings.iter().enumerate() {
            let k = kinds.iter().position(|&k| k == f.kind).expect("known kind");
            counts[k] += 1;
            repros.push(ReproOut {
                file_name: format!("repro-s{seed}-i{iter:04}-{}-{j}.s", f.kind.label()),
                summary: format!(
                    "iter {iter}: {} at {} -- {}",
                    f.kind.label(),
                    f.location(),
                    f.detail
                ),
                text: text.clone(),
            });
        }
    }

    let findings: usize = counts.iter().sum();
    let control_ok = cfg.iters == 0 || unsafe_diverged >= 1;
    let ok = findings == 0 && control_ok;

    let n_configs = Config::table2(THREATS[0]).len();
    let mut text = String::new();
    let _ = writeln!(text, "== spt-fuzz campaign ==");
    // Deliberately no job count or timing here: the report is byte-identical
    // at any `--jobs` value.
    let _ = writeln!(
        text,
        "seed {} | {} programs | {} configs x {} threat models",
        seed,
        cfg.iters,
        n_configs,
        THREATS.len()
    );
    let mean = total_insts.checked_div(cfg.iters).unwrap_or(0);
    let _ = writeln!(text, "mean program length             : {mean} insts");
    let _ = writeln!(text, "arch-leaking (classified)       : {arch_leaks}");
    let _ = writeln!(text, "secret-reading (STT skip)       : {secret_reads}");
    let _ = writeln!(
        text,
        "unsafe relational divergence    : {unsafe_diverged}/{unsafe_checked} programs (positive control, need >= 1)"
    );
    let _ = writeln!(text, "differential divergences        : {}", counts[0]);
    let _ = writeln!(text, "relational leaks (protected)    : {}", counts[1]);
    let _ = writeln!(text, "timeouts/deadlocks              : {}", counts[2]);
    let _ = writeln!(text, "generator anomalies             : {}", counts[3]);
    for r in &repros {
        let _ = writeln!(text, "FINDING {}: {}", r.file_name, r.summary);
    }
    if findings == 0 && !control_ok {
        let _ = writeln!(
            text,
            "WARNING: the unsafe baseline never diverged; the observation \
             channel did not demonstrate a leak"
        );
    }
    let _ = writeln!(text, "RESULT: {}", if ok { "PASS" } else { "FAIL" });

    CampaignReport { text, repros, ok }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_decorrelates_indices() {
        let a = mix(1, 0);
        let b = mix(1, 1);
        let c = mix(2, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(mix(1, 0), a, "pure function");
    }

    #[test]
    fn report_is_identical_at_any_job_count() {
        let base = CampaignConfig { seed: 9, iters: 2, jobs: 1 };
        let seq = run_campaign(&base);
        let par = run_campaign(&CampaignConfig { jobs: 2, ..base });
        assert_eq!(seq.text, par.text, "report bytes must not depend on --jobs");
        assert_eq!(
            seq.repros.iter().map(|r| &r.text).collect::<Vec<_>>(),
            par.repros.iter().map(|r| &r.text).collect::<Vec<_>>()
        );
    }
}
