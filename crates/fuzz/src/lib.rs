//! Differential and relational fuzzing of the SPT simulator.
//!
//! Two complementary oracles run over the same seeded program generator:
//!
//! * **Differential** ([`harness::differential`]): the out-of-order
//!   [`Machine`](spt_ooo::Machine) must reach exactly the architectural
//!   end-state of the in-order reference interpreter — registers, memory
//!   footprint, and retired-instruction count — under *every* Table-2
//!   protection configuration and both threat models. Protection schemes
//!   may change timing, never architecture.
//!
//! * **Relational** ([`harness::relational`]): run the same program twice
//!   with only the designated secret bytes varied. Any configuration whose
//!   [`Config::protected()`](spt_core::Config::protected) contract holds
//!   must produce a bit-identical attacker-observation digest (cache/TLB
//!   reach state, transmitter retire timing, untaint decisions) for both
//!   variants — the executable form of the paper's Theorem 1. The
//!   UnsafeBaseline is the positive control: generated Spectre-v1 gadgets
//!   must make its digests diverge, proving the observation channel is
//!   sharp enough to see a real leak.
//!
//! Failing programs are greedily shrunk ([`shrink`]) and rendered as
//! replayable textual-assembly reproducers ([`repro`]) for `fuzz/corpus/`.

pub mod campaign;
pub mod generator;
pub mod harness;
pub mod repro;
pub mod shrink;

pub use campaign::{run_campaign, CampaignConfig, CampaignReport};
pub use generator::{generate, TestProgram};
pub use harness::{differential, relational, Finding, FindingKind, RelOutcome};
