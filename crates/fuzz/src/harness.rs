//! The two fuzzing oracles: architectural equivalence (differential) and
//! secret non-interference of the attacker observation (relational).

use crate::generator::{TestProgram, SECRET_BASE, SECRET_FLIP, SECRET_LEN};
use spt_core::{Config, ProtectionKind, ThreatModel};
use spt_isa::interp::{Interp, LeakEvent, LeakKind, SparseMem};
use spt_isa::Reg;
use spt_mem::{HierarchyConfig, MemSystem};
use spt_ooo::{CoreConfig, Machine, RunLimits};

/// Step budget for the reference interpreter.
pub const INTERP_BUDGET: u64 = 400_000;
/// Cycle budget for one pipeline run (generated programs retire a few
/// thousand instructions; SecureBaseline delays every transmitter to its
/// VP, so allow generous headroom).
pub const CYCLE_BUDGET: u64 = 4_000_000;

/// Both paper threat models, in report order.
pub const THREATS: [ThreatModel; 2] = [ThreatModel::Spectre, ThreatModel::Futuristic];

/// What kind of bug a [`Finding`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FindingKind {
    /// Pipeline architectural end-state diverged from the interpreter.
    Differential,
    /// A protected configuration's observation digest depended on the
    /// secret.
    RelationalLeak,
    /// A pipeline run deadlocked or exhausted its cycle budget.
    Timeout,
    /// The generator's own invariants failed (interpreter error, or the
    /// taint discipline mis-predicted whether the leak trace diverges).
    Generator,
}

impl FindingKind {
    /// Stable lowercase label used in reports and reproducer file names.
    pub fn label(self) -> &'static str {
        match self {
            FindingKind::Differential => "differential",
            FindingKind::RelationalLeak => "relational-leak",
            FindingKind::Timeout => "timeout",
            FindingKind::Generator => "generator",
        }
    }
}

/// One confirmed divergence, attributed to a configuration when one is
/// involved.
#[derive(Clone, Debug)]
pub struct Finding {
    /// What went wrong.
    pub kind: FindingKind,
    /// The configuration under which it happened (`None` for generator
    /// anomalies, which involve only the reference interpreter).
    pub config: Option<Config>,
    /// Deterministic human-readable detail.
    pub detail: String,
}

impl Finding {
    /// `"<config> [<threat>]"`, or `"generator"` when no config applies.
    pub fn location(&self) -> String {
        match self.config {
            Some(c) => format!("{} [{}]", c.name(), c.threat),
            None => "generator".to_string(),
        }
    }
}

/// Architectural end-state of a reference-interpreter run.
pub struct InterpRun {
    /// All 32 architectural registers.
    pub regs: Vec<u64>,
    /// Instructions retired (including `Halt`).
    pub retired: u64,
    /// Final memory.
    pub mem: SparseMem,
    /// Non-speculative leak trace (empty unless tracing was on).
    pub trace: Vec<LeakEvent>,
}

fn apply_memory(tp: &TestProgram, secret: &[u8], mem: &mut SparseMem) {
    for &(addr, word) in &tp.mem_words {
        mem.write(addr, word, 8);
    }
    mem.write_bytes(SECRET_BASE, secret);
}

/// Runs the reference interpreter to completion.
pub fn run_interp(tp: &TestProgram, secret: &[u8], with_trace: bool) -> Result<InterpRun, Finding> {
    let mut mem = SparseMem::new();
    apply_memory(tp, secret, &mut mem);
    let mut it = Interp::with_memory(&tp.program, mem);
    if with_trace {
        it.enable_trace();
    }
    match it.run(INTERP_BUDGET) {
        Ok(()) => Ok(InterpRun {
            regs: Reg::all().map(|r| it.reg(r)).collect(),
            retired: it.retired(),
            trace: it.trace().map(<[LeakEvent]>::to_vec).unwrap_or_default(),
            mem: it.mem().clone(),
        }),
        Err(e) => Err(Finding {
            kind: FindingKind::Generator,
            config: None,
            detail: format!("reference interpreter failed: {e}"),
        }),
    }
}

/// Runs the pipeline under `cfg` to completion (error on deadlock or
/// budget exhaustion).
pub fn run_machine(tp: &TestProgram, secret: &[u8], cfg: Config) -> Result<Machine, Finding> {
    let mut mem = MemSystem::new(HierarchyConfig::default());
    apply_memory(tp, secret, mem.store());
    let mut m = Machine::with_memory(tp.program.clone(), CoreConfig::default(), cfg, mem);
    let limits = RunLimits { max_cycles: CYCLE_BUDGET, max_retired: u64::MAX };
    match m.run(limits) {
        Err(e) => Err(Finding {
            kind: FindingKind::Timeout,
            config: Some(cfg),
            detail: format!("pipeline error: {e}"),
        }),
        Ok(_) if !m.halted() => Err(Finding {
            kind: FindingKind::Timeout,
            config: Some(cfg),
            detail: format!("no halt within {CYCLE_BUDGET} cycles"),
        }),
        Ok(_) => Ok(m),
    }
}

/// First architectural mismatch between a halted machine and the reference
/// run, if any.
fn diff_compare(interp: &InterpRun, m: &Machine) -> Option<String> {
    let regs = m.arch_regs();
    for (i, (&got, &want)) in regs.iter().zip(interp.regs.iter()).enumerate() {
        if got != want {
            return Some(format!("r{i} = {got:#x} (pipeline) vs {want:#x} (interp)"));
        }
    }
    let retired = m.stats().retired;
    if retired != interp.retired {
        return Some(format!("retired {} (pipeline) vs {} (interp)", retired, interp.retired));
    }
    for (base, len) in TestProgram::footprint() {
        let got = m.mem().store_ref().read_bytes(base, len as usize);
        let want = interp.mem.read_bytes(base, len as usize);
        if got != want {
            let at = got.iter().zip(&want).position(|(a, b)| a != b).unwrap_or(0);
            return Some(format!(
                "mem[{:#x}] = {:#04x} (pipeline) vs {:#04x} (interp)",
                base + at as u64,
                got[at],
                want[at]
            ));
        }
    }
    None
}

/// Differential oracle: under every Table-2 configuration and both threat
/// models, the pipeline must reproduce the interpreter's architectural
/// end-state exactly.
pub fn differential(tp: &TestProgram) -> Vec<Finding> {
    let reference = match run_interp(tp, &tp.secret, false) {
        Ok(r) => r,
        Err(f) => return vec![f],
    };
    let mut out = Vec::new();
    for threat in THREATS {
        for cfg in Config::table2(threat) {
            match run_machine(tp, &tp.secret, cfg) {
                Err(f) => out.push(f),
                Ok(m) => {
                    if let Some(detail) = diff_compare(&reference, &m) {
                        out.push(Finding {
                            kind: FindingKind::Differential,
                            config: Some(cfg),
                            detail,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Outcome of the relational (secret-swap) oracle for one program.
#[derive(Clone, Debug, Default)]
pub struct RelOutcome {
    /// The non-speculative leak traces of the two secret variants differ:
    /// the program leaks architecturally, so no configuration is expected
    /// to hide the secret and the per-config asserts are skipped.
    pub arch_leak: bool,
    /// The program loads or stores inside the secret region
    /// non-speculatively. STT by design does not protect such data, so its
    /// relational assert is skipped (SPT's is not — this gap is the
    /// paper's headline).
    pub secret_read: bool,
    /// At least one unsafe-baseline pair ran to completion.
    pub unsafe_checked: bool,
    /// An unsafe-baseline observation digest depended on the secret (the
    /// expected outcome for gadget-bearing programs).
    pub unsafe_diverged: bool,
    /// Confirmed bugs.
    pub findings: Vec<Finding>,
}

/// Secret variant B: every byte XORed with [`SECRET_FLIP`].
pub fn swapped_secret(secret: &[u8]) -> Vec<u8> {
    secret.iter().map(|b| b ^ SECRET_FLIP).collect()
}

fn touches_secret(trace: &[LeakEvent]) -> bool {
    trace.iter().any(|e| {
        matches!(e.kind, LeakKind::LoadAddr | LeakKind::StoreAddr)
            && e.value < SECRET_BASE + SECRET_LEN
            && e.value + 8 > SECRET_BASE
    })
}

/// Relational oracle: with only the secret bytes varied, every protected
/// configuration must produce identical attacker-observation digests,
/// while gadget programs must make the unsafe baseline diverge.
pub fn relational(tp: &TestProgram) -> RelOutcome {
    let mut out = RelOutcome::default();
    let secret_b = swapped_secret(&tp.secret);
    let a = match run_interp(tp, &tp.secret, true) {
        Ok(r) => r,
        Err(f) => {
            out.findings.push(f);
            return out;
        }
    };
    let b = match run_interp(tp, &secret_b, true) {
        Ok(r) => r,
        Err(f) => {
            out.findings.push(f);
            return out;
        }
    };
    out.arch_leak = a.trace != b.trace;
    if out.arch_leak != tp.expect_arch_leak {
        out.findings.push(Finding {
            kind: FindingKind::Generator,
            config: None,
            detail: format!(
                "taint discipline mis-predicted the leak trace: expected \
                 arch_leak={}, traces {}",
                tp.expect_arch_leak,
                if out.arch_leak { "differ" } else { "are equal" }
            ),
        });
    }
    if out.arch_leak {
        // Both variants' architectural behaviour differs; relational
        // equality is not expected of any configuration.
        return out;
    }
    out.secret_read = touches_secret(&a.trace);
    for threat in THREATS {
        for cfg in Config::table2(threat) {
            if cfg.protected() && cfg.kind == ProtectionKind::Stt && out.secret_read {
                continue;
            }
            let ma = match run_machine(tp, &tp.secret, cfg) {
                Ok(m) => m,
                Err(f) => {
                    out.findings.push(f);
                    continue;
                }
            };
            let mb = match run_machine(tp, &secret_b, cfg) {
                Ok(m) => m,
                Err(f) => {
                    out.findings.push(f);
                    continue;
                }
            };
            let (da, db) = (ma.observation_digest(), mb.observation_digest());
            if cfg.protected() {
                if da != db {
                    out.findings.push(Finding {
                        kind: FindingKind::RelationalLeak,
                        config: Some(cfg),
                        detail: format!(
                            "observation digest depends on the secret: \
                             {da:#018x} vs {db:#018x}"
                        ),
                    });
                }
            } else {
                out.unsafe_checked = true;
                if da != db {
                    out.unsafe_diverged = true;
                }
            }
        }
    }
    out
}

/// Re-checks whether `tp` still exhibits finding `f` (the shrinker's
/// predicate).
pub fn reproduces(tp: &TestProgram, f: &Finding) -> bool {
    match f.kind {
        FindingKind::Generator => {
            // Either interpreter failure or a taint-discipline violation.
            let a = match run_interp(tp, &tp.secret, true) {
                Ok(r) => r,
                Err(_) => return true,
            };
            let b = match run_interp(tp, &swapped_secret(&tp.secret), true) {
                Ok(r) => r,
                Err(_) => return true,
            };
            (a.trace != b.trace) != tp.expect_arch_leak
        }
        FindingKind::Timeout => {
            let cfg = f.config.expect("timeout findings carry a config");
            run_machine(tp, &tp.secret, cfg).is_err()
        }
        FindingKind::Differential => {
            let cfg = f.config.expect("differential findings carry a config");
            let reference = match run_interp(tp, &tp.secret, false) {
                Ok(r) => r,
                Err(_) => return false,
            };
            match run_machine(tp, &tp.secret, cfg) {
                Ok(m) => diff_compare(&reference, &m).is_some(),
                Err(_) => false,
            }
        }
        FindingKind::RelationalLeak => {
            let cfg = f.config.expect("relational findings carry a config");
            let secret_b = swapped_secret(&tp.secret);
            let (a, b) = match (run_interp(tp, &tp.secret, true), run_interp(tp, &secret_b, true)) {
                (Ok(a), Ok(b)) => (a, b),
                _ => return false,
            };
            if a.trace != b.trace {
                return false;
            }
            match (run_machine(tp, &tp.secret, cfg), run_machine(tp, &secret_b, cfg)) {
                (Ok(ma), Ok(mb)) => ma.observation_digest() != mb.observation_digest(),
                _ => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    #[test]
    fn clean_program_passes_both_oracles() {
        // Pick a deterministic seed whose program has no deliberate leak.
        let tp = (0..64)
            .map(generate)
            .find(|t| !t.expect_arch_leak && !t.has_gadget)
            .expect("a quiet program exists in the first 64 seeds");
        let diffs = differential(&tp);
        assert!(diffs.is_empty(), "unexpected differential findings: {diffs:?}");
        let rel = relational(&tp);
        assert!(rel.findings.is_empty(), "unexpected relational findings: {:?}", rel.findings);
        assert!(!rel.arch_leak);
    }

    #[test]
    fn gadget_program_diverges_only_under_unsafe() {
        let tp = (0..64)
            .map(generate)
            .find(|t| t.has_gadget && !t.expect_arch_leak)
            .expect("a gadget program exists in the first 64 seeds");
        let rel = relational(&tp);
        assert!(rel.findings.is_empty(), "protected configs leaked: {:?}", rel.findings);
        assert!(rel.unsafe_checked);
        assert!(rel.unsafe_diverged, "gadget did not move the unsafe observation digest");
    }

    #[test]
    fn secret_branch_is_classified_as_arch_leak() {
        let tp = (0..128)
            .map(generate)
            .find(|t| t.expect_arch_leak)
            .expect("an arch-leaking program exists in the first 128 seeds");
        let rel = relational(&tp);
        assert!(rel.arch_leak, "secret-bit branch must split the leak traces");
        assert!(
            rel.findings.is_empty(),
            "classification should not be a finding: {:?}",
            rel.findings
        );
    }
}
