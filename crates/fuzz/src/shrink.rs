//! Greedy instruction-deletion shrinker.
//!
//! Candidate instructions are replaced by `Nop` rather than removed:
//! branch targets are absolute instruction indices, so deleting an
//! instruction would silently retarget every later branch. The pass
//! repeats until no single replacement keeps the failure alive, which is
//! usually enough to strip a generated program down to the handful of
//! instructions that matter.

use crate::generator::TestProgram;
use spt_isa::{Inst, Program};

/// Maximum full passes over the program (each pass is O(n) candidate
/// re-checks, and re-checks run the whole differential/relational
/// machinery, so this is the knob bounding shrink cost).
const MAX_PASSES: usize = 4;

/// Shrinks `tp` while `still_fails` holds, returning the smallest variant
/// found. `still_fails(&tp)` must be `true` on entry for the result to be
/// meaningful (the original is returned unchanged otherwise).
pub fn shrink<F>(tp: &TestProgram, mut still_fails: F) -> TestProgram
where
    F: FnMut(&TestProgram) -> bool,
{
    let mut insts: Vec<Inst> = tp.program.insts().to_vec();
    for _ in 0..MAX_PASSES {
        let mut changed = false;
        for i in 0..insts.len() {
            if matches!(insts[i], Inst::Nop | Inst::Halt) {
                continue;
            }
            let saved = insts[i];
            insts[i] = Inst::Nop;
            let candidate = tp.with_program(Program::from_insts(insts.clone()));
            if still_fails(&candidate) {
                changed = true;
            } else {
                insts[i] = saved;
            }
        }
        if !changed {
            break;
        }
    }
    tp.with_program(Program::from_insts(insts))
}

/// Live (non-`Nop`, non-`Halt`) instructions — the size the shrinker
/// minimizes.
pub fn live_insts(p: &Program) -> usize {
    p.insts().iter().filter(|i| !matches!(i, Inst::Nop | Inst::Halt)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;
    use spt_isa::interp::{Interp, SparseMem};
    use spt_isa::Reg;

    /// Shrink against a cheap predicate (final value of one register) to
    /// exercise the mechanics without paying for pipeline runs.
    #[test]
    fn shrinks_to_the_dataflow_of_one_register() {
        let tp = generate(7);
        let final_r20 = |t: &TestProgram| -> Option<u64> {
            let mut mem = SparseMem::new();
            for &(a, w) in &t.mem_words {
                mem.write(a, w, 8);
            }
            mem.write_bytes(crate::generator::SECRET_BASE, &t.secret);
            let mut it = Interp::with_memory(&t.program, mem);
            it.run(400_000).ok()?;
            Some(it.reg(Reg::R20))
        };
        let want = final_r20(&tp).expect("seed 7 halts");
        let shrunk = shrink(&tp, |cand| final_r20(cand) == Some(want));
        assert_eq!(final_r20(&shrunk), Some(want), "shrinking preserved the predicate");
        assert!(
            live_insts(&shrunk.program) < live_insts(&tp.program),
            "expected at least one instruction to be removable"
        );
    }
}
