//! Speculative Privacy Tracking (SPT) — the core taint-tracking library.
//!
//! This crate implements the contribution of *"Speculative Privacy
//! Tracking (SPT): Leaking Information From Speculative Execution Without
//! Compromising Privacy"* (MICRO 2021), independent of any particular
//! pipeline:
//!
//! * [`TaintMask`] — register taint with the paper's partial-width access
//!   fields (§7.2);
//! * [`algebra`] — the declassification/untaint algebra: forward and
//!   backward rules as pure functions of instruction class and taint (§5,
//!   §6.6);
//! * [`TaintEngine`] — rename-time tainting, visibility-point
//!   declassification, and the two-phase, bounded-broadcast-width untaint
//!   propagation of §7.3 (plus the idealized single-cycle variant);
//! * [`shadow`] — the byte-granular shadow L1 (§6.8, §7.5) and the
//!   idealized whole-memory shadow;
//! * [`stl`] — the `STLPublic` store-to-load forwarding condition (§6.7,
//!   §7.4);
//! * [`stt`] — the STT (MICRO'19) s-taint tracker used as the
//!   narrower-scope comparison scheme;
//! * [`Config`] — the eight evaluated configurations of paper Table 2 and
//!   the two attack models (Spectre / Futuristic);
//! * [`SptStats`] — the untaint-event taxonomy behind Figures 8 and 9.
//!
//! The out-of-order pipeline in `spt-ooo` drives these components; see its
//! documentation for how they plug into rename, issue, the LSQ and retire.
//!
//! # Example: the paper's Figure 4 untaint chain
//!
//! ```
//! use spt_core::{Config, TaintEngine, ThreatModel, UntaintKind};
//! use spt_core::engine::RenameInfo;
//! use spt_isa::{InstClass, OperandRole};
//!
//! let mut e = TaintEngine::new(Config::spt_full(ThreatModel::Futuristic), 16);
//! // I1: r0 = r1 + r2
//! e.rename(RenameInfo {
//!     seq: 1,
//!     class: InstClass::Invertible2,
//!     srcs: [Some((1, OperandRole::Data)), Some((2, OperandRole::Data)), None],
//!     dest: Some(0),
//!     load_bytes: None,
//! });
//! // I2: load r3 <- (r0)
//! e.rename(RenameInfo {
//!     seq: 2,
//!     class: InstClass::Load,
//!     srcs: [Some((0, OperandRole::Address)), None, None],
//!     dest: Some(3),
//!     load_bytes: Some(8),
//! });
//! // I2 reaches the visibility point: r0 is declassified and propagates.
//! e.declassify_vp(2);
//! let step = e.step();
//! assert_eq!(step.broadcasts, vec![(0, UntaintKind::DeclassifyTransmit)]);
//! ```

pub mod algebra;
pub mod config;
pub mod engine;
pub mod gates;
pub mod shadow;
pub mod stats;
pub mod stl;
pub mod stt;
pub mod taint;

pub use config::{Config, Policy, ProtectionKind, ShadowMode, ThreatModel, UntaintMethod};
pub use engine::{PhysReg, RenameInfo, Seq, StepResult, TaintEngine};
pub use shadow::ShadowTaint;
pub use stats::{SptStats, UntaintCounts, UntaintKind};
pub use stl::StlCondition;
pub use stt::SttTracker;
pub use taint::TaintMask;
