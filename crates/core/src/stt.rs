//! Speculative Taint Tracking (STT, MICRO'19) — the narrower-scope
//! comparison scheme (paper §2.2).
//!
//! STT s-taints the output of every speculative *access instruction*
//! (load) and propagates s-taint to dependents. A register s-untaints —
//! instantly, for all dependents — once the youngest load it depends on
//! reaches the visibility point. We implement this with the YRoT
//! ("youngest root of taint") technique from the STT paper: each physical
//! register records the sequence number of the youngest load in its
//! dataflow history; a register is s-tainted iff that load has not yet
//! reached the VP. Advancing the VP frontier therefore untaints an entire
//! dependence tree in a single step, matching STT's single-cycle untaint
//! hardware.

use crate::engine::{PhysReg, Seq};

/// The STT s-taint tracker.
///
/// # Example
///
/// ```
/// use spt_core::stt::SttTracker;
///
/// let mut stt = SttTracker::new(8);
/// // seq 5: load writes phys 1.
/// stt.rename_load(5, 1);
/// // seq 6: ALU phys 2 = f(phys 1).
/// stt.rename_alu(&[Some(1)], Some(2));
/// assert!(stt.tainted(2));
/// // The load reaches the VP: the whole tree untaints at once.
/// stt.advance_vp_frontier(5);
/// assert!(!stt.tainted(1));
/// assert!(!stt.tainted(2));
/// ```
#[derive(Clone, Debug)]
pub struct SttTracker {
    /// Per physical register: seq of the youngest root load, `None` if the
    /// value has no speculative-load ancestry.
    yrot: Vec<Option<Seq>>,
    /// All instructions with `seq <= frontier` have reached the VP.
    frontier: Seq,
}

impl SttTracker {
    /// Creates a tracker for `num_phys` registers, all initially public
    /// (STT does not protect non-speculatively-accessed data — that is
    /// precisely its limitation relative to SPT, paper §3).
    pub fn new(num_phys: usize) -> SttTracker {
        SttTracker { yrot: vec![None; num_phys], frontier: 0 }
    }

    /// Registers a load's destination at rename: its output is s-tainted
    /// until the load itself (seq) reaches the VP.
    pub fn rename_load(&mut self, seq: Seq, dest: PhysReg) {
        self.yrot[dest as usize] = Some(seq);
    }

    /// Registers a non-load instruction at rename: the destination inherits
    /// the youngest root among the sources.
    pub fn rename_alu(&mut self, srcs: &[Option<PhysReg>], dest: Option<PhysReg>) {
        let y = srcs.iter().flatten().filter_map(|&p| self.yrot[p as usize]).max();
        if let Some(d) = dest {
            self.yrot[d as usize] = y;
        }
    }

    /// Whether `phys` is currently s-tainted.
    pub fn tainted(&self, phys: PhysReg) -> bool {
        self.yrot[phys as usize].is_some_and(|root| root > self.frontier)
    }

    /// Advances the VP frontier: every instruction with `seq <= frontier`
    /// is now non-speculative, so every register rooted at such a load
    /// untaints simultaneously (STT's single-cycle untaint).
    pub fn advance_vp_frontier(&mut self, frontier: Seq) {
        self.frontier = self.frontier.max(frontier);
    }

    /// Current VP frontier.
    pub fn frontier(&self) -> Seq {
        self.frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_registers_are_public() {
        let stt = SttTracker::new(4);
        for p in 0..4 {
            assert!(!stt.tainted(p));
        }
    }

    #[test]
    fn yrot_takes_youngest_root() {
        let mut stt = SttTracker::new(8);
        stt.rename_load(3, 1);
        stt.rename_load(7, 2);
        stt.rename_alu(&[Some(1), Some(2)], Some(3));
        // Frontier passes the older load only: dest still rooted at seq 7.
        stt.advance_vp_frontier(3);
        assert!(!stt.tainted(1));
        assert!(stt.tainted(2));
        assert!(stt.tainted(3));
        stt.advance_vp_frontier(7);
        assert!(!stt.tainted(3));
    }

    #[test]
    fn alu_of_public_sources_is_public() {
        let mut stt = SttTracker::new(8);
        stt.rename_alu(&[Some(1), Some(2)], Some(3));
        assert!(!stt.tainted(3));
    }

    #[test]
    fn overwriting_a_register_clears_old_root() {
        let mut stt = SttTracker::new(8);
        stt.rename_load(5, 1);
        assert!(stt.tainted(1));
        // Physical register 1 is recycled for a non-speculative value.
        stt.rename_alu(&[None, None], Some(1));
        assert!(!stt.tainted(1));
    }

    #[test]
    fn frontier_is_monotone() {
        let mut stt = SttTracker::new(4);
        stt.advance_vp_frontier(10);
        stt.advance_vp_frontier(5);
        assert_eq!(stt.frontier(), 10);
    }
}
