//! Store-to-load forwarding untaint gating: the `STLPublic` condition
//! (paper §6.7) and its counter-based hardware tracking (§7.4).
//!
//! `STLPublic(S, L)` holds iff ① store `S`'s data is forwarded to load `L`,
//! ② `L`'s address is untainted, and ③ the addresses of every store older
//! than `L` and younger than or equal to `S` are untainted. Only then does
//! the attacker know — from public information — that `L` got its data
//! from `S`, so only then may untaint propagate across the pair without
//! revealing a secret address alias (paper Figure 5).
//!
//! The hardware tracks this per LSQ load entry with two fields: `FwdingSt`
//! (the forwarding store) and `NumStUntaintPending` (how many involved
//! stores still have tainted addresses); each store-address untaint
//! broadcast decrements the counter, and the condition becomes true at
//! zero. [`StlCondition`] models exactly that counter.

/// Per-load tracking of one pending `STLPublic(S, L)` condition.
///
/// # Example
///
/// ```
/// use spt_core::stl::StlCondition;
///
/// // Forwarding detected with 2 involved stores still tainted.
/// let mut c = StlCondition::pending(2);
/// assert!(!c.is_public());
/// c.on_store_address_untainted();
/// assert!(!c.is_public());
/// c.on_store_address_untainted();
/// assert!(c.is_public());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StlCondition {
    /// `NumStUntaintPending` (§7.4): stores with tainted addresses still
    /// involved in the implicit forwarding branch.
    remaining: u32,
}

impl StlCondition {
    /// Condition already public: the load's address and every involved
    /// store address were untainted when forwarding was decided.
    pub fn public() -> StlCondition {
        StlCondition { remaining: 0 }
    }

    /// Condition pending on `tainted_stores` store-address untaints.
    pub fn pending(tainted_stores: u32) -> StlCondition {
        StlCondition { remaining: tainted_stores }
    }

    /// Records that one involved store's address became untainted.
    /// Returns `true` if the condition just became public.
    pub fn on_store_address_untainted(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.remaining == 0
    }

    /// Whether `STLPublic` currently holds.
    pub fn is_public(&self) -> bool {
        self.remaining == 0
    }

    /// Stores still pending.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediately_public() {
        let c = StlCondition::public();
        assert!(c.is_public());
    }

    #[test]
    fn decrements_to_public_exactly_once() {
        let mut c = StlCondition::pending(1);
        assert!(!c.is_public());
        assert!(c.on_store_address_untainted(), "transition reported");
        assert!(c.is_public());
        assert!(!c.on_store_address_untainted(), "no re-transition");
    }

    #[test]
    fn multiple_pending_stores() {
        let mut c = StlCondition::pending(3);
        assert!(!c.on_store_address_untainted());
        assert!(!c.on_store_address_untainted());
        assert_eq!(c.remaining(), 1);
        assert!(c.on_store_address_untainted());
    }
}
