//! The §5 untaint algebra at the boolean-gate level, including the
//! GLIFT-style value-aware rules (paper Figures 2 and 3).
//!
//! The instruction-level rules in [`crate::algebra`] are deliberately
//! conservative — "a function of the instruction's type and the taint of
//! its registers" only (§6.6) — because hardware must evaluate them in one
//! cycle without reading values. This module implements the *full* algebra
//! the paper develops first, where values participate:
//!
//! * **Forward GLIFT** (§5.1): `AND(0ᵖᵘᵇ, secret) = 0ᵖᵘᵇ` — a public
//!   controlling input makes the output public regardless of the other
//!   input's taint.
//! * **Backward inference** (§5.2, Figure 2): declassifying `out = AND(a,b)`
//!   with `out = 1` reveals `a = b = 1`; with `out = 0` and one public `1`
//!   input, the other input must be `0`.
//! * **Composition** (§5.3, Figure 3): iterating the rules over a dataflow
//!   graph of gates propagates declassification both directions until a
//!   fixpoint.
//!
//! Soundness here has a crisp meaning, checked exhaustively by the tests:
//! a wire may be public only if its value is uniquely determined by the
//! public wires' values and the circuit structure — i.e. no alternative
//! assignment to the secret inputs produces the same public observations
//! with a different value on that wire.

use std::collections::BTreeMap;
use std::fmt;

/// A single bit with a taint label (§5: "we assume data is either public
/// (untainted) or private (tainted)").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wire {
    /// The bit's value.
    pub value: bool,
    /// Whether the bit is secret.
    pub tainted: bool,
}

impl Wire {
    /// A public bit.
    pub fn public(value: bool) -> Wire {
        Wire { value, tainted: false }
    }

    /// A secret bit.
    pub fn secret(value: bool) -> Wire {
        Wire { value, tainted: true }
    }
}

impl fmt::Display for Wire {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.value as u8, if self.tainted { "ᵗ" } else { "" })
    }
}

/// Two-input boolean gate kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GateKind {
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
    /// Logical XOR.
    Xor,
}

impl GateKind {
    /// Evaluates the gate.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateKind::And => a && b,
            GateKind::Or => a || b,
            GateKind::Xor => a ^ b,
        }
    }
}

/// Forward GLIFT taint rule (§5.1): the output is tainted only if a change
/// to some tainted input *could* change the output given the public inputs.
///
/// # Example — paper Figure 2's discussion
///
/// ```
/// use spt_core::gates::{forward_taint, GateKind, Wire};
/// // 0 & secret = public 0: "it is safe to untaint the output".
/// assert!(!forward_taint(GateKind::And, Wire::public(false), Wire::secret(true)));
/// // 1 & secret = secret: "the output becomes a function of in2".
/// assert!(forward_taint(GateKind::And, Wire::public(true), Wire::secret(true)));
/// ```
pub fn forward_taint(kind: GateKind, a: Wire, b: Wire) -> bool {
    match (a.tainted, b.tainted) {
        (false, false) => false,
        (true, true) => true,
        // One tainted input: the output is public iff the public input
        // forces the gate's value.
        (true, false) => match kind {
            GateKind::And => b.value, // public 0 forces output 0
            GateKind::Or => !b.value, // public 1 forces output 1
            GateKind::Xor => true,    // xor never forces
        },
        (false, true) => match kind {
            GateKind::And => a.value,
            GateKind::Or => !a.value,
            GateKind::Xor => true,
        },
    }
}

/// Backward untaint rule (§5.2, the Figure 2 truth table): given that the
/// gate's *output* has been declassified (its value is now public), which
/// inputs become inferable? Returns per-input flags.
///
/// The paper's key example: "Suppose the output of the AND gate is 1 and
/// tainted. If the output becomes declassified/untainted, we can ... infer
/// that in1 = in2 = 1."
///
/// # Example
///
/// ```
/// use spt_core::gates::{backward_untaint, GateKind, Wire};
/// // out = AND = 1 declassified: both inputs inferable.
/// let (a, b) = backward_untaint(GateKind::And, Wire::secret(true), Wire::secret(true));
/// assert!(a && b);
/// // out = AND = 0 with both inputs secret: neither is inferable.
/// let (a, b) = backward_untaint(GateKind::And, Wire::secret(false), Wire::secret(true));
/// assert!(!a && !b);
/// // out = AND = 0 with a public 1 input: the other must be 0 (§5.2's
/// // "both the output and in2 become untainted" case).
/// let (a, _) = backward_untaint(GateKind::And, Wire::secret(false), Wire::public(true));
/// assert!(a);
/// ```
pub fn backward_untaint(kind: GateKind, a: Wire, b: Wire) -> (bool, bool) {
    let out = kind.eval(a.value, b.value);
    let infer = |x: Wire, other: Wire| -> bool {
        if !x.tainted {
            return false; // already public
        }
        // x is inferable iff its value is forced by (out, other-if-public).
        match kind {
            GateKind::And => {
                if out {
                    true // out = 1 => both inputs are 1
                } else {
                    // out = 0: x is forced only if the other input is a
                    // public 1 (then x must be 0).
                    !other.tainted && other.value
                }
            }
            GateKind::Or => {
                if !out {
                    true // out = 0 => both inputs are 0
                } else {
                    !other.tainted && !other.value
                }
            }
            // xor: knowing out and the other input always determines x.
            GateKind::Xor => !other.tainted,
        }
    };
    (infer(a, b), infer(b, a))
}

/// A gate in a dataflow graph: output wire = kind(input wires).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gate {
    /// Operation.
    pub kind: GateKind,
    /// Names of the two input wires.
    pub inputs: [&'static str; 2],
    /// Name of the output wire.
    pub output: &'static str,
}

/// A small combinational circuit over named wires (§5.3's "composition to
/// complex dataflow graphs").
///
/// # Example — paper Figure 3
///
/// ```
/// use spt_core::gates::{Circuit, Gate, GateKind, Wire};
///
/// let mut c = Circuit::new(vec![
///     Gate { kind: GateKind::Or, inputs: ["t0", "t1"], output: "in1" },
///     Gate { kind: GateKind::And, inputs: ["in1", "in2"], output: "out" },
/// ]);
/// c.set("t0", Wire::secret(false));
/// c.set("t1", Wire::secret(false));
/// c.set("in2", Wire::public(true));
/// c.evaluate();
/// assert!(c.get("out").tainted);
///
/// // ① out is declassified; ② in1 is inferred (in2 is a public 1);
/// // ③ untaint flows backwards through the OR (out of OR is 0).
/// c.declassify("out");
/// c.propagate();
/// assert!(!c.get("t0").tainted);
/// assert!(!c.get("t1").tainted);
/// ```
#[derive(Clone, Debug)]
pub struct Circuit {
    gates: Vec<Gate>,
    wires: BTreeMap<&'static str, Wire>,
}

impl Circuit {
    /// Creates a circuit from gates in topological order.
    pub fn new(gates: Vec<Gate>) -> Circuit {
        Circuit { gates, wires: BTreeMap::new() }
    }

    /// Sets an input wire.
    pub fn set(&mut self, name: &'static str, wire: Wire) {
        self.wires.insert(name, wire);
    }

    /// Reads a wire.
    ///
    /// # Panics
    ///
    /// Panics if the wire has not been computed or set.
    pub fn get(&self, name: &str) -> Wire {
        self.wires[name]
    }

    /// Computes every gate output (values + forward GLIFT taint).
    ///
    /// # Panics
    ///
    /// Panics if a gate reads a wire that is neither an input nor an
    /// earlier gate's output.
    pub fn evaluate(&mut self) {
        for g in &self.gates {
            let a = self.wires[g.inputs[0]];
            let b = self.wires[g.inputs[1]];
            let w =
                Wire { value: g.kind.eval(a.value, b.value), tainted: forward_taint(g.kind, a, b) };
            self.wires.insert(g.output, w);
        }
    }

    /// Declassifies a wire (paper: "conceptualized as `declassify(val)`").
    pub fn declassify(&mut self, name: &'static str) {
        if let Some(w) = self.wires.get_mut(name) {
            w.tainted = false;
        }
    }

    /// Applies the forward and backward rules repeatedly until no wire
    /// changes (§5.3): declassification ripples through the graph in both
    /// directions.
    pub fn propagate(&mut self) {
        loop {
            let mut changed = false;
            for g in &self.gates {
                let a = self.wires[g.inputs[0]];
                let b = self.wires[g.inputs[1]];
                let out = self.wires[g.output];
                // Forward: output untaints when the rule says so.
                if out.tainted && !forward_taint(g.kind, a, b) {
                    self.wires.get_mut(g.output).expect("known wire").tainted = false;
                    changed = true;
                }
                // Backward: only once the output is public can its value be
                // used for inference.
                if !self.wires[g.output].tainted {
                    let (ia, ib) = backward_untaint(g.kind, a, b);
                    if ia {
                        self.wires.get_mut(g.inputs[0]).expect("known wire").tainted = false;
                        changed = true;
                    }
                    if ib {
                        self.wires.get_mut(g.inputs[1]).expect("known wire").tainted = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Names of all wires, in order.
    pub fn wire_names(&self) -> Vec<&'static str> {
        self.wires.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bools() -> [bool; 2] {
        [false, true]
    }

    /// Exhaustive soundness of the forward rule: if the rule declares the
    /// output public, the output value must be independent of every
    /// tainted input.
    #[test]
    fn forward_rule_is_sound_exhaustively() {
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor] {
            for av in bools() {
                for bv in bools() {
                    for at in bools() {
                        for bt in bools() {
                            let a = Wire { value: av, tainted: at };
                            let b = Wire { value: bv, tainted: bt };
                            if !forward_taint(kind, a, b) {
                                // Flip every combination of tainted inputs:
                                // the output must not change.
                                for fa in bools() {
                                    for fb in bools() {
                                        let av2 = if at { fa } else { av };
                                        let bv2 = if bt { fb } else { bv };
                                        assert_eq!(
                                            kind.eval(av2, bv2),
                                            kind.eval(av, bv),
                                            "{kind:?} leaked through a public output"
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Exhaustive soundness of the backward rule: an input declared
    /// inferable must be uniquely determined by the output value and the
    /// public inputs.
    #[test]
    fn backward_rule_is_sound_exhaustively() {
        for kind in [GateKind::And, GateKind::Or, GateKind::Xor] {
            for av in bools() {
                for bv in bools() {
                    for at in bools() {
                        for bt in bools() {
                            let a = Wire { value: av, tainted: at };
                            let b = Wire { value: bv, tainted: bt };
                            let out = kind.eval(av, bv);
                            let (ia, ib) = backward_untaint(kind, a, b);
                            // Check input a: no alternative secret values may
                            // reproduce `out` (and the public inputs) with a
                            // different a.
                            if ia {
                                for av2 in bools() {
                                    for bv2 in bools() {
                                        let consistent = kind.eval(av2, bv2) == out
                                            && (at || av2 == av)
                                            && (bt || bv2 == bv);
                                        if consistent {
                                            assert_eq!(av2, av, "{kind:?}: a not determined");
                                        }
                                    }
                                }
                            }
                            if ib {
                                for av2 in bools() {
                                    for bv2 in bools() {
                                        let consistent = kind.eval(av2, bv2) == out
                                            && (at || av2 == av)
                                            && (bt || bv2 == bv);
                                        if consistent {
                                            assert_eq!(bv2, bv, "{kind:?}: b not determined");
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Backward completeness on the paper's Figure 2 truth table: every
    /// case where the paper says the inputs are inferable, the rule agrees.
    #[test]
    fn figure_2_truth_table() {
        // out = AND(in1, in2) = 1, declassified: in1 = in2 = 1 inferable.
        let (a, b) = backward_untaint(GateKind::And, Wire::secret(true), Wire::secret(true));
        assert!(a && b);
        // out = 0 with both inputs tainted: "it could have been the case
        // that either (or both) ... were 0" — nothing inferable.
        for (x, y) in [(false, false), (false, true), (true, false)] {
            let (a, b) = backward_untaint(GateKind::And, Wire::secret(x), Wire::secret(y));
            assert!(!a && !b, "AND({x},{y})=0 must not infer");
        }
        // "suppose that both the output and in2 become untainted. In that
        // case, we can now untaint in1 because out = 0 ∧ in2 = 1 → in1 = 0."
        let (a, _) = backward_untaint(GateKind::And, Wire::secret(false), Wire::public(true));
        assert!(a);
        // With in2 = 0 public, in1 remains unconstrained.
        let (a, _) = backward_untaint(GateKind::And, Wire::secret(false), Wire::public(false));
        assert!(!a);
    }

    /// The paper's Figure 3 composition: declassifying `out` infers `t0`
    /// through the AND, then ripples backwards through the OR.
    #[test]
    fn figure_3_composition() {
        let mut c = Circuit::new(vec![
            Gate { kind: GateKind::Or, inputs: ["t0", "t1"], output: "in1" },
            Gate { kind: GateKind::And, inputs: ["in1", "in2"], output: "out" },
        ]);
        c.set("t0", Wire::secret(false));
        c.set("t1", Wire::secret(false));
        c.set("in2", Wire::public(true));
        c.evaluate();
        assert!(c.get("in1").tainted, "OR of secrets is secret");
        assert!(c.get("out").tainted);

        c.declassify("out");
        c.propagate();
        assert!(!c.get("in1").tainted, "② in1 inferred: out = 0 ∧ in2 = 1");
        assert!(!c.get("t0").tainted, "③ OR output 0 forces both inputs 0");
        assert!(!c.get("t1").tainted);
    }

    /// Figure 3 with values where inference must stop: out = 1 through an
    /// OR means the OR inputs are NOT individually determined.
    #[test]
    fn composition_stops_when_information_runs_out() {
        let mut c = Circuit::new(vec![
            Gate { kind: GateKind::Or, inputs: ["t0", "t1"], output: "in1" },
            Gate { kind: GateKind::And, inputs: ["in1", "in2"], output: "out" },
        ]);
        c.set("t0", Wire::secret(true));
        c.set("t1", Wire::secret(false));
        c.set("in2", Wire::public(true));
        c.evaluate();
        c.declassify("out");
        c.propagate();
        assert!(!c.get("in1").tainted, "in1 = out / in2 inferable");
        // in1 = 1 through an OR: either input could be the 1.
        assert!(c.get("t0").tainted, "t0 must stay secret");
        assert!(c.get("t1").tainted, "t1 must stay secret");
    }

    /// GLIFT forward case the conservative instruction rules skip: a public
    /// 0 into an AND cleans the output immediately.
    #[test]
    fn glift_forward_masking() {
        let mut c = Circuit::new(vec![Gate {
            kind: GateKind::And,
            inputs: ["mask", "secret"],
            output: "out",
        }]);
        c.set("mask", Wire::public(false));
        c.set("secret", Wire::secret(true));
        c.evaluate();
        assert!(!c.get("out").tainted, "0 & secret is public 0");

        // The §5.1 dynamic case: mask starts tainted, later declassified as
        // 0; re-applying the rules untaints the output.
        let mut c = Circuit::new(vec![Gate {
            kind: GateKind::And,
            inputs: ["mask", "secret"],
            output: "out",
        }]);
        c.set("mask", Wire::secret(false));
        c.set("secret", Wire::secret(true));
        c.evaluate();
        assert!(c.get("out").tainted);
        c.declassify("mask");
        c.propagate();
        assert!(!c.get("out").tainted, "declassified 0 mask cleans the output");
    }

    /// Propagation terminates (monotone: taints only ever clear).
    #[test]
    fn propagation_reaches_fixpoint_on_chains() {
        // xor chain: c1 = a ^ b; c2 = c1 ^ b; ... declassifying the end and
        // b recovers everything.
        let mut c = Circuit::new(vec![
            Gate { kind: GateKind::Xor, inputs: ["a", "b"], output: "c1" },
            Gate { kind: GateKind::Xor, inputs: ["c1", "b"], output: "c2" },
            Gate { kind: GateKind::Xor, inputs: ["c2", "b"], output: "c3" },
        ]);
        c.set("a", Wire::secret(true));
        c.set("b", Wire::secret(false));
        c.evaluate();
        c.declassify("c3");
        c.declassify("b");
        c.propagate();
        for w in ["a", "c1", "c2", "c3", "b"] {
            assert!(!c.get(w).tainted, "{w} should be inferable through the xor chain");
        }
    }
}
