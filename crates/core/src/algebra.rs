//! The declassification/untaint algebra (paper §5, §6.6), as pure functions.
//!
//! Each rule is a function of the instruction *class* and the taint of its
//! registers only — never of register values — so a hardware implementation
//! can evaluate every reservation-station slot in parallel in one cycle
//! (§6.6: "To allow a single-cycle implementation, each rule is a function
//! of the instruction's type and the taint of its registers").
//!
//! The rules are deliberately conservative, exactly as in the paper: they
//! do not exploit GLIFT-style value-dependent refinements (e.g. `AND` with
//! a public 0 input).

use spt_isa::InstClass;

/// Forward (output) untaint rule (§6.6).
///
/// For instructions whose output is a pure function of their register
/// operands, the output may be untainted once every operand is untainted.
/// Loads are excluded: their output depends on memory, and untaints only
/// through the shadow-L1/store-forwarding rules (§6.7–6.8). `Const`
/// instructions are handled at rename (§6.5) and never need this rule.
///
/// Returns `true` if the destination should become untainted.
///
/// # Example
///
/// ```
/// use spt_core::algebra::forward_untaints;
/// use spt_isa::InstClass;
///
/// assert!(forward_untaints(InstClass::Lossy, &[false, false]));
/// assert!(!forward_untaints(InstClass::Lossy, &[false, true]));
/// assert!(!forward_untaints(InstClass::Load, &[false]));
/// ```
pub fn forward_untaints(class: InstClass, src_tainted: &[bool]) -> bool {
    match class {
        InstClass::Copy | InstClass::Invertible2 | InstClass::InvertibleImm | InstClass::Lossy => {
            src_tainted.iter().all(|&t| !t)
        }
        // Loads: output is a function of memory, not only of operands.
        // Stores/branches have no register output. Const is untainted at
        // rename already.
        InstClass::Load
        | InstClass::Store
        | InstClass::ControlFlow
        | InstClass::Const
        | InstClass::Other => false,
    }
}

/// Backward (input) untaint rule (§6.6).
///
/// Given the destination's and each source's taint, returns per-source
/// flags saying which sources may now be untainted:
///
/// * rule ① — register copies: if the output is untainted, the operand is
///   inferable (it equals the output);
/// * rule ② — invertible arithmetic (`Add`/`Sub`/`Xor`): if the output and
///   all but one input are untainted, the remaining input is inferable
///   (e.g. `r1 = r0 - r2`).
///
/// An op with a public immediate (`InvertibleImm`) is the one-source case
/// of rule ②: the immediate is program text, hence known to the attacker.
///
/// # Example
///
/// ```
/// use spt_core::algebra::backward_untaints;
/// use spt_isa::InstClass;
///
/// // r0 = r1 + r2 with r0, r2 public: r1 becomes inferable.
/// assert_eq!(backward_untaints(InstClass::Invertible2, &[true, false], false), [true, false]);
/// // Both inputs tainted: nothing can be inferred.
/// assert_eq!(backward_untaints(InstClass::Invertible2, &[true, true], false), [false, false]);
/// ```
pub fn backward_untaints(class: InstClass, src_tainted: &[bool], dest_tainted: bool) -> [bool; 2] {
    let mut out = [false; 2];
    if dest_tainted {
        return out;
    }
    match class {
        InstClass::Copy | InstClass::InvertibleImm => {
            if src_tainted.first().copied().unwrap_or(false) {
                out[0] = true;
            }
        }
        InstClass::Invertible2 => {
            let tainted_count = src_tainted.iter().filter(|&&t| t).count();
            if tainted_count == 1 {
                for (i, &t) in src_tainted.iter().enumerate().take(2) {
                    if t {
                        out[i] = true;
                    }
                }
            }
        }
        // Lossy ops destroy information; loads/stores/control flow have no
        // register-to-register inverse; Const has no register sources.
        InstClass::Lossy
        | InstClass::Load
        | InstClass::Store
        | InstClass::ControlFlow
        | InstClass::Const
        | InstClass::Other => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_requires_all_sources_public() {
        for class in [InstClass::Copy, InstClass::Invertible2, InstClass::Lossy] {
            assert!(forward_untaints(class, &[false]));
            assert!(forward_untaints(class, &[false, false]));
            assert!(!forward_untaints(class, &[true, false]));
            assert!(!forward_untaints(class, &[false, true]));
            assert!(!forward_untaints(class, &[true, true]));
        }
    }

    #[test]
    fn forward_never_applies_to_loads_or_stores() {
        assert!(!forward_untaints(InstClass::Load, &[false]));
        assert!(!forward_untaints(InstClass::Store, &[false, false]));
        assert!(!forward_untaints(InstClass::ControlFlow, &[false, false]));
    }

    #[test]
    fn backward_copy_rule() {
        // Tainted source, public dest: infer.
        assert_eq!(backward_untaints(InstClass::Copy, &[true], false), [true, false]);
        // Public source: nothing to do.
        assert_eq!(backward_untaints(InstClass::Copy, &[false], false), [false, false]);
        // Tainted dest: cannot use its value.
        assert_eq!(backward_untaints(InstClass::Copy, &[true], true), [false, false]);
    }

    #[test]
    fn backward_invertible_two_source() {
        // Exactly one tainted source is recoverable.
        assert_eq!(backward_untaints(InstClass::Invertible2, &[false, true], false), [false, true]);
        assert_eq!(backward_untaints(InstClass::Invertible2, &[true, false], false), [true, false]);
        // Zero or two tainted: no inference.
        assert_eq!(
            backward_untaints(InstClass::Invertible2, &[false, false], false),
            [false, false]
        );
        assert_eq!(backward_untaints(InstClass::Invertible2, &[true, true], false), [false, false]);
    }

    #[test]
    fn backward_never_applies_to_lossy() {
        assert_eq!(backward_untaints(InstClass::Lossy, &[true, false], false), [false, false]);
        assert_eq!(backward_untaints(InstClass::Load, &[true], false), [false, false]);
    }

    #[test]
    fn backward_immediate_rule() {
        assert_eq!(backward_untaints(InstClass::InvertibleImm, &[true], false), [true, false]);
        assert_eq!(backward_untaints(InstClass::InvertibleImm, &[true], true), [false, false]);
    }
}
