//! Protection configurations (paper Table 2) and threat models.

use std::fmt;

/// The speculation attack model, which determines the *visibility point*
/// (VP): the point at which an instruction is considered non-speculative
/// (paper §2.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ThreatModel {
    /// Covers control-flow speculation only: an instruction reaches the VP
    /// when all older control-flow instructions have resolved.
    Spectre,
    /// Covers all forms of speculation: an instruction reaches the VP when
    /// it can no longer be squashed (all older instructions have completed
    /// and all older control flow has resolved).
    Futuristic,
}

impl fmt::Display for ThreatModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreatModel::Spectre => f.write_str("spectre"),
            ThreatModel::Futuristic => f.write_str("futuristic"),
        }
    }
}

/// Which untaint propagation rules are enabled (paper Table 2, and the
/// artifact's `--untaint-method` flag).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UntaintMethod {
    /// No untaint propagation at all: every transmitter waits for its VP.
    /// This is the paper's SecureBaseline.
    None,
    /// Forward (output) untainting only (§6.6).
    Fwd,
    /// Forward plus backward (input) untainting (§6.6).
    Bwd,
    /// Idealized single-cycle transitive closure over the whole in-flight
    /// dataflow graph, with unbounded broadcast width (§9.1).
    Ideal,
}

impl UntaintMethod {
    /// Whether forward rules run.
    pub fn forward(self) -> bool {
        self >= UntaintMethod::Fwd
    }

    /// Whether backward rules run.
    pub fn backward(self) -> bool {
        self >= UntaintMethod::Bwd
    }

    /// Whether propagation iterates to a fixpoint each cycle with unbounded
    /// broadcast width.
    pub fn ideal(self) -> bool {
        self == UntaintMethod::Ideal
    }
}

/// Memory taint tracking mode (paper §6.8, Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ShadowMode {
    /// No memory taint: loaded data is always conservatively tainted.
    None,
    /// Shadow L1: byte-granular taint for L1D-resident lines (§7.5).
    L1,
    /// Idealized byte-granular taint for all of memory.
    Mem,
}

/// How unsafe (tainted-operand) transmitters are protected (paper §6.3:
/// "we use a 'delayed execution' policy ... However, SPT can use other
/// comprehensive policies such as executing a transmitter in a
/// data-oblivious fashion that does not leak its operands" — i.e. SDO).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Delay the transmitter until its operands untaint or it reaches the
    /// visibility point (the paper's evaluated policy).
    Delay,
    /// Execute tainted loads immediately but *obliviously* (SDO-style):
    /// worst-case latency, no cache state change, so execution reveals
    /// nothing about the operands. Stores never touch the cache before
    /// retire in this simulator, so only loads change behaviour.
    Oblivious,
}

/// Top-level protection scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtectionKind {
    /// No protection: the unmodified insecure processor.
    Unsafe,
    /// Speculative Privacy Tracking (this paper). With
    /// [`UntaintMethod::None`] this degrades to the SecureBaseline that
    /// delays all transmitters to the VP.
    Spt,
    /// Speculative Taint Tracking (MICRO'19): protects only
    /// speculatively-accessed data. Included as the narrower-scope
    /// comparison point (paper §9.2).
    Stt,
}

/// A complete simulator protection configuration.
///
/// Use the named constructors to obtain the exact variants of paper
/// Table 2.
///
/// # Example
///
/// ```
/// use spt_core::{Config, ThreatModel};
/// let c = Config::spt_full(ThreatModel::Futuristic);
/// assert_eq!(c.name(), "SPT{Bwd,ShadowL1}");
/// assert!(c.untaint.backward());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Config {
    /// Protection scheme.
    pub kind: ProtectionKind,
    /// Attack model (determines the VP).
    pub threat: ThreatModel,
    /// Enabled untaint rules (SPT only).
    pub untaint: UntaintMethod,
    /// Memory taint tracking (SPT only).
    pub shadow: ShadowMode,
    /// Maximum untainted registers broadcast per cycle (§7.3; Table 1
    /// value: 3). Ignored under [`UntaintMethod::Ideal`].
    pub broadcast_width: usize,
    /// Whether control-flow instructions declassify their predicate/target
    /// operands at the VP (§6.3/§6.6: "the operands of transmitters/
    /// branches are untainted when the instruction becomes non-
    /// speculative").
    pub branches_declassify: bool,
    /// Protection policy for unsafe transmitters.
    pub policy: Policy,
    /// Whether variable-time instructions (§2.1's third transmitter class)
    /// are protected like transmitters. The paper's evaluation defines
    /// transmitters as loads and stores only (§9.1), so this is off by
    /// default; turning it on closes the operand-dependent-latency channel.
    pub variable_time_transmitters: bool,
}

impl Config {
    /// Paper Table 1 broadcast width.
    pub const DEFAULT_BROADCAST_WIDTH: usize = 3;

    fn spt_base(threat: ThreatModel, untaint: UntaintMethod, shadow: ShadowMode) -> Config {
        Config {
            kind: ProtectionKind::Spt,
            threat,
            untaint,
            shadow,
            broadcast_width: Self::DEFAULT_BROADCAST_WIDTH,
            branches_declassify: true,
            policy: Policy::Delay,
            variable_time_transmitters: false,
        }
    }

    /// UnsafeBaseline: the unmodified, insecure processor.
    pub fn unsafe_baseline(threat: ThreatModel) -> Config {
        Config {
            kind: ProtectionKind::Unsafe,
            threat,
            untaint: UntaintMethod::None,
            shadow: ShadowMode::None,
            broadcast_width: Self::DEFAULT_BROADCAST_WIDTH,
            branches_declassify: false,
            policy: Policy::Delay,
            variable_time_transmitters: false,
        }
    }

    /// SecureBaseline: loads and stores delayed until reaching the VP.
    pub fn secure_baseline(threat: ThreatModel) -> Config {
        Self::spt_base(threat, UntaintMethod::None, ShadowMode::None)
    }

    /// SPT {Fwd, NoShadowL1}.
    pub fn spt_fwd(threat: ThreatModel) -> Config {
        Self::spt_base(threat, UntaintMethod::Fwd, ShadowMode::None)
    }

    /// SPT {Bwd, NoShadowL1}.
    pub fn spt_bwd(threat: ThreatModel) -> Config {
        Self::spt_base(threat, UntaintMethod::Bwd, ShadowMode::None)
    }

    /// SPT {Bwd, ShadowL1} — the full SPT design.
    pub fn spt_full(threat: ThreatModel) -> Config {
        Self::spt_base(threat, UntaintMethod::Bwd, ShadowMode::L1)
    }

    /// SPT {Bwd, ShadowMem} — idealized all-memory taint tracking.
    pub fn spt_shadow_mem(threat: ThreatModel) -> Config {
        Self::spt_base(threat, UntaintMethod::Bwd, ShadowMode::Mem)
    }

    /// SPT {Ideal, ShadowMem} — idealized untainting and memory tracking.
    pub fn spt_ideal(threat: ThreatModel) -> Config {
        Self::spt_base(threat, UntaintMethod::Ideal, ShadowMode::Mem)
    }

    /// STT: protects speculatively-accessed data only.
    pub fn stt(threat: ThreatModel) -> Config {
        Config {
            kind: ProtectionKind::Stt,
            threat,
            untaint: UntaintMethod::None,
            shadow: ShadowMode::None,
            broadcast_width: Self::DEFAULT_BROADCAST_WIDTH,
            branches_declassify: false,
            policy: Policy::Delay,
            variable_time_transmitters: false,
        }
    }

    /// SPT{Bwd,ShadowL1} with the SDO-style oblivious policy instead of
    /// delayed execution — the alternative the paper points to in §6.3.
    pub fn spt_sdo(threat: ThreatModel) -> Config {
        Config { policy: Policy::Oblivious, ..Self::spt_full(threat) }
    }

    /// All eight Table-2 configurations for one threat model, in the
    /// paper's presentation order.
    pub fn table2(threat: ThreatModel) -> Vec<Config> {
        vec![
            Self::unsafe_baseline(threat),
            Self::secure_baseline(threat),
            Self::spt_fwd(threat),
            Self::spt_bwd(threat),
            Self::spt_full(threat),
            Self::spt_shadow_mem(threat),
            Self::spt_ideal(threat),
            Self::stt(threat),
        ]
    }

    /// The paper's display name for this configuration.
    pub fn name(&self) -> &'static str {
        if self.policy == Policy::Oblivious {
            return "SPT{Bwd,ShadowL1}+SDO";
        }
        match (self.kind, self.untaint, self.shadow) {
            (ProtectionKind::Unsafe, ..) => "UnsafeBaseline",
            (ProtectionKind::Stt, ..) => "STT",
            (ProtectionKind::Spt, UntaintMethod::None, _) => "SecureBaseline",
            (ProtectionKind::Spt, UntaintMethod::Fwd, _) => "SPT{Fwd,NoShadowL1}",
            (ProtectionKind::Spt, UntaintMethod::Bwd, ShadowMode::None) => "SPT{Bwd,NoShadowL1}",
            (ProtectionKind::Spt, UntaintMethod::Bwd, ShadowMode::L1) => "SPT{Bwd,ShadowL1}",
            (ProtectionKind::Spt, UntaintMethod::Bwd, ShadowMode::Mem) => "SPT{Bwd,ShadowMem}",
            (ProtectionKind::Spt, UntaintMethod::Ideal, _) => "SPT{Ideal,ShadowMem}",
        }
    }

    /// Whether any protection (SPT, STT, or SecureBaseline) is active.
    pub fn protected(&self) -> bool {
        self.kind != ProtectionKind::Unsafe
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name(), self.threat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_eight_distinct_names() {
        let configs = Config::table2(ThreatModel::Spectre);
        assert_eq!(configs.len(), 8);
        let names: std::collections::BTreeSet<_> = configs.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn untaint_method_ordering() {
        assert!(!UntaintMethod::None.forward());
        assert!(UntaintMethod::Fwd.forward());
        assert!(!UntaintMethod::Fwd.backward());
        assert!(UntaintMethod::Bwd.backward());
        assert!(UntaintMethod::Ideal.backward());
        assert!(UntaintMethod::Ideal.ideal());
    }

    #[test]
    fn display_includes_threat() {
        let c = Config::stt(ThreatModel::Futuristic);
        assert_eq!(c.to_string(), "STT [futuristic]");
    }

    #[test]
    fn secure_baseline_is_spt_with_no_untaint() {
        let c = Config::secure_baseline(ThreatModel::Spectre);
        assert_eq!(c.kind, ProtectionKind::Spt);
        assert_eq!(c.untaint, UntaintMethod::None);
        assert!(c.protected());
        assert!(!Config::unsafe_baseline(ThreatModel::Spectre).protected());
    }
}
