//! The SPT taint engine: rename-time tainting, per-cycle two-phase untaint
//! propagation with bounded broadcast width, and declassification at the
//! visibility point (paper §6.3–6.6, §7.3).
//!
//! The engine mirrors the paper's hardware organisation:
//!
//! * **Global register taint** (the RAT/PRF taint bits): one [`TaintMask`]
//!   per physical register, consulted at rename and updated only by
//!   broadcasts.
//! * **Slots** (the RS-slot taint replicas): one per in-flight (ROB
//!   resident) instruction, holding *local* copies of its operand and
//!   destination taint plus per-register *untaint broadcast flags*.
//!
//! Each cycle, [`TaintEngine::step`] runs the paper's two phases:
//! phase 1 applies the forward/backward rules of [`crate::algebra`]
//! locally to every slot; phase 2 broadcasts at most `broadcast_width`
//! newly-untainted physical registers (destinations before sources, older
//! slots before younger ones), which updates the global taint and every
//! replica. Under [`crate::UntaintMethod::Ideal`] the two phases iterate to a
//! fixpoint with unbounded width within the single call.

use crate::algebra::{backward_untaints, forward_untaints};
use crate::config::Config;
use crate::stats::{SptStats, UntaintKind};
use crate::taint::TaintMask;
use spt_isa::{InstClass, OperandRole};
use std::collections::BTreeMap;

/// Physical register identifier.
pub type PhysReg = u32;

/// Global instruction sequence number (monotonic, never reused).
pub type Seq = u64;

/// Information the pipeline supplies when an instruction is renamed.
#[derive(Clone, Copy, Debug)]
pub struct RenameInfo {
    /// The instruction's sequence number.
    pub seq: Seq,
    /// Untaint-algebra class.
    pub class: InstClass,
    /// Source operands: physical register and role (up to 3: indexed
    /// stores read base, index and data).
    pub srcs: [Option<(PhysReg, OperandRole)>; 3],
    /// Destination physical register, if any.
    pub dest: Option<PhysReg>,
    /// For loads: access width in bytes (bounds the rename-time taint of
    /// the zero-extended destination).
    pub load_bytes: Option<u64>,
}

#[derive(Clone, Copy, Debug)]
struct SlotReg {
    phys: PhysReg,
    taint: TaintMask,
    pending: Option<UntaintKind>,
}

impl SlotReg {
    fn new(phys: PhysReg, taint: TaintMask) -> SlotReg {
        SlotReg { phys, taint, pending: None }
    }

    /// Locally untaints this register and flags it for broadcast.
    /// Returns whether anything changed.
    fn untaint(&mut self, kind: UntaintKind) -> bool {
        if self.taint.any() {
            self.taint = TaintMask::NONE;
            if self.pending.is_none() {
                self.pending = Some(kind);
            }
            true
        } else {
            false
        }
    }
}

#[derive(Clone, Debug)]
struct Slot {
    class: InstClass,
    srcs: [Option<(SlotReg, OperandRole)>; 3],
    dest: Option<SlotReg>,
}

/// The registers untainted (broadcast) during one [`TaintEngine::step`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepResult {
    /// Broadcast register IDs with the mechanism that untainted each.
    pub broadcasts: Vec<(PhysReg, UntaintKind)>,
}

/// The SPT taint-tracking engine (see module docs).
#[derive(Clone, Debug)]
pub struct TaintEngine {
    cfg: Config,
    reg_taint: Vec<TaintMask>,
    slots: BTreeMap<Seq, Slot>,
    /// Pending broadcasts whose slot retired before the width-limited bus
    /// got to them; they keep highest priority (they are the oldest).
    orphans: Vec<(PhysReg, UntaintKind)>,
    /// Whether taint state changed since the last quiescent step.
    dirty: bool,
    /// Retired instructions whose slots stay visible to the rules for a few
    /// more cycles (commit latency: the paper backward-untaints "to the
    /// head of the ROB", and real commit takes several stages; the instant
    /// retirement of this simulator would otherwise remove producers in the
    /// same cycle their consumers' declassification broadcasts).
    retired_grace: Vec<(Seq, u8)>,
    stats: SptStats,
}

impl TaintEngine {
    /// Creates an engine for `num_phys` physical registers, all initially
    /// tainted (paper §6.3: "all program data starts off as tainted").
    pub fn new(cfg: Config, num_phys: usize) -> TaintEngine {
        TaintEngine {
            cfg,
            reg_taint: vec![TaintMask::ALL; num_phys],
            slots: BTreeMap::new(),
            orphans: Vec::new(),
            dirty: false,
            retired_grace: Vec::new(),
            stats: SptStats::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SptStats {
        &self.stats
    }

    /// Global (broadcast-visible) taint of a physical register.
    pub fn reg_taint(&self, phys: PhysReg) -> TaintMask {
        self.reg_taint[phys as usize]
    }

    /// Number of live slots (in-flight instructions being tracked).
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }

    /// Registers an instruction at rename and returns the taint assigned to
    /// its destination (paper §7.3 "Tainting"):
    ///
    /// * loads are conservatively tainted in their loaded byte range;
    /// * `Const` outputs are public (§6.5) — counted as a `LoadImm` event;
    /// * otherwise the destination is tainted iff any operand is.
    pub fn rename(&mut self, info: RenameInfo) -> TaintMask {
        let mut srcs: [Option<(SlotReg, OperandRole)>; 3] = [None, None, None];
        let mut any_src_tainted = false;
        for (i, src) in info.srcs.iter().enumerate() {
            if let Some((phys, role)) = *src {
                let t = self.reg_taint[phys as usize];
                any_src_tainted |= t.any();
                srcs[i] = Some((SlotReg::new(phys, t), role));
            }
        }

        let dest_taint = match info.class {
            InstClass::Load => TaintMask::for_bytes(0..info.load_bytes.unwrap_or(8)),
            InstClass::Const => {
                if self.cfg.untaint.forward() {
                    self.stats.events[UntaintKind::LoadImm] += 1;
                    TaintMask::NONE
                } else {
                    // SecureBaseline tracks nothing: stay tainted.
                    TaintMask::ALL
                }
            }
            _ => {
                if any_src_tainted {
                    TaintMask::ALL
                } else {
                    TaintMask::NONE
                }
            }
        };

        let dest = info.dest.map(|phys| {
            // The physical register is being recycled: any queued untaint
            // information about its *previous* value must not leak onto the
            // new value.
            self.purge_recycled_phys(phys);
            self.reg_taint[phys as usize] = dest_taint;
            SlotReg::new(phys, dest_taint)
        });

        self.slots.insert(info.seq, Slot { class: info.class, srcs, dest });
        dest_taint
    }

    /// Drops stale state referring to a recycled physical register: orphan
    /// broadcasts for it, and any grace-period retired slot that references
    /// it (the slot's other pendings are preserved).
    fn purge_recycled_phys(&mut self, phys: PhysReg) {
        self.orphans.retain(|(p, _)| *p != phys);
        let mut stale: Vec<Seq> = Vec::new();
        for &(seq, _) in &self.retired_grace {
            if let Some(slot) = self.slots.get(&seq) {
                let refs = slot.dest.as_ref().is_some_and(|d| d.phys == phys)
                    || slot.srcs.iter().flatten().any(|(r, _)| r.phys == phys);
                if refs {
                    stale.push(seq);
                }
            }
        }
        for seq in stale {
            self.finalize_retire(seq, Some(phys));
            self.retired_grace.retain(|(s, _)| *s != seq);
        }
    }

    /// Whether source operand `idx` of slot `seq` is tainted in the slot's
    /// local view (the gating condition for transmitters). Unknown slots
    /// and absent operands read as public.
    pub fn operand_tainted(&self, seq: Seq, idx: usize) -> bool {
        self.slots
            .get(&seq)
            .and_then(|s| s.srcs.get(idx).and_then(|o| o.as_ref()))
            .is_some_and(|(r, _)| r.taint.any())
    }

    /// Whether every operand of `seq` that leaks at the VP (addresses,
    /// predicates, jump targets) is locally public.
    pub fn leak_operands_clear(&self, seq: Seq) -> bool {
        let Some(slot) = self.slots.get(&seq) else { return true };
        slot.srcs.iter().flatten().all(|(r, role)| !role.leaks_at_vp() || r.taint.is_clear())
    }

    /// The slot-local taint mask of source operand `idx`, if present.
    pub fn operand_mask(&self, seq: Seq, idx: usize) -> Option<TaintMask> {
        self.slots.get(&seq)?.srcs.get(idx)?.as_ref().map(|(r, _)| r.taint)
    }

    /// The slot-local taint mask of the destination, if present.
    pub fn dest_mask(&self, seq: Seq) -> Option<TaintMask> {
        self.slots.get(&seq)?.dest.as_ref().map(|r| r.taint)
    }

    /// Declassifies the leak-role operands of `seq` — called when a
    /// transmitter or control-flow instruction reaches the visibility point
    /// (§6.6). Branch operands are only declassified when the configuration
    /// enables it.
    pub fn declassify_vp(&mut self, seq: Seq) {
        let branches = self.cfg.branches_declassify;
        // SecureBaseline performs no untaint propagation whatsoever; the
        // transmitter itself executes because it reached the VP.
        if !self.cfg.untaint.forward() {
            return;
        }
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        let is_cf = slot.class == InstClass::ControlFlow;
        if is_cf && !branches {
            return;
        }
        let kind =
            if is_cf { UntaintKind::DeclassifyBranch } else { UntaintKind::DeclassifyTransmit };
        let mut changed = false;
        for src in slot.srcs.iter_mut().flatten() {
            if src.1.leaks_at_vp() {
                changed |= src.0.untaint(kind);
            }
        }
        self.dirty |= changed;
    }

    /// Sets the slot-local taint of a load's output to `mask` (intersected
    /// with the current taint), attributing a full clear to `kind`. Used on
    /// load completion with shadow-L1/shadow-memory byte taint (§6.8) or
    /// store-to-load forwarding under `STLPublic` (§6.7).
    pub fn set_load_output(&mut self, seq: Seq, mask: TaintMask, kind: UntaintKind) {
        let Some(slot) = self.slots.get_mut(&seq) else { return };
        let Some(dest) = slot.dest.as_mut() else { return };
        let new = dest.taint.intersect(mask);
        if new.is_clear() && dest.taint.any() {
            dest.untaint(kind);
            self.dirty = true;
        } else {
            if new != dest.taint {
                self.dirty = true;
            }
            dest.taint = new;
        }
    }

    /// Explicitly untaints source operand `idx` of `seq` (store-to-load
    /// backward untaint, §6.7 rule ②).
    pub fn untaint_operand(&mut self, seq: Seq, idx: usize, kind: UntaintKind) {
        if let Some(slot) = self.slots.get_mut(&seq) {
            if let Some(Some((reg, _))) = slot.srcs.get_mut(idx) {
                if reg.untaint(kind) {
                    self.dirty = true;
                }
            }
        }
    }

    /// Number of engine steps a retired slot stays visible to the rules.
    const RETIRE_GRACE: u8 = 4;

    /// Marks an instruction retired. Its slot stays visible to the untaint
    /// rules for `RETIRE_GRACE` steps (commit latency), then is
    /// removed with un-broadcast untaint flags preserved as orphans.
    pub fn retire(&mut self, seq: Seq) {
        if self.slots.contains_key(&seq) {
            self.retired_grace.push((seq, Self::RETIRE_GRACE));
        }
    }

    /// Finally removes a retired slot, preserving pending broadcasts except
    /// for `skip_phys` (a recycled register whose old value is dead).
    fn finalize_retire(&mut self, seq: Seq, skip_phys: Option<PhysReg>) {
        if let Some(slot) = self.slots.remove(&seq) {
            let mut keep = |r: &SlotReg| {
                if let Some(kind) = r.pending {
                    if skip_phys != Some(r.phys) {
                        self.orphans.push((r.phys, kind));
                    }
                }
            };
            if let Some(d) = &slot.dest {
                keep(d);
            }
            for (r, _) in slot.srcs.iter().flatten() {
                keep(r);
            }
        }
    }

    /// Ages the retired-slot grace periods (called once per step).
    fn age_retired(&mut self) {
        let mut expired: Vec<Seq> = Vec::new();
        self.retired_grace.retain_mut(|(seq, ttl)| {
            if *ttl == 0 {
                expired.push(*seq);
                false
            } else {
                *ttl -= 1;
                true
            }
        });
        for seq in expired {
            self.finalize_retire(seq, None);
        }
    }

    /// Removes all slots with `seq >= from` (squash recovery). Their
    /// pending untaints are dropped: a squashed instruction's inference
    /// never happened architecturally.
    pub fn squash_from(&mut self, from: Seq) {
        self.slots.split_off(&from);
    }

    /// Phase 1: applies the §6.6 rules locally to every slot.
    fn apply_rules_locally(&mut self) {
        let fwd = self.cfg.untaint.forward();
        let bwd = self.cfg.untaint.backward();
        if !fwd {
            return;
        }
        for slot in self.slots.values_mut() {
            let mut src_tainted = [false; 3];
            let mut n_srcs = 0;
            for (r, _) in slot.srcs.iter().flatten() {
                src_tainted[n_srcs] = r.taint.any();
                n_srcs += 1;
            }
            if let Some(dest) = slot.dest.as_mut() {
                if dest.taint.any() && forward_untaints(slot.class, &src_tainted[..n_srcs]) {
                    dest.untaint(UntaintKind::Forward);
                }
            }
            if bwd {
                let dest_tainted = slot.dest.as_ref().is_none_or(|d| d.taint.any());
                // Backward rules need a register destination whose value the
                // attacker can read; instructions without one don't apply.
                if slot.dest.is_some() && !dest_tainted {
                    let back = backward_untaints(slot.class, &src_tainted[..n_srcs], dest_tainted);
                    for (i, src) in slot.srcs.iter_mut().flatten().enumerate() {
                        if back.get(i).copied().unwrap_or(false) {
                            src.0.untaint(UntaintKind::Backward);
                        }
                    }
                }
            }
        }
    }

    /// Phase 2: selects at most `width` pending untaints (orphans first,
    /// then destinations before sources within each slot, older slots
    /// first), clears them globally and in every replica. Returns the
    /// chosen broadcasts and whether any pending flags remain.
    fn broadcast(&mut self, width: usize) -> (Vec<(PhysReg, UntaintKind)>, bool) {
        let mut chosen: Vec<(PhysReg, UntaintKind)> = Vec::new();
        let mut deferred = 0u64;

        let consider = |phys: PhysReg,
                        kind: UntaintKind,
                        chosen: &mut Vec<(PhysReg, UntaintKind)>,
                        reg_taint: &[TaintMask],
                        deferred: &mut u64| {
            if reg_taint[phys as usize].is_clear() {
                return; // already public globally; nothing to broadcast
            }
            if chosen.iter().any(|(p, _)| *p == phys) {
                return; // same register already selected this cycle
            }
            if chosen.len() < width {
                chosen.push((phys, kind));
            } else {
                *deferred += 1;
            }
        };

        for &(phys, kind) in &self.orphans {
            consider(phys, kind, &mut chosen, &self.reg_taint, &mut deferred);
        }
        for slot in self.slots.values() {
            if let Some(d) = &slot.dest {
                if let Some(kind) = d.pending {
                    consider(d.phys, kind, &mut chosen, &self.reg_taint, &mut deferred);
                }
            }
            for (r, _) in slot.srcs.iter().flatten() {
                if let Some(kind) = r.pending {
                    consider(r.phys, kind, &mut chosen, &self.reg_taint, &mut deferred);
                }
            }
        }

        // Apply the selected broadcasts: global taint, every replica, and
        // pending-flag resets. Pending flags whose register is already
        // globally public carry no information and are dropped.
        for &(phys, kind) in &chosen {
            self.reg_taint[phys as usize] = TaintMask::NONE;
            self.stats.events[kind] += 1;
        }
        let is_chosen = |phys: PhysReg| chosen.iter().any(|(p, _)| *p == phys);
        let mut remaining = false;
        for slot in self.slots.values_mut() {
            if let Some(d) = slot.dest.as_mut() {
                if is_chosen(d.phys) || self.reg_taint[d.phys as usize].is_clear() {
                    if d.pending.is_some() || is_chosen(d.phys) {
                        d.taint = TaintMask::NONE;
                        d.pending = None;
                    }
                } else if d.pending.is_some() {
                    remaining = true;
                }
            }
            for (r, _) in slot.srcs.iter_mut().flatten() {
                if is_chosen(r.phys) || self.reg_taint[r.phys as usize].is_clear() {
                    if r.pending.is_some() || is_chosen(r.phys) {
                        r.taint = TaintMask::NONE;
                        r.pending = None;
                    }
                } else if r.pending.is_some() {
                    remaining = true;
                }
            }
        }
        self.orphans.retain(|(p, _)| {
            // Drop chosen and already-public orphans.
            !is_chosen(*p) && self.reg_taint[*p as usize].any()
        });
        remaining |= !self.orphans.is_empty();

        self.stats.broadcasts_deferred += deferred;
        (chosen, remaining)
    }

    /// Runs one cycle of untaint propagation and returns the registers
    /// broadcast as untainted. Under [`crate::UntaintMethod::Ideal`], iterates to
    /// a fixpoint with unbounded width.
    pub fn step(&mut self) -> StepResult {
        if !self.cfg.untaint.forward() {
            return StepResult::default();
        }
        self.age_retired();
        // Quiescence: rules can only fire after some taint state changed
        // (declassification, broadcast, load completion, STL untaint).
        if !self.dirty && self.orphans.is_empty() {
            return StepResult::default();
        }
        let mut broadcasts = Vec::new();
        let mut remaining;
        if self.cfg.untaint.ideal() {
            loop {
                self.apply_rules_locally();
                let (batch, rem) = self.broadcast(usize::MAX);
                remaining = rem;
                if batch.is_empty() {
                    break;
                }
                broadcasts.extend(batch);
            }
        } else {
            self.apply_rules_locally();
            let (batch, rem) = self.broadcast(self.cfg.broadcast_width);
            remaining = rem;
            broadcasts = batch;
        }
        // Stay dirty while broadcasts happened this cycle (replica updates
        // can enable new rule firings) or pending flags remain queued.
        self.dirty = !broadcasts.is_empty() || remaining;
        self.stats.record_untaint_cycle(broadcasts.len());
        StepResult { broadcasts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThreatModel;
    use spt_isa::OperandRole::*;

    const P: usize = 64;

    fn engine(cfg: Config) -> TaintEngine {
        TaintEngine::new(cfg, P)
    }

    fn full() -> TaintEngine {
        engine(Config::spt_full(ThreatModel::Futuristic))
    }

    fn ri(
        seq: Seq,
        class: InstClass,
        srcs: &[(PhysReg, spt_isa::OperandRole)],
        dest: Option<PhysReg>,
    ) -> RenameInfo {
        let mut s: [Option<(PhysReg, spt_isa::OperandRole)>; 3] = [None, None, None];
        for (i, &x) in srcs.iter().enumerate() {
            s[i] = Some(x);
        }
        RenameInfo { seq, class, srcs: s, dest, load_bytes: None }
    }

    #[test]
    fn rename_const_is_public_and_counted() {
        let mut e = full();
        let t = e.rename(ri(1, InstClass::Const, &[], Some(5)));
        assert!(t.is_clear());
        assert!(e.reg_taint(5).is_clear());
        assert_eq!(e.stats().events[UntaintKind::LoadImm], 1);
    }

    #[test]
    fn rename_const_stays_tainted_under_secure_baseline() {
        let mut e = engine(Config::secure_baseline(ThreatModel::Futuristic));
        let t = e.rename(ri(1, InstClass::Const, &[], Some(5)));
        assert!(t.any());
    }

    #[test]
    fn rename_propagates_source_taint() {
        let mut e = full();
        e.rename(ri(1, InstClass::Const, &[], Some(1))); // r1 public
                                                         // r2 = r1 + r3 where r3 (phys 3) is still tainted.
        let t = e.rename(ri(2, InstClass::Invertible2, &[(1, Data), (3, Data)], Some(2)));
        assert!(t.any());
        // r4 = r1 + r1: all public.
        let t = e.rename(ri(3, InstClass::Invertible2, &[(1, Data), (1, Data)], Some(4)));
        assert!(t.is_clear());
    }

    #[test]
    fn load_rename_taints_loaded_bytes_only() {
        let mut e = full();
        let t = e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(7),
            load_bytes: Some(1),
        });
        assert_eq!(t, TaintMask::for_bytes(0..1));
        assert!(t.any());
        assert!(!t.field(3), "upper bytes of a byte load are public zeros");
    }

    #[test]
    fn vp_declassify_then_broadcast_forward_chain() {
        let mut e = full();
        // I1: load r10 <- (r2): r2 tainted address.
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        // I2: r11 = r2 + r12 (r12 public via const).
        e.rename(ri(2, InstClass::Const, &[], Some(12)));
        e.rename(ri(3, InstClass::Invertible2, &[(2, Data), (12, Data)], Some(11)));
        assert!(e.reg_taint(11).any());

        // I1 reaches VP: r2 declassified.
        e.declassify_vp(1);
        assert!(!e.operand_tainted(1, 0), "slot-local view updates immediately");
        assert!(e.reg_taint(2).any(), "global view waits for broadcast");

        // Cycle 1: broadcast of r2.
        let r = e.step();
        assert_eq!(r.broadcasts, vec![(2, UntaintKind::DeclassifyTransmit)]);
        assert!(e.reg_taint(2).is_clear());

        // Cycle 2: forward rule fires in I3's slot, broadcasting r11.
        let r = e.step();
        assert_eq!(r.broadcasts, vec![(11, UntaintKind::Forward)]);
        assert!(e.reg_taint(11).is_clear());
        assert_eq!(e.stats().events[UntaintKind::Forward], 1);
    }

    #[test]
    fn backward_untaint_through_invertible_add() {
        // Paper Figure 4: I1: r0 = r1 + r2; I2: load <- (r0); I3: r4 = r0 + r2.
        let mut e = full();
        e.rename(ri(1, InstClass::Invertible2, &[(1, Data), (2, Data)], Some(0)));
        e.rename(RenameInfo {
            seq: 2,
            class: InstClass::Load,
            srcs: [Some((0, Address)), None, None],
            dest: Some(3),
            load_bytes: Some(8),
        });
        e.rename(ri(3, InstClass::Invertible2, &[(0, Data), (2, Data)], Some(4)));

        // The load reaches the VP: r0 declassified. Also declassify r2 via
        // another transmitter to enable the backward inference of r1.
        e.declassify_vp(2);
        e.rename(RenameInfo {
            seq: 4,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(5),
            load_bytes: Some(8),
        });
        e.declassify_vp(4);

        // Broadcast r0 and r2 (width 3 allows both in one cycle).
        let r = e.step();
        let regs: Vec<PhysReg> = r.broadcasts.iter().map(|b| b.0).collect();
        assert_eq!(regs, vec![0, 2]);

        // Next cycle: backward rule in I1 infers r1 (r0 = r1 + r2, r0 and r2
        // public); forward rule in I3 clears r4.
        let r = e.step();
        let mut regs: Vec<PhysReg> = r.broadcasts.iter().map(|b| b.0).collect();
        regs.sort_unstable();
        assert_eq!(regs, vec![1, 4]);
        assert_eq!(e.stats().events[UntaintKind::Backward], 1);
        assert_eq!(e.stats().events[UntaintKind::Forward], 1);
    }

    #[test]
    fn backward_requires_bwd_config() {
        let mut e = engine(Config::spt_fwd(ThreatModel::Futuristic));
        e.rename(ri(1, InstClass::Copy, &[(1, Data)], Some(0)));
        e.rename(RenameInfo {
            seq: 2,
            class: InstClass::Load,
            srcs: [Some((0, Address)), None, None],
            dest: Some(3),
            load_bytes: Some(8),
        });
        e.declassify_vp(2);
        e.step(); // broadcast r0
        let r = e.step();
        assert!(r.broadcasts.is_empty(), "Fwd config must not run backward rules");
        assert!(e.reg_taint(1).any());
    }

    #[test]
    fn broadcast_width_limits_and_defers() {
        let mut cfg = Config::spt_fwd(ThreatModel::Futuristic);
        cfg.broadcast_width = 1;
        let mut e = engine(cfg);
        // Two loads declassify two different address registers at once.
        for (seq, addr_reg, dest) in [(1u64, 2u32, 10u32), (2, 3, 11)] {
            e.rename(RenameInfo {
                seq,
                class: InstClass::Load,
                srcs: [Some((addr_reg, Address)), None, None],
                dest: Some(dest),
                load_bytes: Some(8),
            });
            e.declassify_vp(seq);
        }
        let r = e.step();
        assert_eq!(r.broadcasts.len(), 1);
        assert_eq!(r.broadcasts[0].0, 2, "older slot has priority");
        assert!(e.stats().broadcasts_deferred > 0);
        let r = e.step();
        assert_eq!(r.broadcasts.len(), 1);
        assert_eq!(r.broadcasts[0].0, 3);
    }

    #[test]
    fn ideal_mode_converges_in_one_step() {
        let mut e = engine(Config::spt_ideal(ThreatModel::Futuristic));
        // Chain: r0 -> r1 -> r2 -> r3 via copies; declassify r0.
        e.rename(ri(1, InstClass::Copy, &[(0, Data)], Some(1)));
        e.rename(ri(2, InstClass::Copy, &[(1, Data)], Some(2)));
        e.rename(ri(3, InstClass::Copy, &[(2, Data)], Some(3)));
        e.rename(RenameInfo {
            seq: 4,
            class: InstClass::Load,
            srcs: [Some((0, Address)), None, None],
            dest: Some(9),
            load_bytes: Some(8),
        });
        e.declassify_vp(4);
        let r = e.step();
        let mut regs: Vec<PhysReg> = r.broadcasts.iter().map(|b| b.0).collect();
        regs.sort_unstable();
        assert_eq!(regs, vec![0, 1, 2, 3], "ideal propagation reaches the whole chain");
        // The census recorded one cycle with 4 untaints.
        assert_eq!(e.stats().untaint_cycle_hist[3], 1);
    }

    #[test]
    fn monotonicity_taint_never_returns() {
        // Once broadcast-untainted, stepping more never re-taints.
        let mut e = full();
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(1);
        e.step();
        assert!(e.reg_taint(2).is_clear());
        for _ in 0..5 {
            e.step();
            assert!(e.reg_taint(2).is_clear());
        }
    }

    #[test]
    fn retire_preserves_pending_broadcasts() {
        let mut cfg = Config::spt_fwd(ThreatModel::Futuristic);
        cfg.broadcast_width = 1;
        let mut e = engine(cfg);
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(1);
        // Retire before any broadcast happened: the slot survives for the
        // commit-latency grace window, then its pendings become orphans.
        e.retire(1);
        let r = e.step();
        assert_eq!(r.broadcasts, vec![(2, UntaintKind::DeclassifyTransmit)]);
        assert!(e.reg_taint(2).is_clear());
        // After the grace period the slot is gone.
        for _ in 0..=TaintEngine::RETIRE_GRACE {
            e.step();
        }
        assert_eq!(e.live_slots(), 0);
    }

    #[test]
    fn recycled_phys_drops_stale_pendings() {
        let mut e = full();
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(1);
        e.retire(1);
        // Physical register 2 is recycled for a new (tainted) value before
        // the pending broadcast drains: the stale untaint must be dropped.
        e.rename(ri(2, InstClass::Lossy, &[(3, Data)], Some(2)));
        let r = e.step();
        assert!(r.broadcasts.is_empty(), "stale untaint must not reach the new value");
        assert!(e.reg_taint(2).any());
    }

    #[test]
    fn squash_drops_pending_inferences() {
        let mut e = full();
        e.rename(RenameInfo {
            seq: 5,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(5);
        e.squash_from(5);
        let r = e.step();
        assert!(r.broadcasts.is_empty());
        assert!(e.reg_taint(2).any(), "squashed declassification must not leak out");
    }

    #[test]
    fn shadow_load_output_untaint() {
        let mut e = full();
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        // Shadow L1 reports the loaded bytes are public.
        e.set_load_output(1, TaintMask::NONE, UntaintKind::ShadowL1);
        let r = e.step();
        assert_eq!(r.broadcasts, vec![(10, UntaintKind::ShadowL1)]);
        assert_eq!(e.stats().events[UntaintKind::ShadowL1], 1);
    }

    #[test]
    fn partially_tainted_load_output_does_not_broadcast() {
        let mut e = full();
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        // Only the low byte is public.
        e.set_load_output(1, TaintMask::from_bits(0b1110), UntaintKind::ShadowL1);
        let r = e.step();
        assert!(r.broadcasts.is_empty());
        assert_eq!(e.dest_mask(1), Some(TaintMask::from_bits(0b1110)));
    }

    #[test]
    fn secure_baseline_never_untaints() {
        let mut e = engine(Config::secure_baseline(ThreatModel::Futuristic));
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(1);
        let r = e.step();
        assert!(r.broadcasts.is_empty());
        assert!(e.reg_taint(2).any());
    }

    #[test]
    fn convergence_bound_three_visits() {
        // Paper §6.6: each slot is examined at most 3 times before its
        // registers stabilize. We verify global convergence: with N slots
        // and ideal mode, a single step reaches the fixpoint; with bounded
        // width, at most (3 regs per slot * N) steps are ever needed.
        let mut e = full();
        let n = 20;
        // Build a copy chain r0 -> r1 -> ... -> r(n).
        for i in 0..n {
            e.rename(ri(i as Seq + 1, InstClass::Copy, &[(i, Data)], Some(i + 1)));
        }
        e.rename(RenameInfo {
            seq: 100,
            class: InstClass::Load,
            srcs: [Some((0, Address)), None, None],
            dest: Some(60),
            load_bytes: Some(8),
        });
        e.declassify_vp(100);
        let mut total = 0;
        for _ in 0..(3 * (n as usize + 1)) {
            total += e.step().broadcasts.len();
        }
        assert_eq!(total as u32, n + 1, "the whole chain converges within the bound");
        for i in 0..=n {
            assert!(e.reg_taint(i).is_clear());
        }
    }
}

#[cfg(test)]
mod grace_tests {
    use super::*;
    use crate::config::{Config, ThreatModel};
    use spt_isa::OperandRole::*;

    /// Regression test for a soundness bug found by the §8 validator: a
    /// grace entry whose ttl reached zero in the same pass as another
    /// entry's expiry was dropped from the list without finalization,
    /// leaking its slot forever. The stale slot could later fire a forward
    /// untaint on a recycled physical register.
    #[test]
    fn every_retired_slot_is_finalized_after_grace() {
        let mut e = TaintEngine::new(Config::spt_full(ThreatModel::Futuristic), 64);
        // Retire slots on staggered cycles so ttls interleave.
        for k in 0..10u64 {
            e.rename(RenameInfo {
                seq: k + 1,
                class: InstClass::Load,
                srcs: [Some(((k % 8) as PhysReg + 1, Address)), None, None],
                dest: Some(20 + k as PhysReg),
                load_bytes: Some(8),
            });
        }
        for k in 0..10u64 {
            e.retire(k + 1);
            e.step();
        }
        for _ in 0..=TaintEngine::RETIRE_GRACE as usize + 1 {
            e.step();
        }
        assert_eq!(e.live_slots(), 0, "all retired slots must be finalized");
    }

    #[test]
    fn stale_slot_cannot_fire_on_recycled_register() {
        let mut e = TaintEngine::new(Config::spt_full(ThreatModel::Futuristic), 64);
        // Slot 1: lossy op producing p10 from tainted p5.
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Lossy,
            srcs: [Some((5, Data)), None, None],
            dest: Some(10),
            load_bytes: None,
        });
        e.retire(1);
        // Recycle p10 for a new tainted value while slot 1 is in grace.
        e.rename(RenameInfo {
            seq: 2,
            class: InstClass::Load,
            srcs: [Some((6, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        // Now declassify p5 (slot 1's source) via a transmitter.
        e.rename(RenameInfo {
            seq: 3,
            class: InstClass::Load,
            srcs: [Some((5, Address)), None, None],
            dest: Some(11),
            load_bytes: Some(8),
        });
        e.declassify_vp(3);
        // Step far past the grace period: the recycled p10 (the load output
        // of seq 2) must never be untainted by slot 1's stale forward rule.
        for _ in 0..12 {
            e.step();
            assert!(
                e.reg_taint(10).any(),
                "stale slot untainted a recycled register (soundness bug)"
            );
        }
    }
}
