//! The SPT taint engine: rename-time tainting, per-cycle two-phase untaint
//! propagation with bounded broadcast width, and declassification at the
//! visibility point (paper §6.3–6.6, §7.3).
//!
//! The engine mirrors the paper's hardware organisation:
//!
//! * **Global register taint** (the RAT/PRF taint bits): one [`TaintMask`]
//!   per physical register, consulted at rename and updated only by
//!   broadcasts.
//! * **Slots** (the RS-slot taint replicas): one per in-flight (ROB
//!   resident) instruction, holding *local* copies of its operand and
//!   destination taint plus per-register *untaint broadcast flags*.
//!
//! Each cycle, [`TaintEngine::step`] runs the paper's two phases:
//! phase 1 applies the forward/backward rules of [`crate::algebra`]
//! locally to every slot; phase 2 broadcasts at most `broadcast_width`
//! newly-untainted physical registers (destinations before sources, older
//! slots before younger ones), which updates the global taint and every
//! replica. Under [`crate::UntaintMethod::Ideal`] the two phases iterate to a
//! fixpoint with unbounded width within the single call.

use crate::algebra::{backward_untaints, forward_untaints};
use crate::config::Config;
use crate::stats::{SptStats, UntaintKind};
use crate::taint::TaintMask;
use spt_isa::{InstClass, OperandRole};
use std::collections::{BTreeSet, VecDeque};

/// Physical register identifier.
pub type PhysReg = u32;

/// Global instruction sequence number (monotonic, never reused).
pub type Seq = u64;

/// Information the pipeline supplies when an instruction is renamed.
#[derive(Clone, Copy, Debug)]
pub struct RenameInfo {
    /// The instruction's sequence number.
    pub seq: Seq,
    /// Untaint-algebra class.
    pub class: InstClass,
    /// Source operands: physical register and role (up to 3: indexed
    /// stores read base, index and data).
    pub srcs: [Option<(PhysReg, OperandRole)>; 3],
    /// Destination physical register, if any.
    pub dest: Option<PhysReg>,
    /// For loads: access width in bytes (bounds the rename-time taint of
    /// the zero-extended destination).
    pub load_bytes: Option<u64>,
}

#[derive(Clone, Copy, Debug)]
struct SlotReg {
    phys: PhysReg,
    taint: TaintMask,
    pending: Option<UntaintKind>,
}

impl SlotReg {
    fn new(phys: PhysReg, taint: TaintMask) -> SlotReg {
        SlotReg { phys, taint, pending: None }
    }

    /// Locally untaints this register and flags it for broadcast.
    /// Returns whether anything changed.
    fn untaint(&mut self, kind: UntaintKind) -> bool {
        if self.taint.any() {
            self.taint = TaintMask::NONE;
            if self.pending.is_none() {
                self.pending = Some(kind);
            }
            true
        } else {
            false
        }
    }
}

#[derive(Clone, Debug)]
struct Slot {
    class: InstClass,
    srcs: [Option<(SlotReg, OperandRole)>; 3],
    dest: Option<SlotReg>,
    /// Retired but kept visible to the rules for the commit-latency grace
    /// window (see [`TaintEngine::retire`]).
    in_grace: bool,
}

/// Replica address inside a slot: `0` is the destination, `1..=3` are the
/// source operands by *array* index (holes never carry pending flags).
/// Ordering `(seq, pos)` therefore enumerates pending broadcasts exactly
/// as the paper requires: older slots first, destinations before sources.
type ReplicaPos = (Seq, u8);

const DEST_POS: u8 = 0;

fn src_pos(array_idx: usize) -> u8 {
    array_idx as u8 + 1
}

/// Order-stable slot storage keyed by sequence number.
///
/// Sequence numbers are monotonic and never reused (squash recovery drops
/// a suffix; new instructions always get fresh numbers), so the live seq
/// range is a window: a `VecDeque` indexed by `seq - base` gives O(1)
/// lookup, insertion order *is* seq order (the broadcast priority order),
/// and iteration never touches a hash function — the previous `BTreeMap`
/// cost a pointer chase per lookup and the pre-slab engine scanned every
/// entry per cycle.
#[derive(Clone, Debug, Default)]
struct SlotSlab {
    /// Sequence number of `entries[0]`.
    base: Seq,
    /// One entry per seq in `[base, base + entries.len())`; `None` marks a
    /// removed (retired/squashed) or never-inserted slot.
    entries: VecDeque<Option<Slot>>,
    /// Number of `Some` entries.
    live: usize,
}

impl SlotSlab {
    fn index(&self, seq: Seq) -> Option<usize> {
        if seq < self.base {
            return None;
        }
        let idx = (seq - self.base) as usize;
        (idx < self.entries.len()).then_some(idx)
    }

    fn get(&self, seq: Seq) -> Option<&Slot> {
        self.entries[self.index(seq)?].as_ref()
    }

    fn get_mut(&mut self, seq: Seq) -> Option<&mut Slot> {
        let idx = self.index(seq)?;
        self.entries[idx].as_mut()
    }

    fn contains(&self, seq: Seq) -> bool {
        self.get(seq).is_some()
    }

    fn insert(&mut self, seq: Seq, slot: Slot) {
        if self.entries.is_empty() {
            self.base = seq;
        }
        assert!(
            seq >= self.base,
            "slot seq {seq} below slab base {} — seqs are never reused",
            self.base
        );
        let idx = (seq - self.base) as usize;
        while self.entries.len() <= idx {
            self.entries.push_back(None);
        }
        if self.entries[idx].replace(slot).is_none() {
            self.live += 1;
        }
    }

    fn remove(&mut self, seq: Seq) -> Option<Slot> {
        let idx = self.index(seq)?;
        let slot = self.entries[idx].take();
        if slot.is_some() {
            self.live -= 1;
            // Advance the window past leading holes so the deque tracks the
            // in-flight span instead of the whole program.
            while matches!(self.entries.front(), Some(None)) {
                self.entries.pop_front();
                self.base += 1;
            }
            if self.entries.is_empty() {
                self.live = 0;
            }
        }
        slot
    }

    /// Removes every slot with `seq >= from` (squash recovery).
    fn truncate_from(&mut self, from: Seq) {
        let keep = from.saturating_sub(self.base).min(self.entries.len() as u64) as usize;
        while self.entries.len() > keep {
            if self.entries.pop_back().flatten().is_some() {
                self.live -= 1;
            }
        }
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// The registers untainted (broadcast) during one [`TaintEngine::step`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepResult {
    /// Broadcast register IDs with the mechanism that untainted each.
    pub broadcasts: Vec<(PhysReg, UntaintKind)>,
}

/// The SPT taint-tracking engine (see module docs).
///
/// The engine is event-driven: instead of rescanning every slot per step,
/// it maintains
///
/// * `deps` — per physical register, the slots holding a replica of it, so
///   a broadcast touches exactly the slots that reference the register;
/// * `pending_q` — the replica positions whose untaint flags await the
///   broadcast bus, pre-sorted in bus priority order;
/// * `rules_q` — the slots whose replicas changed since the rules last ran
///   (a slot's rule outcome is a pure function of its own replicas, so an
///   untouched slot can never newly fire).
///
/// All three are redundant indices over the slot replicas; every public
/// entry point keeps them exact, and the results are bit-identical to the
/// scan-everything engine (enforced by `tests/equivalence.rs`).
#[derive(Clone, Debug)]
pub struct TaintEngine {
    cfg: Config,
    reg_taint: Vec<TaintMask>,
    slots: SlotSlab,
    /// Per physical register: live slots holding a replica of it (stale
    /// seqs are skipped and compacted when the list is next walked).
    deps: Vec<Vec<Seq>>,
    /// Replica positions with a set pending-untaint flag, in bus priority
    /// order (older slots first, destination before sources).
    pending_q: BTreeSet<ReplicaPos>,
    /// Slots whose replicas changed since the last phase-1 pass.
    rules_q: BTreeSet<Seq>,
    /// Pending broadcasts whose slot retired before the width-limited bus
    /// got to them; they keep highest priority (they are the oldest).
    orphans: Vec<(PhysReg, UntaintKind)>,
    /// Whether taint state changed since the last quiescent step.
    dirty: bool,
    /// Retired instructions whose slots stay visible to the rules for a few
    /// more cycles (commit latency: the paper backward-untaints "to the
    /// head of the ROB", and real commit takes several stages; the instant
    /// retirement of this simulator would otherwise remove producers in the
    /// same cycle their consumers' declassification broadcasts). Entries
    /// are `(seq, expire_at)` against the `steps` counter; a slot finalized
    /// early (recycled register) leaves a stale entry that expires as a
    /// no-op.
    grace_q: VecDeque<(Seq, u64)>,
    /// Count of [`Self::step`] calls that reached aging (drives `grace_q`).
    steps: u64,
    stats: SptStats,
}

impl TaintEngine {
    /// Creates an engine for `num_phys` physical registers, all initially
    /// tainted (paper §6.3: "all program data starts off as tainted").
    pub fn new(cfg: Config, num_phys: usize) -> TaintEngine {
        TaintEngine {
            cfg,
            reg_taint: vec![TaintMask::ALL; num_phys],
            slots: SlotSlab::default(),
            deps: vec![Vec::new(); num_phys],
            pending_q: BTreeSet::new(),
            rules_q: BTreeSet::new(),
            orphans: Vec::new(),
            dirty: false,
            grace_q: VecDeque::new(),
            steps: 0,
            stats: SptStats::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SptStats {
        &self.stats
    }

    /// Global (broadcast-visible) taint of a physical register.
    pub fn reg_taint(&self, phys: PhysReg) -> TaintMask {
        self.reg_taint[phys as usize]
    }

    /// Number of live slots (in-flight instructions being tracked).
    pub fn live_slots(&self) -> usize {
        self.slots.len()
    }

    /// Registers an instruction at rename and returns the taint assigned to
    /// its destination (paper §7.3 "Tainting"):
    ///
    /// * loads are conservatively tainted in their loaded byte range;
    /// * `Const` outputs are public (§6.5) — counted as a `LoadImm` event;
    /// * otherwise the destination is tainted iff any operand is.
    pub fn rename(&mut self, info: RenameInfo) -> TaintMask {
        let mut srcs: [Option<(SlotReg, OperandRole)>; 3] = [None, None, None];
        let mut any_src_tainted = false;
        for (i, src) in info.srcs.iter().enumerate() {
            if let Some((phys, role)) = *src {
                let t = self.reg_taint[phys as usize];
                any_src_tainted |= t.any();
                srcs[i] = Some((SlotReg::new(phys, t), role));
            }
        }

        let dest_taint = match info.class {
            InstClass::Load => TaintMask::for_bytes(0..info.load_bytes.unwrap_or(8)),
            InstClass::Const => {
                if self.cfg.untaint.forward() {
                    self.stats.events[UntaintKind::LoadImm] += 1;
                    TaintMask::NONE
                } else {
                    // SecureBaseline tracks nothing: stay tainted.
                    TaintMask::ALL
                }
            }
            _ => {
                if any_src_tainted {
                    TaintMask::ALL
                } else {
                    TaintMask::NONE
                }
            }
        };

        let dest = info.dest.map(|phys| {
            // The physical register is being recycled: any queued untaint
            // information about its *previous* value must not leak onto the
            // new value.
            self.purge_recycled_phys(phys);
            self.reg_taint[phys as usize] = dest_taint;
            SlotReg::new(phys, dest_taint)
        });

        // Index the new slot under every register it holds a replica of.
        for (phys, _) in srcs.iter().flatten().map(|(r, role)| (r.phys, role)) {
            self.deps[phys as usize].push(info.seq);
        }
        if let Some(d) = &dest {
            self.deps[d.phys as usize].push(info.seq);
        }
        if self.cfg.untaint.forward() {
            self.rules_q.insert(info.seq);
        }
        self.slots.insert(info.seq, Slot { class: info.class, srcs, dest, in_grace: false });
        dest_taint
    }

    /// Drops stale state referring to a recycled physical register: orphan
    /// broadcasts for it, and any grace-period retired slot that references
    /// it (the slot's other pendings are preserved). Only the slots indexed
    /// under the register are visited.
    fn purge_recycled_phys(&mut self, phys: PhysReg) {
        self.orphans.retain(|(p, _)| *p != phys);
        let list = std::mem::take(&mut self.deps[phys as usize]);
        for &seq in &list {
            if self.slots.get(seq).is_some_and(|s| s.in_grace) {
                self.finalize_retire(seq, Some(phys));
            }
        }
        // Compact: keep only seqs whose slot is still live (the finalized
        // grace slots and any older stale entries drop out here).
        let mut list = list;
        list.retain(|&seq| self.slots.contains(seq));
        self.deps[phys as usize] = list;
    }

    /// Whether source operand `idx` of slot `seq` is tainted in the slot's
    /// local view (the gating condition for transmitters). Unknown slots
    /// and absent operands read as public.
    pub fn operand_tainted(&self, seq: Seq, idx: usize) -> bool {
        self.slots
            .get(seq)
            .and_then(|s| s.srcs.get(idx).and_then(|o| o.as_ref()))
            .is_some_and(|(r, _)| r.taint.any())
    }

    /// Whether every operand of `seq` that leaks at the VP (addresses,
    /// predicates, jump targets) is locally public.
    pub fn leak_operands_clear(&self, seq: Seq) -> bool {
        let Some(slot) = self.slots.get(seq) else { return true };
        slot.srcs.iter().flatten().all(|(r, role)| !role.leaks_at_vp() || r.taint.is_clear())
    }

    /// The slot-local taint mask of source operand `idx`, if present.
    pub fn operand_mask(&self, seq: Seq, idx: usize) -> Option<TaintMask> {
        self.slots.get(seq)?.srcs.get(idx)?.as_ref().map(|(r, _)| r.taint)
    }

    /// The slot-local taint mask of the destination, if present.
    pub fn dest_mask(&self, seq: Seq) -> Option<TaintMask> {
        self.slots.get(seq)?.dest.as_ref().map(|r| r.taint)
    }

    /// Declassifies the leak-role operands of `seq` — called when a
    /// transmitter or control-flow instruction reaches the visibility point
    /// (§6.6). Branch operands are only declassified when the configuration
    /// enables it.
    pub fn declassify_vp(&mut self, seq: Seq) {
        let branches = self.cfg.branches_declassify;
        // SecureBaseline performs no untaint propagation whatsoever; the
        // transmitter itself executes because it reached the VP.
        if !self.cfg.untaint.forward() {
            return;
        }
        let Some(slot) = self.slots.get_mut(seq) else { return };
        let is_cf = slot.class == InstClass::ControlFlow;
        if is_cf && !branches {
            return;
        }
        let kind =
            if is_cf { UntaintKind::DeclassifyBranch } else { UntaintKind::DeclassifyTransmit };
        let mut changed = false;
        for (i, src) in slot.srcs.iter_mut().enumerate() {
            if let Some(src) = src {
                if src.1.leaks_at_vp() && src.0.untaint(kind) {
                    self.pending_q.insert((seq, src_pos(i)));
                    changed = true;
                }
            }
        }
        if changed {
            self.rules_q.insert(seq);
        }
        self.dirty |= changed;
    }

    /// Sets the slot-local taint of a load's output to `mask` (intersected
    /// with the current taint), attributing a full clear to `kind`. Used on
    /// load completion with shadow-L1/shadow-memory byte taint (§6.8) or
    /// store-to-load forwarding under `STLPublic` (§6.7).
    pub fn set_load_output(&mut self, seq: Seq, mask: TaintMask, kind: UntaintKind) {
        let Some(slot) = self.slots.get_mut(seq) else { return };
        let Some(dest) = slot.dest.as_mut() else { return };
        let new = dest.taint.intersect(mask);
        if new.is_clear() && dest.taint.any() {
            if dest.untaint(kind) {
                self.pending_q.insert((seq, DEST_POS));
            }
            self.rules_q.insert(seq);
            self.dirty = true;
        } else {
            if new != dest.taint {
                self.rules_q.insert(seq);
                self.dirty = true;
            }
            dest.taint = new;
        }
    }

    /// Explicitly untaints source operand `idx` of `seq` (store-to-load
    /// backward untaint, §6.7 rule ②).
    pub fn untaint_operand(&mut self, seq: Seq, idx: usize, kind: UntaintKind) {
        if let Some(slot) = self.slots.get_mut(seq) {
            if let Some(Some((reg, _))) = slot.srcs.get_mut(idx) {
                if reg.untaint(kind) {
                    self.pending_q.insert((seq, src_pos(idx)));
                    self.rules_q.insert(seq);
                    self.dirty = true;
                }
            }
        }
    }

    /// Number of engine steps a retired slot stays visible to the rules.
    const RETIRE_GRACE: u8 = 4;

    /// Marks an instruction retired. Its slot stays visible to the untaint
    /// rules for `RETIRE_GRACE` steps (commit latency), then is
    /// removed with un-broadcast untaint flags preserved as orphans.
    pub fn retire(&mut self, seq: Seq) {
        if let Some(slot) = self.slots.get_mut(seq) {
            slot.in_grace = true;
            // An entry expires on the (RETIRE_GRACE + 1)-th aging pass after
            // retirement, matching the old decrement-to-zero counters.
            self.grace_q.push_back((seq, self.steps + u64::from(Self::RETIRE_GRACE) + 1));
        }
    }

    /// Finally removes a retired slot, preserving pending broadcasts except
    /// for `skip_phys` (a recycled register whose old value is dead).
    fn finalize_retire(&mut self, seq: Seq, skip_phys: Option<PhysReg>) {
        if let Some(slot) = self.slots.remove(seq) {
            let mut keep = |r: &SlotReg| {
                if let Some(kind) = r.pending {
                    if skip_phys != Some(r.phys) {
                        self.orphans.push((r.phys, kind));
                    }
                }
            };
            if let Some(d) = &slot.dest {
                keep(d);
            }
            for (r, _) in slot.srcs.iter().flatten() {
                keep(r);
            }
            for pos in DEST_POS..=src_pos(2) {
                self.pending_q.remove(&(seq, pos));
            }
            self.rules_q.remove(&seq);
        }
    }

    /// Ages the retired-slot grace periods (called once per step). Stale
    /// entries (slots already finalized by a register recycle) expire as
    /// no-ops.
    fn age_retired(&mut self) {
        self.steps += 1;
        while let Some(&(seq, expire_at)) = self.grace_q.front() {
            if expire_at > self.steps {
                break;
            }
            self.grace_q.pop_front();
            self.finalize_retire(seq, None);
        }
    }

    /// Removes all slots with `seq >= from` (squash recovery). Their
    /// pending untaints are dropped: a squashed instruction's inference
    /// never happened architecturally.
    pub fn squash_from(&mut self, from: Seq) {
        self.slots.truncate_from(from);
        let _ = self.pending_q.split_off(&(from, 0));
        let _ = self.rules_q.split_off(&from);
    }

    /// Phase 1: applies the §6.6 rules locally — but only to slots whose
    /// replicas changed since the last pass (`rules_q`). A rule reads
    /// nothing but its own slot's replicas, so an untouched slot that did
    /// not fire before cannot fire now; visiting only the changed set is
    /// exactly equivalent to the old visit-everything pass.
    fn apply_rules_locally(&mut self) {
        let fwd = self.cfg.untaint.forward();
        let bwd = self.cfg.untaint.backward();
        if !fwd {
            return;
        }
        let queue = std::mem::take(&mut self.rules_q);
        for &seq in &queue {
            let Some(slot) = self.slots.get_mut(seq) else { continue };
            let mut src_tainted = [false; 3];
            let mut n_srcs = 0;
            for (r, _) in slot.srcs.iter().flatten() {
                src_tainted[n_srcs] = r.taint.any();
                n_srcs += 1;
            }
            if let Some(dest) = slot.dest.as_mut() {
                if dest.taint.any()
                    && forward_untaints(slot.class, &src_tainted[..n_srcs])
                    && dest.untaint(UntaintKind::Forward)
                {
                    self.pending_q.insert((seq, DEST_POS));
                }
            }
            if bwd {
                let dest_tainted = slot.dest.as_ref().is_none_or(|d| d.taint.any());
                // Backward rules need a register destination whose value the
                // attacker can read; instructions without one don't apply.
                if slot.dest.is_some() && !dest_tainted {
                    let back = backward_untaints(slot.class, &src_tainted[..n_srcs], dest_tainted);
                    let mut packed = 0;
                    for i in 0..slot.srcs.len() {
                        if let Some(src) = slot.srcs[i].as_mut() {
                            if back.get(packed).copied().unwrap_or(false)
                                && src.0.untaint(UntaintKind::Backward)
                            {
                                self.pending_q.insert((seq, src_pos(i)));
                            }
                            packed += 1;
                        }
                    }
                }
            }
        }
    }

    /// Phase 2: selects at most `width` pending untaints (orphans first,
    /// then destinations before sources within each slot, older slots
    /// first), clears them globally and in every replica. Returns the
    /// chosen broadcasts and whether any pending flags remain.
    fn broadcast(&mut self, width: usize) -> (Vec<(PhysReg, UntaintKind)>, bool) {
        let mut chosen: Vec<(PhysReg, UntaintKind)> = Vec::new();
        let mut deferred = 0u64;

        // Selection: orphans keep highest priority, then the queued pending
        // replicas, which `(seq, pos)` ordering already lists oldest slot
        // first with destinations before sources.
        for &(phys, kind) in &self.orphans {
            if self.reg_taint[phys as usize].is_clear() {
                continue; // already public globally; nothing to broadcast
            }
            if chosen.iter().any(|(p, _)| *p == phys) {
                continue; // same register already selected this cycle
            }
            if chosen.len() < width {
                chosen.push((phys, kind));
            } else {
                deferred += 1;
            }
        }
        // Every queued flag's register is globally tainted here: flags are
        // only ever set on locally tainted replicas, local taint implies
        // global taint, and the replica walk below strips the flags of every
        // register it publishes the moment the register goes public. So the
        // scan can stop once the bus is full — each unvisited entry either
        // shares a chosen register (the old walk skipped it silently; the
        // walk below consumes it) or is deferred, and the exact deferred
        // count falls out as `queued - consumed` afterwards.
        let queued = self.pending_q.len() as u64;
        for &(seq, pos) in &self.pending_q {
            if chosen.len() >= width {
                break;
            }
            let slot = self.slots.get(seq).expect("pending_q references a live slot");
            let r = if pos == DEST_POS {
                slot.dest.as_ref().expect("pending dest replica exists")
            } else {
                &slot.srcs[pos as usize - 1].as_ref().expect("pending src replica exists").0
            };
            debug_assert!(
                self.reg_taint[r.phys as usize].any(),
                "queued pending flag for a globally public register"
            );
            let kind = r.pending.expect("queued replica has a pending flag");
            if !chosen.iter().any(|(p, _)| *p == r.phys) {
                chosen.push((r.phys, kind));
            }
        }

        // Apply the selected broadcasts: global taint, then every replica
        // of each chosen register — `deps` lists exactly the slots holding
        // one, so nothing else is touched. A cleared replica can enable new
        // rule firings in its slot, so those slots re-enter `rules_q`.
        for &(phys, kind) in &chosen {
            self.reg_taint[phys as usize] = TaintMask::NONE;
            self.stats.events[kind] += 1;
        }
        let mut consumed = 0u64;
        for &(phys, _) in &chosen {
            let mut list = std::mem::take(&mut self.deps[phys as usize]);
            list.retain(|&seq| {
                let Some(slot) = self.slots.get_mut(seq) else { return false };
                let mut touched = false;
                if let Some(d) = slot.dest.as_mut() {
                    if d.phys == phys {
                        d.taint = TaintMask::NONE;
                        if d.pending.take().is_some() {
                            self.pending_q.remove(&(seq, DEST_POS));
                            consumed += 1;
                        }
                        touched = true;
                    }
                }
                for i in 0..slot.srcs.len() {
                    if let Some((r, _)) = slot.srcs[i].as_mut() {
                        if r.phys == phys {
                            r.taint = TaintMask::NONE;
                            if r.pending.take().is_some() {
                                self.pending_q.remove(&(seq, src_pos(i)));
                                consumed += 1;
                            }
                            touched = true;
                        }
                    }
                }
                if touched {
                    self.rules_q.insert(seq);
                }
                true
            });
            self.deps[phys as usize] = list;
        }

        // Flags still queued all belong to registers the bus had no room
        // for this cycle (the selection invariant above rules out stale
        // public entries), so the old drop-public sweep over the whole
        // queue is a no-op and the deferred tally is what the replica
        // walks did not consume.
        deferred += queued - consumed;
        #[cfg(debug_assertions)]
        for &(seq, _pos) in &self.pending_q {
            let slot = self.slots.get(seq).expect("pending_q references a live slot");
            let phys = if _pos == DEST_POS {
                slot.dest.as_ref().expect("pending dest replica exists").phys
            } else {
                slot.srcs[_pos as usize - 1].as_ref().expect("pending src replica exists").0.phys
            };
            debug_assert!(
                self.reg_taint[phys as usize].any(),
                "pending flag survived for a globally public register"
            );
        }
        let mut remaining = !self.pending_q.is_empty();
        self.orphans.retain(|(p, _)| {
            // Drop chosen and already-public orphans.
            self.reg_taint[*p as usize].any()
        });
        remaining |= !self.orphans.is_empty();

        self.stats.broadcasts_deferred += deferred;
        (chosen, remaining)
    }

    /// Runs one cycle of untaint propagation and returns the registers
    /// broadcast as untainted. Under [`crate::UntaintMethod::Ideal`], iterates to
    /// a fixpoint with unbounded width.
    pub fn step(&mut self) -> StepResult {
        if !self.cfg.untaint.forward() {
            return StepResult::default();
        }
        self.age_retired();
        // Quiescence: rules can only fire after some taint state changed
        // (declassification, broadcast, load completion, STL untaint).
        if !self.dirty && self.orphans.is_empty() {
            return StepResult::default();
        }
        let mut broadcasts = Vec::new();
        let mut remaining;
        if self.cfg.untaint.ideal() {
            loop {
                self.apply_rules_locally();
                let (batch, rem) = self.broadcast(usize::MAX);
                remaining = rem;
                if batch.is_empty() {
                    break;
                }
                broadcasts.extend(batch);
            }
        } else {
            self.apply_rules_locally();
            let (batch, rem) = self.broadcast(self.cfg.broadcast_width);
            remaining = rem;
            broadcasts = batch;
        }
        // Stay dirty while broadcasts happened this cycle (replica updates
        // can enable new rule firings) or pending flags remain queued.
        self.dirty = !broadcasts.is_empty() || remaining;
        self.stats.record_untaint_cycle(broadcasts.len());
        StepResult { broadcasts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ThreatModel;
    use spt_isa::OperandRole::*;

    const P: usize = 64;

    fn engine(cfg: Config) -> TaintEngine {
        TaintEngine::new(cfg, P)
    }

    fn full() -> TaintEngine {
        engine(Config::spt_full(ThreatModel::Futuristic))
    }

    fn ri(
        seq: Seq,
        class: InstClass,
        srcs: &[(PhysReg, spt_isa::OperandRole)],
        dest: Option<PhysReg>,
    ) -> RenameInfo {
        let mut s: [Option<(PhysReg, spt_isa::OperandRole)>; 3] = [None, None, None];
        for (i, &x) in srcs.iter().enumerate() {
            s[i] = Some(x);
        }
        RenameInfo { seq, class, srcs: s, dest, load_bytes: None }
    }

    #[test]
    fn rename_const_is_public_and_counted() {
        let mut e = full();
        let t = e.rename(ri(1, InstClass::Const, &[], Some(5)));
        assert!(t.is_clear());
        assert!(e.reg_taint(5).is_clear());
        assert_eq!(e.stats().events[UntaintKind::LoadImm], 1);
    }

    #[test]
    fn rename_const_stays_tainted_under_secure_baseline() {
        let mut e = engine(Config::secure_baseline(ThreatModel::Futuristic));
        let t = e.rename(ri(1, InstClass::Const, &[], Some(5)));
        assert!(t.any());
    }

    #[test]
    fn rename_propagates_source_taint() {
        let mut e = full();
        e.rename(ri(1, InstClass::Const, &[], Some(1))); // r1 public
                                                         // r2 = r1 + r3 where r3 (phys 3) is still tainted.
        let t = e.rename(ri(2, InstClass::Invertible2, &[(1, Data), (3, Data)], Some(2)));
        assert!(t.any());
        // r4 = r1 + r1: all public.
        let t = e.rename(ri(3, InstClass::Invertible2, &[(1, Data), (1, Data)], Some(4)));
        assert!(t.is_clear());
    }

    #[test]
    fn load_rename_taints_loaded_bytes_only() {
        let mut e = full();
        let t = e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(7),
            load_bytes: Some(1),
        });
        assert_eq!(t, TaintMask::for_bytes(0..1));
        assert!(t.any());
        assert!(!t.field(3), "upper bytes of a byte load are public zeros");
    }

    #[test]
    fn vp_declassify_then_broadcast_forward_chain() {
        let mut e = full();
        // I1: load r10 <- (r2): r2 tainted address.
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        // I2: r11 = r2 + r12 (r12 public via const).
        e.rename(ri(2, InstClass::Const, &[], Some(12)));
        e.rename(ri(3, InstClass::Invertible2, &[(2, Data), (12, Data)], Some(11)));
        assert!(e.reg_taint(11).any());

        // I1 reaches VP: r2 declassified.
        e.declassify_vp(1);
        assert!(!e.operand_tainted(1, 0), "slot-local view updates immediately");
        assert!(e.reg_taint(2).any(), "global view waits for broadcast");

        // Cycle 1: broadcast of r2.
        let r = e.step();
        assert_eq!(r.broadcasts, vec![(2, UntaintKind::DeclassifyTransmit)]);
        assert!(e.reg_taint(2).is_clear());

        // Cycle 2: forward rule fires in I3's slot, broadcasting r11.
        let r = e.step();
        assert_eq!(r.broadcasts, vec![(11, UntaintKind::Forward)]);
        assert!(e.reg_taint(11).is_clear());
        assert_eq!(e.stats().events[UntaintKind::Forward], 1);
    }

    #[test]
    fn backward_untaint_through_invertible_add() {
        // Paper Figure 4: I1: r0 = r1 + r2; I2: load <- (r0); I3: r4 = r0 + r2.
        let mut e = full();
        e.rename(ri(1, InstClass::Invertible2, &[(1, Data), (2, Data)], Some(0)));
        e.rename(RenameInfo {
            seq: 2,
            class: InstClass::Load,
            srcs: [Some((0, Address)), None, None],
            dest: Some(3),
            load_bytes: Some(8),
        });
        e.rename(ri(3, InstClass::Invertible2, &[(0, Data), (2, Data)], Some(4)));

        // The load reaches the VP: r0 declassified. Also declassify r2 via
        // another transmitter to enable the backward inference of r1.
        e.declassify_vp(2);
        e.rename(RenameInfo {
            seq: 4,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(5),
            load_bytes: Some(8),
        });
        e.declassify_vp(4);

        // Broadcast r0 and r2 (width 3 allows both in one cycle).
        let r = e.step();
        let regs: Vec<PhysReg> = r.broadcasts.iter().map(|b| b.0).collect();
        assert_eq!(regs, vec![0, 2]);

        // Next cycle: backward rule in I1 infers r1 (r0 = r1 + r2, r0 and r2
        // public); forward rule in I3 clears r4.
        let r = e.step();
        let mut regs: Vec<PhysReg> = r.broadcasts.iter().map(|b| b.0).collect();
        regs.sort_unstable();
        assert_eq!(regs, vec![1, 4]);
        assert_eq!(e.stats().events[UntaintKind::Backward], 1);
        assert_eq!(e.stats().events[UntaintKind::Forward], 1);
    }

    #[test]
    fn backward_requires_bwd_config() {
        let mut e = engine(Config::spt_fwd(ThreatModel::Futuristic));
        e.rename(ri(1, InstClass::Copy, &[(1, Data)], Some(0)));
        e.rename(RenameInfo {
            seq: 2,
            class: InstClass::Load,
            srcs: [Some((0, Address)), None, None],
            dest: Some(3),
            load_bytes: Some(8),
        });
        e.declassify_vp(2);
        e.step(); // broadcast r0
        let r = e.step();
        assert!(r.broadcasts.is_empty(), "Fwd config must not run backward rules");
        assert!(e.reg_taint(1).any());
    }

    #[test]
    fn broadcast_width_limits_and_defers() {
        let mut cfg = Config::spt_fwd(ThreatModel::Futuristic);
        cfg.broadcast_width = 1;
        let mut e = engine(cfg);
        // Two loads declassify two different address registers at once.
        for (seq, addr_reg, dest) in [(1u64, 2u32, 10u32), (2, 3, 11)] {
            e.rename(RenameInfo {
                seq,
                class: InstClass::Load,
                srcs: [Some((addr_reg, Address)), None, None],
                dest: Some(dest),
                load_bytes: Some(8),
            });
            e.declassify_vp(seq);
        }
        let r = e.step();
        assert_eq!(r.broadcasts.len(), 1);
        assert_eq!(r.broadcasts[0].0, 2, "older slot has priority");
        assert!(e.stats().broadcasts_deferred > 0);
        let r = e.step();
        assert_eq!(r.broadcasts.len(), 1);
        assert_eq!(r.broadcasts[0].0, 3);
    }

    #[test]
    fn ideal_mode_converges_in_one_step() {
        let mut e = engine(Config::spt_ideal(ThreatModel::Futuristic));
        // Chain: r0 -> r1 -> r2 -> r3 via copies; declassify r0.
        e.rename(ri(1, InstClass::Copy, &[(0, Data)], Some(1)));
        e.rename(ri(2, InstClass::Copy, &[(1, Data)], Some(2)));
        e.rename(ri(3, InstClass::Copy, &[(2, Data)], Some(3)));
        e.rename(RenameInfo {
            seq: 4,
            class: InstClass::Load,
            srcs: [Some((0, Address)), None, None],
            dest: Some(9),
            load_bytes: Some(8),
        });
        e.declassify_vp(4);
        let r = e.step();
        let mut regs: Vec<PhysReg> = r.broadcasts.iter().map(|b| b.0).collect();
        regs.sort_unstable();
        assert_eq!(regs, vec![0, 1, 2, 3], "ideal propagation reaches the whole chain");
        // The census recorded one cycle with 4 untaints.
        assert_eq!(e.stats().untaint_cycle_hist[3], 1);
    }

    #[test]
    fn monotonicity_taint_never_returns() {
        // Once broadcast-untainted, stepping more never re-taints.
        let mut e = full();
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(1);
        e.step();
        assert!(e.reg_taint(2).is_clear());
        for _ in 0..5 {
            e.step();
            assert!(e.reg_taint(2).is_clear());
        }
    }

    #[test]
    fn retire_preserves_pending_broadcasts() {
        let mut cfg = Config::spt_fwd(ThreatModel::Futuristic);
        cfg.broadcast_width = 1;
        let mut e = engine(cfg);
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(1);
        // Retire before any broadcast happened: the slot survives for the
        // commit-latency grace window, then its pendings become orphans.
        e.retire(1);
        let r = e.step();
        assert_eq!(r.broadcasts, vec![(2, UntaintKind::DeclassifyTransmit)]);
        assert!(e.reg_taint(2).is_clear());
        // After the grace period the slot is gone.
        for _ in 0..=TaintEngine::RETIRE_GRACE {
            e.step();
        }
        assert_eq!(e.live_slots(), 0);
    }

    #[test]
    fn recycled_phys_drops_stale_pendings() {
        let mut e = full();
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(1);
        e.retire(1);
        // Physical register 2 is recycled for a new (tainted) value before
        // the pending broadcast drains: the stale untaint must be dropped.
        e.rename(ri(2, InstClass::Lossy, &[(3, Data)], Some(2)));
        let r = e.step();
        assert!(r.broadcasts.is_empty(), "stale untaint must not reach the new value");
        assert!(e.reg_taint(2).any());
    }

    #[test]
    fn squash_drops_pending_inferences() {
        let mut e = full();
        e.rename(RenameInfo {
            seq: 5,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(5);
        e.squash_from(5);
        let r = e.step();
        assert!(r.broadcasts.is_empty());
        assert!(e.reg_taint(2).any(), "squashed declassification must not leak out");
    }

    #[test]
    fn shadow_load_output_untaint() {
        let mut e = full();
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        // Shadow L1 reports the loaded bytes are public.
        e.set_load_output(1, TaintMask::NONE, UntaintKind::ShadowL1);
        let r = e.step();
        assert_eq!(r.broadcasts, vec![(10, UntaintKind::ShadowL1)]);
        assert_eq!(e.stats().events[UntaintKind::ShadowL1], 1);
    }

    #[test]
    fn partially_tainted_load_output_does_not_broadcast() {
        let mut e = full();
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        // Only the low byte is public.
        e.set_load_output(1, TaintMask::from_bits(0b1110), UntaintKind::ShadowL1);
        let r = e.step();
        assert!(r.broadcasts.is_empty());
        assert_eq!(e.dest_mask(1), Some(TaintMask::from_bits(0b1110)));
    }

    #[test]
    fn secure_baseline_never_untaints() {
        let mut e = engine(Config::secure_baseline(ThreatModel::Futuristic));
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Load,
            srcs: [Some((2, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        e.declassify_vp(1);
        let r = e.step();
        assert!(r.broadcasts.is_empty());
        assert!(e.reg_taint(2).any());
    }

    #[test]
    fn broadcast_order_is_stable_across_insertion_histories() {
        // The slab keys slots by sequence number, so broadcast priority is
        // a pure function of the live slot set — independent of how the
        // engine got there. Build the same final slots two ways (straight
        // line vs. with an interleaved squashed wrong-path burst and an
        // extra retired-then-purged slot) and demand identical broadcast
        // streams.
        let build_direct = |mut seqs: Vec<Seq>| -> TaintEngine {
            let mut e = full();
            seqs.sort_unstable();
            for seq in seqs {
                e.rename(RenameInfo {
                    seq,
                    class: InstClass::Load,
                    srcs: [Some(((seq % 7) as PhysReg + 1, Address)), None, None],
                    dest: Some(30 + (seq % 16) as PhysReg),
                    load_bytes: Some(8),
                });
                e.declassify_vp(seq);
            }
            e
        };
        let seqs: Vec<Seq> = vec![2, 3, 5, 8, 13];
        let mut a = build_direct(seqs.clone());

        let mut b = full();
        for (i, &seq) in seqs.iter().enumerate() {
            b.rename(RenameInfo {
                seq,
                class: InstClass::Load,
                srcs: [Some(((seq % 7) as PhysReg + 1, Address)), None, None],
                dest: Some(30 + (seq % 16) as PhysReg),
                load_bytes: Some(8),
            });
            b.declassify_vp(seq);
            if i == 2 {
                // Wrong-path burst: younger slots that are squashed away
                // before the next right-path instruction arrives.
                for wrong in 20..24u64 {
                    b.rename(ri(wrong, InstClass::Lossy, &[(6, Data)], Some(50)));
                }
                b.squash_from(20);
            }
        }
        for &seq in &seqs {
            assert_eq!(a.operand_mask(seq, 0), b.operand_mask(seq, 0));
        }
        for _ in 0..12 {
            assert_eq!(
                a.step().broadcasts,
                b.step().broadcasts,
                "broadcast order must not depend on insertion history"
            );
        }
        assert_eq!(a.stats().decision_digest(), b.stats().decision_digest());
    }

    #[test]
    fn convergence_bound_three_visits() {
        // Paper §6.6: each slot is examined at most 3 times before its
        // registers stabilize. We verify global convergence: with N slots
        // and ideal mode, a single step reaches the fixpoint; with bounded
        // width, at most (3 regs per slot * N) steps are ever needed.
        let mut e = full();
        let n = 20;
        // Build a copy chain r0 -> r1 -> ... -> r(n).
        for i in 0..n {
            e.rename(ri(i as Seq + 1, InstClass::Copy, &[(i, Data)], Some(i + 1)));
        }
        e.rename(RenameInfo {
            seq: 100,
            class: InstClass::Load,
            srcs: [Some((0, Address)), None, None],
            dest: Some(60),
            load_bytes: Some(8),
        });
        e.declassify_vp(100);
        let mut total = 0;
        for _ in 0..(3 * (n as usize + 1)) {
            total += e.step().broadcasts.len();
        }
        assert_eq!(total as u32, n + 1, "the whole chain converges within the bound");
        for i in 0..=n {
            assert!(e.reg_taint(i).is_clear());
        }
    }
}

#[cfg(test)]
mod grace_tests {
    use super::*;
    use crate::config::{Config, ThreatModel};
    use spt_isa::OperandRole::*;

    /// Regression test for a soundness bug found by the §8 validator: a
    /// grace entry whose ttl reached zero in the same pass as another
    /// entry's expiry was dropped from the list without finalization,
    /// leaking its slot forever. The stale slot could later fire a forward
    /// untaint on a recycled physical register.
    #[test]
    fn every_retired_slot_is_finalized_after_grace() {
        let mut e = TaintEngine::new(Config::spt_full(ThreatModel::Futuristic), 64);
        // Retire slots on staggered cycles so ttls interleave.
        for k in 0..10u64 {
            e.rename(RenameInfo {
                seq: k + 1,
                class: InstClass::Load,
                srcs: [Some(((k % 8) as PhysReg + 1, Address)), None, None],
                dest: Some(20 + k as PhysReg),
                load_bytes: Some(8),
            });
        }
        for k in 0..10u64 {
            e.retire(k + 1);
            e.step();
        }
        for _ in 0..=TaintEngine::RETIRE_GRACE as usize + 1 {
            e.step();
        }
        assert_eq!(e.live_slots(), 0, "all retired slots must be finalized");
    }

    #[test]
    fn stale_slot_cannot_fire_on_recycled_register() {
        let mut e = TaintEngine::new(Config::spt_full(ThreatModel::Futuristic), 64);
        // Slot 1: lossy op producing p10 from tainted p5.
        e.rename(RenameInfo {
            seq: 1,
            class: InstClass::Lossy,
            srcs: [Some((5, Data)), None, None],
            dest: Some(10),
            load_bytes: None,
        });
        e.retire(1);
        // Recycle p10 for a new tainted value while slot 1 is in grace.
        e.rename(RenameInfo {
            seq: 2,
            class: InstClass::Load,
            srcs: [Some((6, Address)), None, None],
            dest: Some(10),
            load_bytes: Some(8),
        });
        // Now declassify p5 (slot 1's source) via a transmitter.
        e.rename(RenameInfo {
            seq: 3,
            class: InstClass::Load,
            srcs: [Some((5, Address)), None, None],
            dest: Some(11),
            load_bytes: Some(8),
        });
        e.declassify_vp(3);
        // Step far past the grace period: the recycled p10 (the load output
        // of seq 2) must never be untainted by slot 1's stale forward rule.
        for _ in 0..12 {
            e.step();
            assert!(
                e.reg_taint(10).any(),
                "stale slot untainted a recycled register (soundness bug)"
            );
        }
    }
}
