//! Untaint-event taxonomy and statistics (paper Figures 8 and 9).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Why a register (or memory range) became untainted. These are the
/// *exclusive* event categories of paper Figure 8: each untaint event is
/// attributed to exactly one mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UntaintKind {
    /// Output of a "load immediate" untainted at rename (§6.5).
    LoadImm,
    /// Operand of a load/store declassified when the transmitter reached
    /// the visibility point (§6.6).
    DeclassifyTransmit,
    /// Operand of a branch/jump declassified at its visibility point.
    DeclassifyBranch,
    /// Forward (output) untaint rule (§6.6).
    Forward,
    /// Backward (input) untaint rule (§6.6).
    Backward,
    /// Load output untainted by store-to-load forwarding of untainted data
    /// under `STLPublic` (§6.7, rule ①).
    StlForward,
    /// Store data operand untainted because the forwarded load's output
    /// became untainted under `STLPublic` (§6.7, rule ②).
    StlBackward,
    /// Load output untainted because the shadow L1 proved the loaded bytes
    /// public (§6.8).
    ShadowL1,
    /// Load output untainted by idealized whole-memory taint tracking.
    ShadowMem,
}

impl UntaintKind {
    /// All kinds, in Figure-8 display order.
    pub const ALL: [UntaintKind; 9] = [
        UntaintKind::LoadImm,
        UntaintKind::DeclassifyTransmit,
        UntaintKind::DeclassifyBranch,
        UntaintKind::Forward,
        UntaintKind::Backward,
        UntaintKind::StlForward,
        UntaintKind::StlBackward,
        UntaintKind::ShadowL1,
        UntaintKind::ShadowMem,
    ];

    /// Short label used in the Figure-8 table.
    pub fn label(self) -> &'static str {
        match self {
            UntaintKind::LoadImm => "load-imm",
            UntaintKind::DeclassifyTransmit => "declass-xmit",
            UntaintKind::DeclassifyBranch => "declass-br",
            UntaintKind::Forward => "forward",
            UntaintKind::Backward => "backward",
            UntaintKind::StlForward => "stl-fwd",
            UntaintKind::StlBackward => "stl-bwd",
            UntaintKind::ShadowL1 => "shadow-l1",
            UntaintKind::ShadowMem => "shadow-mem",
        }
    }

    fn index(self) -> usize {
        match self {
            UntaintKind::LoadImm => 0,
            UntaintKind::DeclassifyTransmit => 1,
            UntaintKind::DeclassifyBranch => 2,
            UntaintKind::Forward => 3,
            UntaintKind::Backward => 4,
            UntaintKind::StlForward => 5,
            UntaintKind::StlBackward => 6,
            UntaintKind::ShadowL1 => 7,
            UntaintKind::ShadowMem => 8,
        }
    }
}

impl fmt::Display for UntaintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Event counters per [`UntaintKind`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UntaintCounts([u64; UntaintKind::ALL.len()]);

impl UntaintCounts {
    /// Total events across kinds.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Iterates `(kind, count)` in display order.
    pub fn iter(&self) -> impl Iterator<Item = (UntaintKind, u64)> + '_ {
        UntaintKind::ALL.iter().map(move |&k| (k, self.0[k.index()]))
    }

    /// Folds the per-kind counts into a digest, in display order.
    pub fn fold_state(&self, h: &mut spt_util::Fnv64) {
        for &c in &self.0 {
            h.write_u64(c);
        }
    }
}

impl Index<UntaintKind> for UntaintCounts {
    type Output = u64;
    fn index(&self, k: UntaintKind) -> &u64 {
        &self.0[k.index()]
    }
}

impl IndexMut<UntaintKind> for UntaintCounts {
    fn index_mut(&mut self, k: UntaintKind) -> &mut u64 {
        &mut self.0[k.index()]
    }
}

/// Statistics accumulated by the SPT taint engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SptStats {
    /// Untaint events by mechanism (Figure 8).
    pub events: UntaintCounts,
    /// Histogram of *registers untainted per untainting cycle* (Figure 9):
    /// bucket `i` (0-based) counts cycles that untainted `i + 1` registers;
    /// the last bucket counts cycles with more than 10.
    pub untaint_cycle_hist: [u64; 11],
    /// Cycles in which at least one register was untainted.
    pub untainting_cycles: u64,
    /// Broadcasts deferred because the per-cycle width was exhausted.
    pub broadcasts_deferred: u64,
}

impl SptStats {
    /// Creates zeroed statistics.
    pub fn new() -> SptStats {
        SptStats::default()
    }

    /// Records that `n` registers were untainted in one cycle (`n > 0`).
    pub fn record_untaint_cycle(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.untainting_cycles += 1;
        let bucket = (n - 1).min(10);
        self.untaint_cycle_hist[bucket] += 1;
    }

    /// Fraction of untainting cycles that untainted at most `n` registers
    /// (the Figure-9 CDF), or 1.0 if no cycle untainted anything.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 10.
    pub fn cdf_at_most(&self, n: usize) -> f64 {
        assert!((1..=10).contains(&n));
        if self.untainting_cycles == 0 {
            return 1.0;
        }
        let sum: u64 = self.untaint_cycle_hist[..n].iter().sum();
        sum as f64 / self.untainting_cycles as f64
    }

    /// Digest of every untaint decision the engine took: per-mechanism
    /// event counts, the per-cycle untaint-width histogram, and deferral
    /// counts. Untaint decisions are attacker-visible under SPT's own
    /// threat analysis (a delayed transmitter resumes exactly when its
    /// operands untaint), so the relational fuzzing harness requires this
    /// digest to be identical across secret-swapped runs.
    pub fn decision_digest(&self) -> u64 {
        let mut h = spt_util::Fnv64::new();
        self.events.fold_state(&mut h);
        for &c in &self.untaint_cycle_hist {
            h.write_u64(c);
        }
        h.write_u64(self.untainting_cycles);
        h.write_u64(self.broadcasts_deferred);
        h.finish()
    }

    /// Renders the SPT counters as a JSON object for `--stats-json`
    /// documents: per-mechanism untaint counts (Figure 8), the
    /// untaints-per-cycle histogram (Figure 9), and the deferral counters.
    pub fn to_json(&self) -> spt_util::Json {
        use spt_util::Json;
        let events = Json::Obj(
            self.events.iter().map(|(k, c)| (k.label().to_string(), Json::U64(c))).collect(),
        );
        let hist =
            Json::arr(self.untaint_cycle_hist.iter().map(|&c| Json::U64(c)).collect::<Vec<_>>());
        Json::obj([
            ("untaint_events", events),
            ("untaint_events_total", Json::U64(self.events.total())),
            ("untaints_per_cycle_hist", hist),
            ("untainting_cycles", Json::U64(self.untainting_cycles)),
            ("broadcasts_deferred", Json::U64(self.broadcasts_deferred)),
        ])
    }

    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &SptStats) {
        for k in UntaintKind::ALL {
            self.events[k] += other.events[k];
        }
        for (a, b) in self.untaint_cycle_hist.iter_mut().zip(other.untaint_cycle_hist) {
            *a += b;
        }
        self.untainting_cycles += other.untainting_cycles;
        self.broadcasts_deferred += other.broadcasts_deferred;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_index_by_kind() {
        let mut c = UntaintCounts::default();
        c[UntaintKind::Forward] += 3;
        c[UntaintKind::ShadowL1] += 1;
        assert_eq!(c[UntaintKind::Forward], 3);
        assert_eq!(c.total(), 4);
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn histogram_buckets() {
        let mut s = SptStats::new();
        s.record_untaint_cycle(1);
        s.record_untaint_cycle(3);
        s.record_untaint_cycle(3);
        s.record_untaint_cycle(25); // clamps to the 10+ bucket
        s.record_untaint_cycle(0); // ignored
        assert_eq!(s.untainting_cycles, 4);
        assert_eq!(s.untaint_cycle_hist[0], 1);
        assert_eq!(s.untaint_cycle_hist[2], 2);
        assert_eq!(s.untaint_cycle_hist[10], 1);
        assert!((s.cdf_at_most(3) - 0.75).abs() < 1e-9);
        assert!((s.cdf_at_most(10) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SptStats::new();
        a.events[UntaintKind::Backward] = 2;
        a.record_untaint_cycle(2);
        let mut b = SptStats::new();
        b.events[UntaintKind::Backward] = 5;
        b.record_untaint_cycle(1);
        a.merge(&b);
        assert_eq!(a.events[UntaintKind::Backward], 7);
        assert_eq!(a.untainting_cycles, 2);
    }

    #[test]
    fn empty_cdf_is_one() {
        assert_eq!(SptStats::new().cdf_at_most(1), 1.0);
    }

    #[test]
    fn json_roundtrips_counters() {
        let mut s = SptStats::new();
        s.events[UntaintKind::Forward] = 7;
        s.record_untaint_cycle(2);
        let j = s.to_json();
        let parsed = spt_util::Json::parse(&j.to_string()).unwrap();
        let events = parsed.get("untaint_events").unwrap();
        assert_eq!(events.get("forward").and_then(spt_util::Json::as_u64), Some(7));
        assert_eq!(parsed.get("untainting_cycles").and_then(spt_util::Json::as_u64), Some(1));
    }
}
