//! Register taint status with partial-width access modes (paper §7.2).

use std::fmt;

/// Taint status of one 64-bit register, tracked at the paper's four
/// partial-access granularities (§7.2): bits `[7:0]`, `[15:8]`, `[31:16]`
/// and `[63:32]`. A field bit of 1 means that slice of the register is
/// tainted (secret).
///
/// Byte-granularity load/store taint (shadow L1, §7.5) is converted to and
/// from this 4-field form: byte `i` maps to field 0 (`i == 0`), 1 (`i == 1`),
/// 2 (`i ∈ 2..4`) or 3 (`i ∈ 4..8`).
///
/// # Example
///
/// ```
/// use spt_core::TaintMask;
///
/// let t = TaintMask::ALL;
/// assert!(t.any());
/// let lo = TaintMask::for_bytes(0..1); // only byte 0 tainted
/// assert!(lo.any());
/// assert_eq!(lo.union(TaintMask::NONE), lo);
/// assert!(!lo.field(3));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TaintMask(u8);

impl TaintMask {
    /// Number of partial-width fields.
    pub const FIELDS: usize = 4;

    /// Fully tainted register.
    pub const ALL: TaintMask = TaintMask(0b1111);

    /// Fully public register.
    pub const NONE: TaintMask = TaintMask(0);

    /// Creates a mask from raw field bits (low 4 bits used).
    pub fn from_bits(bits: u8) -> TaintMask {
        TaintMask(bits & 0b1111)
    }

    /// Raw field bits.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether any field is tainted.
    pub fn any(self) -> bool {
        self.0 != 0
    }

    /// Whether every field is public.
    pub fn is_clear(self) -> bool {
        self.0 == 0
    }

    /// Taint of field `i` (0..4).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn field(self, i: usize) -> bool {
        assert!(i < Self::FIELDS);
        (self.0 >> i) & 1 == 1
    }

    /// The field index covering byte `byte` (0..8) of the register.
    pub fn field_of_byte(byte: u64) -> usize {
        match byte {
            0 => 0,
            1 => 1,
            2 | 3 => 2,
            _ => 3,
        }
    }

    /// Mask with the fields covering the byte range tainted and all other
    /// fields public. Used for loads: a `k`-byte zero-extending load can
    /// only carry taint in its low `k` bytes; the zero upper bytes are
    /// public by construction.
    pub fn for_bytes(range: std::ops::Range<u64>) -> TaintMask {
        let mut bits = 0u8;
        for b in range {
            if b < 8 {
                bits |= 1 << Self::field_of_byte(b);
            }
        }
        TaintMask(bits)
    }

    /// Union (tainted if tainted in either).
    pub fn union(self, other: TaintMask) -> TaintMask {
        TaintMask(self.0 | other.0)
    }

    /// Intersection (tainted only if tainted in both). This is the shadow
    /// L1 `AND` of register and line taint on a load (paper §7.5).
    pub fn intersect(self, other: TaintMask) -> TaintMask {
        TaintMask(self.0 & other.0)
    }

    /// The taint of byte `byte` (0..8) under this mask.
    pub fn byte_tainted(self, byte: u64) -> bool {
        self.field(Self::field_of_byte(byte))
    }
}

impl fmt::Debug for TaintMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TaintMask({:04b})", self.0)
    }
}

impl fmt::Display for TaintMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clear() {
            f.write_str("public")
        } else if *self == TaintMask::ALL {
            f.write_str("tainted")
        } else {
            write!(f, "partial({:04b})", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_field_mapping() {
        assert_eq!(TaintMask::field_of_byte(0), 0);
        assert_eq!(TaintMask::field_of_byte(1), 1);
        assert_eq!(TaintMask::field_of_byte(2), 2);
        assert_eq!(TaintMask::field_of_byte(3), 2);
        assert_eq!(TaintMask::field_of_byte(4), 3);
        assert_eq!(TaintMask::field_of_byte(7), 3);
    }

    #[test]
    fn for_bytes_load_widths() {
        assert_eq!(TaintMask::for_bytes(0..1).bits(), 0b0001);
        assert_eq!(TaintMask::for_bytes(0..2).bits(), 0b0011);
        assert_eq!(TaintMask::for_bytes(0..4).bits(), 0b0111);
        assert_eq!(TaintMask::for_bytes(0..8).bits(), 0b1111);
        assert_eq!(TaintMask::for_bytes(0..0).bits(), 0);
    }

    #[test]
    fn set_operations() {
        let a = TaintMask::from_bits(0b0011);
        let b = TaintMask::from_bits(0b0110);
        assert_eq!(a.union(b).bits(), 0b0111);
        assert_eq!(a.intersect(b).bits(), 0b0010);
        assert!(a.intersect(TaintMask::NONE).is_clear());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TaintMask::NONE.to_string(), "public");
        assert_eq!(TaintMask::ALL.to_string(), "tainted");
        assert_eq!(TaintMask::from_bits(0b0001).to_string(), "partial(0001)");
    }
}
