//! Memory taint storage: the shadow L1 (paper §6.8, §7.5) and the
//! idealized whole-memory shadow.

use crate::config::ShadowMode;
use crate::taint::TaintMask;
use spt_mem::LineEvent;
use std::collections::HashMap;

/// Byte-granular taint for L1D-resident lines (paper §7.5).
///
/// The real hardware structure mirrors the L1D's set-associative geometry
/// and needs no tags because fills and evictions are driven by the L1D's
/// own decisions. We model it as a map keyed by line address whose entries
/// exist exactly for resident lines — observably identical, since entries
/// are created on `Fill` and destroyed on `Evict`, both reported by the
/// L1D ([`spt_mem::LineEvent`]).
///
/// Invariant (paper): a line is all-tainted when filled; bytes untaint via
/// the store rule ① (untainted store data clears the written range) and
/// the load rule ② (a load whose output is already public clears the read
/// range).
#[derive(Clone, Debug, Default)]
pub struct ShadowL1 {
    line_bytes: u64,
    /// line address → per-byte taint bits (bit i = byte i tainted).
    lines: HashMap<u64, u64>,
}

impl ShadowL1 {
    /// Creates a shadow for an L1D with `line_bytes`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless `line_bytes == 64` (one `u64` of byte-taint per line).
    pub fn new(line_bytes: u64) -> ShadowL1 {
        assert_eq!(line_bytes, 64, "shadow L1 models 64-byte lines");
        ShadowL1 { line_bytes, lines: HashMap::new() }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Mirrors an L1D fill/eviction decision.
    pub fn on_event(&mut self, ev: LineEvent) {
        match ev {
            LineEvent::Fill { line_addr } => {
                self.lines.insert(line_addr, u64::MAX);
            }
            LineEvent::Evict { line_addr } => {
                self.lines.remove(&line_addr);
            }
        }
    }

    /// Whether the byte at `addr` is tainted (bytes not resident in L1 are
    /// conservatively tainted).
    pub fn byte_tainted(&self, addr: u64) -> bool {
        match self.lines.get(&self.line_of(addr)) {
            Some(bits) => (bits >> (addr & (self.line_bytes - 1))) & 1 == 1,
            None => true,
        }
    }

    fn set_byte(&mut self, addr: u64, tainted: bool) {
        let line = self.line_of(addr);
        if let Some(bits) = self.lines.get_mut(&line) {
            let bit = 1u64 << (addr & (self.line_bytes - 1));
            if tainted {
                *bits |= bit;
            } else {
                *bits &= !bit;
            }
        }
        // Writes to non-resident lines are dropped: below-L1 data is
        // conservatively tainted in this mode.
    }
}

/// Idealized byte-granular taint for all of memory (SPT {*, ShadowMem}).
///
/// All bytes start tainted (paper §6.3: all program data starts tainted);
/// we therefore store *untaint* bits sparsely.
#[derive(Clone, Debug, Default)]
pub struct ShadowMem {
    /// page base → per-byte "public" bits (64 words × 64 bits = 4096 bytes).
    pages: HashMap<u64, Box<[u64; 64]>>,
}

impl ShadowMem {
    const PAGE: u64 = 4096;

    /// Creates an all-tainted shadow memory.
    pub fn new() -> ShadowMem {
        ShadowMem::default()
    }

    /// Whether the byte at `addr` is tainted.
    pub fn byte_tainted(&self, addr: u64) -> bool {
        match self.pages.get(&(addr / Self::PAGE)) {
            Some(words) => {
                let off = addr % Self::PAGE;
                (words[(off / 64) as usize] >> (off % 64)) & 1 == 0
            }
            None => true,
        }
    }

    fn set_byte(&mut self, addr: u64, tainted: bool) {
        let page = addr / Self::PAGE;
        let off = addr % Self::PAGE;
        let words = self.pages.entry(page).or_insert_with(|| Box::new([0; 64]));
        let bit = 1u64 << (off % 64);
        if tainted {
            words[(off / 64) as usize] &= !bit;
        } else {
            words[(off / 64) as usize] |= bit;
        }
    }
}

/// Unified memory-taint view dispatching on [`ShadowMode`].
///
/// # Example
///
/// ```
/// use spt_core::shadow::ShadowTaint;
/// use spt_core::{ShadowMode, TaintMask};
///
/// let mut s = ShadowTaint::new(ShadowMode::Mem);
/// assert!(s.read_mask(0x100, 8).any(), "memory starts tainted");
/// s.store(0x100, 8, TaintMask::NONE); // public store data
/// assert!(s.read_mask(0x100, 8).is_clear());
/// ```
#[derive(Clone, Debug)]
pub enum ShadowTaint {
    /// No memory taint tracking: loads are conservatively tainted.
    Off,
    /// Shadow L1 (§7.5).
    L1(ShadowL1),
    /// Whole-memory shadow.
    Mem(ShadowMem),
}

impl ShadowTaint {
    /// Creates the shadow for a configuration (64-byte L1 lines).
    pub fn new(mode: ShadowMode) -> ShadowTaint {
        match mode {
            ShadowMode::None => ShadowTaint::Off,
            ShadowMode::L1 => ShadowTaint::L1(ShadowL1::new(64)),
            ShadowMode::Mem => ShadowTaint::Mem(ShadowMem::new()),
        }
    }

    /// Mirrors an L1D line event (no-op for other modes: the whole-memory
    /// shadow is persistent and `Off` tracks nothing).
    pub fn on_l1_event(&mut self, ev: LineEvent) {
        if let ShadowTaint::L1(l1) = self {
            l1.on_event(ev);
        }
    }

    fn byte_tainted(&self, addr: u64) -> bool {
        match self {
            ShadowTaint::Off => true,
            ShadowTaint::L1(s) => s.byte_tainted(addr),
            ShadowTaint::Mem(s) => s.byte_tainted(addr),
        }
    }

    fn set_byte(&mut self, addr: u64, tainted: bool) {
        match self {
            ShadowTaint::Off => {}
            ShadowTaint::L1(s) => s.set_byte(addr, tainted),
            ShadowTaint::Mem(s) => s.set_byte(addr, tainted),
        }
    }

    /// The register [`TaintMask`] a `size`-byte load at `addr` receives
    /// from memory taint: register byte `i` carries the taint of memory
    /// byte `addr + i`; upper (zero-extended) bytes are public.
    pub fn read_mask(&self, addr: u64, size: u64) -> TaintMask {
        let mut mask = TaintMask::NONE;
        for i in 0..size.min(8) {
            if self.byte_tainted(addr + i) {
                mask = mask.union(TaintMask::for_bytes(i..i + 1));
            }
        }
        mask
    }

    /// Store rule ① (§6.8): writing `size` bytes whose data-operand taint
    /// is `data_mask` overwrites the written bytes' taint.
    pub fn store(&mut self, addr: u64, size: u64, data_mask: TaintMask) {
        for i in 0..size.min(8) {
            self.set_byte(addr + i, data_mask.byte_tainted(i));
        }
    }

    /// Load rule ② (§6.8): a load whose output register is already public
    /// proves the read bytes public.
    pub fn clear_range(&mut self, addr: u64, size: u64) {
        for i in 0..size.min(8) {
            self.set_byte(addr + i, false);
        }
    }

    /// Test/diagnostic access: taint of one byte.
    pub fn probe_byte(&self, addr: u64) -> bool {
        self.byte_tainted(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shadow_l1_fill_taints_whole_line() {
        let mut s = ShadowL1::new(64);
        assert!(s.byte_tainted(0x100), "non-resident is tainted");
        s.on_event(LineEvent::Fill { line_addr: 0x100 });
        for b in 0x100..0x140 {
            assert!(s.byte_tainted(b));
        }
    }

    #[test]
    fn shadow_l1_store_and_load_rules() {
        let mut s = ShadowTaint::new(ShadowMode::L1);
        s.on_l1_event(LineEvent::Fill { line_addr: 0x1000 });
        // Public store clears 8 bytes.
        s.store(0x1008, 8, TaintMask::NONE);
        assert!(s.read_mask(0x1008, 8).is_clear());
        assert!(s.read_mask(0x1000, 8).any(), "neighbouring bytes stay tainted");
        // Tainted store re-taints.
        s.store(0x1008, 4, TaintMask::ALL);
        assert!(s.read_mask(0x1008, 4).any());
        assert!(s.read_mask(0x100c, 4).is_clear());
        // Load rule: public output clears the read range.
        s.clear_range(0x1008, 4);
        assert!(s.read_mask(0x1008, 8).is_clear());
    }

    #[test]
    fn shadow_l1_eviction_loses_public_bits() {
        let mut s = ShadowTaint::new(ShadowMode::L1);
        s.on_l1_event(LineEvent::Fill { line_addr: 0x0 });
        s.store(0x0, 8, TaintMask::NONE);
        assert!(s.read_mask(0x0, 8).is_clear());
        s.on_l1_event(LineEvent::Evict { line_addr: 0x0 });
        assert!(s.read_mask(0x0, 8).any(), "below-L1 data is conservatively tainted");
        // Refill: all tainted again.
        s.on_l1_event(LineEvent::Fill { line_addr: 0x0 });
        assert!(s.read_mask(0x0, 8).any());
    }

    #[test]
    fn shadow_mem_persists_across_l1_events() {
        let mut s = ShadowTaint::new(ShadowMode::Mem);
        s.store(0x2000, 8, TaintMask::NONE);
        s.on_l1_event(LineEvent::Evict { line_addr: 0x2000 });
        s.on_l1_event(LineEvent::Fill { line_addr: 0x2000 });
        assert!(s.read_mask(0x2000, 8).is_clear());
    }

    #[test]
    fn shadow_mem_crosses_page_boundaries() {
        let mut s = ShadowTaint::new(ShadowMode::Mem);
        s.clear_range(4093, 8);
        for a in 4093..4101 {
            assert!(!s.probe_byte(a));
        }
        assert!(s.probe_byte(4092));
        assert!(s.probe_byte(4101));
    }

    #[test]
    fn off_mode_is_always_tainted() {
        let mut s = ShadowTaint::new(ShadowMode::None);
        s.store(0x0, 8, TaintMask::NONE);
        s.clear_range(0x0, 8);
        assert!(s.read_mask(0x0, 1).any());
    }

    #[test]
    fn partial_store_data_mask_maps_bytes() {
        let mut s = ShadowTaint::new(ShadowMode::Mem);
        // Store 8 bytes whose register has only field 0 (byte 0) tainted.
        s.store(0x3000, 8, TaintMask::from_bits(0b0001));
        assert!(s.probe_byte(0x3000));
        for a in 0x3001..0x3008 {
            assert!(!s.probe_byte(a), "byte {a:#x}");
        }
        let m = s.read_mask(0x3000, 8);
        assert_eq!(m, TaintMask::from_bits(0b0001));
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    /// Store rule ① then load after eviction+refill: conservatism restores.
    #[test]
    fn l1_conservatism_cycle() {
        let mut s = ShadowTaint::new(ShadowMode::L1);
        for round in 0..3 {
            s.on_l1_event(LineEvent::Fill { line_addr: 0x40 });
            assert!(s.read_mask(0x40, 8).any(), "round {round}: fill re-taints");
            s.store(0x40, 8, TaintMask::NONE);
            assert!(s.read_mask(0x40, 8).is_clear());
            s.on_l1_event(LineEvent::Evict { line_addr: 0x40 });
        }
    }

    /// Byte-level independence within a line.
    #[test]
    fn per_byte_granularity_within_a_line() {
        let mut s = ShadowTaint::new(ShadowMode::L1);
        s.on_l1_event(LineEvent::Fill { line_addr: 0x0 });
        // Clear alternating 8-byte words.
        for w in (0..8u64).step_by(2) {
            s.clear_range(8 * w, 8);
        }
        for w in 0..8u64 {
            let clear = w % 2 == 0;
            assert_eq!(s.read_mask(8 * w, 8).is_clear(), clear, "word {w}");
        }
    }

    /// Unaligned clears straddling a line boundary only affect resident
    /// lines.
    #[test]
    fn straddling_clear_respects_residency() {
        let mut s = ShadowTaint::new(ShadowMode::L1);
        s.on_l1_event(LineEvent::Fill { line_addr: 0x0 });
        // Line 0x40 is NOT resident. Clear 0x3c..0x44.
        s.clear_range(0x3c, 8);
        assert!(!s.probe_byte(0x3c));
        assert!(!s.probe_byte(0x3f));
        assert!(s.probe_byte(0x40), "non-resident line stays tainted");
    }

    /// ShadowMem taint survives arbitrary interleavings of loads/stores.
    #[test]
    fn shadow_mem_store_overwrite_semantics() {
        let mut s = ShadowTaint::new(ShadowMode::Mem);
        s.store(0x100, 8, TaintMask::NONE); // public
        s.store(0x104, 4, TaintMask::ALL); // re-taint the top half
        let m = s.read_mask(0x100, 8);
        assert!(!m.field(0) && !m.field(1) && !m.field(2), "low bytes public");
        assert!(m.field(3), "bytes 4..8 tainted");
    }
}
