//! Property-based tests of the SPT taint engine and algebra: the
//! invariants the paper's design and proof rely on, checked under
//! arbitrary event orders.

use proptest::prelude::*;
use spt_core::engine::{PhysReg, RenameInfo, Seq};
use spt_core::{Config, TaintEngine, TaintMask, ThreatModel, UntaintKind};
use spt_isa::{InstClass, OperandRole};

const NUM_PHYS: usize = 48;

#[derive(Clone, Debug)]
enum Event {
    RenameAlu { invertible: bool, s1: u8, s2: u8, d: u8 },
    RenameCopy { s: u8, d: u8 },
    RenameConst { d: u8 },
    RenameLoad { addr: u8, d: u8, bytes: u8 },
    DeclassifyVp { which: u8 },
    LoadPublic { which: u8 },
    Retire { which: u8 },
    Squash { frac: u8 },
    Step,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (any::<bool>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(invertible, s1, s2, d)| Event::RenameAlu { invertible, s1, s2, d }),
        (any::<u8>(), any::<u8>()).prop_map(|(s, d)| Event::RenameCopy { s, d }),
        any::<u8>().prop_map(|d| Event::RenameConst { d }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(addr, d, bytes)| Event::RenameLoad {
            addr,
            d,
            bytes
        }),
        any::<u8>().prop_map(|which| Event::DeclassifyVp { which }),
        any::<u8>().prop_map(|which| Event::LoadPublic { which }),
        any::<u8>().prop_map(|which| Event::Retire { which }),
        any::<u8>().prop_map(|frac| Event::Squash { frac }),
        Just(Event::Step),
    ]
}

/// Drives an engine through an event sequence, tracking live seqs and the
/// set of registers ever broadcast-untainted.
///
/// The harness respects the pipeline's physical-register discipline: a
/// register is only reallocated as a destination once no live (un-retired,
/// un-squashed) slot references it — the invariant the engine's
/// recycled-register purge relies on, which the real rename free list
/// guarantees.
struct Harness {
    engine: TaintEngine,
    next_seq: Seq,
    live: Vec<LiveSlot>,
    untainted_ever: Vec<PhysReg>,
    /// Registers holding values (selectable as sources).
    defined: Vec<PhysReg>,
    /// Registers with no live references (allocatable as destinations).
    free: Vec<PhysReg>,
    /// Live-slot reference counts per register.
    refs: Vec<u32>,
}

#[derive(Clone, Debug)]
struct LiveSlot {
    seq: Seq,
    is_load: bool,
    regs: Vec<PhysReg>,
}

impl Harness {
    fn new(cfg: Config) -> Harness {
        Harness {
            engine: TaintEngine::new(cfg, NUM_PHYS),
            next_seq: 1,
            live: Vec::new(),
            untainted_ever: Vec::new(),
            defined: (1..NUM_PHYS as PhysReg / 2).collect(),
            free: (NUM_PHYS as PhysReg / 2..NUM_PHYS as PhysReg).collect(),
            refs: vec![0; NUM_PHYS],
        }
    }

    fn pick_src(&self, x: u8) -> PhysReg {
        self.defined[x as usize % self.defined.len()]
    }

    fn alloc_dest(&mut self) -> Option<PhysReg> {
        // Only allocate registers with no live references.
        let pos = self.free.iter().position(|&p| self.refs[p as usize] == 0)?;
        let p = self.free.swap_remove(pos);
        self.defined.push(p);
        p.into()
    }

    fn register_slot(&mut self, seq: Seq, is_load: bool, regs: Vec<PhysReg>) {
        for &r in &regs {
            self.refs[r as usize] += 1;
        }
        self.live.push(LiveSlot { seq, is_load, regs });
    }

    fn release_slot(&mut self, slot: &LiveSlot) {
        for &r in &slot.regs {
            self.refs[r as usize] -= 1;
        }
        // The destination (last reg) becomes reallocatable once unreferenced;
        // mirror the pipeline by recycling it through the free list.
        if let Some(&dest) = slot.regs.last() {
            if self.refs[dest as usize] == 0 && !self.free.contains(&dest) {
                if let Some(pos) = self.defined.iter().position(|&p| p == dest) {
                    // Keep a healthy pool of defined sources.
                    if self.defined.len() > 8 {
                        self.defined.swap_remove(pos);
                        self.free.push(dest);
                    }
                }
            }
        }
    }

    fn apply(&mut self, ev: &Event) {
        match *ev {
            Event::RenameAlu { invertible, s1, s2, d } => {
                let _ = d;
                let class = if invertible { InstClass::Invertible2 } else { InstClass::Lossy };
                let (p1, p2) = (self.pick_src(s1), self.pick_src(s2));
                let Some(dest) = self.alloc_dest() else { return };
                let seq = self.next_seq;
                self.next_seq += 1;
                self.engine.rename(RenameInfo {
                    seq,
                    class,
                    srcs: [Some((p1, OperandRole::Data)), Some((p2, OperandRole::Data)), None],
                    dest: Some(dest),
                    load_bytes: None,
                });
                self.register_slot(seq, false, vec![p1, p2, dest]);
            }
            Event::RenameCopy { s, d } => {
                let _ = d;
                let p = self.pick_src(s);
                let Some(dest) = self.alloc_dest() else { return };
                let seq = self.next_seq;
                self.next_seq += 1;
                self.engine.rename(RenameInfo {
                    seq,
                    class: InstClass::Copy,
                    srcs: [Some((p, OperandRole::Data)), None, None],
                    dest: Some(dest),
                    load_bytes: None,
                });
                self.register_slot(seq, false, vec![p, dest]);
            }
            Event::RenameConst { d } => {
                let _ = d;
                let Some(dest) = self.alloc_dest() else { return };
                let seq = self.next_seq;
                self.next_seq += 1;
                self.engine.rename(RenameInfo {
                    seq,
                    class: InstClass::Const,
                    srcs: [None, None, None],
                    dest: Some(dest),
                    load_bytes: None,
                });
                self.register_slot(seq, false, vec![dest]);
            }
            Event::RenameLoad { addr, d, bytes } => {
                let _ = d;
                let p = self.pick_src(addr);
                let Some(dest) = self.alloc_dest() else { return };
                let seq = self.next_seq;
                self.next_seq += 1;
                self.engine.rename(RenameInfo {
                    seq,
                    class: InstClass::Load,
                    srcs: [Some((p, OperandRole::Address)), None, None],
                    dest: Some(dest),
                    load_bytes: Some([1u64, 2, 4, 8][bytes as usize % 4]),
                });
                self.register_slot(seq, true, vec![p, dest]);
            }
            Event::DeclassifyVp { which } => {
                if let Some(slot) = pick(&self.live, which) {
                    let seq = slot.seq;
                    self.engine.declassify_vp(seq);
                }
            }
            Event::LoadPublic { which } => {
                let loads: Vec<Seq> =
                    self.live.iter().filter(|s| s.is_load).map(|s| s.seq).collect();
                if let Some(&seq) = pick(&loads, which) {
                    self.engine.set_load_output(seq, TaintMask::NONE, UntaintKind::ShadowL1);
                }
            }
            Event::Retire { which } => {
                // Retire in order from the oldest.
                let n = (which as usize % 4) + 1;
                for _ in 0..n {
                    if self.live.is_empty() {
                        break;
                    }
                    let slot = self.live.remove(0);
                    self.engine.retire(slot.seq);
                    self.release_slot(&slot);
                }
            }
            Event::Squash { frac } => {
                if self.live.is_empty() {
                    return;
                }
                let keep = frac as usize % self.live.len();
                let from = self.live[keep].seq;
                self.engine.squash_from(from);
                let squashed: Vec<LiveSlot> = self.live.split_off(keep);
                for slot in &squashed {
                    self.release_slot(slot);
                }
            }
            Event::Step => {
                let res = self.engine.step();
                self.untainted_ever.extend(res.broadcasts.iter().map(|b| b.0));
            }
        }
    }
}

fn pick<T>(v: &[T], which: u8) -> Option<&T> {
    if v.is_empty() {
        None
    } else {
        v.get(which as usize % v.len())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Monotonicity: once a register is broadcast-untainted, it stays
    /// public until overwritten by a new rename — the property the paper's
    /// convergence argument (§6.6) rests on.
    #[test]
    fn broadcast_untaint_is_monotone(
        events in proptest::collection::vec(event_strategy(), 1..120)
    ) {
        let mut h = Harness::new(Config::spt_full(ThreatModel::Futuristic));
        let mut public: Vec<PhysReg> = Vec::new();
        for ev in &events {
            let frees_before = h.free.len();
            h.apply(ev);
            // Renames may legally re-taint their (freshly allocated)
            // destination register; any newly allocated register leaves the
            // public set.
            if h.free.len() != frees_before {
                public.retain(|&p| h.engine.reg_taint(p).is_clear());
            }
            for &p in &public {
                prop_assert!(
                    h.engine.reg_taint(p).is_clear(),
                    "register p{p} was re-tainted without a rename"
                );
            }
            if let Event::Step = ev {
                for &p in &h.untainted_ever {
                    if !public.contains(&p) {
                        public.push(p);
                    }
                }
                // Remove entries that have since been renamed over: the
                // untainted_ever list is only advisory across renames.
                public.retain(|&p| h.engine.reg_taint(p).is_clear());
                h.untainted_ever.clear();
            }
        }
    }

    /// Convergence: after any event sequence, repeated stepping reaches a
    /// fixpoint within the paper's bound (each in-flight instruction is
    /// examined at most 3 times; with bounded broadcast width the global
    /// bound is 3 registers per slot).
    #[test]
    fn stepping_reaches_a_fixpoint(
        events in proptest::collection::vec(event_strategy(), 1..100)
    ) {
        let mut h = Harness::new(Config::spt_full(ThreatModel::Futuristic));
        for ev in &events {
            h.apply(ev);
        }
        let bound = 3 * (h.engine.live_slots() + 1) * 3 + 16;
        let mut quiet = 0;
        for _ in 0..bound {
            if h.engine.step().broadcasts.is_empty() {
                quiet += 1;
                if quiet >= 8 {
                    return Ok(());
                }
            } else {
                quiet = 0;
            }
        }
        prop_assert!(false, "engine did not converge within {bound} steps");
    }

    /// SecureBaseline invariance: with untainting disabled, no register is
    /// ever broadcast-untainted, regardless of the event sequence.
    #[test]
    fn secure_baseline_never_broadcasts(
        events in proptest::collection::vec(event_strategy(), 1..100)
    ) {
        let mut h = Harness::new(Config::secure_baseline(ThreatModel::Futuristic));
        for ev in &events {
            h.apply(ev);
        }
        for _ in 0..32 {
            prop_assert!(h.engine.step().broadcasts.is_empty());
        }
    }

    /// Ideal mode subsumes bounded mode: any register public after bounded
    /// stepping is also public under ideal propagation of the same events.
    #[test]
    fn ideal_reaches_at_least_the_bounded_fixpoint(
        events in proptest::collection::vec(event_strategy(), 1..80)
    ) {
        let mut bounded = Harness::new(Config::spt_full(ThreatModel::Futuristic));
        let mut ideal = Harness::new({
            let mut c = Config::spt_ideal(ThreatModel::Futuristic);
            // Same memory model so LoadPublic events behave identically.
            c.shadow = spt_core::ShadowMode::L1;
            c
        });
        for ev in &events {
            bounded.apply(ev);
            ideal.apply(ev);
        }
        for _ in 0..((bounded.engine.live_slots() + 4) * 4) {
            bounded.engine.step();
            ideal.engine.step();
        }
        for p in 1..NUM_PHYS as PhysReg {
            if bounded.engine.reg_taint(p).is_clear() {
                prop_assert!(
                    ideal.engine.reg_taint(p).is_clear(),
                    "p{p} public under bounded width but tainted under ideal"
                );
            }
        }
    }
}
