//! Property tests for the taint-mask lattice and the STT tracker.

use proptest::prelude::*;
use spt_core::{SttTracker, TaintMask};

fn mask_strategy() -> impl Strategy<Value = TaintMask> {
    (0u8..16).prop_map(TaintMask::from_bits)
}

proptest! {
    /// `TaintMask` under union/intersection is a bounded lattice; the
    /// propagation engine relies on these laws (e.g. monotone clearing).
    #[test]
    fn union_intersect_lattice_laws(
        a in mask_strategy(),
        b in mask_strategy(),
        c in mask_strategy()
    ) {
        // Commutativity.
        prop_assert_eq!(a.union(b), b.union(a));
        prop_assert_eq!(a.intersect(b), b.intersect(a));
        // Associativity.
        prop_assert_eq!(a.union(b).union(c), a.union(b.union(c)));
        prop_assert_eq!(a.intersect(b).intersect(c), a.intersect(b.intersect(c)));
        // Absorption.
        prop_assert_eq!(a.union(a.intersect(b)), a);
        prop_assert_eq!(a.intersect(a.union(b)), a);
        // Identity / annihilation.
        prop_assert_eq!(a.union(TaintMask::NONE), a);
        prop_assert_eq!(a.intersect(TaintMask::ALL), a);
        prop_assert_eq!(a.union(TaintMask::ALL), TaintMask::ALL);
        prop_assert_eq!(a.intersect(TaintMask::NONE), TaintMask::NONE);
    }

    /// Byte-range masks cover exactly the requested bytes' fields.
    #[test]
    fn for_bytes_covers_requested_fields(start in 0u64..8, len in 0u64..9) {
        let end = (start + len).min(8);
        let m = TaintMask::for_bytes(start..end);
        for b in 0..8u64 {
            let field = TaintMask::field_of_byte(b);
            if (start..end).contains(&b) {
                prop_assert!(m.field(field), "byte {} in range must taint field {}", b, field);
            }
        }
        // Intersecting with the full range is itself.
        prop_assert_eq!(m.intersect(TaintMask::for_bytes(0..8)), m);
    }

    /// STT: taint is exactly "youngest root load is past the frontier";
    /// the frontier advancing never re-taints anything (monotone).
    #[test]
    fn stt_frontier_monotone(
        loads in proptest::collection::vec((1u64..64, 1u32..31), 1..24),
        frontiers in proptest::collection::vec(0u64..80, 1..8)
    ) {
        let mut stt = SttTracker::new(32);
        let mut youngest: std::collections::HashMap<u32, u64> = Default::default();
        for &(seq, dest) in &loads {
            stt.rename_load(seq, dest);
            youngest.insert(dest, seq);
        }
        let mut sorted = frontiers.clone();
        sorted.sort_unstable();
        let mut previously_public: Vec<u32> = Vec::new();
        for f in sorted {
            stt.advance_vp_frontier(f);
            for &p in &previously_public {
                prop_assert!(!stt.tainted(p), "frontier advance re-tainted p{}", p);
            }
            for (&dest, &seq) in &youngest {
                let expect_tainted = seq > stt.frontier();
                prop_assert_eq!(stt.tainted(dest), expect_tainted);
                if !expect_tainted && !previously_public.contains(&dest) {
                    previously_public.push(dest);
                }
            }
        }
    }

    /// STT propagation: dest taint equals the OR over source taints for
    /// non-loads, under arbitrary dependence structures.
    #[test]
    fn stt_alu_propagation_is_or(
        roots in proptest::collection::vec((1u64..40, 1u32..8), 1..6),
        ops in proptest::collection::vec((0u32..8, 0u32..8, 8u32..31), 1..20),
        frontier in 0u64..50
    ) {
        let mut stt = SttTracker::new(32);
        for &(seq, dest) in &roots {
            stt.rename_load(seq, dest);
        }
        let mut records: Vec<(u32, u32, u32)> = Vec::new();
        for (d, &(s1, s2, _)) in (8u32..31).zip(ops.iter()) {
            stt.rename_alu(&[Some(s1), Some(s2)], Some(d));
            records.push((d, s1, s2));
        }
        stt.advance_vp_frontier(frontier);
        // Recompute expectations in dependence order.
        for &(d, s1, s2) in &records {
            // The sources' taint at this frontier (their values were fixed
            // at rename, but taint evaluation is frontier-relative, so OR
            // over CURRENT taint matches the tracker's YRoT semantics).
            let expected = stt.tainted(s1) || stt.tainted(s2);
            prop_assert_eq!(stt.tainted(d), expected, "dest p{} from p{},p{}", d, s1, s2);
        }
    }
}
