//! Microbenchmarks of the simulator's hot components: the SPT untaint
//! engine's per-cycle step, rename-time tainting, the TAGE predictor and
//! the cache hierarchy. These measure the *simulator* (host-side cost),
//! complementing the `figures` bench which measures the *simulated
//! machine* (guest-side cycles).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spt_core::engine::RenameInfo;
use spt_core::{Config, TaintEngine, ThreatModel};
use spt_frontend::{Ghr, Tage};
use spt_isa::{InstClass, OperandRole};
use spt_mem::MemSystem;

/// A full engine with a mixed 128-instruction window: pointer-style loads
/// feeding ALU chains, with one declassification pending.
fn loaded_engine(cfg: Config) -> TaintEngine {
    let mut e = TaintEngine::new(cfg, 320);
    for k in 0..64u64 {
        let base = (k * 4) as u32;
        e.rename(RenameInfo {
            seq: 4 * k + 1,
            class: InstClass::Load,
            srcs: [Some((base, OperandRole::Address)), None, None],
            dest: Some(base + 1),
            load_bytes: Some(8),
        });
        e.rename(RenameInfo {
            seq: 4 * k + 2,
            class: InstClass::Invertible2,
            srcs: [Some((base + 1, OperandRole::Data)), Some((0, OperandRole::Data)), None],
            dest: Some(base + 2),
            load_bytes: None,
        });
        e.rename(RenameInfo {
            seq: 4 * k + 3,
            class: InstClass::Lossy,
            srcs: [Some((base + 2, OperandRole::Data)), Some((base + 1, OperandRole::Data)), None],
            dest: Some(base + 3),
            load_bytes: None,
        });
        e.declassify_vp(4 * k + 1);
    }
    e
}

fn bench_engine_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("taint_engine");
    for (name, cfg) in [
        ("step_bwd_width3", Config::spt_full(ThreatModel::Futuristic)),
        ("step_ideal", Config::spt_ideal(ThreatModel::Futuristic)),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || loaded_engine(cfg),
                |mut e| {
                    for _ in 0..16 {
                        criterion::black_box(e.step());
                    }
                    e
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.bench_function("rename", |b| {
        let mut e = TaintEngine::new(Config::spt_full(ThreatModel::Futuristic), 320);
        let mut seq = 1u64;
        b.iter(|| {
            e.rename(RenameInfo {
                seq,
                class: InstClass::Invertible2,
                srcs: [
                    Some(((seq % 300) as u32, OperandRole::Data)),
                    Some((((seq + 7) % 300) as u32, OperandRole::Data)),
                    None,
                ],
                dest: Some(((seq + 13) % 300) as u32),
                load_bytes: None,
            });
            e.retire(seq);
            seq += 1;
        })
    });
    g.finish();
}

fn bench_tage(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend");
    g.bench_function("tage_predict_update", |b| {
        let mut tage = Tage::new();
        let mut ghr = Ghr::new();
        let mut i = 0u64;
        b.iter(|| {
            let taken = (i / 3).is_multiple_of(2);
            let (pred, info) = tage.predict(0x40 + (i % 16), &ghr);
            tage.update(0x40 + (i % 16), &info, taken);
            ghr.push(taken);
            i += 1;
            criterion::black_box(pred)
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("memory");
    g.bench_function("l1_hit", |b| {
        let mut m = MemSystem::default();
        m.read_timed(0x1000, 8, 0).unwrap();
        let mut now = 100u64;
        b.iter(|| {
            now += 4;
            criterion::black_box(m.read_timed(0x1000, 8, now).unwrap())
        })
    });
    g.bench_function("streaming_misses", |b| {
        let mut m = MemSystem::default();
        let mut addr = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            addr += 64;
            now += 200;
            criterion::black_box(m.read_timed(addr, 8, now).unwrap())
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engine_step, bench_tage, bench_cache
}
criterion_main!(benches);
