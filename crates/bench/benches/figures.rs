//! Criterion front-end for the paper's figures, at reduced budget: one
//! bench per figure/table so `cargo bench` exercises every experiment.
//! For the full-size runs (and the actual printed tables), use the
//! dedicated binaries: `fig7`, `fig8`, `fig9`, `headline`, `width_sweep`.

use criterion::{criterion_group, criterion_main, Criterion};
use spt_bench::runner::{suite_matrix, SweepOptions};
use spt_core::{Config, ThreatModel};
use spt_workloads::{ct_suite, spec_suite, Scale, Workload};

const BUDGET: u64 = 2_000;

fn run_workload(w: &Workload, cfg: Config, budget: u64) -> spt_bench::RunRow {
    spt_bench::run_workload(w, cfg, budget).expect("bench workload runs to completion")
}

fn fig7_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    // A representative 3-workload slice of the Figure-7 sweep.
    let suite: Vec<_> = {
        let mut v = spec_suite(Scale::Bench);
        v.truncate(2);
        v.extend(ct_suite(Scale::Bench).into_iter().take(1));
        v
    };
    for threat in [ThreatModel::Futuristic, ThreatModel::Spectre] {
        g.bench_function(format!("sweep_{threat}"), |b| {
            b.iter(|| criterion::black_box(suite_matrix(threat, &suite, SweepOptions::new(BUDGET))))
        });
    }
    g.finish();
}

fn fig8_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    let w = &spec_suite(Scale::Bench)[0];
    g.bench_function("untaint_breakdown_perlbench", |b| {
        b.iter(|| {
            let row = run_workload(w, Config::spt_full(ThreatModel::Futuristic), BUDGET);
            criterion::black_box(row.stats.spt.events.total())
        })
    });
    g.finish();
}

fn fig9_census(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let w = &spec_suite(Scale::Bench)[0];
    g.bench_function("ideal_census_perlbench", |b| {
        b.iter(|| {
            let row = run_workload(w, Config::spt_ideal(ThreatModel::Futuristic), BUDGET);
            criterion::black_box(row.stats.spt.cdf_at_most(3))
        })
    });
    g.finish();
}

fn width_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("width_sweep");
    g.sample_size(10);
    let w = &spec_suite(Scale::Bench)[0];
    for width in [1usize, 3, 8] {
        g.bench_function(format!("width_{width}"), |b| {
            let mut cfg = Config::spt_full(ThreatModel::Futuristic);
            cfg.broadcast_width = width;
            b.iter(|| criterion::black_box(run_workload(w, cfg, BUDGET).cycles))
        });
    }
    g.finish();
}

criterion_group!(benches, fig7_sweep, fig8_events, fig9_census, width_ablation);
criterion_main!(benches);
