//! The parallel sweep must be indistinguishable from the sequential one:
//! same cycles, same retired counts, same cell ordering, byte-identical
//! CSV — whatever the worker count. These tests force a multi-threaded
//! pool even on single-core machines so the determinism claim is always
//! exercised.

use spt_bench::report::write_fig7_csv;
use spt_bench::runner::{suite_matrix, SweepOptions};
use spt_core::ThreatModel;
use spt_workloads::{ct_suite, Scale};

const BUDGET: u64 = 400;

#[test]
fn parallel_sweep_matches_sequential() {
    let suite = ct_suite(Scale::Bench);
    let suite = &suite[..2.min(suite.len())];
    let threat = ThreatModel::Spectre;
    let seq = suite_matrix(threat, suite, SweepOptions::new(BUDGET).jobs(1))
        .expect("sequential sweep completes");
    let par = suite_matrix(threat, suite, SweepOptions::new(BUDGET).jobs(4))
        .expect("parallel sweep completes");

    assert_eq!(seq.configs, par.configs);
    assert_eq!(seq.workloads, par.workloads);
    for (w, (sr, pr)) in seq.rows.iter().zip(&par.rows).enumerate() {
        for (c, (s, p)) in sr.iter().zip(pr).enumerate() {
            assert_eq!(s.workload, p.workload, "cell ({w},{c}) workload identity");
            assert_eq!(s.config, p.config, "cell ({w},{c}) config identity");
            assert_eq!(s.cycles, p.cycles, "cell ({w},{c}) cycles");
            assert_eq!(s.retired, p.retired, "cell ({w},{c}) retired");
        }
    }
}

#[test]
fn csv_bytes_identical_across_job_counts() {
    let suite = ct_suite(Scale::Bench);
    let suite = &suite[..2.min(suite.len())];
    let threat = ThreatModel::Futuristic;
    let dir = std::env::temp_dir().join("spt_determinism_test");
    let mut bytes = Vec::new();
    for jobs in [1usize, 4] {
        let m = suite_matrix(threat, suite, SweepOptions::new(BUDGET).jobs(jobs))
            .expect("sweep completes");
        let path = dir.join(format!("fig7_jobs{jobs}.csv"));
        write_fig7_csv(&m, &path).expect("csv written");
        bytes.push(std::fs::read(&path).expect("csv read back"));
    }
    assert_eq!(bytes[0], bytes[1], "CSV must be byte-identical for --jobs 1 vs --jobs 4");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn explicit_jobs_one_matches_default() {
    // `--jobs 1` and the default (available_parallelism) worker count must
    // agree; on a single-core machine the default *is* 1, so also pin an
    // explicit multi-thread count to keep the comparison meaningful.
    let suite = ct_suite(Scale::Bench);
    let suite = &suite[..1];
    let threat = ThreatModel::Spectre;
    let one = suite_matrix(threat, suite, SweepOptions::new(BUDGET).jobs(1)).expect("jobs=1");
    let def = suite_matrix(threat, suite, SweepOptions::new(BUDGET)).expect("default jobs");
    let two = suite_matrix(threat, suite, SweepOptions::new(BUDGET).jobs(2)).expect("jobs=2");
    for m in [&def, &two] {
        for (sr, pr) in one.rows.iter().zip(&m.rows) {
            for (s, p) in sr.iter().zip(pr) {
                assert_eq!((s.cycles, s.retired), (p.cycles, p.retired));
            }
        }
    }
}
