//! End-to-end check of `run_spt --trace --stats-json`: the binary must
//! produce a Konata-loadable O3PipeView trace and an `spt-stats-v1` JSON
//! document that round-trips through the `spt-util` parser.

use spt_util::{validate_o3_trace, Json};
use std::process::Command;

#[test]
fn run_spt_emits_valid_trace_and_stats_json() {
    let dir = std::env::temp_dir().join("spt_cli_observability_test");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace_path = dir.join("trace.out");
    let stats_path = dir.join("stats.json");

    let output = Command::new(env!("CARGO_BIN_EXE_run_spt"))
        .args([
            "--executable",
            "chacha20",
            "--enable-spt",
            "--untaint-method",
            "bwd",
            "--enable-shadow-l1",
            "--threat-model",
            "futuristic",
            "--budget",
            "2000",
            "--trace",
            trace_path.to_str().unwrap(),
            "--stats-json",
            stats_path.to_str().unwrap(),
        ])
        .output()
        .expect("run_spt spawns");
    assert!(
        output.status.success(),
        "run_spt failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("numCycles"), "stats.txt dump still printed:\n{stdout}");

    // The trace parses as strict O3PipeView and covers the whole budget.
    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    let summary = validate_o3_trace(&trace).expect("trace is well-formed O3PipeView");
    assert!(summary.retired >= 2000, "trace covers the retired budget");
    // `--trace` emits SPTEvent lines so the output is tracediff-ready; an
    // SPT config taints at least one destination register.
    assert!(summary.events > 0, "SPT trace carries SPTEvent lines");
    assert!(trace.contains("\nSPTEvent:taint:"), "taint events present");

    // The stats document parses, carries the schema tag, and agrees with
    // the stats.txt dump on the headline counter.
    let text = std::fs::read_to_string(&stats_path).expect("stats JSON written");
    let doc = Json::parse(&text).expect("stats JSON parses");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("spt-stats-v1"));
    assert_eq!(doc.get("workload").and_then(Json::as_str), Some("chacha20"));
    let cycles = doc
        .get("machine")
        .and_then(|m| m.get("cycles"))
        .and_then(Json::as_u64)
        .expect("machine.cycles present");
    let dumped: u64 = stdout
        .lines()
        .find(|l| l.starts_with("numCycles"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("numCycles line parses");
    assert_eq!(cycles, dumped, "JSON and stats.txt agree on cycle count");
    assert!(doc.get("telemetry").is_some(), "--stats-json enables telemetry histograms");
    let rob = doc
        .get("telemetry")
        .and_then(|t| t.get("rob_occupancy"))
        .expect("rob_occupancy histogram present");
    for key in ["p50", "p90", "p99"] {
        assert!(rob.get(key).and_then(Json::as_u64).is_some(), "histogram surfaces {key}");
    }
    let digest = doc.get("observation_digest").and_then(Json::as_str).expect("digest present");
    assert!(
        digest.len() == 16 && digest.chars().all(|c| c.is_ascii_hexdigit()),
        "digest is 16 hex chars: {digest}"
    );

    // Round-trip: re-serializing the parsed tree reproduces the document.
    assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc, "document round-trips");

    let _ = std::fs::remove_dir_all(&dir);
}
