//! Versioned JSON stats documents (`--stats-json`).
//!
//! Two document shapes share the `spt-stats-v1` schema tag:
//!
//! * [`run_document`] — one simulation: run identity, every machine / SPT /
//!   cache / TLB / frontend counter, the optional telemetry histograms, and
//!   the attacker-observation digest (hex, so the full 64 bits survive
//!   consumers that parse numbers as doubles);
//! * [`matrix_document`] — one sweep: per-cell cycles, retired counts, and
//!   baseline-normalized execution time for a whole [`SuiteMatrix`].
//!
//! Serialization is `spt_util::Json` (hand-rolled; the workspace is
//! offline), so documents round-trip exactly through `Json::parse`.
//!
//! # Schema history
//!
//! `spt-stats-v1` is additive-stable: consumers must ignore unknown keys.
//! Additions so far (no version bump — strictly new fields):
//!
//! * telemetry histograms now carry `p50`/`p90`/`p99` summary fields
//!   (bucket-upper-bound estimates, clamped to the observed max) next to
//!   `mean`/`max`. A removal or meaning change of an existing field would
//!   require bumping to `spt-stats-v2`.

use crate::runner::{RunRow, SuiteMatrix};
use spt_mem::CacheStats;
use spt_ooo::Machine;
use spt_util::Json;
use std::fs;
use std::io;
use std::path::Path;

/// Schema identifier stamped into every document this module emits.
pub const STATS_SCHEMA: &str = "spt-stats-v1";

fn cache_json(s: &CacheStats) -> Json {
    Json::obj([
        ("hits", Json::U64(s.hits)),
        ("misses", Json::U64(s.misses)),
        ("miss_rate", Json::F64(s.miss_rate())),
        ("evictions", Json::U64(s.evictions)),
        ("writebacks", Json::U64(s.writebacks)),
        ("mshr_rejections", Json::U64(s.mshr_rejections)),
    ])
}

/// Builds the single-run stats document for a finished machine.
///
/// `workload` and `config` identify the run; the digest is read from the
/// machine, so call this *after* `Machine::run`.
pub fn run_document(m: &Machine, workload: &str, config: &str, budget: u64) -> Json {
    let stats = m.stats();
    let fe = m.frontend_stats();
    let (dtlb_hits, dtlb_misses) = m.dtlb_stats();
    let mut doc = Json::obj([
        ("schema", Json::str(STATS_SCHEMA)),
        ("workload", Json::str(workload)),
        ("config", Json::str(config)),
        ("budget", Json::U64(budget)),
        ("machine", stats.to_json()),
        (
            "caches",
            Json::obj([
                ("l1d", cache_json(m.mem().l1().stats())),
                ("l2", cache_json(m.mem().l2().stats())),
                ("l3", cache_json(m.mem().l3().stats())),
                ("l1i", cache_json(m.icache_stats())),
            ]),
        ),
        ("dtlb", Json::obj([("hits", Json::U64(dtlb_hits)), ("misses", Json::U64(dtlb_misses))])),
        (
            "frontend",
            Json::obj([
                ("cond_predictions", Json::U64(fe.cond_predictions)),
                ("direct_predictions", Json::U64(fe.direct_predictions)),
                ("indirect_predictions", Json::U64(fe.indirect_predictions)),
                ("ras_predictions", Json::U64(fe.ras_predictions)),
                ("total_predictions", Json::U64(fe.total())),
            ]),
        ),
        ("observation_digest", Json::str(format!("{:016x}", m.observation_digest()))),
    ]);
    if let Some(t) = m.telemetry() {
        doc.push("telemetry", t.to_json());
    }
    doc
}

fn row_json(cell: &RunRow) -> Json {
    Json::obj([
        ("workload", Json::str(&cell.workload)),
        ("config", Json::str(&cell.config)),
        ("threat", Json::str(cell.threat.to_string())),
        ("cycles", Json::U64(cell.cycles)),
        ("retired", Json::U64(cell.retired)),
        ("ipc", Json::F64(cell.stats.ipc())),
        ("transmitter_delay_cycles", Json::U64(cell.stats.transmitter_delay_cycles)),
        ("resolution_delay_cycles", Json::U64(cell.stats.resolution_delay_cycles)),
        ("untaint_events_total", Json::U64(cell.stats.spt.events.total())),
    ])
}

/// Builds the sweep stats document for a flat row list (binaries whose
/// sweep shape is not a full Table-2 matrix — fig8/fig9/sdo/width_sweep).
/// Cells keep the runner's deterministic dispatch order.
pub fn rows_document(rows: &[RunRow]) -> Json {
    Json::obj([
        ("schema", Json::str(STATS_SCHEMA)),
        ("cells", Json::arr(rows.iter().map(row_json))),
    ])
}

/// Builds the sweep stats document for a completed matrix.
pub fn matrix_document(m: &SuiteMatrix) -> Json {
    let mut rows = Vec::with_capacity(m.workloads.len() * m.configs.len());
    for w in 0..m.workloads.len() {
        for c in 0..m.configs.len() {
            let mut cell = row_json(&m.rows[w][c]);
            cell.push("normalized", Json::F64(m.normalized(w, c)));
            rows.push(cell);
        }
    }
    Json::obj([
        ("schema", Json::str(STATS_SCHEMA)),
        ("threat", Json::str(m.threat.to_string())),
        ("configs", Json::arr(m.configs.iter().map(Json::str))),
        ("workloads", Json::arr(m.workloads.iter().map(Json::str))),
        ("cells", Json::Arr(rows)),
    ])
}

/// Writes a document as pretty-printed JSON, creating parent directories.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or file.
pub fn write_json(doc: &Json, path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    fs::write(path, doc.to_string_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{prepare_machine, run_prepared, suite_matrix, SweepOptions};
    use spt_core::{Config, ThreatModel};
    use spt_workloads::Scale;

    #[test]
    fn run_document_roundtrips_and_carries_digest() {
        let w = &spt_workloads::ct_suite(Scale::Bench)[1]; // chacha20
        let cfg = Config::spt_full(ThreatModel::Spectre);
        let mut m = prepare_machine(w, cfg);
        m.enable_telemetry();
        run_prepared(&mut m, w, cfg, 1_000).expect("runs");
        let doc = run_document(&m, w.name, cfg.name(), 1_000);
        let back = Json::parse(&doc.to_string()).expect("round-trips");
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(STATS_SCHEMA));
        let digest = back.get("observation_digest").and_then(Json::as_str).unwrap();
        assert_eq!(digest.len(), 16, "digest is 16 hex chars: {digest}");
        assert_eq!(u64::from_str_radix(digest, 16).unwrap(), m.observation_digest());
        assert!(back.get("telemetry").and_then(|t| t.get("rob_occupancy")).is_some());
        assert!(
            back.get("machine").and_then(|s| s.get("cycles")).and_then(Json::as_u64).unwrap() > 0
        );
        assert!(back
            .get("caches")
            .and_then(|c| c.get("l1d"))
            .and_then(|c| c.get("hits"))
            .is_some());
    }

    #[test]
    fn matrix_document_covers_every_cell() {
        let suite = spt_workloads::ct_suite(Scale::Bench);
        let m = suite_matrix(ThreatModel::Spectre, &suite[..1], SweepOptions::new(500).jobs(1))
            .expect("sweep completes");
        let doc = matrix_document(&m);
        let back = Json::parse(&doc.to_string()).expect("round-trips");
        let cells = back.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), m.configs.len());
        let base = &cells[m.baseline_index()];
        assert!((base.get("normalized").and_then(Json::as_f64).unwrap() - 1.0).abs() < 1e-12);
    }
}
