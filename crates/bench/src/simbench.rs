//! Host-throughput measurement (`simbench`).
//!
//! Every paper artifact is bottlenecked on how many *simulated* cycles per
//! *host* second `Machine::step_cycle` sustains, so this module gives the
//! repo a perf trajectory: a fixed workload basket is run under a fixed
//! config set, each cell is timed on the host, and the results are emitted
//! as a versioned `spt-simbench-v1` JSON document
//! (`BENCH_simthroughput.json`). Passing a previous document back in via
//! `--baseline` embeds a before/after comparison, so a single committed
//! file carries both sides of an optimization PR.
//!
//! Measurement notes: each cell is run `iters` times and the *best* wall
//! time is kept (minimum-of-N is the standard way to strip scheduler noise
//! from a deterministic computation); the default is sequential execution
//! because concurrent cells contend for cache and memory bandwidth —
//! `--jobs N` trades fidelity for wall time and is what CI's smoke job
//! uses.

use crate::runner::{prepare_machine, run_indexed, SweepError, SweepOptions};
use spt_core::{Config, ThreatModel};
use spt_ooo::RunLimits;
use spt_util::Json;
use spt_workloads::{full_suite, Scale, Workload};
use std::time::Instant;

/// Schema identifier stamped into every document this module emits.
pub const SIMBENCH_SCHEMA: &str = "spt-simbench-v1";

/// The fixed workload basket: a deliberate slice of the Figure-7 suite
/// (five SPECint proxies, three SPECfp proxies, two constant-time kernels)
/// chosen once so throughput numbers stay comparable across PRs. Adding or
/// reordering names invalidates historical comparisons — bump the schema
/// version instead.
pub const BASKET: &[&str] = &[
    "gcc",
    "mcf",
    "xalancbmk",
    "deepsjeng",
    "xz",
    "bwaves",
    "povray",
    "imagick",
    "chacha20",
    "djbsort",
];

/// The configurations timed, in report order. `UnsafeBaseline` and
/// `SPT{Bwd,ShadowL1}` are the two the acceptance gate reads;
/// `SecureBaseline` and `STT` bracket the protection spectrum.
pub fn bench_configs(threat: ThreatModel) -> Vec<Config> {
    vec![
        Config::unsafe_baseline(threat),
        Config::secure_baseline(threat),
        Config::spt_full(threat),
        Config::stt(threat),
    ]
}

/// Resolves the basket against the bench-scale suite, panicking if a name
/// has gone missing (a silent partial basket would skew the geomeans).
pub fn basket_workloads() -> Vec<Workload> {
    let suite = full_suite(Scale::Bench);
    BASKET
        .iter()
        .map(|name| {
            suite
                .iter()
                .find(|w| w.name == *name)
                .unwrap_or_else(|| panic!("simbench basket workload `{name}` not in suite"))
                .clone()
        })
        .collect()
}

/// One timed (config, workload) cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Workload name.
    pub workload: String,
    /// Simulated cycles per run (identical across iterations — the
    /// simulator is deterministic).
    pub cycles: u64,
    /// Instructions retired per run.
    pub retired: u64,
    /// Best-of-N host wall time for one run, in seconds.
    pub best_secs: f64,
}

impl Cell {
    /// Simulated cycles per host second.
    pub fn cycles_per_sec(&self) -> f64 {
        self.cycles as f64 / self.best_secs
    }

    /// Retired instructions per host second.
    pub fn retired_per_sec(&self) -> f64 {
        self.retired as f64 / self.best_secs
    }
}

/// All cells for one configuration.
#[derive(Clone, Debug)]
pub struct ConfigRun {
    /// Configuration display name.
    pub config: String,
    /// One cell per basket workload, in [`BASKET`] order.
    pub cells: Vec<Cell>,
}

impl ConfigRun {
    /// Geometric mean of simulated cycles/sec over the basket.
    pub fn geomean_cycles_per_sec(&self) -> f64 {
        geomean(self.cells.iter().map(Cell::cycles_per_sec))
    }

    /// Geometric mean of retired instructions/sec over the basket.
    pub fn geomean_retired_per_sec(&self) -> f64 {
        geomean(self.cells.iter().map(Cell::retired_per_sec))
    }
}

/// A full simbench measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Retired-instruction budget per run.
    pub budget: u64,
    /// Timing iterations per cell (best kept).
    pub iters: u32,
    /// Worker threads the sweep ran under.
    pub jobs: usize,
    /// Threat model (host throughput is measured under one model).
    pub threat: ThreatModel,
    /// One entry per [`bench_configs`] configuration.
    pub configs: Vec<ConfigRun>,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0_f64, 0u32);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    assert!(n > 0, "geomean over empty set");
    (log_sum / f64::from(n)).exp()
}

/// Knobs for one measurement.
#[derive(Clone, Copy, Debug)]
pub struct SimbenchOptions {
    /// Retired-instruction budget per run.
    pub budget: u64,
    /// Timing iterations per cell.
    pub iters: u32,
    /// Worker threads (1 = sequential, the high-fidelity default).
    pub jobs: usize,
    /// Threat model to measure under.
    pub threat: ThreatModel,
    /// Log each cell as it completes.
    pub verbose: bool,
}

impl Default for SimbenchOptions {
    fn default() -> SimbenchOptions {
        SimbenchOptions {
            budget: crate::runner::DEFAULT_BUDGET,
            iters: 3,
            jobs: 1,
            threat: ThreatModel::Futuristic,
            verbose: false,
        }
    }
}

impl SimbenchOptions {
    /// Options derived from shared sweep flags (`--budget`, `--jobs`,
    /// `--verbose`); quick mode also drops `iters` to 1.
    pub fn from_sweep(opts: SweepOptions, quick: bool) -> SimbenchOptions {
        SimbenchOptions {
            budget: opts.budget,
            iters: if quick { 1 } else { 3 },
            jobs: opts.jobs,
            verbose: opts.verbose,
            ..SimbenchOptions::default()
        }
    }
}

/// Runs and times the full basket × config matrix.
///
/// # Errors
///
/// Returns the first wedged cell in deterministic order, as
/// [`crate::runner::suite_matrix`] does.
pub fn measure(opts: SimbenchOptions) -> Result<Measurement, SweepError> {
    let workloads = basket_workloads();
    let configs = bench_configs(opts.threat);
    let cells = workloads.len() * configs.len();
    let results = run_indexed(cells, opts.jobs, |i| {
        let (c, w) = (i / workloads.len(), i % workloads.len());
        let (cfg, wl) = (configs[c], &workloads[w]);
        let mut best = f64::INFINITY;
        let (mut cycles, mut retired) = (0u64, 0u64);
        for _ in 0..opts.iters.max(1) {
            let mut m = prepare_machine(wl, cfg);
            let start = Instant::now();
            let out = m.run(RunLimits::retired(opts.budget)).map_err(|source| SweepError {
                workload: wl.name.to_string(),
                config: cfg.name().to_string(),
                threat: cfg.threat,
                source,
            })?;
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            best = best.min(secs);
            cycles = out.cycles;
            retired = out.retired;
        }
        if opts.verbose {
            eprintln!(
                "  {} / {}: {:.2} Mcycles/s",
                cfg.name(),
                wl.name,
                cycles as f64 / best / 1e6
            );
        }
        Ok(Cell { workload: wl.name.to_string(), cycles, retired, best_secs: best })
    });

    let mut runs = Vec::with_capacity(configs.len());
    let mut iter = results.into_iter();
    for cfg in &configs {
        let mut cells = Vec::with_capacity(workloads.len());
        for _ in 0..workloads.len() {
            cells.push(iter.next().expect("pool returns one result per cell")?);
        }
        runs.push(ConfigRun { config: cfg.name().to_string(), cells });
    }
    Ok(Measurement {
        budget: opts.budget,
        iters: opts.iters.max(1),
        jobs: opts.jobs,
        threat: opts.threat,
        configs: runs,
    })
}

/// Renders a measurement as an `spt-simbench-v1` document.
pub fn document(m: &Measurement) -> Json {
    Json::obj([
        ("schema", Json::str(SIMBENCH_SCHEMA)),
        ("budget", Json::U64(m.budget)),
        ("iters", Json::U64(u64::from(m.iters))),
        ("jobs", Json::U64(m.jobs as u64)),
        ("threat", Json::str(m.threat.to_string())),
        ("basket", Json::arr(BASKET.iter().map(|w| Json::str(*w)))),
        (
            "configs",
            Json::arr(m.configs.iter().map(|run| {
                Json::obj([
                    ("config", Json::str(run.config.clone())),
                    ("geomean_sim_cycles_per_sec", Json::F64(run.geomean_cycles_per_sec())),
                    ("geomean_retired_per_sec", Json::F64(run.geomean_retired_per_sec())),
                    (
                        "workloads",
                        Json::arr(run.cells.iter().map(|c| {
                            Json::obj([
                                ("workload", Json::str(c.workload.clone())),
                                ("cycles", Json::U64(c.cycles)),
                                ("retired", Json::U64(c.retired)),
                                ("best_secs", Json::F64(c.best_secs)),
                                ("sim_cycles_per_sec", Json::F64(c.cycles_per_sec())),
                                ("retired_per_sec", Json::F64(c.retired_per_sec())),
                            ])
                        })),
                    ),
                ])
            })),
        ),
    ])
}

/// A schema violation found by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spt-simbench-v1 schema violation: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, SchemaError> {
    obj.get(key).ok_or_else(|| SchemaError(format!("missing field `{key}`")))
}

fn number(obj: &Json, key: &str) -> Result<f64, SchemaError> {
    match field(obj, key)? {
        Json::U64(v) => Ok(*v as f64),
        Json::I64(v) => Ok(*v as f64),
        Json::F64(v) => Ok(*v),
        _ => Err(SchemaError(format!("field `{key}` is not a number"))),
    }
}

/// Validates a parsed document against the `spt-simbench-v1` schema: tag,
/// config list shape, per-workload cell fields, and strictly positive
/// throughput numbers. CI's `bench-smoke` job runs this (via
/// `simbench --validate`) on the artifact it just produced.
pub fn validate(doc: &Json) -> Result<(), SchemaError> {
    match field(doc, "schema")? {
        Json::Str(s) if s == SIMBENCH_SCHEMA => {}
        other => return Err(SchemaError(format!("schema tag is {other}, want {SIMBENCH_SCHEMA}"))),
    }
    number(doc, "budget")?;
    number(doc, "iters")?;
    let configs = match field(doc, "configs")? {
        Json::Arr(items) if !items.is_empty() => items,
        _ => return Err(SchemaError("`configs` must be a non-empty array".into())),
    };
    for cfg in configs {
        field(cfg, "config")?;
        for key in ["geomean_sim_cycles_per_sec", "geomean_retired_per_sec"] {
            let v = number(cfg, key)?;
            if !(v.is_finite() && v > 0.0) {
                return Err(SchemaError(format!("`{key}` must be finite and positive, got {v}")));
            }
        }
        let cells = match field(cfg, "workloads")? {
            Json::Arr(items) if !items.is_empty() => items,
            _ => return Err(SchemaError("`workloads` must be a non-empty array".into())),
        };
        for cell in cells {
            field(cell, "workload")?;
            for key in ["cycles", "retired", "best_secs", "sim_cycles_per_sec", "retired_per_sec"] {
                let v = number(cell, key)?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(SchemaError(format!(
                        "`{key}` must be finite and positive, got {v}"
                    )));
                }
            }
        }
    }
    if let Some(baseline) = doc.get("baseline") {
        field(baseline, "configs")?;
    }
    Ok(())
}

/// Embeds a baseline (pre-optimization) document and the per-config
/// speedups into a fresh measurement document, producing the committed
/// before/after artifact.
///
/// # Errors
///
/// Fails if the baseline does not validate or measures different configs.
pub fn with_baseline(mut doc: Json, baseline: &Json) -> Result<Json, SchemaError> {
    validate(&doc)?;
    validate(baseline)?;
    let speedups: Vec<Json> = {
        let after = match field(&doc, "configs")? {
            Json::Arr(items) => items,
            _ => unreachable!("validated above"),
        };
        let before = match field(baseline, "configs")? {
            Json::Arr(items) => items,
            _ => unreachable!("validated above"),
        };
        after
            .iter()
            .map(|a| {
                let name = match field(a, "config")? {
                    Json::Str(s) => s.clone(),
                    other => return Err(SchemaError(format!("config name is {other}"))),
                };
                let b = before
                    .iter()
                    .find(|b| matches!(b.get("config"), Some(Json::Str(s)) if *s == name))
                    .ok_or_else(|| {
                        SchemaError(format!("baseline has no `{name}` config to compare against"))
                    })?;
                let ratio = number(a, "geomean_sim_cycles_per_sec")?
                    / number(b, "geomean_sim_cycles_per_sec")?;
                Ok(Json::obj([
                    ("config", Json::str(name)),
                    ("sim_cycles_per_sec_speedup", Json::F64(ratio)),
                ]))
            })
            .collect::<Result<_, SchemaError>>()?
    };
    doc.push("baseline", baseline.clone());
    doc.push("speedup", Json::arr(speedups));
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_measurement() -> Measurement {
        measure(SimbenchOptions {
            budget: 300,
            iters: 1,
            jobs: crate::runner::default_jobs(),
            ..SimbenchOptions::default()
        })
        .expect("tiny simbench runs")
    }

    #[test]
    fn document_round_trips_and_validates() {
        let m = tiny_measurement();
        let doc = document(&m);
        validate(&doc).expect("fresh document validates");
        let reparsed = Json::parse(&doc.to_string()).expect("document parses");
        validate(&reparsed).expect("reparsed document validates");
        assert_eq!(m.configs.len(), 4);
        assert_eq!(m.configs[0].cells.len(), BASKET.len());
    }

    #[test]
    fn baseline_embedding_computes_speedups() {
        let m = tiny_measurement();
        let doc = document(&m);
        let merged = with_baseline(doc.clone(), &doc).expect("self-comparison works");
        validate(&merged).expect("merged document validates");
        let speedups = merged.get("speedup").expect("speedup array present");
        if let Json::Arr(items) = speedups {
            assert_eq!(items.len(), 4);
            for s in items {
                if let Some(Json::F64(r)) = s.get("sim_cycles_per_sec_speedup") {
                    assert!((r - 1.0).abs() < 1e-9, "self-speedup must be 1.0, got {r}");
                } else {
                    panic!("speedup entry missing ratio");
                }
            }
        } else {
            panic!("speedup is not an array");
        }
    }

    #[test]
    fn validation_rejects_wrong_schema_tag() {
        let doc = Json::obj([("schema", Json::str("spt-stats-v1"))]);
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn basket_names_all_resolve() {
        assert_eq!(basket_workloads().len(), BASKET.len());
    }
}
