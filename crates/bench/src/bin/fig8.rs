//! Regenerates paper Figure 8: per-benchmark breakdown of untaint events by
//! mechanism, for the full SPT design (SPT{Bwd,ShadowL1}) under both attack
//! models. Events are exclusive: each register untaint is attributed to
//! exactly one rule.
//!
//! ```text
//! cargo run -p spt-bench --release --bin fig8 -- [--budget N]
//! ```

use spt_bench::runner::{bench_suite, run_workload, DEFAULT_BUDGET};
use spt_core::{Config, ThreatModel, UntaintKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget = DEFAULT_BUDGET;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                i += 1;
                budget = args[i].parse().expect("--budget takes a number");
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let suite = bench_suite();
    println!("Figure 8 — untaint-event breakdown for SPT{{Bwd,ShadowL1}} (% of events)");
    println!("F = Futuristic model, S = Spectre model; budget {budget} retired\n");
    print!("{:<14}{:>2}", "benchmark", "");
    for k in UntaintKind::ALL {
        print!("{:>14}", k.label());
    }
    println!("{:>12}", "total");
    for w in &suite {
        for (tag, model) in [("F", ThreatModel::Futuristic), ("S", ThreatModel::Spectre)] {
            let row = run_workload(w, Config::spt_full(model), budget);
            let total = row.stats.spt.events.total().max(1);
            print!("{:<14}{:>2}", w.name, tag);
            for k in UntaintKind::ALL {
                let pct = 100.0 * row.stats.spt.events[k] as f64 / total as f64;
                print!("{pct:>13.1}%");
            }
            println!("{:>12}", row.stats.spt.events.total());
        }
    }
}
