//! Regenerates paper Figure 8: per-benchmark breakdown of untaint events by
//! mechanism, for the full SPT design (SPT{Bwd,ShadowL1}) under both attack
//! models. Events are exclusive: each register untaint is attributed to
//! exactly one rule.
//!
//! ```text
//! cargo run -p spt-bench --release --bin fig8 -- [--budget N] [--jobs N]
//! ```

use spt_bench::cli::{exit_sweep_error, sweep_args, write_stats_json, Flags};
use spt_bench::runner::{bench_suite, run_indexed, run_workload};
use spt_bench::statsdoc::rows_document;
use spt_core::{Config, ThreatModel, UntaintKind};

fn main() {
    let args = sweep_args("fig8", Flags::default());

    let suite = bench_suite();
    const MODELS: [(&str, ThreatModel); 2] =
        [("F", ThreatModel::Futuristic), ("S", ThreatModel::Spectre)];
    let rows = run_indexed(suite.len() * MODELS.len(), args.opts.jobs, |i| {
        let (w, m) = (&suite[i / MODELS.len()], MODELS[i % MODELS.len()].1);
        run_workload(w, Config::spt_full(m), args.opts.budget)
    });
    if let Some(json_path) = &args.stats_json {
        let ok: Vec<_> = rows
            .iter()
            .map(|r| r.as_ref().cloned().unwrap_or_else(|e| exit_sweep_error(e)))
            .collect();
        write_stats_json(&rows_document(&ok), json_path);
    }

    println!("Figure 8 — untaint-event breakdown for SPT{{Bwd,ShadowL1}} (% of events)");
    println!(
        "F = Futuristic model, S = Spectre model; budget {} retired, seed {}\n",
        args.opts.budget, args.seed
    );
    print!("{:<14}{:>2}", "benchmark", "");
    for k in UntaintKind::ALL {
        print!("{:>14}", k.label());
    }
    println!("{:>12}", "total");
    for (i, row) in rows.into_iter().enumerate() {
        let row = row.unwrap_or_else(|e| exit_sweep_error(&e));
        let (w, tag) = (&suite[i / MODELS.len()], MODELS[i % MODELS.len()].0);
        let total = row.stats.spt.events.total().max(1);
        print!("{:<14}{:>2}", w.name, tag);
        for k in UntaintKind::ALL {
            let pct = 100.0 * row.stats.spt.events[k] as f64 / total as f64;
            print!("{pct:>13.1}%");
        }
        println!("{:>12}", row.stats.spt.events.total());
    }
}
