//! Regenerates the paper's §9.2 headline numbers from the Figure-7 sweep:
//!
//! * SPT overhead vs UnsafeBaseline (paper: 45% Futuristic / 11% Spectre);
//! * overhead reduction vs SecureBaseline (paper: 3.6× / 3×);
//! * forward-only reduction (paper: 3.1× / 1.9×);
//! * backward / shadow-L1 / shadow-mem incremental deltas (percentage pts);
//! * constant-time kernels: SecureBaseline vs SPT (paper: 2.8× → 1.10×,
//!   an 18× overhead reduction);
//! * extra overhead vs STT's narrower scope (paper: 26.1 / 3.3 pts).
//!
//! ```text
//! cargo run -p spt-bench --release --bin headline -- [--budget N] [--jobs N]
//! ```

use spt_bench::cli::{exit_sweep_error, model_suffixed, sweep_args, write_stats_json, Flags};
use spt_bench::report::{overhead_pct, ratio};
use spt_bench::runner::{bench_suite, suite_matrix};
use spt_bench::statsdoc::matrix_document;
use spt_core::ThreatModel;

fn main() {
    let args = sweep_args("headline", Flags::default());

    let suite = bench_suite();
    for model in [ThreatModel::Futuristic, ThreatModel::Spectre] {
        eprintln!("== running sweep for {model} (seed {}, {} jobs) ==", args.seed, args.opts.jobs);
        let m = suite_matrix(model, &suite, args.opts).unwrap_or_else(|e| exit_sweep_error(&e));
        if let Some(json_path) = &args.stats_json {
            write_stats_json(&matrix_document(&m), &model_suffixed(json_path, model, true));
        }
        let all: Vec<usize> = (0..suite.len()).collect();
        let ct = m.ct_indices(&suite);

        let idx = |name: &str| m.config_index(name).expect("table-2 config");
        let secure = idx("SecureBaseline");
        let fwd = idx("SPT{Fwd,NoShadowL1}");
        let bwd = idx("SPT{Bwd,NoShadowL1}");
        let full = idx("SPT{Bwd,ShadowL1}");
        let smem = idx("SPT{Bwd,ShadowMem}");
        let ideal = idx("SPT{Ideal,ShadowMem}");
        let stt = idx("STT");

        let mean = |c: usize| m.mean_over(c, &all);
        let oh = |c: usize| mean(c) - 1.0;
        let pts = |a: usize, b: usize| (mean(a) - mean(b)) * 100.0;

        println!("\n=== Headline numbers, {model} model (paper §9.2; seed {}) ===", args.seed);
        println!("SPT{{Bwd,ShadowL1}} overhead vs UnsafeBaseline : {}", overhead_pct(mean(full)));
        println!("SecureBaseline overhead vs UnsafeBaseline    : {}", overhead_pct(mean(secure)));
        println!(
            "overhead reduction, SPT vs SecureBaseline    : {}",
            ratio(oh(secure) / oh(full).max(1e-9))
        );
        println!(
            "overhead reduction, Fwd-only vs SecureBase   : {}",
            ratio(oh(secure) / oh(fwd).max(1e-9))
        );
        println!("backward untainting gain (Fwd -> Bwd)        : {:+.1} pts", pts(fwd, bwd));
        println!("shadow-L1 gain (Bwd -> ShadowL1)             : {:+.1} pts", pts(bwd, full));
        println!("shadow-mem gain (ShadowL1 -> ShadowMem)      : {:+.1} pts", pts(full, smem));
        println!("ideal-propagation gain (ShadowMem -> Ideal)  : {:+.1} pts", pts(smem, ideal));
        println!("extra overhead vs STT (scope cost)           : {:+.1} pts", pts(full, stt));

        let ct_secure = m.mean_over(secure, &ct);
        let ct_full = m.mean_over(full, &ct);
        println!("constant-time kernels, SecureBaseline        : {:.2}x", ct_secure);
        println!("constant-time kernels, SPT                   : {:.2}x", ct_full);
        println!(
            "CT overhead reduction                        : {}",
            ratio((ct_secure - 1.0) / (ct_full - 1.0).max(1e-9))
        );
    }
    println!("\n(Compare against paper §9.2: 45%/11% SPT overhead, 3.6x/3x vs SecureBaseline,");
    println!(" 3.1x/1.9x for Fwd-only, CT kernels 2.8x -> 1.10x = 18x reduction,");
    println!(" +26.1/+3.3 pts vs STT in the Futuristic/Spectre models respectively.)");
}
