//! `simbench` — host simulation-throughput benchmark.
//!
//! Times the fixed workload basket under the standard config set and
//! writes a versioned `spt-simbench-v1` JSON document (see
//! `spt_bench::simbench`). Three modes:
//!
//! * measure (default): run the basket, print a table, write `--out`;
//! * `--baseline FILE`: measure, then embed FILE as the "before" side and
//!   per-config speedups into the emitted document;
//! * `--validate FILE`: no simulation — parse FILE and check it against
//!   the schema (CI's artifact gate).

use spt_bench::simbench::{
    document, measure, validate, with_baseline, SimbenchOptions, SIMBENCH_SCHEMA,
};
use spt_util::Json;
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "usage: simbench [--budget N] [--iters N] [--jobs N] [--seed N] \
                     [--quick] [--verbose] [--out FILE] [--baseline FILE] [--validate FILE]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = SimbenchOptions::default();
    let mut quick = false;
    let mut seed = 0u64;
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut validate_only: Option<PathBuf> = None;

    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("simbench: {flag} needs a value");
            exit(2);
        })
    };
    let num = |v: String, flag: &str| -> u64 {
        v.parse().unwrap_or_else(|_| {
            eprintln!("simbench: {flag} takes a number, got `{v}`");
            exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => opts.budget = num(value(&mut i, "--budget"), "--budget"),
            "--iters" => opts.iters = num(value(&mut i, "--iters"), "--iters") as u32,
            "--jobs" => opts.jobs = (num(value(&mut i, "--jobs"), "--jobs") as usize).max(1),
            "--seed" => seed = num(value(&mut i, "--seed"), "--seed"),
            "--quick" => quick = true,
            "--verbose" => opts.verbose = true,
            "--out" => out = Some(PathBuf::from(value(&mut i, "--out"))),
            "--baseline" => baseline = Some(PathBuf::from(value(&mut i, "--baseline"))),
            "--validate" => validate_only = Some(PathBuf::from(value(&mut i, "--validate"))),
            other => {
                eprintln!("simbench: unknown flag `{other}`");
                eprintln!("{USAGE}");
                exit(2);
            }
        }
        i += 1;
    }

    if let Some(path) = validate_only {
        let doc = read_doc(&path);
        match validate(&doc) {
            Ok(()) => {
                println!("{}: valid {SIMBENCH_SCHEMA}", path.display());
                return;
            }
            Err(e) => {
                eprintln!("{}: {e}", path.display());
                exit(1);
            }
        }
    }

    spt_workloads::set_input_seed(seed);
    if quick {
        opts.budget = opts.budget.min(5_000);
        opts.iters = 1;
    }

    let m = measure(opts).unwrap_or_else(|e| {
        eprintln!("simbench failed: {e}");
        exit(1);
    });

    println!(
        "simbench: budget {} / iters {} / jobs {} / threat {}",
        m.budget, m.iters, m.jobs, m.threat
    );
    println!("{:<22} {:>16} {:>16}", "config", "Mcycles/s (geo)", "Minstrs/s (geo)");
    for run in &m.configs {
        println!(
            "{:<22} {:>16.3} {:>16.3}",
            run.config,
            run.geomean_cycles_per_sec() / 1e6,
            run.geomean_retired_per_sec() / 1e6
        );
    }

    let mut doc = document(&m);
    if let Some(path) = baseline {
        let before = read_doc(&path);
        doc = with_baseline(doc, &before).unwrap_or_else(|e| {
            eprintln!("simbench: {e}");
            exit(1);
        });
        if let Some(Json::Arr(speedups)) = doc.get("speedup") {
            println!("{:<22} {:>16}", "config", "speedup vs base");
            for s in speedups {
                let name = s.get("config").and_then(Json::as_str).unwrap_or("?");
                let r = s.get("sim_cycles_per_sec_speedup").and_then(Json::as_f64).unwrap_or(0.0);
                println!("{name:<22} {r:>15.2}x");
            }
        }
    }

    if let Some(path) = out {
        match std::fs::write(&path, doc.to_string_pretty() + "\n") {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                exit(1);
            }
        }
    }
}

fn read_doc(path: &std::path::Path) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", path.display());
        exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {}: {e}", path.display());
        exit(2);
    })
}
