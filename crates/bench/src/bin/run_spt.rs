//! A command-line front-end mirroring the paper artifact's `run_spt.py`
//! interface (appendix A.4): pick a workload and a protection
//! configuration with the same flags the gem5 artifact used, and get a
//! `stats.txt`-style dump.
//!
//! ```text
//! cargo run -p spt-bench --release --bin run_spt -- \
//!     --executable perlbench --enable-spt --threat-model futuristic \
//!     --untaint-method bwd --enable-shadow-l1 [--budget N] [--track-insts]
//! ```
//!
//! | artifact flag | here |
//! |---|---|
//! | `--executable <path>` | `--executable <workload name>` (see `--list`) |
//! | `--enable-spt` | same |
//! | `--threat-model spectre\|futuristic` | same |
//! | `--untaint-method none\|fwd\|bwd\|ideal` | same |
//! | `--enable-shadow-l1` / `--enable-shadow-mem` | same (mutually exclusive) |
//! | `--track-insts` | prints the untaint-event breakdown |
//! | `--output-dir` | stdout (redirect as needed) |
//!
//! Omitting `--enable-spt` gives the UnsafeBaseline, exactly as in the
//! artifact ("to run InsecureBaseline, simply provide the --executable and
//! nothing else"). `--stt` selects the STT comparison design.

use spt_bench::cli::exit_sweep_error;
use spt_bench::runner::{prepare_machine, run_prepared};
use spt_bench::statsdoc::{run_document, write_json};
use spt_core::{Config, ShadowMode, ThreatModel, UntaintMethod};
use spt_util::O3PipeViewSink;
use spt_workloads::{full_suite, Scale};
use std::fs::File;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: run_spt --executable <workload> [--enable-spt] [--stt]\n\
         \x20      [--threat-model spectre|futuristic] [--untaint-method none|fwd|bwd|ideal]\n\
         \x20      [--enable-shadow-l1 | --enable-shadow-mem] [--budget N] [--jobs N]\n\
         \x20      [--seed N] [--trace <o3-trace-file>] [--stats-json <json-file>]\n\
         \x20      [--track-insts] [--list]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut executable: Option<String> = None;
    let mut enable_spt = false;
    let mut stt = false;
    let mut threat = ThreatModel::Futuristic;
    let mut untaint: Option<UntaintMethod> = None;
    let mut shadow = ShadowMode::None;
    let mut budget = 30_000u64;
    let mut seed = 0u64;
    let mut track_insts = false;
    let mut trace_path: Option<PathBuf> = None;
    let mut stats_json_path: Option<PathBuf> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--executable" => {
                i += 1;
                executable = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--enable-spt" => enable_spt = true,
            "--stt" => stt = true,
            "--threat-model" => {
                i += 1;
                threat = match args.get(i).map(String::as_str) {
                    Some("spectre") => ThreatModel::Spectre,
                    Some("futuristic") => ThreatModel::Futuristic,
                    _ => usage(),
                };
            }
            "--untaint-method" => {
                i += 1;
                untaint = Some(match args.get(i).map(String::as_str) {
                    Some("none") => UntaintMethod::None,
                    Some("fwd") => UntaintMethod::Fwd,
                    Some("bwd") => UntaintMethod::Bwd,
                    Some("ideal") => UntaintMethod::Ideal,
                    _ => usage(),
                });
            }
            "--enable-shadow-l1" => shadow = ShadowMode::L1,
            "--enable-shadow-mem" => shadow = ShadowMode::Mem,
            "--budget" => {
                i += 1;
                budget = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                spt_workloads::set_input_seed(seed);
            }
            // A single run has nothing to fan out; accepted so scripts can
            // pass a uniform flag set to every binary.
            "--jobs" => {
                i += 1;
                let _: usize = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--trace" => {
                i += 1;
                trace_path = Some(args.get(i).map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            "--stats-json" => {
                i += 1;
                stats_json_path = Some(args.get(i).map(PathBuf::from).unwrap_or_else(|| usage()));
            }
            "--track-insts" => track_insts = true,
            "--list" => {
                println!("available workloads:");
                for w in full_suite(Scale::Bench) {
                    println!("  {:<12} {}", w.name, w.description);
                }
                return;
            }
            _ => usage(),
        }
        i += 1;
    }

    if shadow == ShadowMode::Mem && matches!(untaint, Some(UntaintMethod::Ideal)) {
        // SPT{Ideal,ShadowMem} — fine.
    }
    if !enable_spt && untaint.is_some() {
        eprintln!("--untaint-method requires --enable-spt (as in the artifact)");
        std::process::exit(2);
    }

    let config = if stt {
        Config::stt(threat)
    } else if enable_spt {
        let mut c = Config::secure_baseline(threat);
        c.untaint = untaint.unwrap_or(UntaintMethod::None);
        c.shadow = shadow;
        c
    } else {
        Config::unsafe_baseline(threat)
    };

    let name = executable.unwrap_or_else(|| usage());
    let suite = full_suite(Scale::Bench);
    let Some(w) = suite.iter().find(|w| w.name == name) else {
        eprintln!("unknown workload `{name}`; use --list");
        std::process::exit(2);
    };

    eprintln!("running {} under {config} (seed {seed}) ...", w.name);
    let mut m = prepare_machine(w, config);
    if let Some(path) = &trace_path {
        let file = File::create(path).unwrap_or_else(|e| {
            eprintln!("cannot create trace file {}: {e}", path.display());
            std::process::exit(1);
        });
        // Event lines (`SPTEvent:`) make the trace diffable by
        // `tracediff`; Konata ignores them.
        m.set_trace_sink(Box::new(O3PipeViewSink::with_events(file)));
    }
    if stats_json_path.is_some() {
        m.enable_telemetry();
    }
    let row = run_prepared(&mut m, w, config, budget).unwrap_or_else(|e| exit_sweep_error(&e));
    if let Some(mut sink) = m.take_trace_sink() {
        if let Err(e) = sink.flush() {
            eprintln!("error writing trace: {e}");
            std::process::exit(1);
        }
        eprintln!("O3PipeView trace written to {}", trace_path.as_ref().unwrap().display());
    }
    if let Some(path) = &stats_json_path {
        let doc = run_document(&m, w.name, config.name(), budget);
        if let Err(e) = write_json(&doc, path) {
            eprintln!("cannot write stats JSON {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("stats JSON written to {}", path.display());
    }

    // stats.txt-style output (the artifact's "the one of most interest will
    // be numCycles").
    println!("inputSeed                 {seed:>14}   # workload input seed (--seed)");
    println!("numCycles                 {:>14}   # cycles to retire the budget", row.cycles);
    println!("numRetired                {:>14}   # instructions retired", row.retired);
    println!(
        "ipc                       {:>14.4}   # retired instructions per cycle",
        row.stats.ipc()
    );
    println!(
        "numFetched                {:>14}   # instructions fetched (incl. wrong path)",
        row.stats.fetched
    );
    println!("numSquashes               {:>14}   # pipeline squashes", row.stats.squashes);
    println!(
        "branchMispredicts         {:>14}   # conditional mispredictions",
        row.stats.branch_mispredicts
    );
    println!(
        "indirectMispredicts       {:>14}   # indirect-target mispredictions",
        row.stats.indirect_mispredicts
    );
    println!(
        "memOrderViolations        {:>14}   # store->load order violations",
        row.stats.mem_violations
    );
    println!("stlForwards               {:>14}   # store-to-load forwards", row.stats.stl_forwards);
    println!(
        "xmitDelayCycles           {:>14}   # transmitter-slot cycles blocked by taint",
        row.stats.transmitter_delay_cycles
    );
    println!(
        "resolutionDelayCycles     {:>14}   # deferred branch-resolution cycles",
        row.stats.resolution_delay_cycles
    );
    println!(
        "untaintEvents             {:>14}   # registers untainted (all mechanisms)",
        row.stats.spt.events.total()
    );
    println!(
        "untaintingCycles          {:>14}   # cycles with >=1 untaint",
        row.stats.spt.untainting_cycles
    );
    println!(
        "untaintDeferred           {:>14}   # broadcasts deferred by the width limit",
        row.stats.spt.broadcasts_deferred
    );
    if track_insts {
        println!("\n# untaint-event breakdown (--track-insts):");
        for (kind, count) in row.stats.spt.events.iter() {
            println!("untaint.{:<16} {:>14}", kind.label(), count);
        }
    }
}
