//! Ablation of the protection policy (paper §6.3): delayed execution (the
//! paper's evaluated policy) versus SDO-style oblivious execution of
//! tainted loads.
//!
//! ```text
//! cargo run -p spt-bench --release --bin sdo -- [--budget N]
//! ```

use spt_bench::runner::{bench_suite, run_workload, DEFAULT_BUDGET};
use spt_core::{Config, ThreatModel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget = DEFAULT_BUDGET;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                i += 1;
                budget = args[i].parse().expect("--budget takes a number");
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let suite = bench_suite();
    println!("Protection-policy ablation — Futuristic model, normalized to UnsafeBaseline");
    println!("(budget {budget} retired)\n");
    println!("{:<14}{:>14}{:>14}{:>22}", "benchmark", "SPT(delay)", "SPT+SDO", "oblivious better?");
    let t = ThreatModel::Futuristic;
    let (mut sum_d, mut sum_o) = (0.0, 0.0);
    for w in &suite {
        let base = run_workload(w, Config::unsafe_baseline(t), budget).cycles as f64;
        let delay = run_workload(w, Config::spt_full(t), budget).cycles as f64 / base;
        let obliv = run_workload(w, Config::spt_sdo(t), budget).cycles as f64 / base;
        sum_d += delay;
        sum_o += obliv;
        println!(
            "{:<14}{:>14.3}{:>14.3}{:>22}",
            w.name,
            delay,
            obliv,
            if obliv < delay - 0.005 { "yes" } else { "" }
        );
    }
    let n = suite.len() as f64;
    println!("{:<14}{:>14.3}{:>14.3}", "average", sum_d / n, sum_o / n);
    println!("\nSDO trades transmitter stalls for worst-case-latency oblivious accesses:");
    println!("it wins when delays dominate (gather-heavy code) and loses when the");
    println!("delayed loads would have hit the cache quickly anyway.");
}
