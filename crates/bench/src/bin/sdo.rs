//! Ablation of the protection policy (paper §6.3): delayed execution (the
//! paper's evaluated policy) versus SDO-style oblivious execution of
//! tainted loads.
//!
//! ```text
//! cargo run -p spt-bench --release --bin sdo -- [--budget N] [--jobs N]
//! ```

use spt_bench::cli::{exit_sweep_error, sweep_args, write_stats_json, Flags};
use spt_bench::runner::{bench_suite, run_indexed, run_workload};
use spt_bench::statsdoc::rows_document;
use spt_core::{Config, ThreatModel};

fn main() {
    let args = sweep_args("sdo", Flags::default());
    let budget = args.opts.budget;
    let t = ThreatModel::Futuristic;

    let suite = bench_suite();
    let configs = [Config::unsafe_baseline(t), Config::spt_full(t), Config::spt_sdo(t)];
    let rows = run_indexed(suite.len() * configs.len(), args.opts.jobs, |i| {
        run_workload(&suite[i / configs.len()], configs[i % configs.len()], budget)
    });
    if let Some(json_path) = &args.stats_json {
        let ok: Vec<_> = rows
            .iter()
            .map(|r| r.as_ref().cloned().unwrap_or_else(|e| exit_sweep_error(e)))
            .collect();
        write_stats_json(&rows_document(&ok), json_path);
    }
    let cell = |wi: usize, ci: usize| {
        rows[wi * configs.len() + ci]
            .as_ref()
            .map(|r| r.cycles as f64)
            .unwrap_or_else(|e| exit_sweep_error(e))
    };

    println!("Protection-policy ablation — Futuristic model, normalized to UnsafeBaseline");
    println!("(budget {budget} retired, seed {})\n", args.seed);
    println!("{:<14}{:>14}{:>14}{:>22}", "benchmark", "SPT(delay)", "SPT+SDO", "oblivious better?");
    let (mut sum_d, mut sum_o) = (0.0, 0.0);
    for (wi, w) in suite.iter().enumerate() {
        let base = cell(wi, 0);
        let delay = cell(wi, 1) / base;
        let obliv = cell(wi, 2) / base;
        sum_d += delay;
        sum_o += obliv;
        println!(
            "{:<14}{:>14.3}{:>14.3}{:>22}",
            w.name,
            delay,
            obliv,
            if obliv < delay - 0.005 { "yes" } else { "" }
        );
    }
    let n = suite.len() as f64;
    println!("{:<14}{:>14.3}{:>14.3}", "average", sum_d / n, sum_o / n);
    println!("\nSDO trades transmitter stalls for worst-case-latency oblivious accesses:");
    println!("it wins when delays dominate (gather-heavy code) and loses when the");
    println!("delayed loads would have hit the cache quickly anyway.");
}
