//! Prints paper Table 3: the qualitative taxonomy of prior hardware-based
//! mitigations for speculative execution attacks. This table is static —
//! it records the literature survey, not a measurement.

fn main() {
    // No simulation happens here, but accept the sweep flags so scripts can
    // pass a uniform flag set to every binary.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" | "--jobs" | "--seed" => i += 1,
            "--verbose" => {}
            other => {
                eprintln!(
                    "table3: unknown flag `{other}` (accepts --budget/--jobs/--seed/--verbose)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let rows: [(&str, &str, &str, &str, &str); 17] = [
        ("InvisiSpec [76]", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
        ("SafeSpec [39]", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
        ("DAWG [40]", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
        ("Delay-on-miss [59]", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
        ("Cond. Spec. [44]", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
        ("MuonTrap [7]", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
        ("CleanupSpec [58]", "Spec/Non-spec accessed data", "Cache-based", "CC, ST", "yes"),
        (
            "CSF [69]",
            "Spec/Non-spec accessed data",
            "Cache-based",
            "CC, ST",
            "no, user annotates secrets",
        ),
        ("MI6 [18]", "Spec/Non-spec accessed data", "All", "CC, ST", "yes"),
        (
            "ConTExT [61]",
            "Spec/Non-spec accessed data",
            "All",
            "CC, ST, SMT",
            "no, user annotates secrets",
        ),
        (
            "OISA [81]",
            "Spec/Non-spec accessed data",
            "All",
            "CC, ST, SMT",
            "no, user annotates secrets",
        ),
        ("STT [83]", "Spec accessed data", "All", "CC, ST, SMT", "yes"),
        ("SDO [82]", "Spec accessed data", "All", "CC, ST, SMT", "yes"),
        ("SpecShield [11]", "Spec accessed data", "All", "CC, ST, SMT", "yes"),
        ("NDA [74]", "Spec/Non-spec accessed data", "All", "CC, ST, SMT", "yes"),
        ("Dolma [46]", "Spec/Non-spec accessed data", "All", "CC, ST", "yes"),
        ("SPT (this work)", "Non-spec secrets", "All", "CC, ST, SMT", "yes"),
    ];
    println!("Table 3 — prior hardware-based mitigations for speculative execution attacks\n");
    println!(
        "{:<20} {:<30} {:<13} {:<13} Transparent?",
        "Scheme", "Data protection scope", "Transmitters", "Receivers"
    );
    println!("{}", "-".repeat(100));
    for (scheme, scope, tx, rx, transparent) in rows {
        println!("{scheme:<20} {scope:<30} {tx:<13} {rx:<13} {transparent}");
    }
    println!("\nCC = CrossCore, ST = SameThread, SMT = simultaneous-multithreading sibling.");
}
