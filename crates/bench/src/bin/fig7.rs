//! Regenerates paper Figure 7: execution time of every Table-2
//! configuration on SPEC2017 proxies and constant-time kernels, normalized
//! to UnsafeBaseline, for both attack models.
//!
//! ```text
//! cargo run -p spt-bench --release --bin fig7 -- [--model spectre|futuristic|both]
//!                                                [--budget N] [--quick] [--verbose]
//! ```
//!
//! Writes `results/fig7_<model>.csv` next to the console table.

use spt_bench::report::{render_bars, render_fig7, write_fig7_csv};
use spt_bench::runner::{bench_suite, suite_matrix, DEFAULT_BUDGET};
use spt_core::ThreatModel;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut models = vec![ThreatModel::Futuristic, ThreatModel::Spectre];
    let mut budget = DEFAULT_BUDGET;
    let mut verbose = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                i += 1;
                models = match args[i].as_str() {
                    "spectre" => vec![ThreatModel::Spectre],
                    "futuristic" => vec![ThreatModel::Futuristic],
                    "both" => vec![ThreatModel::Futuristic, ThreatModel::Spectre],
                    other => {
                        eprintln!("unknown model `{other}`");
                        std::process::exit(2);
                    }
                };
            }
            "--budget" => {
                i += 1;
                budget = args[i].parse().expect("--budget takes a number");
            }
            "--quick" => budget = 5_000,
            "--verbose" => verbose = true,
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let suite = bench_suite();
    for model in models {
        eprintln!("== Figure 7, {model} model (budget {budget} retired) ==");
        let m = suite_matrix(model, &suite, budget, verbose);
        let spec: Vec<usize> = m.spec_indices(&suite);
        let ct: Vec<usize> = m.ct_indices(&suite);
        let all: Vec<usize> = (0..suite.len()).collect();
        println!("\nFigure 7 — execution time normalized to UnsafeBaseline ({model} model)\n");
        println!(
            "{}",
            render_fig7(
                &m,
                &[("avg(SPEC)", spec), ("avg(CT)", ct), ("avg(all)", all)]
            )
        );
        println!("{}", render_bars(&m, "SPT{Bwd,ShadowL1}", 40));
        let path = PathBuf::from(format!("results/fig7_{model}.csv"));
        match write_fig7_csv(&m, &path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
