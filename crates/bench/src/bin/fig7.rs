//! Regenerates paper Figure 7: execution time of every Table-2
//! configuration on SPEC2017 proxies and constant-time kernels, normalized
//! to UnsafeBaseline, for both attack models.
//!
//! ```text
//! cargo run -p spt-bench --release --bin fig7 -- [--model spectre|futuristic|both]
//!                                                [--budget N] [--jobs N]
//!                                                [--quick] [--verbose]
//! ```
//!
//! Writes `results/fig7_<model>.csv` next to the console table. The sweep
//! fans out over `--jobs` workers (default: one per core); cell ordering
//! and CSV bytes are identical at any job count.

use spt_bench::cli::{exit_sweep_error, model_suffixed, sweep_args, write_stats_json, Flags};
use spt_bench::report::{render_bars, render_fig7, write_fig7_csv};
use spt_bench::runner::{bench_suite, suite_matrix};
use spt_bench::statsdoc::matrix_document;
use std::path::PathBuf;

fn main() {
    let args = sweep_args("fig7", Flags { model: true, quick: true });

    let suite = bench_suite();
    let multi_model = args.models.len() > 1;
    for model in args.models {
        eprintln!(
            "== Figure 7, {model} model (budget {} retired, seed {}, {} jobs) ==",
            args.opts.budget, args.seed, args.opts.jobs
        );
        let m = suite_matrix(model, &suite, args.opts).unwrap_or_else(|e| exit_sweep_error(&e));
        let spec: Vec<usize> = m.spec_indices(&suite);
        let ct: Vec<usize> = m.ct_indices(&suite);
        let all: Vec<usize> = (0..suite.len()).collect();
        println!(
            "\nFigure 7 — execution time normalized to UnsafeBaseline ({model} model, seed {})\n",
            args.seed
        );
        println!("{}", render_fig7(&m, &[("avg(SPEC)", spec), ("avg(CT)", ct), ("avg(all)", all)]));
        println!("{}", render_bars(&m, "SPT{Bwd,ShadowL1}", 40));
        let path = PathBuf::from(format!("results/fig7_{model}.csv"));
        match write_fig7_csv(&m, &path) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
        if let Some(json_path) = &args.stats_json {
            write_stats_json(&matrix_document(&m), &model_suffixed(json_path, model, multi_model));
        }
    }
}
