//! Ablation for §7.6/§9.4: sweep the untaint broadcast width and measure
//! execution time of the full SPT design on a representative subset.
//!
//! ```text
//! cargo run -p spt-bench --release --bin width_sweep -- [--budget N] [--jobs N]
//! ```

use spt_bench::cli::{exit_sweep_error, sweep_args, write_stats_json, Flags};
use spt_bench::runner::{run_indexed, run_workload};
use spt_bench::statsdoc::rows_document;
use spt_core::{Config, ThreatModel};
use spt_workloads::{full_suite, Scale};

const WIDTHS: [usize; 6] = [1, 2, 3, 4, 8, 16];

fn main() {
    let args = sweep_args("width_sweep", Flags::default());
    let budget = args.opts.budget;

    let names = ["perlbench", "mcf", "omnetpp", "namd", "povray", "chacha20"];
    let suite: Vec<_> =
        full_suite(Scale::Bench).into_iter().filter(|w| names.contains(&w.name)).collect();

    let rows = run_indexed(suite.len() * WIDTHS.len(), args.opts.jobs, |i| {
        let (wl, width) = (&suite[i / WIDTHS.len()], WIDTHS[i % WIDTHS.len()]);
        let mut cfg = Config::spt_full(ThreatModel::Futuristic);
        cfg.broadcast_width = width;
        run_workload(wl, cfg, budget)
    });
    if let Some(json_path) = &args.stats_json {
        let ok: Vec<_> = rows
            .iter()
            .map(|r| r.as_ref().cloned().unwrap_or_else(|e| exit_sweep_error(e)))
            .collect();
        write_stats_json(&rows_document(&ok), json_path);
    }

    println!("Broadcast-width ablation — SPT{{Bwd,ShadowL1}}, Futuristic model");
    println!(
        "cells: execution time normalized to width=16; budget {budget} retired, seed {}\n",
        args.seed
    );
    print!("{:<14}", "benchmark");
    for w in WIDTHS {
        print!("{:>10}", format!("W={w}"));
    }
    println!("{:>12}", "deferred@3");
    for (wi, wl) in suite.iter().enumerate() {
        let mut cycles = Vec::new();
        let mut deferred3 = 0;
        for (ci, &w) in WIDTHS.iter().enumerate() {
            let row = rows[wi * WIDTHS.len() + ci].as_ref().unwrap_or_else(|e| exit_sweep_error(e));
            if w == 3 {
                deferred3 = row.stats.spt.broadcasts_deferred;
            }
            cycles.push(row.cycles as f64);
        }
        let base = *cycles.last().expect("non-empty widths");
        print!("{:<14}", wl.name);
        for c in &cycles {
            print!("{:>10.3}", c / base);
        }
        println!("{deferred3:>12}");
    }
    println!("\n(Expect width 3 to be within noise of unbounded width — paper §9.4.)");
}
