//! Ablation for §7.6/§9.4: sweep the untaint broadcast width and measure
//! execution time of the full SPT design on a representative subset.
//!
//! ```text
//! cargo run -p spt-bench --release --bin width_sweep -- [--budget N]
//! ```

use spt_bench::runner::{run_workload, DEFAULT_BUDGET};
use spt_core::{Config, ThreatModel};
use spt_workloads::{full_suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget = DEFAULT_BUDGET;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                i += 1;
                budget = args[i].parse().expect("--budget takes a number");
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let names = ["perlbench", "mcf", "omnetpp", "namd", "povray", "chacha20"];
    let suite: Vec<_> = full_suite(Scale::Bench)
        .into_iter()
        .filter(|w| names.contains(&w.name))
        .collect();
    let widths = [1usize, 2, 3, 4, 8, 16];

    println!("Broadcast-width ablation — SPT{{Bwd,ShadowL1}}, Futuristic model");
    println!("cells: execution time normalized to width=16; budget {budget} retired\n");
    print!("{:<14}", "benchmark");
    for w in widths {
        print!("{:>10}", format!("W={w}"));
    }
    println!("{:>12}", "deferred@3");
    for wl in &suite {
        let mut cycles = Vec::new();
        let mut deferred3 = 0;
        for &w in &widths {
            let mut cfg = Config::spt_full(ThreatModel::Futuristic);
            cfg.broadcast_width = w;
            let row = run_workload(wl, cfg, budget);
            if w == 3 {
                deferred3 = row.stats.spt.broadcasts_deferred;
            }
            cycles.push(row.cycles as f64);
        }
        let base = *cycles.last().expect("non-empty widths");
        print!("{:<14}", wl.name);
        for c in &cycles {
            print!("{:>10.3}", c / base);
        }
        println!("{deferred3:>12}");
    }
    println!("\n(Expect width 3 to be within noise of unbounded width — paper §9.4.)");
}
