//! Regenerates paper Figure 9: for SPT{Ideal,ShadowMem} on the SPEC
//! proxies, the percentage of untainting cycles in which at most
//! N = 1..10+ registers are untainted. Justifies the broadcast width of 3
//! (§9.4: on average ~81% of untainting cycles untaint at most 3).
//!
//! ```text
//! cargo run -p spt-bench --release --bin fig9 -- [--budget N]
//! ```

use spt_bench::runner::{run_workload, DEFAULT_BUDGET};
use spt_core::{Config, ThreatModel};
use spt_workloads::{spec_suite, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut budget = DEFAULT_BUDGET;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                i += 1;
                budget = args[i].parse().expect("--budget takes a number");
            }
            other => {
                eprintln!("unknown flag `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let suite = spec_suite(Scale::Bench);
    println!("Figure 9 — % of untainting cycles untainting at most N registers");
    println!("(SPT{{Ideal,ShadowMem}}, Futuristic model, SPEC proxies; budget {budget})\n");
    print!("{:<14}", "benchmark");
    for n in 1..=10 {
        print!("{:>8}", format!("<={n}"));
    }
    println!();
    let mut avg = [0.0f64; 10];
    for w in &suite {
        let row = run_workload(w, Config::spt_ideal(ThreatModel::Futuristic), budget);
        print!("{:<14}", w.name);
        for n in 1..=10usize {
            let cdf = 100.0 * row.stats.spt.cdf_at_most(n);
            avg[n - 1] += cdf / suite.len() as f64;
            print!("{cdf:>8.1}");
        }
        println!();
    }
    print!("{:<14}", "average");
    for v in avg {
        print!("{v:>8.1}");
    }
    println!();
    println!(
        "\n=> {:.1}% of untainting cycles untaint at most 3 registers — the paper picks\n   a broadcast width of 3 as the coverage/complexity trade-off (§9.4).",
        avg[2]
    );
}
