//! Regenerates paper Figure 9: for SPT{Ideal,ShadowMem} on the SPEC
//! proxies, the percentage of untainting cycles in which at most
//! N = 1..10+ registers are untainted. Justifies the broadcast width of 3
//! (§9.4: on average ~81% of untainting cycles untaint at most 3).
//!
//! ```text
//! cargo run -p spt-bench --release --bin fig9 -- [--budget N] [--jobs N]
//! ```

use spt_bench::cli::{exit_sweep_error, sweep_args, write_stats_json, Flags};
use spt_bench::runner::{run_indexed, run_workload};
use spt_bench::statsdoc::rows_document;
use spt_core::{Config, ThreatModel};
use spt_workloads::{spec_suite, Scale};

fn main() {
    let args = sweep_args("fig9", Flags::default());
    let budget = args.opts.budget;

    let suite = spec_suite(Scale::Bench);
    let rows = run_indexed(suite.len(), args.opts.jobs, |i| {
        run_workload(&suite[i], Config::spt_ideal(ThreatModel::Futuristic), budget)
    });
    if let Some(json_path) = &args.stats_json {
        let ok: Vec<_> = rows
            .iter()
            .map(|r| r.as_ref().cloned().unwrap_or_else(|e| exit_sweep_error(e)))
            .collect();
        write_stats_json(&rows_document(&ok), json_path);
    }

    println!("Figure 9 — % of untainting cycles untainting at most N registers");
    println!(
        "(SPT{{Ideal,ShadowMem}}, Futuristic model, SPEC proxies; budget {budget}, seed {})\n",
        args.seed
    );
    print!("{:<14}", "benchmark");
    for n in 1..=10 {
        print!("{:>8}", format!("<={n}"));
    }
    println!();
    let mut avg = [0.0f64; 10];
    for (w, row) in suite.iter().zip(rows) {
        let row = row.unwrap_or_else(|e| exit_sweep_error(&e));
        print!("{:<14}", w.name);
        for n in 1..=10usize {
            let cdf = 100.0 * row.stats.spt.cdf_at_most(n);
            avg[n - 1] += cdf / suite.len() as f64;
            print!("{cdf:>8.1}");
        }
        println!();
    }
    print!("{:<14}", "average");
    for v in avg {
        print!("{v:>8.1}");
    }
    println!();
    println!(
        "\n=> {:.1}% of untainting cycles untaint at most 3 registers — the paper picks\n   a broadcast width of 3 as the coverage/complexity trade-off (§9.4).",
        avg[2]
    );
}
