//! Minimal shared flag parsing for the experiment binaries.
//!
//! Every binary accepts `--budget N`, `--jobs N`, and `--verbose`; the
//! Figure-7 driver additionally takes `--model` and `--quick`. Parsing is
//! centralized here so the eight binaries stay flag-compatible and the
//! worker pool is sized identically everywhere.

use crate::runner::{SweepError, SweepOptions, DEFAULT_BUDGET};
use spt_core::ThreatModel;
use std::path::PathBuf;

/// Flags common to the sweep binaries.
#[derive(Clone, Debug)]
pub struct SweepArgs {
    /// Runner options assembled from `--budget`, `--jobs`, `--verbose`.
    pub opts: SweepOptions,
    /// Threat models selected with `--model` (both, in paper order, when
    /// the flag is absent or unsupported).
    pub models: Vec<ThreatModel>,
    /// Workload input seed from `--seed` (0 = historical default streams).
    /// Already applied via [`spt_workloads::set_input_seed`] by the time
    /// parsing returns; binaries print it in their report headers.
    pub seed: u64,
    /// Destination for the sweep's `spt-stats-v1` JSON document
    /// (`--stats-json <file>`); `None` leaves JSON emission off.
    pub stats_json: Option<PathBuf>,
}

/// Which optional flags a binary supports.
#[derive(Clone, Copy, Debug, Default)]
pub struct Flags {
    /// Accept `--model spectre|futuristic|both`.
    pub model: bool,
    /// Accept `--quick` (drops the budget to 5 000).
    pub quick: bool,
}

/// Parses `std::env::args`, exiting with usage on an unknown flag.
pub fn sweep_args(binary: &str, flags: Flags) -> SweepArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parsed = SweepArgs {
        opts: SweepOptions::new(DEFAULT_BUDGET),
        models: vec![ThreatModel::Futuristic, ThreatModel::Spectre],
        seed: 0,
        stats_json: None,
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{binary}: {flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--budget" => {
                let v = value(&mut i, "--budget");
                parsed.opts.budget = v.parse().unwrap_or_else(|_| {
                    eprintln!("{binary}: --budget takes a number, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                let v = value(&mut i, "--jobs");
                let jobs: usize = v.parse().unwrap_or_else(|_| {
                    eprintln!("{binary}: --jobs takes a number, got `{v}`");
                    std::process::exit(2);
                });
                parsed.opts = parsed.opts.jobs(jobs);
            }
            "--seed" => {
                let v = value(&mut i, "--seed");
                parsed.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("{binary}: --seed takes a number, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--stats-json" => {
                parsed.stats_json = Some(PathBuf::from(value(&mut i, "--stats-json")));
            }
            "--verbose" => parsed.opts.verbose = true,
            "--quick" if flags.quick => parsed.opts.budget = 5_000,
            "--model" if flags.model => {
                parsed.models = match value(&mut i, "--model").as_str() {
                    "spectre" => vec![ThreatModel::Spectre],
                    "futuristic" => vec![ThreatModel::Futuristic],
                    "both" => vec![ThreatModel::Futuristic, ThreatModel::Spectre],
                    other => {
                        eprintln!("{binary}: unknown model `{other}`");
                        std::process::exit(2);
                    }
                };
            }
            other => {
                eprintln!("{binary}: unknown flag `{other}`");
                eprintln!("{}", usage(binary, flags));
                std::process::exit(2);
            }
        }
        i += 1;
    }
    // Apply before any workload is constructed: the suites sample their
    // input data (arrays, hash keys, pointer graphs) at build time.
    spt_workloads::set_input_seed(parsed.seed);
    parsed
}

/// One-line usage string for a binary's flag set.
pub fn usage(binary: &str, flags: Flags) -> String {
    let mut s = format!(
        "usage: {binary} [--budget N] [--jobs N] [--seed N] [--stats-json FILE] [--verbose]"
    );
    if flags.model {
        s.push_str(" [--model spectre|futuristic|both]");
    }
    if flags.quick {
        s.push_str(" [--quick]");
    }
    s
}

/// Reports a failed sweep cell and exits: the standard way every binary
/// surfaces a wedged (workload, config, threat) pair.
pub fn exit_sweep_error(e: &SweepError) -> ! {
    eprintln!("sweep failed: {e}");
    std::process::exit(1);
}

/// Writes a `--stats-json` document, exiting on I/O failure (a requested
/// artifact that cannot be produced is an error, not a warning).
pub fn write_stats_json(doc: &spt_util::Json, path: &std::path::Path) {
    match crate::statsdoc::write_json(doc, path) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("cannot write stats JSON {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Derives the per-model output path for binaries that loop over threat
/// models: `stats.json` → `stats_futuristic.json` when `multi` is set,
/// unchanged otherwise.
pub fn model_suffixed(path: &std::path::Path, model: ThreatModel, multi: bool) -> PathBuf {
    if !multi {
        return path.to_path_buf();
    }
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("stats");
    let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("json");
    path.with_file_name(format!("{stem}_{model}.{ext}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_mentions_supported_flags() {
        let all = usage("fig7", Flags { model: true, quick: true });
        assert!(all.contains("--jobs"));
        assert!(all.contains("--seed"));
        assert!(all.contains("--model"));
        assert!(all.contains("--quick"));
        let plain = usage("fig8", Flags::default());
        assert!(plain.contains("--jobs"));
        assert!(!plain.contains("--model"));
    }
}
