//! Text-table and CSV rendering for the experiment binaries.

use crate::runner::SuiteMatrix;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Renders a Figure-7-style table: one row per workload, one column per
/// configuration, cells = execution time normalized to UnsafeBaseline.
pub fn render_fig7(m: &SuiteMatrix, mean_rows: &[(&str, Vec<usize>)]) -> String {
    let mut out = String::new();
    let wname = 12usize;
    let col = 22usize;
    let _ = write!(out, "{:<wname$}", "benchmark");
    for c in &m.configs {
        let _ = write!(out, "{c:>col$}");
    }
    let _ = writeln!(out);
    for w in 0..m.workloads.len() {
        let _ = write!(out, "{:<wname$}", m.workloads[w]);
        for c in 0..m.configs.len() {
            let _ = write!(out, "{:>col$.3}", m.normalized(w, c));
        }
        let _ = writeln!(out);
    }
    for (label, subset) in mean_rows {
        let _ = write!(out, "{label:<wname$}");
        for c in 0..m.configs.len() {
            let _ = write!(out, "{:>col$.3}", m.mean_over(c, subset));
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes a matrix as CSV (normalized execution times).
///
/// # Errors
///
/// Returns any I/O error from creating the directory or file.
pub fn write_fig7_csv(m: &SuiteMatrix, path: &Path) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut s = String::from("benchmark");
    for c in &m.configs {
        s.push(',');
        s.push_str(c);
    }
    s.push('\n');
    for w in 0..m.workloads.len() {
        s.push_str(&m.workloads[w]);
        for c in 0..m.configs.len() {
            let _ = write!(s, ",{:.6}", m.normalized(w, c));
        }
        s.push('\n');
    }
    fs::write(path, s)
}

/// Renders an ASCII bar chart of one configuration's normalized execution
/// time per workload (quick visual check of a Figure-7 column).
pub fn render_bars(m: &SuiteMatrix, config: &str, width: usize) -> String {
    let Some(c) = m.config_index(config) else {
        return format!("unknown configuration `{config}`\n");
    };
    let max = (0..m.workloads.len()).map(|w| m.normalized(w, c)).fold(1.0f64, f64::max);
    let mut out = String::new();
    let _ = writeln!(out, "{config} (normalized to UnsafeBaseline, '|' = 1.0):");
    for w in 0..m.workloads.len() {
        let v = m.normalized(w, c);
        let bar = ((v / max) * width as f64).round() as usize;
        let one = ((1.0 / max) * width as f64).round() as usize;
        let mut line: Vec<char> = std::iter::repeat_n('#', bar.max(1)).collect();
        while line.len() <= one {
            line.push(' ');
        }
        if one < line.len() {
            line[one] = '|';
        }
        let _ = writeln!(
            out,
            "  {:<12} {:>6.2} {}",
            m.workloads[w],
            v,
            line.into_iter().collect::<String>()
        );
    }
    out
}

/// Formats a ratio like the paper ("3.6x").
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats an overhead percentage relative to 1.0 ("45%").
pub fn overhead_pct(normalized: f64) -> String {
    format!("{:.1}%", (normalized - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{suite_matrix, RunRow, SweepOptions, BASELINE_CONFIG};
    use spt_core::ThreatModel;

    fn tiny_matrix() -> SuiteMatrix {
        let mk = |cycles: u64, config: &str| RunRow {
            workload: "w".into(),
            config: config.into(),
            threat: ThreatModel::Spectre,
            cycles,
            retired: 100,
            stats: Default::default(),
        };
        SuiteMatrix::new(
            ThreatModel::Spectre,
            vec![BASELINE_CONFIG.into(), "SecureBaseline".into()],
            vec!["w".into()],
            vec![vec![mk(100, BASELINE_CONFIG), mk(250, "SecureBaseline")]],
        )
    }

    #[test]
    fn normalization_and_rendering() {
        let m = tiny_matrix();
        assert!((m.normalized(0, 1) - 2.5).abs() < 1e-12);
        let table = render_fig7(&m, &[("mean", vec![0])]);
        assert!(table.contains("2.500"));
        assert!(table.contains("mean"));
    }

    #[test]
    fn csv_roundtrip() {
        let m = tiny_matrix();
        let dir = std::env::temp_dir().join("spt_bench_test");
        let path = dir.join("fig7.csv");
        write_fig7_csv(&m, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("benchmark,UnsafeBaseline,SecureBaseline"));
        assert!(text.contains("2.5"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn bars_render() {
        let m = tiny_matrix();
        let bars = render_bars(&m, "SecureBaseline", 20);
        assert!(bars.contains("w"));
        assert!(bars.contains('#'));
        assert!(render_bars(&m, "nope", 20).contains("unknown"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(3.6), "3.60x");
        assert_eq!(overhead_pct(1.45), "45.0%");
    }

    #[test]
    fn geomean_between_min_and_max() {
        let suite = spt_workloads::ct_suite(spt_workloads::Scale::Bench);
        let m = suite_matrix(ThreatModel::Spectre, &suite[..1], SweepOptions::new(500))
            .expect("tiny sweep runs to completion");
        for c in 0..m.configs.len() {
            let g = m.geomean_over(c, &[0]);
            assert!((g - m.normalized(0, c)).abs() < 1e-9);
        }
    }
}
