//! Experiment harness for the SPT reproduction.
//!
//! One binary per paper artifact regenerates the corresponding table or
//! figure (see `DESIGN.md` §5 for the full index):
//!
//! | binary | artifact |
//! |---|---|
//! | `fig7` | Figure 7: normalized execution time, all configs × workloads |
//! | `fig8` | Figure 8: untaint-event breakdown |
//! | `fig9` | Figure 9: registers untainted per untainting cycle (CDF) |
//! | `headline` | §9.2 headline numbers (overheads, ratios, deltas) |
//! | `width_sweep` | §9.4 broadcast-width ablation |
//! | `sdo` | §6.3 protection-policy ablation (delay vs oblivious) |
//! | `run_spt` | single-run front-end mirroring the artifact's `run_spt.py` |
//! | `table3` | Table 3: related-work taxonomy (static) |
//!
//! The library half holds the shared runner (with its bounded worker
//! pool — every binary takes `--jobs N`), flag parsing, and text/CSV
//! renderers.

pub mod cli;
pub mod report;
pub mod runner;
pub mod simbench;
pub mod statsdoc;

pub use runner::{
    default_jobs, prepare_machine, run_indexed, run_prepared, run_workload, suite_matrix, RunRow,
    SuiteMatrix, SweepError, SweepOptions, DEFAULT_BUDGET,
};
pub use statsdoc::{matrix_document, run_document, write_json, STATS_SCHEMA};
