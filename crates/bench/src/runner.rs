//! Shared simulation runner for the experiment binaries.
//!
//! Every cell of the paper's evaluation matrix (workload × configuration ×
//! threat model) is an independent simulation, so the sweep fans out over a
//! bounded worker pool ([`run_indexed`]) sized by
//! [`std::thread::available_parallelism`] and overridable with the
//! `--jobs N` flag every experiment binary accepts. Results are written
//! into pre-indexed slots, so the assembled [`SuiteMatrix`] — and every
//! CSV and table derived from it — is byte-identical to a sequential run
//! regardless of scheduling.

use spt_core::{Config, ThreatModel};
use spt_mem::MemSystem;
use spt_ooo::{CoreConfig, Machine, MachineStats, RunLimits, SimError};
use spt_workloads::{Scale, Workload};
use std::fmt;

// The pool lives in `spt-util` (shared with `spt-fuzz`); re-exported here
// so existing `spt_bench::runner::run_indexed` callers keep working.
pub use spt_util::{default_jobs, run_indexed};

/// Default retired-instruction budget per (workload, config) run.
///
/// Every configuration retires exactly this many instructions of the same
/// program, so cycle counts are directly comparable (the gem5 SimPoint
/// methodology's fixed-work principle).
pub const DEFAULT_BUDGET: u64 = 30_000;

/// One completed run.
#[derive(Clone, Debug)]
pub struct RunRow {
    /// Workload name.
    pub workload: String,
    /// Configuration display name.
    pub config: String,
    /// Attack model.
    pub threat: ThreatModel,
    /// Cycles taken to retire the budget.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Full machine statistics.
    pub stats: MachineStats,
}

/// A simulation failure carrying the identity of the sweep cell that
/// wedged, so a single bad (workload, config, threat) pair produces one
/// clear diagnostic instead of tearing down a long sweep with a panic.
#[derive(Clone, Debug)]
pub struct SweepError {
    /// Workload name of the failed cell.
    pub workload: String,
    /// Configuration display name of the failed cell.
    pub config: String,
    /// Attack model of the failed cell.
    pub threat: ThreatModel,
    /// The underlying simulator error.
    pub source: SimError,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} under {} [{}]: {}", self.workload, self.config, self.threat, self.source)
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// Builds the machine for one (workload, config) cell: default core,
/// default memory system with the workload's data image applied.
///
/// Callers that need observability attach a trace sink or enable
/// telemetry on the returned machine before handing it to
/// [`run_prepared`]; [`run_workload`] is the plain compose-and-run path.
pub fn prepare_machine(w: &Workload, cfg: Config) -> Machine {
    let mut mem = MemSystem::default();
    w.apply_memory(mem.store());
    Machine::with_memory(w.program.clone(), CoreConfig::default(), cfg, mem)
}

/// Runs a machine built by [`prepare_machine`] for `budget` retired
/// instructions and returns the row.
///
/// # Errors
///
/// Returns a [`SweepError`] identifying the (workload, config, threat)
/// cell if the simulator deadlocks (a bug, not a measurement).
pub fn run_prepared(
    m: &mut Machine,
    w: &Workload,
    cfg: Config,
    budget: u64,
) -> Result<RunRow, SweepError> {
    let out = m.run(RunLimits::retired(budget)).map_err(|source| SweepError {
        workload: w.name.to_string(),
        config: cfg.name().to_string(),
        threat: cfg.threat,
        source,
    })?;
    Ok(RunRow {
        workload: w.name.to_string(),
        config: cfg.name().to_string(),
        threat: cfg.threat,
        cycles: out.cycles,
        retired: out.retired,
        stats: m.stats(),
    })
}

/// Runs one workload under one configuration for `budget` retired
/// instructions and returns the row.
///
/// # Errors
///
/// Returns a [`SweepError`] identifying the (workload, config, threat)
/// cell if the simulator deadlocks (a bug, not a measurement).
pub fn run_workload(w: &Workload, cfg: Config, budget: u64) -> Result<RunRow, SweepError> {
    let mut m = prepare_machine(w, cfg);
    run_prepared(&mut m, w, cfg, budget)
}

/// Knobs shared by every sweep entry point.
#[derive(Clone, Copy, Debug)]
pub struct SweepOptions {
    /// Retired-instruction budget per run.
    pub budget: u64,
    /// Log each (workload, config) pair as it is dispatched.
    pub verbose: bool,
    /// Worker threads (`--jobs N`); `1` means fully sequential.
    pub jobs: usize,
}

impl Default for SweepOptions {
    fn default() -> SweepOptions {
        SweepOptions { budget: DEFAULT_BUDGET, verbose: false, jobs: default_jobs() }
    }
}

impl SweepOptions {
    /// Options with the given budget and default parallelism.
    pub fn new(budget: u64) -> SweepOptions {
        SweepOptions { budget, ..SweepOptions::default() }
    }

    /// Overrides the worker count.
    pub fn jobs(mut self, jobs: usize) -> SweepOptions {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables or disables per-run dispatch logging.
    pub fn verbose(mut self, verbose: bool) -> SweepOptions {
        self.verbose = verbose;
        self
    }
}

/// Results of a whole suite × configuration sweep for one threat model.
#[derive(Clone, Debug)]
pub struct SuiteMatrix {
    /// Attack model.
    pub threat: ThreatModel,
    /// Configuration names in Table-2 order.
    pub configs: Vec<String>,
    /// Workload names in Figure-7 order.
    pub workloads: Vec<String>,
    /// `rows[w][c]` = run of workload `w` under config `c`.
    pub rows: Vec<Vec<RunRow>>,
    /// Column index of [`BASELINE_CONFIG`], resolved once at construction
    /// so per-cell normalization is O(1) instead of a linear name scan.
    baseline: usize,
}

/// Display name of the configuration every normalization divides by
/// (paper Table 2's insecure baseline).
pub const BASELINE_CONFIG: &str = "UnsafeBaseline";

impl SuiteMatrix {
    /// Assembles a matrix, resolving the [`BASELINE_CONFIG`] column by
    /// name once up front.
    ///
    /// # Panics
    ///
    /// Panics if `configs` has no `UnsafeBaseline` entry — normalized
    /// quantities are meaningless without it, and a silent positional
    /// assumption (column 0) could divide by the wrong configuration.
    pub fn new(
        threat: ThreatModel,
        configs: Vec<String>,
        workloads: Vec<String>,
        rows: Vec<Vec<RunRow>>,
    ) -> SuiteMatrix {
        let baseline = configs.iter().position(|c| c == BASELINE_CONFIG).unwrap_or_else(|| {
            panic!(
                "matrix has no {BASELINE_CONFIG} column to normalize against (configs: {configs:?})"
            )
        });
        SuiteMatrix { threat, configs, workloads, rows, baseline }
    }

    /// Column index of the [`BASELINE_CONFIG`] every normalization divides
    /// by (validated by name at construction).
    pub fn baseline_index(&self) -> usize {
        self.baseline
    }

    /// Cycles normalized to the [`BASELINE_CONFIG`] column.
    pub fn normalized(&self, w: usize, c: usize) -> f64 {
        let base = self.rows[w][self.baseline].cycles as f64;
        self.rows[w][c].cycles as f64 / base
    }

    /// Arithmetic mean of normalized execution time for config `c` over a
    /// workload-index subset.
    ///
    /// # Panics
    ///
    /// Panics on an empty subset: a mean over nothing is a report bug, and
    /// returning `NaN` would flow unannotated into tables and CSVs.
    pub fn mean_over(&self, c: usize, subset: &[usize]) -> f64 {
        assert!(!subset.is_empty(), "mean_over: empty workload subset for config {c}");
        subset.iter().map(|&w| self.normalized(w, c)).sum::<f64>() / subset.len() as f64
    }

    /// Geometric mean of normalized execution time for config `c`.
    ///
    /// # Panics
    ///
    /// Panics on an empty subset, as [`Self::mean_over`] does.
    pub fn geomean_over(&self, c: usize, subset: &[usize]) -> f64 {
        assert!(!subset.is_empty(), "geomean_over: empty workload subset for config {c}");
        let log_sum: f64 = subset.iter().map(|&w| self.normalized(w, c).ln()).sum();
        (log_sum / subset.len() as f64).exp()
    }

    /// Index of a configuration by display name.
    pub fn config_index(&self, name: &str) -> Option<usize> {
        self.configs.iter().position(|c| c == name)
    }

    /// Indices of workloads belonging to the SPEC suites (not constant-time).
    pub fn spec_indices(&self, workloads: &[Workload]) -> Vec<usize> {
        (0..self.workloads.len())
            .filter(|&i| workloads[i].category != spt_workloads::Category::ConstantTime)
            .collect()
    }

    /// Indices of constant-time workloads.
    pub fn ct_indices(&self, workloads: &[Workload]) -> Vec<usize> {
        (0..self.workloads.len())
            .filter(|&i| workloads[i].category == spt_workloads::Category::ConstantTime)
            .collect()
    }
}

/// Runs the full Figure-7 sweep: every Table-2 configuration on every
/// workload of the suite, for one threat model, fanned out over
/// [`SweepOptions::jobs`] workers.
///
/// Cell order in the result is identical to the sequential nested loop
/// (workloads outer, configs inner), whatever the parallelism.
///
/// # Errors
///
/// Returns the first failing cell in deterministic (workload, config)
/// order if any simulation deadlocks.
pub fn suite_matrix(
    threat: ThreatModel,
    workloads: &[Workload],
    opts: SweepOptions,
) -> Result<SuiteMatrix, SweepError> {
    let configs = Config::table2(threat);
    let cells = workloads.len() * configs.len();
    let results = run_indexed(cells, opts.jobs, |i| {
        let (w, c) = (i / configs.len(), i % configs.len());
        if opts.verbose {
            eprintln!("  running {} under {} ...", workloads[w].name, configs[c]);
        }
        run_workload(&workloads[w], configs[c], opts.budget)
    });

    let mut rows = Vec::with_capacity(workloads.len());
    let mut row = Vec::with_capacity(configs.len());
    for result in results {
        row.push(result?);
        if row.len() == configs.len() {
            rows.push(std::mem::replace(&mut row, Vec::with_capacity(configs.len())));
        }
    }
    Ok(SuiteMatrix::new(
        threat,
        configs.iter().map(|c| c.name().to_string()).collect(),
        workloads.iter().map(|w| w.name.to_string()).collect(),
        rows,
    ))
}

/// Builds the standard bench-scale workload suite.
pub fn bench_suite() -> Vec<Workload> {
    spt_workloads::full_suite(Scale::Bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_workload_quickly() {
        let w = &spt_workloads::ct_suite(Scale::Bench)[1]; // chacha20
        let row = run_workload(w, Config::unsafe_baseline(ThreatModel::Spectre), 2_000)
            .expect("chacha20 runs");
        assert!(row.retired >= 2_000);
        assert!(row.cycles > 0);
        assert!(row.stats.ipc() > 0.1, "chacha20 should have reasonable IPC");
    }

    #[test]
    fn matrix_normalization_is_one_for_baseline() {
        let suite = spt_workloads::ct_suite(Scale::Bench);
        let m = suite_matrix(ThreatModel::Spectre, &suite[..1], SweepOptions::new(1_000))
            .expect("sweep completes");
        let base = m.baseline_index();
        assert!((m.normalized(0, base) - 1.0).abs() < 1e-12);
        assert_eq!(m.configs.len(), 8);
    }

    #[test]
    fn pool_is_reexported_from_util() {
        // The pool itself is unit-tested in `spt-util`; this guards the
        // re-export path the binaries and older callers rely on.
        assert_eq!(run_indexed(4, 2, |i| i + 1), vec![1, 2, 3, 4]);
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "no UnsafeBaseline column")]
    fn baseline_is_validated_by_name_at_construction() {
        let _ = SuiteMatrix::new(ThreatModel::Spectre, vec!["Secure".into()], vec![], vec![]);
    }

    #[test]
    #[should_panic(expected = "empty workload subset")]
    fn empty_subset_is_rejected() {
        let m = SuiteMatrix::new(
            ThreatModel::Spectre,
            vec![BASELINE_CONFIG.to_string()],
            vec![],
            vec![],
        );
        m.mean_over(0, &[]);
    }
}
