//! Shared simulation runner for the experiment binaries.

use spt_core::{Config, ThreatModel};
use spt_mem::MemSystem;
use spt_ooo::{CoreConfig, Machine, MachineStats, RunLimits};
use spt_workloads::{Scale, Workload};

/// Default retired-instruction budget per (workload, config) run.
///
/// Every configuration retires exactly this many instructions of the same
/// program, so cycle counts are directly comparable (the gem5 SimPoint
/// methodology's fixed-work principle).
pub const DEFAULT_BUDGET: u64 = 30_000;

/// One completed run.
#[derive(Clone, Debug)]
pub struct RunRow {
    /// Workload name.
    pub workload: String,
    /// Configuration display name.
    pub config: String,
    /// Attack model.
    pub threat: ThreatModel,
    /// Cycles taken to retire the budget.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// Full machine statistics.
    pub stats: MachineStats,
}

/// Runs one workload under one configuration for `budget` retired
/// instructions and returns the row.
///
/// # Panics
///
/// Panics if the simulator deadlocks (a bug, not a measurement).
pub fn run_workload(w: &Workload, cfg: Config, budget: u64) -> RunRow {
    let mut mem = MemSystem::default();
    w.apply_memory(mem.store());
    let mut m = Machine::with_memory(w.program.clone(), CoreConfig::default(), cfg, mem);
    let out = m
        .run(RunLimits::retired(budget))
        .unwrap_or_else(|e| panic!("{} under {cfg}: {e}", w.name));
    RunRow {
        workload: w.name.to_string(),
        config: cfg.name().to_string(),
        threat: cfg.threat,
        cycles: out.cycles,
        retired: out.retired,
        stats: m.stats(),
    }
}

/// Results of a whole suite × configuration sweep for one threat model.
#[derive(Clone, Debug)]
pub struct SuiteMatrix {
    /// Attack model.
    pub threat: ThreatModel,
    /// Configuration names in Table-2 order.
    pub configs: Vec<String>,
    /// Workload names in Figure-7 order.
    pub workloads: Vec<String>,
    /// `rows[w][c]` = run of workload `w` under config `c`.
    pub rows: Vec<Vec<RunRow>>,
}

impl SuiteMatrix {
    /// Cycles normalized to the first (UnsafeBaseline) column.
    pub fn normalized(&self, w: usize, c: usize) -> f64 {
        let base = self.rows[w][0].cycles as f64;
        self.rows[w][c].cycles as f64 / base
    }

    /// Arithmetic mean of normalized execution time for config `c` over a
    /// workload-index subset.
    pub fn mean_over(&self, c: usize, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return f64::NAN;
        }
        subset.iter().map(|&w| self.normalized(w, c)).sum::<f64>() / subset.len() as f64
    }

    /// Geometric mean of normalized execution time for config `c`.
    pub fn geomean_over(&self, c: usize, subset: &[usize]) -> f64 {
        if subset.is_empty() {
            return f64::NAN;
        }
        let log_sum: f64 = subset.iter().map(|&w| self.normalized(w, c).ln()).sum();
        (log_sum / subset.len() as f64).exp()
    }

    /// Index of a configuration by display name.
    pub fn config_index(&self, name: &str) -> Option<usize> {
        self.configs.iter().position(|c| c == name)
    }

    /// Indices of workloads belonging to the SPEC suites (not constant-time).
    pub fn spec_indices(&self, workloads: &[Workload]) -> Vec<usize> {
        (0..self.workloads.len())
            .filter(|&i| workloads[i].category != spt_workloads::Category::ConstantTime)
            .collect()
    }

    /// Indices of constant-time workloads.
    pub fn ct_indices(&self, workloads: &[Workload]) -> Vec<usize> {
        (0..self.workloads.len())
            .filter(|&i| workloads[i].category == spt_workloads::Category::ConstantTime)
            .collect()
    }
}

/// Runs the full Figure-7 sweep: every Table-2 configuration on every
/// workload of the suite, for one threat model.
pub fn suite_matrix(
    threat: ThreatModel,
    workloads: &[Workload],
    budget: u64,
    verbose: bool,
) -> SuiteMatrix {
    let configs = Config::table2(threat);
    let mut rows = Vec::with_capacity(workloads.len());
    for w in workloads {
        let mut row = Vec::with_capacity(configs.len());
        for &cfg in &configs {
            if verbose {
                eprintln!("  running {} under {} ...", w.name, cfg);
            }
            row.push(run_workload(w, cfg, budget));
        }
        rows.push(row);
    }
    SuiteMatrix {
        threat,
        configs: configs.iter().map(|c| c.name().to_string()).collect(),
        workloads: workloads.iter().map(|w| w.name.to_string()).collect(),
        rows,
    }
}

/// Builds the standard bench-scale workload suite.
pub fn bench_suite() -> Vec<Workload> {
    spt_workloads::full_suite(Scale::Bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_workload_quickly() {
        let w = &spt_workloads::ct_suite(Scale::Bench)[1]; // chacha20
        let row = run_workload(w, Config::unsafe_baseline(ThreatModel::Spectre), 2_000);
        assert!(row.retired >= 2_000);
        assert!(row.cycles > 0);
        assert!(row.stats.ipc() > 0.1, "chacha20 should have reasonable IPC");
    }

    #[test]
    fn matrix_normalization_is_one_for_baseline() {
        let suite = spt_workloads::ct_suite(Scale::Bench);
        let m = suite_matrix(ThreatModel::Spectre, &suite[..1], 1_000, false);
        assert!((m.normalized(0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(m.configs.len(), 8);
    }
}
