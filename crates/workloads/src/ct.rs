//! Constant-time (data-oblivious) kernels (paper §9.1: bitslice AES,
//! ChaCha20, djbsort).
//!
//! All three kernels have the defining constant-time property: secret data
//! flows only through ALU dataflow — never into load/store addresses or
//! branch predicates. Loop counters, table indices and comparator indices
//! are public. This is exactly the discipline the paper's security
//! definition rewards: the secrets are never transmitted over a
//! non-speculative covert channel, so SPT keeps them tainted forever while
//! still executing the (public-address) loads and stores at full speed once
//! their addresses untaint.
//!
//! * [`chacha20`] — a real ChaCha20 block function (RFC 8439), verified
//!   against the RFC test vector.
//! * [`bitslice`] — a bitsliced χ-based permutation in the style of
//!   bitslice AES (ctaes): 64 parallel S-box evaluations per boolean
//!   operation over 5 lanes, with θ-style diffusion and per-round
//!   constants.
//! * [`ctsort`] — a Batcher odd-even mergesort network over 64 elements in
//!   the style of djbsort: data-independent compare-exchange sequence with
//!   branchless min/max.

use crate::{Category, Scale, Workload};
use spt_isa::asm::Assembler;
use spt_isa::Reg;

/// Base address of the ChaCha20 initial-state block.
pub const CHACHA_INIT: u64 = 0x1_0000;
/// Base address of the ChaCha20 output block.
pub const CHACHA_OUT: u64 = 0x1_1000;

/// Emits a ChaCha20 quarter round on 32-bit words held in 64-bit registers
/// (`mask` holds `0xffff_ffff`).
fn quarter_round(a: &mut Assembler, xa: Reg, xb: Reg, xc: Reg, xd: Reg, t: Reg, mask: Reg) {
    let rot = |a: &mut Assembler, x: Reg, n: i64| {
        a.shli(t, x, n);
        a.shri(x, x, 32 - n);
        a.or(x, x, t);
        a.and(x, x, mask);
    };
    a.add(xa, xa, xb);
    a.and(xa, xa, mask);
    a.xor(xd, xd, xa);
    rot(a, xd, 16);
    a.add(xc, xc, xd);
    a.and(xc, xc, mask);
    a.xor(xb, xb, xc);
    rot(a, xb, 12);
    a.add(xa, xa, xb);
    a.and(xa, xa, mask);
    a.xor(xd, xd, xa);
    rot(a, xd, 8);
    a.add(xc, xc, xd);
    a.and(xc, xc, mask);
    a.xor(xb, xb, xc);
    rot(a, xb, 7);
}

/// Builds the ChaCha20 block-function workload.
///
/// The initial state (constants, key, counter, nonce) lives at
/// [`CHACHA_INIT`] as sixteen 8-byte words (each holding one 32-bit state
/// word); the generated key-stream block is stored at [`CHACHA_OUT`]. The
/// key words are the declared secret.
pub fn chacha20(scale: Scale) -> Workload {
    chacha20_blocks(scale.iters(2, 1_000_000))
}

/// ChaCha20 with an explicit block count (used by the RFC-vector test).
pub fn chacha20_blocks(nblocks: u64) -> Workload {
    let x = |i: usize| Reg::from_index(1 + i); // r1..r16 = state
    let t = Reg::R17;
    let tmp = Reg::R18;
    let round = Reg::R19;
    let mask = Reg::R20;
    let block = Reg::R21;
    let init = Reg::R22;
    let out = Reg::R23;
    let nblk = Reg::R24;
    let ten = Reg::R26;

    let mut a = Assembler::new();
    a.mov_imm(init, CHACHA_INIT as i64);
    a.mov_imm(out, CHACHA_OUT as i64);
    a.mov_imm(mask, 0xffff_ffff);
    a.mov_imm(nblk, nblocks as i64);
    a.mov_imm(ten, 10);
    a.mov_imm(block, 0);
    a.label("block_loop");
    for i in 0..16 {
        a.ld(x(i), init, 8 * i as i64);
    }
    // Per-block counter: x12 += block (mod 2^32).
    a.add(x(12), x(12), block);
    a.and(x(12), x(12), mask);
    a.mov_imm(round, 0);
    a.label("rounds");
    // Column rounds.
    quarter_round(&mut a, x(0), x(4), x(8), x(12), t, mask);
    quarter_round(&mut a, x(1), x(5), x(9), x(13), t, mask);
    quarter_round(&mut a, x(2), x(6), x(10), x(14), t, mask);
    quarter_round(&mut a, x(3), x(7), x(11), x(15), t, mask);
    // Diagonal rounds.
    quarter_round(&mut a, x(0), x(5), x(10), x(15), t, mask);
    quarter_round(&mut a, x(1), x(6), x(11), x(12), t, mask);
    quarter_round(&mut a, x(2), x(7), x(8), x(13), t, mask);
    quarter_round(&mut a, x(3), x(4), x(9), x(14), t, mask);
    a.addi(round, round, 1);
    a.blt(round, ten, "rounds");
    // Add the initial state (with the per-block counter) and store.
    for i in 0..16 {
        a.ld(t, init, 8 * i as i64);
        if i == 12 {
            a.add(t, t, block);
        }
        a.add(tmp, x(i), t);
        a.and(tmp, tmp, mask);
        a.st(tmp, out, 8 * i as i64);
    }
    a.addi(block, block, 1);
    a.blt(block, nblk, "block_loop");
    a.halt();

    // RFC 8439 §2.3.2 initial state: constants, key 00..1f, counter 1,
    // nonce 00:00:00:09 / 00:00:00:4a / 00:00:00:00.
    let mut mem_init = Vec::new();
    let consts = [0x6170_7865u64, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    for (i, &c) in consts.iter().enumerate() {
        mem_init.push((CHACHA_INIT + 8 * i as u64, c));
    }
    for k in 0..8u64 {
        // Key words: bytes 4k..4k+3 little-endian.
        let w = (4 * k) | ((4 * k + 1) << 8) | ((4 * k + 2) << 16) | ((4 * k + 3) << 24);
        mem_init.push((CHACHA_INIT + 8 * (4 + k), w));
    }
    mem_init.push((CHACHA_INIT + 8 * 12, 1)); // counter
    mem_init.push((CHACHA_INIT + 8 * 13, 0x0900_0000));
    mem_init.push((CHACHA_INIT + 8 * 14, 0x4a00_0000));
    mem_init.push((CHACHA_INIT + 8 * 15, 0));

    Workload {
        name: "chacha20",
        category: Category::ConstantTime,
        description: "ChaCha20 block function (RFC 8439): ALU-bound, secrets never reach addresses",
        program: a.assemble().expect("chacha20 assembles"),
        mem_init,
        secret_ranges: vec![(CHACHA_INIT + 32, 64)], // the 8 key words
    }
}

/// Base address of the bitslice kernel's secret input lanes.
pub const BITSLICE_IN: u64 = 0x2_0000;
/// Base address of the bitslice round-constant table.
pub const BITSLICE_RC: u64 = 0x2_1000;
/// Base address of the bitslice kernel's output.
pub const BITSLICE_OUT: u64 = 0x2_2000;

/// Builds the bitsliced permutation workload: 24 rounds of θ-diffusion,
/// lane rotations, the χ S-box layer (64 S-boxes per boolean op — the
/// bitslice technique of ctaes), and round-constant injection, iterated
/// over the state in an outer loop.
pub fn bitslice(scale: Scale) -> Workload {
    let iters = scale.iters(4, 1_000_000);
    let lane = |i: usize| Reg::from_index(1 + i); // r1..r5
    let copy = |i: usize| Reg::from_index(6 + i); // r6..r10
    let t = Reg::R17;
    let t2 = Reg::R18;
    let round = Reg::R19;
    let iter = Reg::R21;
    let inp = Reg::R22;
    let outp = Reg::R23;
    let niter = Reg::R24;
    let rc = Reg::R25;
    let rounds_max = Reg::R26;

    let rotl64 = |a: &mut Assembler, x: Reg, n: i64| {
        if n == 0 {
            return;
        }
        a.shli(t, x, n);
        a.shri(x, x, 64 - n);
        a.or(x, x, t);
    };

    let mut a = Assembler::new();
    a.mov_imm(inp, BITSLICE_IN as i64);
    a.mov_imm(outp, BITSLICE_OUT as i64);
    a.mov_imm(rc, BITSLICE_RC as i64);
    a.mov_imm(niter, iters as i64);
    a.mov_imm(rounds_max, 24);
    a.mov_imm(iter, 0);
    for i in 0..5 {
        a.ld(lane(i), inp, 8 * i as i64);
    }
    a.label("iter_loop");
    a.mov_imm(round, 0);
    a.label("round_loop");
    // θ: parity of all lanes, rotated, injected everywhere.
    a.xor(t2, lane(0), lane(1));
    a.xor(t2, t2, lane(2));
    a.xor(t2, t2, lane(3));
    a.xor(t2, t2, lane(4));
    rotl64(&mut a, t2, 1);
    for i in 0..5 {
        a.xor(lane(i), lane(i), t2);
    }
    // ρ: distinct lane rotations.
    for (i, &r) in [0i64, 1, 62, 28, 27].iter().enumerate() {
        rotl64(&mut a, lane(i), r);
    }
    // χ: lane_i = old_i ^ (!old_{i+1} & old_{i+2}) — the bitsliced S-box.
    for i in 0..5 {
        a.mov(copy(i), lane(i));
    }
    for i in 0..5 {
        a.xori(t2, copy((i + 1) % 5), -1);
        a.and(t2, t2, copy((i + 2) % 5));
        a.xor(lane(i), copy(i), t2);
    }
    // ι: round constant from the public table.
    a.ldx8(t2, rc, round);
    a.xor(lane(0), lane(0), t2);
    a.addi(round, round, 1);
    a.blt(round, rounds_max, "round_loop");
    // Persist state and continue permuting it.
    for i in 0..5 {
        a.st(lane(i), outp, 8 * i as i64);
    }
    a.addi(iter, iter, 1);
    a.blt(iter, niter, "iter_loop");
    a.halt();

    let mut mem_init = Vec::new();
    for i in 0..5u64 {
        // Secret input lanes.
        mem_init.push((BITSLICE_IN + 8 * i, 0x0123_4567_89ab_cdefu64.rotate_left(7 * i as u32)));
    }
    for r in 0..24u64 {
        mem_init.push((BITSLICE_RC + 8 * r, (r + 1).wrapping_mul(0x9e37_79b9) & 0xffff_ffff));
    }

    Workload {
        name: "bitslice",
        category: Category::ConstantTime,
        description: "bitsliced chi-permutation (bitslice-AES style): boolean-op bound",
        program: a.assemble().expect("bitslice assembles"),
        mem_init,
        secret_ranges: vec![(BITSLICE_IN, 40)],
    }
}

/// Base address of the sorting network's comparator pair table.
pub const CTSORT_PAIRS: u64 = 0x3_0000;
/// Base address of the (secret) data array to sort.
pub const CTSORT_DATA: u64 = 0x3_4000;
/// Number of elements sorted.
pub const CTSORT_N: usize = 64;

/// Generates the comparator sequence of Batcher's odd-even mergesort for a
/// power-of-two `n`. Each pair `(i, j)` with `i < j` compare-exchanges
/// `data[i]`/`data[j]` so the minimum lands at `i`.
pub fn batcher_network(n: usize) -> Vec<(usize, usize)> {
    assert!(n.is_power_of_two());
    let mut pairs = Vec::new();
    let mut p = 1;
    while p < n {
        let mut k = p;
        while k >= 1 {
            let mut j = k % p;
            while j + k < n {
                for i in 0..k.min(n - j - k) {
                    if (i + j) / (2 * p) == (i + j + k) / (2 * p) {
                        pairs.push((i + j, i + j + k));
                    }
                }
                j += 2 * k;
            }
            k /= 2;
        }
        p *= 2;
    }
    pairs
}

/// Builds the constant-time sorting-network workload (djbsort style):
/// the comparator schedule is public (table-driven), the compared data is
/// secret, and min/max are computed branchlessly.
pub fn ctsort(scale: Scale) -> Workload {
    let iters = scale.iters(2, 1_000_000);
    let pairs = batcher_network(CTSORT_N);

    let i_r = Reg::R1;
    let j_r = Reg::R2;
    let ai = Reg::R3;
    let _aj = Reg::R4;
    let va = Reg::R5;
    let vb = Reg::R6;
    let c = Reg::R7;
    let d = Reg::R8;
    let mn = Reg::R9;
    let mx = Reg::R10;
    let k = Reg::R11;
    let npairs = Reg::R12;
    let ptab = Reg::R13;
    let pdata = Reg::R14;
    let iter = Reg::R15;
    let niter = Reg::R16;

    let mut a = Assembler::new();
    a.mov_imm(ptab, CTSORT_PAIRS as i64);
    a.mov_imm(pdata, CTSORT_DATA as i64);
    a.mov_imm(npairs, pairs.len() as i64);
    a.mov_imm(niter, iters as i64);
    a.mov_imm(iter, 0);
    a.label("iter_loop");
    a.mov_imm(k, 0);
    a.label("cmp_loop");
    // Load the (public) comparator indices: 16-byte pair records.
    a.shli(ai, k, 1);
    a.ldx8(i_r, ptab, ai);
    a.load_idx(j_r, ptab, ai, 3, 8, spt_isa::MemSize::B8);
    // Load the two (secret) elements through their (public) indices.
    a.ldx8(va, pdata, i_r);
    a.ldx8(vb, pdata, j_r);
    // Branchless min/max: min = b - (b - a) * (a < b).
    a.sltu(c, va, vb);
    a.sub(d, vb, va);
    a.mul(d, d, c);
    a.sub(mn, vb, d);
    a.add(mx, va, vb);
    a.sub(mx, mx, mn);
    a.stx8(mn, pdata, i_r);
    a.stx8(mx, pdata, j_r);
    a.addi(k, k, 1);
    a.blt(k, npairs, "cmp_loop");
    a.addi(iter, iter, 1);
    a.blt(iter, niter, "iter_loop");
    a.halt();

    let mut mem_init = Vec::new();
    for (idx, &(i, j)) in pairs.iter().enumerate() {
        mem_init.push((CTSORT_PAIRS + 16 * idx as u64, i as u64));
        mem_init.push((CTSORT_PAIRS + 16 * idx as u64 + 8, j as u64));
    }
    // Secret data: a fixed scrambled permutation of 0..N.
    for i in 0..CTSORT_N as u64 {
        let v = (i.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40) & 0xffff;
        mem_init.push((CTSORT_DATA + 8 * i, v));
    }

    Workload {
        name: "djbsort",
        category: Category::ConstantTime,
        description: "constant-time sorting network (djbsort style): public schedule, secret data",
        program: a.assemble().expect("ctsort assembles"),
        mem_init,
        secret_ranges: vec![(CTSORT_DATA, 8 * CTSORT_N as u64)],
    }
}

/// The constant-time suite, in the paper's order.
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![bitslice(scale), chacha20(scale), ctsort(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha20_matches_rfc_8439_vector() {
        // RFC 8439 §2.3.2: state after the block function (keystream words).
        let expected: [u64; 16] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        let w = chacha20_blocks(1);
        let mut i = w.interp();
        i.run(100_000).unwrap();
        assert!(i.halted());
        for (k, &e) in expected.iter().enumerate() {
            let got = i.mem().read(CHACHA_OUT + 8 * k as u64, 8);
            assert_eq!(got, e, "keystream word {k}");
        }
    }

    #[test]
    fn batcher_network_sorts_everything() {
        // Simulate the network on adversarial inputs.
        for n in [2usize, 4, 8, 16, 64] {
            let pairs = batcher_network(n);
            for seed in 0..50u64 {
                let mut data: Vec<u64> = (0..n as u64)
                    .map(|i| {
                        let mut x = (i + 1).wrapping_mul(seed.wrapping_mul(0x9e37) + 0x1234_5677);
                        x ^= x >> 7;
                        x % 97
                    })
                    .collect();
                for &(i, j) in &pairs {
                    assert!(i < j);
                    if data[i] > data[j] {
                        data.swap(i, j);
                    }
                }
                assert!(data.windows(2).all(|w| w[0] <= w[1]), "n={n} seed={seed}");
            }
        }
    }

    #[test]
    fn ctsort_program_sorts_on_interpreter() {
        let w = ctsort(Scale::Test);
        let mut i = w.interp();
        i.run(3_000_000).unwrap();
        assert!(i.halted());
        let sorted: Vec<u64> =
            (0..CTSORT_N as u64).map(|k| i.mem().read(CTSORT_DATA + 8 * k, 8)).collect();
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "{sorted:?}");
    }

    #[test]
    fn bitslice_is_deterministic_and_nontrivial() {
        let w = bitslice(Scale::Test);
        let mut i1 = w.interp();
        i1.run(3_000_000).unwrap();
        let out1: Vec<u64> = (0..5).map(|k| i1.mem().read(BITSLICE_OUT + 8 * k, 8)).collect();
        let mut i2 = w.interp();
        i2.run(3_000_000).unwrap();
        let out2: Vec<u64> = (0..5).map(|k| i2.mem().read(BITSLICE_OUT + 8 * k, 8)).collect();
        assert_eq!(out1, out2);
        assert!(out1.iter().any(|&x| x != 0), "permutation must scramble the state");
    }

    #[test]
    fn ct_kernels_never_leak_secrets_nonspeculatively() {
        // The defining constant-time property, checked on the ground-truth
        // leak trace: no transmitted address or branch outcome may depend
        // on the secret bytes. We verify by flipping secret bits and
        // asserting the leak trace is identical.
        for (w_base, w_flipped) in [
            (chacha20_blocks(1), {
                let mut w = chacha20_blocks(1);
                for (addr, val) in w.mem_init.iter_mut() {
                    if *addr >= CHACHA_INIT + 32 && *addr < CHACHA_INIT + 96 {
                        *val ^= 0xffff_ffff;
                    }
                }
                w
            }),
            (ctsort(Scale::Test), {
                let mut w = ctsort(Scale::Test);
                for (addr, val) in w.mem_init.iter_mut() {
                    if *addr >= CTSORT_DATA {
                        *val = (*val).wrapping_mul(3).wrapping_add(17) % 9973;
                    }
                }
                w
            }),
        ] {
            let trace = |w: &Workload| {
                let mut i = w.interp();
                i.enable_trace();
                i.run(3_000_000).unwrap();
                i.trace().unwrap().to_vec()
            };
            let t1 = trace(&w_base);
            let t2 = trace(&w_flipped);
            assert_eq!(t1, t2, "{}: leak trace must be secret-independent", w_base.name);
        }
    }
}
