//! Workloads for the SPT reproduction: SPEC CPU2017 proxies, constant-time
//! (data-oblivious) kernels, and the penetration-test attack programs
//! (paper §9.1).
//!
//! SPEC binaries cannot run on the simulator's toy ISA, so each SPEC
//! benchmark is represented by a synthetic kernel engineered to reproduce
//! its microarchitectural character — the properties that drive SPT's
//! behaviour: whether load outputs feed addresses (pointer chasing), whether
//! branches depend on loaded data, working-set size relative to the cache
//! hierarchy, and store/load locality. See [`spec`] for the per-benchmark
//! rationale.
//!
//! The constant-time kernels in [`ct`] are *genuine* data-oblivious
//! computations (a real ChaCha20 block function, a bitsliced χ-permutation
//! in the style of bitslice AES, and a sorting network in the style of
//! djbsort): secrets flow only through data, never into addresses or branch
//! predicates. That is the property the paper's headline result relies on.
//!
//! # Example
//!
//! ```
//! use spt_workloads::{ct, Scale};
//!
//! let w = ct::chacha20(Scale::Test);
//! let mut interp = w.interp();
//! interp.run(1_000_000)?;
//! assert!(interp.halted());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod attacks;
pub mod ct;
pub mod spec;

use std::sync::atomic::{AtomicU64, Ordering};

use spt_isa::interp::{Interp, SparseMem};
use spt_isa::Program;

/// Process-wide seed mixed into every workload's input-data RNG stream.
///
/// The default of 0 reproduces the historical per-workload streams exactly
/// (the mix is a plain XOR of a zero term), so paper-figure regeneration
/// stays bit-stable unless a seed is requested explicitly.
static INPUT_SEED: AtomicU64 = AtomicU64::new(0);

/// Sets the workload input seed (the experiment binaries' `--seed N`).
/// Affects workloads constructed *after* the call.
pub fn set_input_seed(seed: u64) {
    INPUT_SEED.store(seed, Ordering::Relaxed);
}

/// The current workload input seed (0 = historical default streams).
pub fn input_seed() -> u64 {
    INPUT_SEED.load(Ordering::Relaxed)
}

/// Problem-size selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small iteration counts that halt quickly — for correctness tests
    /// against the reference interpreter.
    Test,
    /// Large iteration counts — benchmark runs stop on a retired-
    /// instruction budget instead of at `Halt`.
    Bench,
}

impl Scale {
    /// Picks an iteration count by scale.
    pub fn iters(self, test: u64, bench: u64) -> u64 {
        match self {
            Scale::Test => test,
            Scale::Bench => bench,
        }
    }
}

/// Workload category (used for Figure 7 grouping and averages).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// SPEC CPU2017 integer proxy.
    SpecInt,
    /// SPEC CPU2017 floating-point proxy (integer arithmetic stand-in).
    SpecFp,
    /// Constant-time / data-oblivious kernel.
    ConstantTime,
}

impl Category {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Category::SpecInt => "SPECint",
            Category::SpecFp => "SPECfp",
            Category::ConstantTime => "const-time",
        }
    }
}

/// A runnable workload: program, initial memory, and metadata.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short name (the SPEC benchmark it proxies, or the kernel name).
    pub name: &'static str,
    /// Grouping category.
    pub category: Category,
    /// One-line description of the microarchitectural character.
    pub description: &'static str,
    /// The assembled program.
    pub program: Program,
    /// Initial memory contents as `(addr, 8-byte word)` pairs.
    pub mem_init: Vec<(u64, u64)>,
    /// Address ranges `(base, len)` holding secret inputs (constant-time
    /// kernels only): data the program never leaks non-speculatively.
    pub secret_ranges: Vec<(u64, u64)>,
}

impl Workload {
    /// Applies the initial memory image to a sparse store.
    pub fn apply_memory(&self, mem: &mut SparseMem) {
        for &(addr, word) in &self.mem_init {
            mem.write(addr, word, 8);
        }
    }

    /// Builds a reference interpreter with the initial memory applied.
    pub fn interp(&self) -> Interp<'_> {
        let mut mem = SparseMem::new();
        self.apply_memory(&mut mem);
        Interp::with_memory(&self.program, mem)
    }
}

/// The full SPEC-proxy suite (22 benchmarks) at the given scale.
pub fn spec_suite(scale: Scale) -> Vec<Workload> {
    spec::suite(scale)
}

/// The constant-time kernel suite (3 kernels) at the given scale.
pub fn ct_suite(scale: Scale) -> Vec<Workload> {
    ct::suite(scale)
}

/// Every evaluation workload (SPEC proxies then constant-time kernels), as
/// in paper Figure 7.
pub fn full_suite(scale: Scale) -> Vec<Workload> {
    let mut v = spec_suite(scale);
    v.extend(ct_suite(scale));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_have_expected_sizes() {
        assert_eq!(spec_suite(Scale::Test).len(), 22);
        assert_eq!(ct_suite(Scale::Test).len(), 3);
        assert_eq!(full_suite(Scale::Test).len(), 25);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::BTreeSet<_> =
            full_suite(Scale::Test).iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 25);
    }

    #[test]
    fn every_test_scale_workload_halts_on_the_interpreter() {
        for w in full_suite(Scale::Test) {
            let mut i = w.interp();
            i.run(3_000_000).unwrap_or_else(|e| panic!("workload {} did not halt: {e}", w.name));
            assert!(i.halted(), "{}", w.name);
        }
    }

    #[test]
    fn ct_kernels_declare_secrets() {
        for w in ct_suite(Scale::Test) {
            assert!(!w.secret_ranges.is_empty(), "{} must declare its secret inputs", w.name);
        }
    }
}
