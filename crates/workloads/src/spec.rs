//! SPEC CPU2017 proxy kernels.
//!
//! Each proxy reproduces the microarchitectural character of one SPEC2017
//! benchmark — the features that determine SPT's per-benchmark behaviour
//! in paper Figures 7–8:
//!
//! | proxy | character |
//! |---|---|
//! | `perlbench` | interpreter: loaded-opcode *indirect dispatch* + hash loads |
//! | `gcc` | linked-list IR walk with branchy kind dispatch |
//! | `mcf` | pointer chasing over a DRAM-sized ring, branch on loaded cost |
//! | `omnetpp` | heap sift-down: loaded comparisons steer both branches and addresses |
//! | `xalancbmk` | binary-tree descent through loaded child pointers |
//! | `x264` | SAD over byte blocks: streaming loads, branch-free absolute difference |
//! | `deepsjeng` | hash-indexed table probes + branchy evaluation |
//! | `leela` | board scan with neighbour gathers and loaded-cell branches |
//! | `exchange2` | explicit-stack backtracking: store/load forwarding heavy |
//! | `xz` | byte-compare match loops with data-dependent early exit |
//! | `bwaves` | streaming 3-point stencil (FP stand-in), few branches |
//! | `cactuBSSN` | wide-neighbourhood stencil, L2-resident grid |
//! | `namd` | pair-list gather + arithmetic, L1-resident |
//! | `parest` | CSR sparse mat-vec: indirect `x[col[j]]` gathers |
//! | `povray` | multiply-heavy ray tests, branches on *computed* values |
//! | `fotonik3d` | DRAM-bound streaming update, almost no branches |
//!
//! All working-set sizes refer to [`Scale::Bench`]; [`Scale::Test`] shrinks
//! both footprints and iteration counts so the kernels halt quickly for
//! interpreter-vs-pipeline correctness checks.

use crate::{Category, Scale, Workload};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use spt_isa::asm::Assembler;
use spt_isa::Reg;

const R: [Reg; 32] = [
    Reg::R0,
    Reg::R1,
    Reg::R2,
    Reg::R3,
    Reg::R4,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R11,
    Reg::R12,
    Reg::R13,
    Reg::R14,
    Reg::R15,
    Reg::R16,
    Reg::R17,
    Reg::R18,
    Reg::R19,
    Reg::R20,
    Reg::R21,
    Reg::R22,
    Reg::R23,
    Reg::R24,
    Reg::R25,
    Reg::R26,
    Reg::R27,
    Reg::R28,
    Reg::R29,
    Reg::R30,
    Reg::R31,
];

fn rng_for(name: &str) -> SmallRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Mix in the process-wide input seed; the default of 0 contributes a
    // zero XOR term, leaving the historical streams untouched.
    seed ^= crate::input_seed().wrapping_mul(0x9e37_79b9_7f4a_7c15);
    SmallRng::seed_from_u64(seed)
}

/// `perlbench`: bytecode interpreter with indirect dispatch.
pub fn perlbench(scale: Scale) -> Workload {
    const CODE: u64 = 0x10_0000;
    const JT: u64 = 0x11_0000;
    const HASH: u64 = 0x12_0000;
    let (code_len, hash_words, iters) = match scale {
        Scale::Test => (64u64, 512u64, 2u64),
        Scale::Bench => (512, 32_768, 1_000_000),
    };
    let hash_mask = (hash_words - 1) as i64;

    let (pc, code, jt, hash, acc, op, t, clen, it, nit) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10]);
    let mut a = Assembler::new();
    a.mov_imm(code, CODE as i64);
    a.mov_imm(jt, JT as i64);
    a.mov_imm(hash, HASH as i64);
    a.mov_imm(clen, code_len as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0x1234);
    a.label("outer");
    a.mov_imm(pc, 0);
    a.label("dispatch");
    a.ldx8(op, code, pc); // opcode (loaded data)
    a.ldx8(t, jt, op); // handler address: `op` is a leaked index operand
    a.jr(t);
    a.label("op0"); // arithmetic
    a.addi(acc, acc, 13);
    a.jmp("next");
    a.label("op1"); // logical
    a.xori(acc, acc, 0x5a5a);
    a.jmp("next");
    a.label("op2"); // hash probe
    a.muli(t, acc, 0x9e3779b9);
    a.shri(t, t, 8);
    a.andi(t, t, hash_mask);
    a.ldx8(t, hash, t);
    a.add(acc, acc, t);
    a.jmp("next");
    a.label("op3"); // shift/mix
    a.shli(t, acc, 1);
    a.xor(acc, acc, t);
    a.jmp("next");
    a.label("op4"); // hash store
    a.muli(t, acc, 0x85eb_ca6b);
    a.shri(t, t, 9);
    a.andi(t, t, hash_mask);
    a.stx8(acc, hash, t);
    a.label("next");
    a.addi(pc, pc, 1);
    a.blt(pc, clen, "dispatch");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();
    let program = a.assemble().expect("perlbench assembles");

    let mut rng = rng_for("perlbench");
    let mut mem_init = Vec::new();
    for i in 0..code_len {
        mem_init.push((CODE + 8 * i, rng.gen_range(0..5)));
    }
    for (k, label) in ["op0", "op1", "op2", "op3", "op4"].iter().enumerate() {
        mem_init.push((JT + 8 * k as u64, program.label_pc(label).expect("label")));
    }
    for i in 0..hash_words {
        mem_init.push((HASH + 8 * i, rng.gen_range(0..1000)));
    }
    Workload {
        name: "perlbench",
        category: Category::SpecInt,
        description: "interpreter dispatch: loaded opcodes drive indirect jumps and hash probes",
        program,
        mem_init,
        secret_ranges: vec![],
    }
}

/// `gcc`: linked-list walk with branchy per-node transforms.
pub fn gcc(scale: Scale) -> Workload {
    const NODES: u64 = 0x20_0000;
    let (count, iters) = match scale {
        Scale::Test => (64u64, 2u64),
        Scale::Bench => (16_384, 1_000_000), // 512 KiB of 32-byte nodes
    };
    let (cur, kind, val, acc, it, nit, base, off) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8]);
    let mut a = Assembler::new();
    a.mov_imm(nit, iters as i64);
    a.mov_imm(base, NODES as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.label("outer");
    a.mov_imm(cur, NODES as i64);
    a.label("walk");
    a.ld(kind, cur, 8);
    a.ld(val, cur, 16);
    a.beq(kind, Reg::R0, "k0");
    a.subi(kind, kind, 1);
    a.beq(kind, Reg::R0, "k1");
    a.sub(acc, acc, val); // kind 2
    a.jmp("cont");
    a.label("k0");
    a.add(acc, acc, val);
    a.jmp("cont");
    a.label("k1");
    a.xor(acc, acc, val);
    a.label("cont");
    // Offset-based next link (as in arena/index-based IRs): the `add` is
    // invertible, so declassifying `cur` backward-untaints the loaded
    // offset (paper §6.6 rule ②). The loop exit tests the computed pointer,
    // not the raw offset, so the offset itself is never a branch predicate.
    a.ld(off, cur, 0);
    a.add(cur, base, off);
    a.bne(cur, base, "walk");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("gcc");
    // Random permutation walk over the node array.
    let mut order: Vec<u64> = (0..count).collect();
    for i in (1..count as usize).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut mem_init = Vec::new();
    for w in 0..count as usize {
        let node = NODES + order[w] * 32;
        let next_off = if w + 1 < count as usize { order[w + 1] * 32 } else { 0 };
        mem_init.push((node, next_off));
        mem_init.push((node + 8, rng.gen_range(0..3)));
        mem_init.push((node + 16, rng.gen_range(0..4096)));
    }
    Workload {
        name: "gcc",
        category: Category::SpecInt,
        description: "IR list walk: loaded next-pointers plus kind-dispatch branches",
        program: a.assemble().expect("gcc assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `mcf`: DRAM-bound pointer chasing with a branch on loaded cost.
///
/// Four independent chains are chased in parallel — real mcf exposes
/// memory-level parallelism across arcs, which is exactly what delaying
/// loads to the VP destroys (the chains serialize behind each other's
/// visibility points).
pub fn mcf(scale: Scale) -> Workload {
    const ARCS: u64 = 0x40_0000;
    const CHAINS: usize = 4;
    let (count, steps, iters) = match scale {
        Scale::Test => (64u64, 32u64, 1u64),
        Scale::Bench => (65_536, 100_000, 1_000_000), // 4 MiB of 64-byte arcs
    };
    let cur = [R[1], R[2], R[3], R[4]];
    let (cost, acc, step, nstep, it, nit, thr) = (R[5], R[6], R[7], R[8], R[20], R[21], R[9]);
    let mut a = Assembler::new();
    a.mov_imm(nstep, steps as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(thr, 500);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.label("outer");
    for (c, reg) in cur.iter().enumerate() {
        a.mov_imm(*reg, (ARCS + (c as u64) * (count / CHAINS as u64) * 64) as i64);
    }
    a.mov_imm(step, 0);
    a.label("chase");
    for (c, reg) in cur.iter().enumerate() {
        a.ld(cost, *reg, 8);
        let skip = format!("cheap{c}");
        a.blt(cost, thr, &skip);
        a.addi(acc, acc, 1);
        a.label(&skip);
        a.ld(*reg, *reg, 0); // next arc (loaded -> address): the chase
                             // Reduced-cost bookkeeping: ALU work overlapping the chase, as in
                             // the real simplex pricing loop.
        a.muli(cost, cost, 3);
        a.shri(cost, cost, 1);
        a.add(acc, acc, cost);
        a.xori(acc, acc, 0x55);
        a.addi(acc, acc, 7);
        a.shli(cost, acc, 2);
        a.sub(acc, acc, cost);
    }
    a.addi(step, step, 1);
    a.blt(step, nstep, "chase");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("mcf");
    let mut order: Vec<u64> = (0..count).collect();
    for i in (1..count as usize).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let mut mem_init = Vec::new();
    for w in 0..count as usize {
        let base = ARCS + order[w] * 64;
        let next = ARCS + order[(w + 1) % count as usize] * 64; // ring
        mem_init.push((base, next));
        mem_init.push((base + 8, rng.gen_range(0..1000)));
    }
    // The chain entry points are fixed arc slots; make sure each points
    // into the ring.
    for c in 0..CHAINS as u64 {
        let entry = ARCS + c * (count / CHAINS as u64) * 64;
        let next = ARCS + order[rng.gen_range(0..count as usize)] * 64;
        mem_init.push((entry, next));
        mem_init.push((entry + 8, rng.gen_range(0..1000)));
    }
    Workload {
        name: "mcf",
        category: Category::SpecInt,
        description:
            "network-simplex arc chasing: four parallel loaded-address chains, cache-hostile",
        program: a.assemble().expect("mcf assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `omnetpp`: event-heap sift-down.
pub fn omnetpp(scale: Scale) -> Workload {
    const HEAP: u64 = 0x60_0000;
    let (n, iters) = match scale {
        Scale::Test => (255u64, 8u64),
        Scale::Bench => (65_535, 2_000_000), // 512 KiB heap
    };
    let (i, n_r, child, vi, vc, t, it, nit) = (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8]);
    let heap = R[11];
    let mut a = Assembler::new();
    a.mov_imm(heap, HEAP as i64);
    a.mov_imm(n_r, n as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    // Perturb the root so each sift does real work.
    a.ld(vi, heap, 0);
    a.muli(vi, vi, 0x9e3779b9);
    a.shri(vi, vi, 3);
    a.st(vi, heap, 0);
    a.mov_imm(i, 0);
    a.label("sift");
    // child = 2i+1; if child >= n stop.
    a.shli(child, i, 1);
    a.addi(child, child, 1);
    a.bge(child, n_r, "done_sift");
    // Load both children, pick the smaller (branch on loaded data).
    a.ldx8(vc, heap, child);
    a.load_idx(t, heap, child, 3, 8, spt_isa::MemSize::B8); // right child
    a.bge(t, vc, "left_ok");
    a.mov(vc, t);
    a.addi(child, child, 1);
    a.label("left_ok");
    a.ldx8(vi, heap, i);
    a.bge(vc, vi, "done_sift"); // heap property holds: stop
    a.stx8(vc, heap, i); // swap
    a.stx8(vi, heap, child);
    a.mov(i, child);
    a.jmp("sift");
    a.label("done_sift");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("omnetpp");
    let mut mem_init = Vec::new();
    for k in 0..=n {
        mem_init.push((HEAP + 8 * k, rng.gen_range(0..1_000_000)));
    }
    Workload {
        name: "omnetpp",
        category: Category::SpecInt,
        description: "event-queue sift-down: loaded values steer branches and the next address",
        program: a.assemble().expect("omnetpp assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `xalancbmk`: binary-tree descent.
pub fn xalancbmk(scale: Scale) -> Workload {
    const TREE: u64 = 0x80_0000;
    const KEYS: u64 = 0x90_0000;
    let (nodes, nkeys, iters) = match scale {
        Scale::Test => (63u64, 8u64, 2u64),
        Scale::Bench => (65_535, 512, 1_000_000), // 2 MiB tree
    };
    let (cur, key, nodekey, t, ki, nk, it, nit, keys_r, tree_r) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10]);
    let mut a = Assembler::new();
    a.mov_imm(keys_r, KEYS as i64);
    a.mov_imm(tree_r, TREE as i64);
    a.mov_imm(nk, nkeys as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    a.mov_imm(ki, 0);
    a.label("keys");
    a.ldx8(key, keys_r, ki);
    a.mov_imm(cur, TREE as i64);
    a.label("descend");
    a.ld(nodekey, cur, 16);
    a.blt(key, nodekey, "go_left");
    a.ld(t, cur, 8); // right child offset (loaded)
    a.jmp("check");
    a.label("go_left");
    a.ld(t, cur, 0); // left child offset (loaded)
    a.label("check");
    // Offset-based child link: the invertible `add` lets declassification
    // of `cur` backward-untaint the loaded offset, whose L1 bytes then
    // clear — repeated descents over the hot tree get faster. The loop
    // exit compares the computed pointer so the offset never feeds a
    // branch directly.
    a.add(cur, tree_r, t);
    a.bne(cur, tree_r, "descend");
    a.addi(ki, ki, 1);
    a.blt(ki, nk, "keys");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("xalancbmk");
    let mut mem_init = Vec::new();
    // A complete binary tree laid out level-by-level with randomized keys
    // that respect BST order loosely (exact order is irrelevant: descent
    // terminates at a leaf regardless).
    for k in 0..nodes {
        let node = TREE + k * 32;
        let (l, r) = (2 * k + 1, 2 * k + 2);
        mem_init.push((node, if l < nodes { l * 32 } else { 0 }));
        mem_init.push((node + 8, if r < nodes { r * 32 } else { 0 }));
        mem_init.push((node + 16, rng.gen_range(0..1_000_000)));
    }
    for k in 0..nkeys {
        mem_init.push((KEYS + 8 * k, rng.gen_range(0..1_000_000)));
    }
    Workload {
        name: "xalancbmk",
        category: Category::SpecInt,
        description: "DOM-tree descent: loaded child pointers plus key-compare branches",
        program: a.assemble().expect("xalancbmk assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `x264`: sum of absolute differences over byte blocks.
pub fn x264(scale: Scale) -> Workload {
    const BLK_A: u64 = 0xa0_0000;
    const BLK_B: u64 = 0xa1_0000;
    let (len, iters) = match scale {
        Scale::Test => (256u64, 2u64),
        Scale::Bench => (16_384, 2_000_000),
    };
    let (j, va, vb, d, m, acc, len_r, it, nit, pa, pb) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10], R[11]);
    let mut a = Assembler::new();
    a.mov_imm(pa, BLK_A as i64);
    a.mov_imm(pb, BLK_B as i64);
    a.mov_imm(len_r, len as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.label("outer");
    a.mov_imm(j, 0);
    a.label("sad");
    a.ldxb(va, pa, j);
    a.ldxb(vb, pb, j);
    a.sub(d, va, vb);
    a.sari(m, d, 63);
    a.xor(d, d, m);
    a.sub(d, d, m); // |va - vb| branch-free
    a.add(acc, acc, d);
    a.addi(j, j, 1);
    a.blt(j, len_r, "sad");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("x264");
    let mut mem_init = Vec::new();
    for k in 0..(len / 8) {
        mem_init.push((BLK_A + 8 * k, rng.gen::<u64>()));
        mem_init.push((BLK_B + 8 * k, rng.gen::<u64>()));
    }
    Workload {
        name: "x264",
        category: Category::SpecInt,
        description: "SAD kernel: streaming byte loads, branch-free arithmetic, L1-resident",
        program: a.assemble().expect("x264 assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `deepsjeng`: transposition-table probes.
pub fn deepsjeng(scale: Scale) -> Workload {
    const TABLE: u64 = 0xb0_0000;
    let (words, iters) = match scale {
        Scale::Test => (512u64, 64u64),
        Scale::Bench => (131_072, 4_000_000), // 1 MiB table
    };
    let mask = (words - 1) as i64;
    let (h, e, t, acc, it, nit, tab) = (R[1], R[2], R[3], R[4], R[5], R[6], R[7]);
    let mut a = Assembler::new();
    a.mov_imm(tab, TABLE as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(h, 0x1357_9bdf);
    a.mov_imm(acc, 0);
    a.label("probe");
    a.muli(h, h, 0x2545_f491);
    a.addi(h, h, 0x9e37);
    a.shri(t, h, 16);
    a.andi(t, t, mask);
    a.ldx8(e, tab, t); // table entry (loaded)
    a.andi(t, e, 1);
    a.beq(t, Reg::R0, "miss"); // branch on loaded data
    a.addi(acc, acc, 3);
    a.jmp("cont");
    a.label("miss");
    a.subi(acc, acc, 1);
    a.label("cont");
    // Position evaluation: mobility/material arithmetic between probes.
    a.xor(acc, acc, e);
    a.muli(t, acc, 0x6a09);
    a.shri(t, t, 7);
    a.add(acc, acc, t);
    a.shli(t, acc, 3);
    a.sub(acc, t, acc);
    a.andi(acc, acc, 0xffff_ffff);
    a.ori(acc, acc, 1);
    a.addi(it, it, 1);
    a.blt(it, nit, "probe");
    a.halt();

    let mut rng = rng_for("deepsjeng");
    let mut mem_init = Vec::new();
    for k in 0..words {
        mem_init.push((TABLE + 8 * k, rng.gen::<u64>() & 0xffff));
    }
    Workload {
        name: "deepsjeng",
        category: Category::SpecInt,
        description:
            "transposition-table probes: hashed addresses, hard-to-predict loaded branches",
        program: a.assemble().expect("deepsjeng assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `leela`: board scan with neighbour gathers.
pub fn leela(scale: Scale) -> Workload {
    const BOARD: u64 = 0xc0_0000;
    let (dim, iters) = match scale {
        Scale::Test => (16u64, 2u64),
        Scale::Bench => (256, 50_000), // 64 KiB board of bytes
    };
    let cells = dim * dim;
    let (i, c, n1, n2, acc, cells_r, it, nit, board) =
        (R[1], R[2], R[3], R[4], R[5], R[7], R[8], R[9], R[10]);
    let mut a = Assembler::new();
    a.mov_imm(board, BOARD as i64);
    a.mov_imm(cells_r, (cells - dim) as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.label("outer");
    a.mov_imm(i, 1);
    a.label("scan");
    a.ldxb(c, board, i);
    a.beq(c, Reg::R0, "empty"); // branch on loaded cell
    a.load_idx(n1, board, i, 0, 1, spt_isa::MemSize::B1); // east neighbour
    a.load_idx(n2, board, i, 0, dim as i64, spt_isa::MemSize::B1); // south neighbour
    a.add(acc, acc, n1);
    a.add(acc, acc, n2);
    a.label("empty");
    a.addi(i, i, 1);
    a.blt(i, cells_r, "scan");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("leela");
    let mut mem_init = Vec::new();
    for k in 0..(cells / 8) {
        let mut w = 0u64;
        for b in 0..8 {
            w |= (rng.gen_range(0..3u64)) << (8 * b);
        }
        mem_init.push((BOARD + 8 * k, w));
    }
    Workload {
        name: "leela",
        category: Category::SpecInt,
        description: "Go-board scan: byte gathers with occupancy branches",
        program: a.assemble().expect("leela assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `exchange2`: explicit-stack backtracking.
pub fn exchange2(scale: Scale) -> Workload {
    const STACK: u64 = 0xd0_0000;
    let (depth, iters) = match scale {
        Scale::Test => (16u64, 4u64),
        Scale::Bench => (64, 2_000_000),
    };
    let (sp, v, d, acc, depth_r, it, nit, t) = (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8]);
    let mut a = Assembler::new();
    a.mov_imm(depth_r, depth as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.mov_imm(v, 0x1234_5678);
    a.label("outer");
    a.mov_imm(sp, STACK as i64);
    a.mov_imm(d, 0);
    // Push phase: store candidate states.
    a.label("push");
    a.st(v, sp, 0);
    a.muli(v, v, 0x41c6_4e6d);
    a.addi(v, v, 12345);
    a.shri(t, v, 16);
    a.xor(v, v, t);
    a.addi(sp, sp, 8);
    a.addi(d, d, 1);
    a.blt(d, depth_r, "push");
    // Pop phase: reload in reverse, branch on parity of each state.
    a.label("pop");
    a.subi(sp, sp, 8);
    a.ld(t, sp, 0); // forwarded from the push in the same window
    a.andi(t, t, 1);
    a.beq(t, Reg::R0, "even");
    a.addi(acc, acc, 1);
    a.label("even");
    a.subi(d, d, 1);
    a.bne(d, Reg::R0, "pop");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    Workload {
        name: "exchange2",
        category: Category::SpecInt,
        description: "backtracking on an explicit stack: dense store-to-load forwarding",
        program: a.assemble().expect("exchange2 assembles"),
        mem_init: Vec::new(),
        secret_ranges: vec![],
    }
}

/// `xz`: match-length loops over a history buffer.
pub fn xz(scale: Scale) -> Workload {
    const HIST: u64 = 0xe0_0000;
    let (hist_len, iters) = match scale {
        Scale::Test => (4096u64, 80u64),
        Scale::Bench => (4_194_304, 300_000), // 4 MiB history
    };
    let mask = (hist_len - 1) as i64;
    let (p1, p2, c1, c2, j, h, acc, it, nit, hist, t, sixteen) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10], R[11], R[12]);
    let mut a = Assembler::new();
    a.mov_imm(hist, HIST as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(sixteen, 64);
    a.mov_imm(it, 0);
    a.mov_imm(h, 0xbeef);
    a.mov_imm(acc, 0);
    a.label("outer");
    // Pick two pseudo-random window offsets.
    a.muli(h, h, 0x2545_f491);
    a.addi(h, h, 7);
    a.andi(p1, h, mask);
    a.shri(t, h, 13);
    a.andi(p2, t, mask);
    a.add(p1, p1, hist);
    a.add(p2, p2, hist);
    a.mov_imm(j, 0);
    a.label("match");
    // memcmp-style word compares with CRC-ish accumulation in between.
    a.load_idx(c1, p1, j, 0, 0, spt_isa::MemSize::B8);
    a.load_idx(c2, p2, j, 0, 0, spt_isa::MemSize::B8);
    a.muli(t, acc, 0x1db7);
    a.shri(t, t, 3);
    a.xor(acc, acc, t);
    a.bne(c1, c2, "mismatch"); // data-dependent early exit
    a.addi(j, j, 8);
    a.blt(j, sixteen, "match");
    a.label("mismatch");
    a.add(acc, acc, j);
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("xz");
    let mut mem_init = Vec::new();
    for k in 0..(hist_len / 8) {
        // Low-entropy bytes so matches have varied lengths.
        let mut w = 0u64;
        for b in 0..8 {
            w |= (rng.gen_range(0..4u64)) << (8 * b);
        }
        mem_init.push((HIST + 8 * k, w));
    }
    Workload {
        name: "xz",
        category: Category::SpecInt,
        description: "LZ match loops: byte compares with data-dependent exits over a big history",
        program: a.assemble().expect("xz assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `bwaves`: streaming 3-point stencil.
pub fn bwaves(scale: Scale) -> Workload {
    const SRC: u64 = 0x100_0000;
    const DST: u64 = 0x140_0000;
    let (n, iters) = match scale {
        Scale::Test => (256u64, 2u64),
        Scale::Bench => (262_144, 200_000), // 2 MiB per array
    };
    let (j, v0, v1, v2, n_r, it, nit, src, dst) =
        (R[1], R[2], R[3], R[4], R[6], R[7], R[8], R[9], R[10]);
    let mut a = Assembler::new();
    a.mov_imm(src, SRC as i64);
    a.mov_imm(dst, DST as i64);
    a.mov_imm(n_r, (n - 2) as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    a.mov_imm(j, 0);
    a.label("stencil");
    a.ldx8(v0, src, j);
    a.load_idx(v1, src, j, 3, 8, spt_isa::MemSize::B8);
    a.load_idx(v2, src, j, 3, 16, spt_isa::MemSize::B8);
    a.muli(v1, v1, 3);
    a.add(v0, v0, v1);
    a.add(v0, v0, v2);
    a.shri(v0, v0, 2);
    a.stx8(v0, dst, j);
    a.addi(j, j, 1);
    a.blt(j, n_r, "stencil");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("bwaves");
    let mut mem_init = Vec::new();
    for k in 0..n {
        mem_init.push((SRC + 8 * k, rng.gen_range(0..1u64 << 32)));
    }
    Workload {
        name: "bwaves",
        category: Category::SpecFp,
        description: "blast-wave stencil: streaming loads/stores, loop-only branches",
        program: a.assemble().expect("bwaves assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `cactuBSSN`: wide-neighbourhood stencil on an L2-resident grid.
pub fn cactu(scale: Scale) -> Workload {
    const GRID: u64 = 0x180_0000;
    const OUT: u64 = 0x1c0_0000;
    let (dim, iters) = match scale {
        Scale::Test => (16u64, 2u64),
        Scale::Bench => (160, 20_000), // ~200 KiB grid
    };
    let n = dim * dim;
    let (j, acc, v, lim, it, nit, grid, out) = (R[1], R[2], R[3], R[5], R[6], R[7], R[8], R[9]);
    let mut a = Assembler::new();
    a.mov_imm(grid, GRID as i64);
    a.mov_imm(out, OUT as i64);
    a.mov_imm(lim, (n - dim - 1) as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    a.mov_imm(j, (dim + 1) as i64);
    a.label("point");
    a.mov_imm(acc, 0);
    for off in [-(dim as i64) * 8, -8, 0, 8, dim as i64 * 8] {
        a.load_idx(v, grid, j, 3, off, spt_isa::MemSize::B8);
        a.muli(v, v, 5);
        a.add(acc, acc, v);
        a.shri(acc, acc, 1);
    }
    a.stx8(acc, out, j);
    a.addi(j, j, 1);
    a.blt(j, lim, "point");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("cactu");
    let mut mem_init = Vec::new();
    for k in 0..n {
        mem_init.push((GRID + 8 * k, rng.gen_range(0..1u64 << 24)));
    }
    Workload {
        name: "cactuBSSN",
        category: Category::SpecFp,
        description: "relativity stencil: five-point gathers, arithmetic dense, L2 resident",
        program: a.assemble().expect("cactu assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `namd`: pair-list gather with L1-resident positions.
pub fn namd(scale: Scale) -> Workload {
    const IDX: u64 = 0x200_0000;
    const POS: u64 = 0x201_0000;
    let (npos, npairs, iters) = match scale {
        Scale::Test => (128u64, 64u64, 2u64),
        Scale::Bench => (2048, 1024, 500_000), // 16 KiB positions, pair list reused
    };
    let (k, i1, i2, x1, x2, d, acc, t, np, it, nit, idx, pos) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10], R[11], R[12], R[13]);
    let mut a = Assembler::new();
    a.mov_imm(idx, IDX as i64);
    a.mov_imm(pos, POS as i64);
    a.mov_imm(np, npairs as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.label("outer");
    a.mov_imm(k, 0);
    a.label("pair");
    a.shli(t, k, 1); // pairs have a 16-byte stride: index in 8-byte units
    a.ldx8(i1, idx, t);
    a.load_idx(i2, idx, t, 3, 8, spt_isa::MemSize::B8);
    a.ldx8(x1, pos, i1); // gather: the loaded index is a leaked operand
    a.ldx8(x2, pos, i2);
    a.sub(d, x1, x2);
    a.mul(d, d, d);
    a.shri(d, d, 8);
    a.add(acc, acc, d);
    a.addi(k, k, 1);
    a.blt(k, np, "pair");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("namd");
    let mut mem_init = Vec::new();
    for p in 0..npairs {
        mem_init.push((IDX + 16 * p, rng.gen_range(0..npos)));
        mem_init.push((IDX + 16 * p + 8, rng.gen_range(0..npos)));
    }
    for p in 0..npos {
        mem_init.push((POS + 8 * p, rng.gen_range(0..1u64 << 20)));
    }
    Workload {
        name: "namd",
        category: Category::SpecFp,
        description: "molecular pair gather: small hot positions array, forward-untaint friendly",
        program: a.assemble().expect("namd assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `parest`: CSR sparse matrix-vector product.
pub fn parest(scale: Scale) -> Workload {
    const COL: u64 = 0x240_0000;
    const VAL: u64 = 0x280_0000;
    const X: u64 = 0x2c0_0000;
    const Y: u64 = 0x2d0_0000;
    let (rows, nnz_per_row, iters) = match scale {
        Scale::Test => (32u64, 4u64, 2u64),
        Scale::Bench => (16_384, 8, 200_000), // 1 MiB of values + 1 MiB of x
    };
    let ncols = rows;
    let (r_i, j, c, v, x, acc, t, rows_r, nnz_r, it, nit) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10], R[11]);
    let (col_r, val_r, x_r, y_r) = (R[12], R[13], R[14], R[15]);
    let mut a = Assembler::new();
    a.mov_imm(col_r, COL as i64);
    a.mov_imm(val_r, VAL as i64);
    a.mov_imm(x_r, X as i64);
    a.mov_imm(y_r, Y as i64);
    a.mov_imm(rows_r, rows as i64);
    a.mov_imm(nnz_r, nnz_per_row as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    a.mov_imm(r_i, 0);
    a.label("row");
    a.mov_imm(acc, 0);
    a.mov_imm(j, 0);
    a.label("nz");
    a.mul(t, r_i, nnz_r);
    a.add(t, t, j);
    a.ldx8(c, col_r, t); // column index (loaded)
    a.ldx8(v, val_r, t);
    a.ldx8(x, x_r, c); // x[col[j]] gather: the loaded index is leaked
    a.mul(x, x, v);
    a.add(acc, acc, x);
    a.addi(j, j, 1);
    a.blt(j, nnz_r, "nz");
    a.stx8(acc, y_r, r_i);
    a.addi(r_i, r_i, 1);
    a.blt(r_i, rows_r, "row");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("parest");
    let mut mem_init = Vec::new();
    for k in 0..(rows * nnz_per_row) {
        mem_init.push((COL + 8 * k, rng.gen_range(0..ncols)));
        mem_init.push((VAL + 8 * k, rng.gen_range(0..256)));
    }
    for k in 0..ncols {
        mem_init.push((X + 8 * k, rng.gen_range(0..4096)));
    }
    Workload {
        name: "parest",
        category: Category::SpecFp,
        description: "FEM sparse mat-vec: streaming CSR with indirect x[col[j]] gathers",
        program: a.assemble().expect("parest assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `povray`: multiply-heavy ray-intersection tests.
pub fn povray(scale: Scale) -> Workload {
    const SPHERES: u64 = 0x300_0000;
    let (nspheres, iters) = match scale {
        Scale::Test => (16u64, 4u64),
        Scale::Bench => (256, 1_000_000),
    };
    let (s, cx, r2, dx, disc, acc, t, ns, it, nit, sph, ray) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10], R[11], R[12]);
    let mut a = Assembler::new();
    a.mov_imm(sph, SPHERES as i64);
    a.mov_imm(ns, nspheres as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.mov_imm(ray, 1000);
    a.label("outer");
    a.mov_imm(s, 0);
    a.label("sphere");
    a.shli(t, s, 1); // 16-byte sphere records
    a.ldx8(cx, sph, t); // centre
    a.load_idx(r2, sph, t, 3, 8, spt_isa::MemSize::B8); // radius^2
    a.sub(dx, cx, ray);
    a.mul(disc, dx, dx);
    a.muli(disc, disc, 3);
    a.shri(disc, disc, 2);
    a.sub(disc, r2, disc);
    // Branch on a *computed* sign — SPT forward-untaints this quickly once
    // the sphere data has been declassified by earlier iterations.
    a.bge(disc, Reg::R0, "hit");
    a.jmp("cont");
    a.label("hit");
    a.add(acc, acc, disc);
    a.label("cont");
    a.addi(s, s, 1);
    a.blt(s, ns, "sphere");
    a.muli(ray, ray, 13);
    a.andi(ray, ray, 0xffff);
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("povray");
    let mut mem_init = Vec::new();
    for k in 0..nspheres {
        mem_init.push((SPHERES + 16 * k, rng.gen_range(0..65_536)));
        mem_init.push((SPHERES + 16 * k + 8, rng.gen_range(0..1u64 << 28)));
    }
    Workload {
        name: "povray",
        category: Category::SpecFp,
        description: "ray-sphere tests: multiply chains with sign branches, tiny working set",
        program: a.assemble().expect("povray assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `fotonik3d`: DRAM-bound field update.
pub fn fotonik(scale: Scale) -> Workload {
    const E: u64 = 0x340_0000;
    const H: u64 = 0x380_0000;
    let (n, iters) = match scale {
        Scale::Test => (512u64, 2u64),
        Scale::Bench => (524_288, 100_000), // 4 MiB per field
    };
    let (j, e, h, t, n_r, it, nit, e_r, h_r) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9]);
    let mut a = Assembler::new();
    a.mov_imm(e_r, E as i64);
    a.mov_imm(h_r, H as i64);
    a.mov_imm(n_r, n as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    a.mov_imm(j, 0);
    a.label("update");
    a.ldx8(h, h_r, j);
    a.shri(h, h, 2);
    a.ldx8(e, e_r, j);
    a.add(t, e, h);
    a.stx8(t, e_r, j);
    a.addi(j, j, 1);
    a.blt(j, n_r, "update");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("fotonik");
    let mut mem_init = Vec::new();
    for k in 0..n {
        mem_init.push((E + 8 * k, rng.gen_range(0..1u64 << 30)));
        mem_init.push((H + 8 * k, rng.gen_range(0..1u64 << 30)));
    }
    Workload {
        name: "fotonik3d",
        category: Category::SpecFp,
        description: "FDTD field update: pure streaming, DRAM-bandwidth bound, loop-only branches",
        program: a.assemble().expect("fotonik assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `lbm`: lattice-Boltzmann fluid solver.
pub fn lbm(scale: Scale) -> Workload {
    const DIST: u64 = 0x400_0000;
    const OUT: u64 = 0x440_0000;
    let (cells, iters) = match scale {
        Scale::Test => (256u64, 2u64),
        Scale::Bench => (262_144, 100_000), // 2 MiB distributions
    };
    let (j, acc, v, n_r, it, nit, dist, out) = (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8]);
    let mut a = Assembler::new();
    a.mov_imm(dist, DIST as i64);
    a.mov_imm(out, OUT as i64);
    a.mov_imm(n_r, (cells - 8) as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    a.mov_imm(j, 0);
    a.label("cell");
    a.mov_imm(acc, 0);
    // Gather a 5-direction neighbourhood of distribution values and relax.
    for off in [0i64, 8, 16, 32, 56] {
        a.load_idx(v, dist, j, 3, off, spt_isa::MemSize::B8);
        a.muli(v, v, 3);
        a.shri(v, v, 2);
        a.add(acc, acc, v);
    }
    a.shri(acc, acc, 1);
    a.stx8(acc, out, j);
    a.addi(j, j, 1);
    a.blt(j, n_r, "cell");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("lbm");
    let mut mem_init = Vec::new();
    for k in 0..cells {
        mem_init.push((DIST + 8 * k, rng.gen_range(0..1u64 << 28)));
    }
    Workload {
        name: "lbm",
        category: Category::SpecFp,
        description: "lattice-Boltzmann relaxation: wide streaming gathers, store heavy",
        program: a.assemble().expect("lbm assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `wrf`: weather model column physics with lookup tables.
pub fn wrf(scale: Scale) -> Workload {
    const FIELD: u64 = 0x480_0000;
    const TABLE: u64 = 0x4c0_0000;
    let (cells, table_words, iters) = match scale {
        Scale::Test => (128u64, 128u64, 2u64),
        Scale::Bench => (65_536, 2048, 100_000),
    };
    let tmask = (table_words - 1) as i64;
    let (j, v, t, idx, acc, n_r, it, nit, field, table) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10]);
    let mut a = Assembler::new();
    a.mov_imm(field, FIELD as i64);
    a.mov_imm(table, TABLE as i64);
    a.mov_imm(n_r, cells as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.label("outer");
    a.mov_imm(j, 0);
    a.label("col");
    a.ldx8(v, field, j); // field value (loaded)
                         // Saturation lookup: the table index derives from the loaded value —
                         // a loaded-data-to-address flow, declassified per access.
    a.shri(idx, v, 6);
    a.andi(idx, idx, tmask);
    a.ldx8(t, table, idx);
    a.mul(t, t, v);
    a.shri(t, t, 12);
    a.add(acc, acc, t);
    a.stx8(acc, field, j);
    a.addi(j, j, 1);
    a.blt(j, n_r, "col");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("wrf");
    let mut mem_init = Vec::new();
    for k in 0..cells {
        mem_init.push((FIELD + 8 * k, rng.gen_range(0..1u64 << 20)));
    }
    for k in 0..table_words {
        mem_init.push((TABLE + 8 * k, rng.gen_range(1..4096)));
    }
    Workload {
        name: "wrf",
        category: Category::SpecFp,
        description: "column physics: streaming field update through hot lookup tables",
        program: a.assemble().expect("wrf assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `cam4`: atmosphere model with conditional physics branches.
pub fn cam4(scale: Scale) -> Workload {
    const STATE: u64 = 0x500_0000;
    let (cells, iters) = match scale {
        Scale::Test => (256u64, 2u64),
        Scale::Bench => (131_072, 100_000), // 1 MiB state
    };
    let (j, v, acc, thr, n_r, it, nit, st) = (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8]);
    let mut a = Assembler::new();
    a.mov_imm(st, STATE as i64);
    a.mov_imm(thr, 1 << 19);
    a.mov_imm(n_r, cells as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.label("outer");
    a.mov_imm(j, 0);
    a.label("cell");
    a.ldx8(v, st, j);
    // Conditional physics: branch on loaded humidity-like value.
    a.blt(v, thr, "dry");
    a.muli(v, v, 7);
    a.shri(v, v, 3);
    a.jmp("wet");
    a.label("dry");
    a.addi(v, v, 97);
    a.label("wet");
    a.add(acc, acc, v);
    a.stx8(v, st, j);
    a.addi(j, j, 1);
    a.blt(j, n_r, "cell");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("cam4");
    let mut mem_init = Vec::new();
    for k in 0..cells {
        mem_init.push((STATE + 8 * k, rng.gen_range(0..1u64 << 20)));
    }
    Workload {
        name: "cam4",
        category: Category::SpecFp,
        description: "atmosphere physics: streaming with hard-to-predict loaded-value branches",
        program: a.assemble().expect("cam4 assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `imagick`: 2D convolution.
pub fn imagick(scale: Scale) -> Workload {
    const IMG: u64 = 0x540_0000;
    const DST: u64 = 0x580_0000;
    let (dim, iters) = match scale {
        Scale::Test => (16u64, 2u64),
        Scale::Bench => (256, 20_000), // 512 KiB image
    };
    let n = dim * dim;
    let (j, acc, v, lim, it, nit, img, dst) = (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8]);
    let mut a = Assembler::new();
    a.mov_imm(img, IMG as i64);
    a.mov_imm(dst, DST as i64);
    a.mov_imm(lim, (n - 2 * dim - 2) as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    a.mov_imm(j, (dim + 1) as i64);
    a.label("pixel");
    a.mov_imm(acc, 0);
    for (off, w) in [
        (-(dim as i64) * 8 - 8, 1i64),
        (-(dim as i64) * 8, 2),
        (-(dim as i64) * 8 + 8, 1),
        (-8, 2),
        (0, 4),
        (8, 2),
        (dim as i64 * 8 - 8, 1),
        (dim as i64 * 8, 2),
        (dim as i64 * 8 + 8, 1),
    ] {
        a.load_idx(v, img, j, 3, off, spt_isa::MemSize::B8);
        a.muli(v, v, w);
        a.add(acc, acc, v);
    }
    a.shri(acc, acc, 4);
    a.stx8(acc, dst, j);
    a.addi(j, j, 1);
    a.blt(j, lim, "pixel");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("imagick");
    let mut mem_init = Vec::new();
    for k in 0..n {
        mem_init.push((IMG + 8 * k, rng.gen_range(0..256)));
    }
    Workload {
        name: "imagick",
        category: Category::SpecFp,
        description: "3x3 convolution: nine-point gathers, multiply dense, branch light",
        program: a.assemble().expect("imagick assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `nab`: molecular dynamics with iterative reciprocal refinement.
pub fn nab(scale: Scale) -> Workload {
    const POS: u64 = 0x5c0_0000;
    let (npos, iters) = match scale {
        Scale::Test => (64u64, 4u64),
        Scale::Bench => (4096, 200_000), // 32 KiB positions
    };
    let (k, x1, x2, d, r, t, acc, np, it, nit, pos) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10], R[11]);
    let mut a = Assembler::new();
    a.mov_imm(pos, POS as i64);
    a.mov_imm(np, (npos - 1) as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.mov_imm(acc, 0);
    a.label("outer");
    a.mov_imm(k, 0);
    a.label("pair");
    a.ldx8(x1, pos, k);
    a.load_idx(x2, pos, k, 3, 8, spt_isa::MemSize::B8);
    a.sub(d, x1, x2);
    a.mul(d, d, d);
    a.ori(d, d, 1);
    // Newton-style reciprocal refinement: a serial multiply chain per
    // pair (the latency-bound inner loop nab is known for).
    a.mov_imm(r, 1 << 20);
    for _ in 0..3 {
        a.mul(t, r, d);
        a.shri(t, t, 21);
        a.muli(t, t, -1);
        a.addi(t, t, 2 << 20);
        a.mul(r, r, t);
        a.shri(r, r, 21);
    }
    a.add(acc, acc, r);
    a.addi(k, k, 1);
    a.blt(k, np, "pair");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("nab");
    let mut mem_init = Vec::new();
    for p in 0..npos {
        mem_init.push((POS + 8 * p, rng.gen_range(1..1u64 << 16)));
    }
    Workload {
        name: "nab",
        category: Category::SpecFp,
        description: "nucleic-acid dynamics: serial multiply chains dominate, few branches",
        program: a.assemble().expect("nab assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// `roms`: ocean model multi-field stencil.
pub fn roms(scale: Scale) -> Workload {
    const U: u64 = 0x600_0000;
    const W: u64 = 0x640_0000;
    const OUT: u64 = 0x680_0000;
    let (n, iters) = match scale {
        Scale::Test => (256u64, 2u64),
        Scale::Bench => (262_144, 100_000), // 2 MiB per field
    };
    let (j, u, w, v, n_r, it, nit, u_r, w_r, out) =
        (R[1], R[2], R[3], R[4], R[5], R[6], R[7], R[8], R[9], R[10]);
    let mut a = Assembler::new();
    a.mov_imm(u_r, U as i64);
    a.mov_imm(w_r, W as i64);
    a.mov_imm(out, OUT as i64);
    a.mov_imm(n_r, (n - 2) as i64);
    a.mov_imm(nit, iters as i64);
    a.mov_imm(it, 0);
    a.label("outer");
    a.mov_imm(j, 0);
    a.label("point");
    a.ldx8(u, u_r, j);
    a.load_idx(v, u_r, j, 3, 8, spt_isa::MemSize::B8);
    a.add(u, u, v);
    a.ldx8(w, w_r, j);
    a.load_idx(v, w_r, j, 3, 16, spt_isa::MemSize::B8);
    a.sub(w, w, v);
    a.mul(u, u, w);
    a.shri(u, u, 8);
    a.stx8(u, out, j);
    a.addi(j, j, 1);
    a.blt(j, n_r, "point");
    a.addi(it, it, 1);
    a.blt(it, nit, "outer");
    a.halt();

    let mut rng = rng_for("roms");
    let mut mem_init = Vec::new();
    for k in 0..n {
        mem_init.push((U + 8 * k, rng.gen_range(0..1u64 << 16)));
        mem_init.push((W + 8 * k, rng.gen_range(0..1u64 << 16)));
    }
    Workload {
        name: "roms",
        category: Category::SpecFp,
        description: "ocean-model stencil: two streamed fields combined, bandwidth bound",
        program: a.assemble().expect("roms assembles"),
        mem_init,
        secret_ranges: vec![],
    }
}

/// The 22-benchmark SPEC CPU2017-rate proxy suite in Figure-7 order
/// (integer suite first, then floating point).
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        perlbench(scale),
        gcc(scale),
        mcf(scale),
        omnetpp(scale),
        xalancbmk(scale),
        x264(scale),
        deepsjeng(scale),
        leela(scale),
        exchange2(scale),
        xz(scale),
        bwaves(scale),
        cactu(scale),
        namd(scale),
        parest(scale),
        povray(scale),
        lbm(scale),
        wrf(scale),
        cam4(scale),
        imagick(scale),
        nab(scale),
        fotonik(scale),
        roms(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_proxy_halts_and_is_deterministic() {
        for w in suite(Scale::Test) {
            let mut i1 = w.interp();
            i1.run(3_000_000).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(i1.halted(), "{}", w.name);
            let mut i2 = w.interp();
            i2.run(3_000_000).unwrap();
            assert_eq!(i1.retired(), i2.retired(), "{}", w.name);
        }
    }

    #[test]
    fn proxies_execute_meaningful_instruction_counts() {
        for w in suite(Scale::Test) {
            let mut i = w.interp();
            i.run(3_000_000).unwrap();
            assert!(
                i.retired() > 500,
                "{} retired only {} instructions at test scale",
                w.name,
                i.retired()
            );
        }
    }

    #[test]
    fn bench_scale_assembles() {
        // Bench-scale programs are identical code with bigger parameters;
        // just verify they build and their memory images are sized sanely.
        let total: usize = suite(Scale::Bench).iter().map(|w| w.mem_init.len()).sum();
        assert!(total > 500_000, "bench memory images should be substantial, got {total}");
    }

    #[test]
    fn perlbench_jump_table_points_into_program() {
        let w = perlbench(Scale::Test);
        let plen = w.program.len() as u64;
        for (addr, val) in &w.mem_init {
            if (0x11_0000..0x11_0000 + 40).contains(addr) {
                assert!(*val < plen, "jump table entry {val} out of program bounds");
            }
        }
    }
}
