//! Penetration-test attack programs (paper §9.1).
//!
//! Two attacks, each with an in-simulator cache-timing receiver (probing
//! which probe-array line got cached — the same observation Flush+Reload
//! makes through latency):
//!
//! * [`spectre_v1`] — the classic bounds-check-bypass universal read
//!   gadget. The victim's bounds branch is trained taken, then supplied an
//!   out-of-bounds index whose bound arrives through a slow pointer chain,
//!   opening a wide transient window. Blocked by STT *and* SPT (the leaked
//!   data is speculatively accessed).
//! * [`ct_secret`] — the paper's motivating attack on constant-time code
//!   (§3): the secret is read into a register by a *retired* load (it is
//!   non-speculatively accessed, but never leaked — a non-speculative
//!   secret), and a mistrained indirect jump transiently executes a
//!   transmit gadget with that register. STT does **not** block this
//!   (the data is not speculatively accessed); SPT does.

use crate::Workload;
use spt_isa::asm::Assembler;
use spt_isa::Reg;

/// An attack program plus the receiver's probe parameters.
#[derive(Clone, Debug)]
pub struct Attack {
    /// The victim+attacker program and its memory image.
    pub workload: Workload,
    /// Base of the probe (receiver) array.
    pub probe_base: u64,
    /// The secret value the attack tries to exfiltrate.
    pub secret: u64,
    /// Probe-line stride (one cache line per secret value).
    pub stride: u64,
    /// A probe value touched architecturally during training (so tests can
    /// confirm the receiver works at all).
    pub trained_value: u64,
}

impl Attack {
    /// The probe address whose caching reveals the secret.
    pub fn leak_addr(&self) -> u64 {
        self.probe_base + self.secret * self.stride
    }

    /// The probe address touched architecturally during training.
    pub fn trained_addr(&self) -> u64 {
        self.probe_base + self.trained_value * self.stride
    }
}

const PROBE: u64 = 0x1_0000; // probe array B (64-byte lines per value)
const SECRET_VALUE: u64 = 5;

/// Builds the Spectre V1 bounds-check-bypass attack.
///
/// Victim pseudo-code: `if (i < N) leak(B[A[i] * 64])`. The bound `N` is
/// fetched through a two-level pointer chain that is hot during training
/// and cold on the malicious trial, giving the transient window ~2× DRAM
/// latency.
pub fn spectre_v1() -> Attack {
    const A: u64 = 0x2_0000; // byte array, N = 16
    const IDX: u64 = 0x3_0000; // per-trial indices
    const NPTR: u64 = 0x4_0000; // per-trial pointer to the bound chain
    const HOT1: u64 = 0x5_0000;
    const HOT2: u64 = 0x5_0100;
    const COLD1: u64 = 0x60_0000;
    const COLD2: u64 = 0x64_0000;
    const TRIALS: u64 = 40;
    const N: u64 = 16;
    const OOB: u64 = 64; // A + 64 holds the secret byte

    let (idx, val, gaddr, probe_out, nbound, chain, _t, ctr, ntrials) =
        (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R8, Reg::R9, Reg::R7, Reg::R10, Reg::R11);
    let (a_r, b_r, idx_r, np_r) = (Reg::R12, Reg::R13, Reg::R14, Reg::R15);

    let mut a = Assembler::new();
    a.mov_imm(a_r, A as i64);
    a.mov_imm(b_r, PROBE as i64);
    a.mov_imm(idx_r, IDX as i64);
    a.mov_imm(np_r, NPTR as i64);
    a.mov_imm(ntrials, TRIALS as i64);
    a.mov_imm(ctr, 0);
    a.label("trial");
    // i = IDX[t]
    a.ldx8(idx, idx_r, ctr);
    // N through the per-trial pointer chain (hot in training, cold on the
    // malicious trial).
    a.ldx8(chain, np_r, ctr);
    a.ld(chain, chain, 0);
    a.ld(nbound, chain, 0);
    // Bounds check: trained taken; mispredicts taken on the last trial.
    a.blt(idx, nbound, "inbounds");
    a.jmp("next");
    a.label("inbounds");
    a.ldxb(val, a_r, idx); // A[i] — out of bounds on the transient path
    a.shli(gaddr, val, 6);
    a.add(gaddr, gaddr, b_r);
    a.ld(probe_out, gaddr, 0); // transmit: fills B[A[i]*64]'s line
    a.label("next");
    a.addi(ctr, ctr, 1);
    a.blt(ctr, ntrials, "trial");
    a.halt();
    let program = a.assemble().expect("spectre_v1 assembles");

    let mut mem_init = Vec::new();
    // A[0..16] = 0 (training touches B[0]); the secret byte out of bounds.
    mem_init.push((A, 0));
    mem_init.push((A + 8, 0));
    mem_init.push((A + OOB, SECRET_VALUE));
    for tr in 0..TRIALS {
        let last = tr == TRIALS - 1;
        mem_init.push((IDX + 8 * tr, if last { OOB } else { tr % N }));
        mem_init.push((NPTR + 8 * tr, if last { COLD1 } else { HOT1 }));
    }
    mem_init.push((HOT1, HOT2));
    mem_init.push((HOT2, N));
    mem_init.push((COLD1, COLD2));
    mem_init.push((COLD2, N));

    Attack {
        workload: Workload {
            name: "spectre_v1",
            category: crate::Category::ConstantTime,
            description:
                "bounds-check bypass: transient out-of-bounds read into a cache transmitter",
            program,
            mem_init,
            secret_ranges: vec![(A + OOB, 1)],
        },
        probe_base: PROBE,
        secret: SECRET_VALUE,
        stride: 64,
        trained_value: 0,
    }
}

/// Builds the constant-time-code attack on a *non-speculative secret*.
///
/// The secret is loaded by a retired (architectural) load — exactly what a
/// constant-time crypto routine does with a key — and never passed to any
/// transmitter. A mistrained indirect jump then transiently executes a
/// gadget that transmits the secret-holding register. STT's protection
/// scope (speculatively-accessed data only) misses this; SPT blocks it.
pub fn ct_secret() -> Attack {
    const KEYARR: u64 = 0x2_0000; // [0] = dummy 0 (trained), [8] = secret
    const TPTR: u64 = 0x3_0000; // per-trial pointer chain roots
    const HOTP: u64 = 0x5_0000;
    const HOTQ: u64 = 0x5_0100;
    const COLD1: u64 = 0x60_0000;
    const COLD2: u64 = 0x64_0000;
    const TRIALS: u64 = 8;

    let (key, is_last, _t, target, gaddr, probe_out, ctr, ntrials) =
        (Reg::R20, Reg::R21, Reg::R7, Reg::R10, Reg::R5, Reg::R6, Reg::R11, Reg::R12);
    let (b_r, keys_r, tp_r) = (Reg::R13, Reg::R14, Reg::R15);

    let mut a = Assembler::new();
    a.mov_imm(b_r, PROBE as i64);
    a.mov_imm(keys_r, KEYARR as i64);
    a.mov_imm(tp_r, TPTR as i64);
    a.mov_imm(ntrials, TRIALS as i64);
    a.mov_imm(ctr, 0);
    a.label("trial");
    // Architectural (retiring) load of the key byte: dummy 0 during
    // training, the real secret on the last trial. The address depends
    // only on the public trial counter — this is the constant-time
    // discipline.
    a.seqi(is_last, ctr, TRIALS as i64 - 1);
    a.ldx8(key, keys_r, is_last);
    // Indirect-jump target through the per-trial chain: GADGET (hot) while
    // training, BENIGN (cold chain) on the last trial.
    a.ldx8(target, tp_r, ctr);
    a.ld(target, target, 0);
    a.ld(target, target, 0);
    a.jr(target);
    a.label("gadget");
    // transmit(key): during training key = 0 (and the jump here is
    // architectural); on the last trial this executes only transiently.
    a.shli(gaddr, key, 6);
    a.add(gaddr, gaddr, b_r);
    a.ld(probe_out, gaddr, 0);
    a.label("benign");
    a.addi(ctr, ctr, 1);
    a.blt(ctr, ntrials, "trial");
    a.halt();
    let program = a.assemble().expect("ct_secret assembles");

    let gadget_pc = program.label_pc("gadget").expect("gadget label");
    let benign_pc = program.label_pc("benign").expect("benign label");
    let mut mem_init = Vec::new();
    mem_init.push((KEYARR, 0));
    mem_init.push((KEYARR + 8, SECRET_VALUE));
    for tr in 0..TRIALS {
        let last = tr == TRIALS - 1;
        mem_init.push((TPTR + 8 * tr, if last { COLD1 } else { HOTP }));
    }
    mem_init.push((HOTP, HOTQ));
    mem_init.push((HOTQ, gadget_pc));
    mem_init.push((COLD1, COLD2));
    mem_init.push((COLD2, benign_pc));

    Attack {
        workload: Workload {
            name: "ct_secret",
            category: crate::Category::ConstantTime,
            description:
                "non-speculative secret leak: mistrained indirect jump into a transmit gadget",
            program,
            mem_init,
            secret_ranges: vec![(KEYARR + 8, 8)],
        },
        probe_base: PROBE,
        secret: SECRET_VALUE,
        stride: 64,
        trained_value: 0,
    }
}

/// Builds the *resolution-based implicit channel* attack (paper §2.2): a
/// transient branch whose predicate is a non-speculative secret. If the
/// branch's resolution effects are applied while transient, the redirect
/// steers wrong-path fetch to a secret-dependent arm whose load marks a
/// probe line. STT does not protect the (non-speculatively accessed)
/// predicate, so it leaks; SPT defers the resolution until the predicate is
/// public or the branch reaches the VP — which a wrong-path branch never
/// does.
pub fn implicit_branch() -> Attack {
    const KEYARR: u64 = 0x2_0000; // [0] = dummy 0 (trained), [8] = secret (nonzero)
    const TPTR: u64 = 0x3_0000;
    const HOTP: u64 = 0x5_0000;
    const HOTQ: u64 = 0x5_0100;
    const COLD1: u64 = 0x60_0000;
    const COLD2: u64 = 0x64_0000;
    const TRIALS: u64 = 8;
    // Probe lines: value 1 = "secret was zero" arm (trained), value 2 =
    // "secret was nonzero" arm (only reachable by a transient resolution
    // redirect on the final trial).
    const ZERO_ARM: u64 = 1;
    const NONZERO_ARM: u64 = 2;

    let (key, is_last, _t, target, probe_out, ctr, ntrials) =
        (Reg::R20, Reg::R21, Reg::R7, Reg::R10, Reg::R6, Reg::R11, Reg::R12);
    let (b_r, keys_r, tp_r) = (Reg::R13, Reg::R14, Reg::R15);

    let mut a = Assembler::new();
    a.mov_imm(b_r, PROBE as i64);
    a.mov_imm(keys_r, KEYARR as i64);
    a.mov_imm(tp_r, TPTR as i64);
    a.mov_imm(ntrials, TRIALS as i64);
    a.mov_imm(ctr, 0);
    a.label("trial");
    a.seqi(is_last, ctr, TRIALS as i64 - 1);
    a.ldx8(key, keys_r, is_last); // retiring load: 0 in training, secret last
    a.ldx8(target, tp_r, ctr);
    a.ld(target, target, 0);
    a.ld(target, target, 0);
    a.jr(target); // trained to GADGET; actual BENIGN (slowly) on last trial
    a.label("gadget");
    // The implicit channel: a branch on the (never-transmitted) secret.
    // It never takes during training (key = 0), so the predictor reliably
    // predicts not-taken and the secret arm is *only* reachable through a
    // transient resolution redirect.
    a.bne(key, Reg::R0, "nonzero_arm");
    a.ld(probe_out, b_r, (ZERO_ARM * 64) as i64); // trained fall-through arm
    a.jmp("benign");
    a.label("nonzero_arm");
    a.ld(probe_out, b_r, (NONZERO_ARM * 64) as i64); // secret-dependent arm
    a.label("benign");
    a.addi(ctr, ctr, 1);
    a.blt(ctr, ntrials, "trial");
    a.halt();
    let program = a.assemble().expect("implicit_branch assembles");

    let gadget_pc = program.label_pc("gadget").expect("gadget label");
    let benign_pc = program.label_pc("benign").expect("benign label");
    let mut mem_init = vec![
        (KEYARR, 0),
        (KEYARR + 8, 1), // any nonzero secret flips the branch
        (HOTP, HOTQ),
        (HOTQ, gadget_pc),
        (COLD1, COLD2),
        (COLD2, benign_pc),
    ];
    for tr in 0..TRIALS {
        let last = tr == TRIALS - 1;
        mem_init.push((TPTR + 8 * tr, if last { COLD1 } else { HOTP }));
    }

    Attack {
        workload: Workload {
            name: "implicit_branch",
            category: crate::Category::ConstantTime,
            description:
                "resolution-based implicit channel: transient branch on a non-speculative secret",
            program,
            mem_init,
            secret_ranges: vec![(KEYARR + 8, 8)],
        },
        probe_base: PROBE,
        secret: NONZERO_ARM,
        stride: 64,
        trained_value: ZERO_ARM,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attacks_halt_architecturally() {
        for attack in [spectre_v1(), ct_secret(), implicit_branch()] {
            let mut i = attack.workload.interp();
            i.run(100_000).unwrap_or_else(|e| panic!("{}: {e}", attack.workload.name));
            assert!(i.halted(), "{}", attack.workload.name);
        }
    }

    #[test]
    fn architectural_execution_never_touches_the_leak_line() {
        // On the reference (non-speculative) semantics, the victim never
        // loads from the secret's probe line: the leak can only come from
        // transient execution.
        for attack in [spectre_v1(), ct_secret(), implicit_branch()] {
            let mut i = attack.workload.interp();
            i.enable_trace();
            i.run(100_000).unwrap();
            let leak = attack.leak_addr();
            let touched = i.trace().unwrap().iter().any(|e| {
                matches!(
                    e.kind,
                    spt_isa::interp::LeakKind::LoadAddr | spt_isa::interp::LeakKind::StoreAddr
                ) && e.value / 64 == leak / 64
            });
            assert!(
                !touched,
                "{}: architectural run must not touch the leak line",
                attack.workload.name
            );
        }
    }

    #[test]
    fn training_touches_the_trained_line() {
        for attack in [spectre_v1(), ct_secret(), implicit_branch()] {
            let mut i = attack.workload.interp();
            i.enable_trace();
            i.run(100_000).unwrap();
            let trained = attack.trained_addr();
            let touched = i
                .trace()
                .unwrap()
                .iter()
                .any(|e| e.kind == spt_isa::interp::LeakKind::LoadAddr && e.value == trained);
            assert!(
                touched,
                "{}: training must touch the trained probe line",
                attack.workload.name
            );
        }
    }

    #[test]
    fn leak_addr_math() {
        let a = spectre_v1();
        assert_eq!(a.leak_addr(), PROBE + 5 * 64);
        assert_ne!(a.leak_addr(), a.trained_addr());
    }
}
