//! A small assembler with labels and forward references.

use crate::inst::{AluOp, BranchCond, Inst, MemSize};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`Assembler::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A control-flow target does not fit in the instruction encoding.
    TargetOutOfRange { label: String, pc: u64 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::TargetOutOfRange { label, pc } => {
                write!(f, "target `{label}` at pc {pc} does not fit the encoding")
            }
        }
    }
}

impl Error for AsmError {}

/// Pending fixup for a forward label reference.
#[derive(Clone, Debug)]
enum Fixup {
    Branch(usize),
    Jump(usize),
    Call(usize),
}

/// Builder that assembles a [`Program`] instruction by instruction.
///
/// Control-flow helpers take label names; labels may be defined before or
/// after their uses. [`Assembler::assemble`] resolves all references.
///
/// # Example
///
/// ```
/// use spt_isa::asm::Assembler;
/// use spt_isa::Reg;
///
/// // Sum 0..10 into r2.
/// let mut a = Assembler::new();
/// a.mov_imm(Reg::R1, 0); // i
/// a.mov_imm(Reg::R2, 0); // sum
/// a.mov_imm(Reg::R3, 10);
/// a.label("loop");
/// a.add(Reg::R2, Reg::R2, Reg::R1);
/// a.addi(Reg::R1, Reg::R1, 1);
/// a.blt(Reg::R1, Reg::R3, "loop");
/// a.halt();
/// let p = a.assemble()?;
///
/// let mut i = spt_isa::interp::Interp::new(&p);
/// i.run(10_000)?;
/// assert_eq!(i.reg(Reg::R2), 45);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    insts: Vec<Inst>,
    labels: BTreeMap<String, u32>,
    fixups: Vec<(String, Fixup)>,
    error: Option<AsmError>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// The PC the next emitted instruction will have.
    pub fn pc(&self) -> u64 {
        self.insts.len() as u64
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.insts.push(inst);
        self
    }

    /// Defines `name` at the current PC.
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self.labels.insert(name.to_string(), self.insts.len() as u32).is_some() {
            self.error.get_or_insert(AsmError::DuplicateLabel(name.to_string()));
        }
        self
    }

    /// Finishes assembly, resolving all label references.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] if a referenced label is undefined, a label was
    /// defined twice, or a target does not fit the encoding.
    pub fn assemble(mut self) -> Result<Program, AsmError> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        for (name, fixup) in std::mem::take(&mut self.fixups) {
            let target =
                *self.labels.get(&name).ok_or_else(|| AsmError::UndefinedLabel(name.clone()))?;
            match fixup {
                Fixup::Branch(i) => {
                    if let Inst::Branch { target: t, .. } = &mut self.insts[i] {
                        *t = target;
                    }
                }
                Fixup::Jump(i) => {
                    if let Inst::Jump { target: t } = &mut self.insts[i] {
                        *t = target;
                    }
                }
                Fixup::Call(i) => {
                    if let Inst::Call { target: t, .. } = &mut self.insts[i] {
                        *t = target;
                    }
                }
            }
        }
        Ok(Program::with_labels(self.insts, self.labels))
    }

    // --- data movement ---

    /// `rd = imm`.
    pub fn mov_imm(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::MovImm { rd, imm })
    }

    /// `rd = rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.emit(Inst::Mov { rd, rs })
    }

    // --- ALU reg-reg ---

    /// `rd = op(rs1, rs2)`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `rd = op(rs1, imm)`.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Inst::AluImm { op, rd, rs1, imm })
    }

    // --- memory ---

    /// Load of `size` bytes: `rd = mem[base + offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i64, size: MemSize) -> &mut Self {
        self.emit(Inst::Load { rd, base, index: Reg::ZERO, scale: 0, offset, size })
    }

    /// Store of `size` bytes: `mem[base + offset] = src`.
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64, size: MemSize) -> &mut Self {
        self.emit(Inst::Store { src, base, index: Reg::ZERO, scale: 0, offset, size })
    }

    /// Indexed load: `rd = mem[base + (index << scale) + offset]` (x86-style
    /// scaled addressing; `scale` is 0–3, i.e. ×1/×2/×4/×8).
    pub fn load_idx(
        &mut self,
        rd: Reg,
        base: Reg,
        index: Reg,
        scale: u8,
        offset: i64,
        size: MemSize,
    ) -> &mut Self {
        self.emit(Inst::Load { rd, base, index, scale, offset, size })
    }

    /// Indexed store: `mem[base + (index << scale) + offset] = src`.
    pub fn store_idx(
        &mut self,
        src: Reg,
        base: Reg,
        index: Reg,
        scale: u8,
        offset: i64,
        size: MemSize,
    ) -> &mut Self {
        self.emit(Inst::Store { src, base, index, scale, offset, size })
    }

    /// Indexed 8-byte load: `rd = mem[base + index*8]`.
    pub fn ldx8(&mut self, rd: Reg, base: Reg, index: Reg) -> &mut Self {
        self.load_idx(rd, base, index, 3, 0, MemSize::B8)
    }

    /// Indexed 8-byte store: `mem[base + index*8] = src`.
    pub fn stx8(&mut self, src: Reg, base: Reg, index: Reg) -> &mut Self {
        self.store_idx(src, base, index, 3, 0, MemSize::B8)
    }

    /// Indexed byte load: `rd = mem[base + index]`.
    pub fn ldxb(&mut self, rd: Reg, base: Reg, index: Reg) -> &mut Self {
        self.load_idx(rd, base, index, 0, 0, MemSize::B1)
    }

    /// 8-byte load.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load(rd, base, offset, MemSize::B8)
    }

    /// 8-byte store.
    pub fn st(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.store(src, base, offset, MemSize::B8)
    }

    /// 1-byte load.
    pub fn ldb(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.load(rd, base, offset, MemSize::B1)
    }

    /// 1-byte store.
    pub fn stb(&mut self, src: Reg, base: Reg, offset: i64) -> &mut Self {
        self.store(src, base, offset, MemSize::B1)
    }

    // --- control flow ---

    /// Conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.fixups.push((label.to_string(), Fixup::Branch(self.insts.len())));
        self.emit(Inst::Branch { cond, rs1, rs2, target: 0 })
    }

    /// Unconditional jump to `label`.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.fixups.push((label.to_string(), Fixup::Jump(self.insts.len())));
        self.emit(Inst::Jump { target: 0 })
    }

    /// Indirect jump to the instruction index in `base`.
    pub fn jr(&mut self, base: Reg) -> &mut Self {
        self.emit(Inst::JumpInd { base })
    }

    /// Direct call to `label`, return address in `link`.
    pub fn call(&mut self, label: &str, link: Reg) -> &mut Self {
        self.fixups.push((label.to_string(), Fixup::Call(self.insts.len())));
        self.emit(Inst::Call { target: 0, link })
    }

    /// Indirect call through `base`, return address in `link`.
    pub fn callr(&mut self, base: Reg, link: Reg) -> &mut Self {
        self.emit(Inst::CallInd { base, link })
    }

    /// Return through `link`.
    pub fn ret(&mut self, link: Reg) -> &mut Self {
        self.emit(Inst::Ret { link })
    }

    /// Stops the program.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::Nop)
    }
}

macro_rules! alu_helpers {
    ($(($rr:ident, $ri:ident, $op:ident)),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = concat!("`rd = ", stringify!($op), "(rs1, rs2)`.")]
                pub fn $rr(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                    self.alu(AluOp::$op, rd, rs1, rs2)
                }

                #[doc = concat!("`rd = ", stringify!($op), "(rs1, imm)`.")]
                pub fn $ri(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
                    self.alu_imm(AluOp::$op, rd, rs1, imm)
                }
            )*
        }
    };
}

alu_helpers! {
    (add, addi, Add),
    (sub, subi, Sub),
    (and, andi, And),
    (or, ori, Or),
    (xor, xori, Xor),
    (shl, shli, Shl),
    (shr, shri, Shr),
    (sar, sari, Sar),
    (mul, muli, Mul),
    (slt, slti, Slt),
    (sltu, sltui, Sltu),
    (seq, seqi, Seq),
    (sne, snei, Sne),
    (div, divi, Div),
    (rem, remi, Rem),
}

macro_rules! branch_helpers {
    ($(($name:ident, $cond:ident)),* $(,)?) => {
        impl Assembler {
            $(
                #[doc = concat!("Branch to `label` if the `", stringify!($cond), "` condition holds.")]
                pub fn $name(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
                    self.branch(BranchCond::$cond, rs1, rs2, label)
                }
            )*
        }
    };
}

branch_helpers! {
    (beq, Eq),
    (bne, Ne),
    (blt, Lt),
    (bge, Ge),
    (bltu, Ltu),
    (bgeu, Geu),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Assembler::new();
        a.jmp("end"); // forward reference
        a.label("mid");
        a.nop();
        a.label("end");
        a.beq(Reg::R0, Reg::R0, "mid"); // backward reference
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(0), Some(Inst::Jump { target: 2 }));
        assert_eq!(
            p.fetch(2),
            Some(Inst::Branch { cond: BranchCond::Eq, rs1: Reg::R0, rs2: Reg::R0, target: 1 })
        );
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Assembler::new();
        a.jmp("nowhere");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::UndefinedLabel("nowhere".into())));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Assembler::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn call_fixup() {
        let mut a = Assembler::new();
        a.call("fn", Reg::R31);
        a.halt();
        a.label("fn");
        a.ret(Reg::R31);
        let p = a.assemble().unwrap();
        assert_eq!(p.fetch(0), Some(Inst::Call { target: 2, link: Reg::R31 }));
    }

    #[test]
    fn error_display() {
        let e = AsmError::UndefinedLabel("foo".into());
        assert_eq!(e.to_string(), "undefined label `foo`");
    }
}
