//! Program container: a sequence of instructions plus symbol metadata.

use crate::inst::Inst;
use std::collections::BTreeMap;
use std::fmt;

/// An assembled program: instructions indexed by PC (instruction index),
/// plus the label table produced by the assembler.
///
/// # Example
///
/// ```
/// use spt_isa::asm::Assembler;
/// use spt_isa::Reg;
///
/// let mut a = Assembler::new();
/// a.label("start");
/// a.mov_imm(Reg::R1, 1);
/// a.halt();
/// let p = a.assemble().unwrap();
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.label_pc("start"), Some(0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
    labels: BTreeMap<String, u32>,
}

impl Program {
    /// Creates a program from raw instructions with no labels.
    pub fn from_insts(insts: Vec<Inst>) -> Program {
        Program { insts, labels: BTreeMap::new() }
    }

    /// Creates a program from instructions and a label table.
    ///
    /// Used by the assembler; labels must point inside the program.
    pub(crate) fn with_labels(insts: Vec<Inst>, labels: BTreeMap<String, u32>) -> Program {
        Program { insts, labels }
    }

    /// Creates a program from instructions and an explicit label table
    /// (used by the textual parser).
    pub fn with_labels_public(insts: Vec<Inst>, labels: BTreeMap<String, u32>) -> Program {
        Program { insts, labels }
    }

    /// The instruction at `pc`, or `None` past the end.
    pub fn fetch(&self, pc: u64) -> Option<Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// All instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// PC of a label defined during assembly.
    pub fn label_pc(&self, name: &str) -> Option<u64> {
        self.labels.get(name).map(|&pc| pc as u64)
    }

    /// Iterates over `(name, pc)` label pairs in name order.
    pub fn labels(&self) -> impl Iterator<Item = (&str, u64)> {
        self.labels.iter().map(|(n, &pc)| (n.as_str(), pc as u64))
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let by_pc: BTreeMap<u32, &str> =
            self.labels.iter().map(|(n, &pc)| (pc, n.as_str())).collect();
        for (pc, inst) in self.insts.iter().enumerate() {
            if let Some(name) = by_pc.get(&(pc as u32)) {
                writeln!(f, "{name}:")?;
            }
            writeln!(f, "  {pc:4}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;
    use crate::reg::Reg;

    #[test]
    fn fetch_bounds() {
        let p = Program::from_insts(vec![Inst::Nop, Inst::Halt]);
        assert_eq!(p.fetch(0), Some(Inst::Nop));
        assert_eq!(p.fetch(1), Some(Inst::Halt));
        assert_eq!(p.fetch(2), None);
        assert_eq!(p.fetch(u64::MAX), None);
    }

    #[test]
    fn display_contains_labels() {
        let mut labels = BTreeMap::new();
        labels.insert("loop".to_string(), 1u32);
        let p =
            Program::with_labels(vec![Inst::MovImm { rd: Reg::R1, imm: 0 }, Inst::Halt], labels);
        let s = p.to_string();
        assert!(s.contains("loop:"));
        assert!(s.contains("halt"));
    }
}
