//! Binary instruction encoding.
//!
//! Each instruction encodes to a single 64-bit word. The encoding is not
//! used on the simulator's hot path (the pipeline operates on decoded
//! [`Inst`] values), but gives programs a concrete machine representation
//! and lets tests check that no instruction carries hidden state: decode ∘
//! encode is the identity for every encodable instruction.
//!
//! Layout (bit ranges, MSB first):
//!
//! ```text
//! [63:58] opcode  [57:53] rd/src  [52:48] rs1/base  [47:43] rs2/index
//! [42:41] size    [40:37] subop   [36:35] scale     [34:0] signed imm/target
//! ```

use crate::inst::{AluOp, BranchCond, Inst, MemSize};
use crate::reg::Reg;
use std::error::Error;
use std::fmt;

/// Error produced by [`encode`] / [`decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Immediate or offset does not fit the 37-bit signed field.
    ImmOutOfRange(i64),
    /// Unknown opcode while decoding.
    BadOpcode(u8),
    /// Invalid sub-operation field while decoding.
    BadSubop(u8),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::ImmOutOfRange(v) => write!(f, "immediate {v} out of encodable range"),
            CodecError::BadOpcode(op) => write!(f, "invalid opcode {op:#x}"),
            CodecError::BadSubop(s) => write!(f, "invalid sub-operation {s:#x}"),
        }
    }
}

impl Error for CodecError {}

const IMM_BITS: u32 = 35;
const IMM_MAX: i64 = (1 << (IMM_BITS - 1)) - 1;
const IMM_MIN: i64 = -(1 << (IMM_BITS - 1));

mod op {
    pub const NOP: u8 = 0;
    pub const HALT: u8 = 1;
    pub const MOVI: u8 = 2;
    pub const MOV: u8 = 3;
    pub const ALU: u8 = 4;
    pub const ALUI: u8 = 5;
    pub const LOAD: u8 = 6;
    pub const STORE: u8 = 7;
    pub const BRANCH: u8 = 8;
    pub const JUMP: u8 = 9;
    pub const JUMPIND: u8 = 10;
    pub const CALL: u8 = 11;
    pub const CALLIND: u8 = 12;
    pub const RET: u8 = 13;
}

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Shr => 6,
        AluOp::Sar => 7,
        AluOp::Mul => 8,
        AluOp::Slt => 9,
        AluOp::Sltu => 10,
        AluOp::Seq => 11,
        AluOp::Sne => 12,
        AluOp::Div => 13,
        AluOp::Rem => 14,
    }
}

fn alu_from(code: u8) -> Result<AluOp, CodecError> {
    Ok(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Shl,
        6 => AluOp::Shr,
        7 => AluOp::Sar,
        8 => AluOp::Mul,
        9 => AluOp::Slt,
        10 => AluOp::Sltu,
        11 => AluOp::Seq,
        12 => AluOp::Sne,
        13 => AluOp::Div,
        14 => AluOp::Rem,
        other => return Err(CodecError::BadSubop(other)),
    })
}

fn cond_code(c: BranchCond) -> u8 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn cond_from(code: u8) -> Result<BranchCond, CodecError> {
    Ok(match code {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        other => return Err(CodecError::BadSubop(other)),
    })
}

fn size_code(s: MemSize) -> u8 {
    match s {
        MemSize::B1 => 0,
        MemSize::B2 => 1,
        MemSize::B4 => 2,
        MemSize::B8 => 3,
    }
}

fn size_from(code: u8) -> MemSize {
    match code & 3 {
        0 => MemSize::B1,
        1 => MemSize::B2,
        2 => MemSize::B4,
        _ => MemSize::B8,
    }
}

struct Fields {
    opcode: u8,
    rd: u8,
    rs1: u8,
    rs2: u8,
    size: u8,
    subop: u8,
    scale: u8,
    imm: i64,
}

impl Fields {
    fn pack(&self) -> Result<u64, CodecError> {
        if self.imm < IMM_MIN || self.imm > IMM_MAX {
            return Err(CodecError::ImmOutOfRange(self.imm));
        }
        let imm = (self.imm as u64) & ((1u64 << IMM_BITS) - 1);
        Ok(((self.opcode as u64) << 58)
            | ((self.rd as u64) << 53)
            | ((self.rs1 as u64) << 48)
            | ((self.rs2 as u64) << 43)
            | ((self.size as u64) << 41)
            | ((self.subop as u64) << 37)
            | ((self.scale as u64) << 35)
            | imm)
    }

    fn unpack(word: u64) -> Fields {
        let raw_imm = word & ((1u64 << IMM_BITS) - 1);
        // Sign extend from IMM_BITS.
        let imm = ((raw_imm << (64 - IMM_BITS)) as i64) >> (64 - IMM_BITS);
        Fields {
            opcode: ((word >> 58) & 0x3f) as u8,
            rd: ((word >> 53) & 0x1f) as u8,
            rs1: ((word >> 48) & 0x1f) as u8,
            rs2: ((word >> 43) & 0x1f) as u8,
            size: ((word >> 41) & 0x3) as u8,
            subop: ((word >> 37) & 0xf) as u8,
            scale: ((word >> 35) & 0x3) as u8,
            imm,
        }
    }
}

fn zero() -> Fields {
    Fields { opcode: 0, rd: 0, rs1: 0, rs2: 0, size: 0, subop: 0, scale: 0, imm: 0 }
}

/// Encodes an instruction to its 64-bit machine word.
///
/// # Errors
///
/// Returns [`CodecError::ImmOutOfRange`] if an immediate/offset does not fit
/// the 37-bit signed field.
///
/// # Example
///
/// ```
/// use spt_isa::encode::{encode, decode};
/// use spt_isa::{Inst, Reg};
///
/// let i = Inst::MovImm { rd: Reg::R5, imm: -42 };
/// assert_eq!(decode(encode(i)?)?, i);
/// # Ok::<(), spt_isa::encode::CodecError>(())
/// ```
pub fn encode(inst: Inst) -> Result<u64, CodecError> {
    let mut f = zero();
    match inst {
        Inst::Nop => f.opcode = op::NOP,
        Inst::Halt => f.opcode = op::HALT,
        Inst::MovImm { rd, imm } => {
            f.opcode = op::MOVI;
            f.rd = rd.index() as u8;
            f.imm = imm;
        }
        Inst::Mov { rd, rs } => {
            f.opcode = op::MOV;
            f.rd = rd.index() as u8;
            f.rs1 = rs.index() as u8;
        }
        Inst::Alu { op: o, rd, rs1, rs2 } => {
            f.opcode = op::ALU;
            f.rd = rd.index() as u8;
            f.rs1 = rs1.index() as u8;
            f.rs2 = rs2.index() as u8;
            f.subop = alu_code(o);
        }
        Inst::AluImm { op: o, rd, rs1, imm } => {
            f.opcode = op::ALUI;
            f.rd = rd.index() as u8;
            f.rs1 = rs1.index() as u8;
            f.subop = alu_code(o);
            f.imm = imm;
        }
        Inst::Load { rd, base, index, scale, offset, size } => {
            f.opcode = op::LOAD;
            f.rd = rd.index() as u8;
            f.rs1 = base.index() as u8;
            f.rs2 = index.index() as u8;
            f.scale = scale & 3;
            f.size = size_code(size);
            f.imm = offset;
        }
        Inst::Store { src, base, index, scale, offset, size } => {
            f.opcode = op::STORE;
            f.rd = src.index() as u8;
            f.rs1 = base.index() as u8;
            f.rs2 = index.index() as u8;
            f.scale = scale & 3;
            f.size = size_code(size);
            f.imm = offset;
        }
        Inst::Branch { cond, rs1, rs2, target } => {
            f.opcode = op::BRANCH;
            f.rs1 = rs1.index() as u8;
            f.rs2 = rs2.index() as u8;
            f.subop = cond_code(cond);
            f.imm = target as i64;
        }
        Inst::Jump { target } => {
            f.opcode = op::JUMP;
            f.imm = target as i64;
        }
        Inst::JumpInd { base } => {
            f.opcode = op::JUMPIND;
            f.rs1 = base.index() as u8;
        }
        Inst::Call { target, link } => {
            f.opcode = op::CALL;
            f.rd = link.index() as u8;
            f.imm = target as i64;
        }
        Inst::CallInd { base, link } => {
            f.opcode = op::CALLIND;
            f.rd = link.index() as u8;
            f.rs1 = base.index() as u8;
        }
        Inst::Ret { link } => {
            f.opcode = op::RET;
            f.rs1 = link.index() as u8;
        }
    }
    f.pack()
}

/// Decodes a 64-bit machine word back to an instruction.
///
/// # Errors
///
/// Returns [`CodecError::BadOpcode`] / [`CodecError::BadSubop`] for invalid
/// encodings.
pub fn decode(word: u64) -> Result<Inst, CodecError> {
    let f = Fields::unpack(word);
    let rd = Reg::from_index(f.rd as usize);
    let rs1 = Reg::from_index(f.rs1 as usize);
    let rs2 = Reg::from_index(f.rs2 as usize);
    Ok(match f.opcode {
        op::NOP => Inst::Nop,
        op::HALT => Inst::Halt,
        op::MOVI => Inst::MovImm { rd, imm: f.imm },
        op::MOV => Inst::Mov { rd, rs: rs1 },
        op::ALU => Inst::Alu { op: alu_from(f.subop)?, rd, rs1, rs2 },
        op::ALUI => Inst::AluImm { op: alu_from(f.subop)?, rd, rs1, imm: f.imm },
        op::LOAD => Inst::Load {
            rd,
            base: rs1,
            index: rs2,
            scale: f.scale,
            offset: f.imm,
            size: size_from(f.size),
        },
        op::STORE => Inst::Store {
            src: rd,
            base: rs1,
            index: rs2,
            scale: f.scale,
            offset: f.imm,
            size: size_from(f.size),
        },
        op::BRANCH => Inst::Branch { cond: cond_from(f.subop)?, rs1, rs2, target: f.imm as u32 },
        op::JUMP => Inst::Jump { target: f.imm as u32 },
        op::JUMPIND => Inst::JumpInd { base: rs1 },
        op::CALL => Inst::Call { target: f.imm as u32, link: rd },
        op::CALLIND => Inst::CallInd { base: rs1, link: rd },
        op::RET => Inst::Ret { link: rs1 },
        other => return Err(CodecError::BadOpcode(other)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(i: Inst) {
        let w = encode(i).unwrap();
        assert_eq!(decode(w).unwrap(), i, "word {w:#018x}");
    }

    #[test]
    fn roundtrip_each_variant() {
        roundtrip(Inst::Nop);
        roundtrip(Inst::Halt);
        roundtrip(Inst::MovImm { rd: Reg::R31, imm: -1 });
        roundtrip(Inst::Mov { rd: Reg::R1, rs: Reg::R2 });
        for opc in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sar,
            AluOp::Mul,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Seq,
            AluOp::Sne,
            AluOp::Div,
            AluOp::Rem,
        ] {
            roundtrip(Inst::Alu { op: opc, rd: Reg::R3, rs1: Reg::R4, rs2: Reg::R5 });
            roundtrip(Inst::AluImm { op: opc, rd: Reg::R3, rs1: Reg::R4, imm: 1234 });
        }
        for size in [MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8] {
            roundtrip(Inst::Load {
                rd: Reg::R7,
                base: Reg::R8,
                index: Reg::R0,
                scale: 0,
                offset: -64,
                size,
            });
            roundtrip(Inst::Store {
                src: Reg::R7,
                base: Reg::R8,
                index: Reg::R0,
                scale: 0,
                offset: 4096,
                size,
            });
            roundtrip(Inst::Load {
                rd: Reg::R7,
                base: Reg::R8,
                index: Reg::R9,
                scale: 3,
                offset: 16,
                size,
            });
            roundtrip(Inst::Store {
                src: Reg::R7,
                base: Reg::R8,
                index: Reg::R10,
                scale: 1,
                offset: -8,
                size,
            });
        }
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            roundtrip(Inst::Branch { cond, rs1: Reg::R1, rs2: Reg::R2, target: 99 });
        }
        roundtrip(Inst::Jump { target: 1_000_000 });
        roundtrip(Inst::JumpInd { base: Reg::R9 });
        roundtrip(Inst::Call { target: 17, link: Reg::R31 });
        roundtrip(Inst::CallInd { base: Reg::R10, link: Reg::R31 });
        roundtrip(Inst::Ret { link: Reg::R31 });
    }

    #[test]
    fn imm_range_enforced() {
        let max = (1i64 << 34) - 1;
        roundtrip(Inst::MovImm { rd: Reg::R1, imm: max });
        roundtrip(Inst::MovImm { rd: Reg::R1, imm: -(1i64 << 34) });
        assert_eq!(
            encode(Inst::MovImm { rd: Reg::R1, imm: max + 1 }),
            Err(CodecError::ImmOutOfRange(max + 1))
        );
    }

    #[test]
    fn bad_opcode_rejected() {
        let word = 63u64 << 58;
        assert_eq!(decode(word), Err(CodecError::BadOpcode(63)));
    }

    #[test]
    fn bad_subop_rejected() {
        // ALU with subop 15 is invalid.
        let word = ((op::ALU as u64) << 58) | (15u64 << 37);
        assert_eq!(decode(word), Err(CodecError::BadSubop(15)));
    }

    #[test]
    fn div_rem_semantics() {
        use crate::inst::AluOp;
        assert_eq!(AluOp::Div.eval(100, 7), 14);
        assert_eq!(AluOp::Rem.eval(100, 7), 2);
        assert_eq!(AluOp::Div.eval(5, 0), u64::MAX, "RISC-V divide-by-zero");
        assert_eq!(AluOp::Rem.eval(5, 0), 5);
        assert!(AluOp::Div.is_variable_time());
        assert!(AluOp::Div.variable_latency(u64::MAX, 3) > AluOp::Div.variable_latency(1, 3));
    }
}
