//! Instruction definitions and the static classification used by the SPT
//! untaint algebra.

use crate::reg::Reg;
use std::fmt;

/// ALU operation for [`Inst::Alu`] / [`Inst::AluImm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping 64-bit addition.
    Add,
    /// Wrapping 64-bit subtraction.
    Sub,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left (by `rhs & 63`).
    Shl,
    /// Logical shift right (by `rhs & 63`).
    Shr,
    /// Arithmetic shift right (by `rhs & 63`).
    Sar,
    /// Wrapping 64-bit multiplication.
    Mul,
    /// Set if less-than, signed: `(lhs as i64) < (rhs as i64)`.
    Slt,
    /// Set if less-than, unsigned.
    Sltu,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
    /// Unsigned division (`x / 0 = u64::MAX`, RISC-V semantics). This is a
    /// *variable-time* operation: its latency depends on its operand
    /// values, making it a transmitter in the paper's §2.1 taxonomy.
    Div,
    /// Unsigned remainder (`x % 0 = x`, RISC-V semantics). Variable-time,
    /// like [`AluOp::Div`].
    Rem,
}

impl AluOp {
    /// Evaluates the operation on two 64-bit values.
    ///
    /// # Example
    ///
    /// ```
    /// use spt_isa::AluOp;
    /// assert_eq!(AluOp::Add.eval(u64::MAX, 1), 0);
    /// assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0 signed
    /// assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
    /// ```
    pub fn eval(self, lhs: u64, rhs: u64) -> u64 {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Xor => lhs ^ rhs,
            AluOp::Shl => lhs << (rhs & 63),
            AluOp::Shr => lhs >> (rhs & 63),
            AluOp::Sar => ((lhs as i64) >> (rhs & 63)) as u64,
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::Slt => ((lhs as i64) < (rhs as i64)) as u64,
            AluOp::Sltu => (lhs < rhs) as u64,
            AluOp::Seq => (lhs == rhs) as u64,
            AluOp::Sne => (lhs != rhs) as u64,
            AluOp::Div => lhs.checked_div(rhs).unwrap_or(u64::MAX),
            AluOp::Rem => lhs.checked_rem(rhs).unwrap_or(lhs),
        }
    }

    /// Whether the output together with *one* input determines the other
    /// input: `Add`, `Sub` and `Xor` are invertible in this sense, which is
    /// what SPT's backward untaint rule ② (paper §6.6) requires. Rules must
    /// be a function of the instruction type only (no value inspection), so
    /// value-dependent invertibility (e.g. `Mul` by an odd factor) is
    /// deliberately excluded, matching the paper's conservative rule set.
    pub fn is_invertible(self) -> bool {
        matches!(self, AluOp::Add | AluOp::Sub | AluOp::Xor)
    }

    /// Execution latency in cycles on the simulated machine. For
    /// variable-time operations this is the *minimum*; the actual latency
    /// comes from [`AluOp::variable_latency`].
    pub fn latency(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 4,
            _ => 1,
        }
    }

    /// Whether this operation's latency depends on its operand values —
    /// the "variable time instruction" transmitter class of paper §2.1
    /// (cf. early-terminating multipliers and subnormal-operand FPUs).
    pub fn is_variable_time(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Rem)
    }

    /// Operand-dependent latency of a variable-time operation: an
    /// early-terminating divider takes time proportional to the dividend's
    /// significant bits (4–20 cycles). Fixed-time ops return
    /// [`AluOp::latency`].
    pub fn variable_latency(self, lhs: u64, rhs: u64) -> u64 {
        if !self.is_variable_time() {
            return self.latency();
        }
        let _ = rhs;
        4 + (64 - lhs.leading_zeros() as u64) / 4
    }
}

/// Condition for [`Inst::Branch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken if `lhs == rhs`.
    Eq,
    /// Taken if `lhs != rhs`.
    Ne,
    /// Taken if `lhs < rhs` (signed).
    Lt,
    /// Taken if `lhs >= rhs` (signed).
    Ge,
    /// Taken if `lhs < rhs` (unsigned).
    Ltu,
    /// Taken if `lhs >= rhs` (unsigned).
    Geu,
}

impl BranchCond {
    /// Evaluates the branch condition.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            BranchCond::Eq => lhs == rhs,
            BranchCond::Ne => lhs != rhs,
            BranchCond::Lt => (lhs as i64) < (rhs as i64),
            BranchCond::Ge => (lhs as i64) >= (rhs as i64),
            BranchCond::Ltu => lhs < rhs,
            BranchCond::Geu => lhs >= rhs,
        }
    }

    /// The condition that accepts exactly the complementary outcomes.
    pub fn negate(self) -> BranchCond {
        match self {
            BranchCond::Eq => BranchCond::Ne,
            BranchCond::Ne => BranchCond::Eq,
            BranchCond::Lt => BranchCond::Ge,
            BranchCond::Ge => BranchCond::Lt,
            BranchCond::Ltu => BranchCond::Geu,
            BranchCond::Geu => BranchCond::Ltu,
        }
    }
}

/// Width of a memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// Access width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }

    /// Truncates `value` to the access width (zero-extension semantics).
    pub fn truncate(self, value: u64) -> u64 {
        match self {
            MemSize::B1 => value & 0xff,
            MemSize::B2 => value & 0xffff,
            MemSize::B4 => value & 0xffff_ffff,
            MemSize::B8 => value,
        }
    }
}

/// The role a source operand plays in its instruction, which determines
/// what its execution leaks (paper §6.1: the microarchitecture must identify,
/// per transmitter, which operands cause operand-dependent resource usage).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperandRole {
    /// Plain data input to an ALU operation; not leaked by execution.
    Data,
    /// Address base of a load or store; fully leaked by the access pattern.
    Address,
    /// Branch predicate input; partially leaked by the control-flow outcome.
    Predicate,
    /// Target of an indirect jump; fully leaked by the fetched PC sequence.
    JumpTarget,
    /// Value stored by a store; not leaked by the store's execution (it flows
    /// into the L1D taint instead, paper §6.8).
    StoreData,
    /// Operand of a variable-time instruction (§2.1): partially leaked by
    /// the instruction's operand-dependent latency.
    VtOperand,
}

impl OperandRole {
    /// Whether an operand in this role is leaked (partially or fully) when
    /// the instruction executes non-speculatively, and hence is declassified
    /// once the instruction reaches the visibility point (paper §6.6).
    pub fn leaks_at_vp(self) -> bool {
        match self {
            OperandRole::Address
            | OperandRole::Predicate
            | OperandRole::JumpTarget
            | OperandRole::VtOperand => true,
            OperandRole::Data | OperandRole::StoreData => false,
        }
    }
}

/// One instruction of the simulated ISA.
///
/// Control-flow targets are in *instruction index* units: the program counter
/// counts instructions, not bytes. [`Inst::Call`] and [`Inst::CallInd`] write
/// the return address (`pc + 1`) to `link`; [`Inst::Ret`] jumps to `link`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Stops the program.
    Halt,
    /// `rd = imm`. The immediate is program text, hence public (§6.5).
    MovImm { rd: Reg, imm: i64 },
    /// `rd = rs` register copy.
    Mov { rd: Reg, rs: Reg },
    /// `rd = op(rs1, rs2)`.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = op(rs1, imm)`.
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: i64 },
    /// `rd = mem[base + (index << scale) + offset]`, zero-extended from
    /// `size` bytes. `index = r0` means no index (plain base+offset). The
    /// scaled-index form mirrors x86 addressing modes, which matter to SPT:
    /// the *index register itself* is a leaked operand of the access and is
    /// declassified when the access reaches the visibility point.
    Load { rd: Reg, base: Reg, index: Reg, scale: u8, offset: i64, size: MemSize },
    /// `mem[base + (index << scale) + offset] = src` truncated to `size`
    /// bytes. `index = r0` means no index.
    Store { src: Reg, base: Reg, index: Reg, scale: u8, offset: i64, size: MemSize },
    /// Conditional branch to instruction index `target`.
    Branch { cond: BranchCond, rs1: Reg, rs2: Reg, target: u32 },
    /// Unconditional direct jump.
    Jump { target: u32 },
    /// Indirect jump to the instruction index held in `base`.
    JumpInd { base: Reg },
    /// Direct call: `link = pc + 1; pc = target`.
    Call { target: u32, link: Reg },
    /// Indirect call: `link = pc + 1; pc = base`.
    CallInd { base: Reg, link: Reg },
    /// Return: `pc = link`.
    Ret { link: Reg },
}

/// Classification of an instruction for the SPT untaint algebra (paper §5,
/// §6.5–6.6). The class determines which forward/backward untaint rules apply
/// without inspecting register values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Output is determined by program text alone (`MovImm`, `Call`'s link):
    /// untainted at rename (§6.5).
    Const,
    /// Register copy: forward and backward untaint are both exact (§6.6 ①).
    Copy,
    /// Two-source invertible op (`Add`/`Sub`/`Xor`): backward rule ② applies.
    Invertible2,
    /// One-source invertible op with a public immediate (`AddImm` etc.):
    /// dest untainted ⇒ source untainted.
    InvertibleImm,
    /// Forward-only op: output untaints when all inputs are untainted, but
    /// inputs cannot be recovered from the output (`And`, `Shl`, `Mul`, …).
    Lossy,
    /// Load: output taint is determined by the *data* read, not by the
    /// forward rule (§6.3, §6.7–6.8).
    Load,
    /// Store: a transmitter whose address leaks; data flows to L1D taint.
    Store,
    /// Control flow (branches and jumps, direct or indirect).
    ControlFlow,
    /// No dataflow (Nop, Halt).
    Other,
}

/// A source operand reference: which register, and its role.
pub type Source = (Reg, OperandRole);

/// Fixed-capacity list of an instruction's source operands (at most 3:
/// indexed stores read a base, an index and the stored data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sources {
    items: [Option<Source>; 3],
}

impl Sources {
    /// Maximum number of source operands of any instruction.
    pub const MAX: usize = 3;

    fn none() -> Sources {
        Sources { items: [None, None, None] }
    }

    fn one(s: Source) -> Sources {
        Sources { items: [Some(s), None, None] }
    }

    fn two(a: Source, b: Source) -> Sources {
        Sources { items: [Some(a), Some(b), None] }
    }

    fn three(a: Source, b: Source, c: Source) -> Sources {
        Sources { items: [Some(a), Some(b), Some(c)] }
    }

    /// Iterates over the present source operands.
    pub fn iter(&self) -> impl Iterator<Item = Source> + '_ {
        self.items.iter().flatten().copied()
    }

    /// Number of source operands.
    pub fn len(&self) -> usize {
        self.items.iter().flatten().count()
    }

    /// Whether the instruction has no source operands.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The source in slot `i`, if present.
    pub fn get(&self, i: usize) -> Option<Source> {
        self.items.get(i).copied().flatten()
    }
}

impl Inst {
    /// The destination architectural register written by this instruction,
    /// if any. Writes to `r0` are reported as `None` (discarded).
    pub fn dest(&self) -> Option<Reg> {
        let d = match *self {
            Inst::MovImm { rd, .. }
            | Inst::Mov { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Load { rd, .. } => Some(rd),
            Inst::Call { link, .. } | Inst::CallInd { link, .. } => Some(link),
            _ => None,
        };
        d.filter(|r| !r.is_zero())
    }

    /// The source operands read by this instruction together with their roles.
    pub fn sources(&self) -> Sources {
        use OperandRole::*;
        match *self {
            Inst::Nop
            | Inst::Halt
            | Inst::MovImm { .. }
            | Inst::Jump { .. }
            | Inst::Call { .. } => Sources::none(),
            Inst::Mov { rs, .. } => Sources::one((rs, Data)),
            Inst::Alu { op, rs1, rs2, .. } => {
                let role = if op.is_variable_time() { VtOperand } else { Data };
                Sources::two((rs1, role), (rs2, role))
            }
            Inst::AluImm { op, rs1, .. } => {
                let role = if op.is_variable_time() { VtOperand } else { Data };
                Sources::one((rs1, role))
            }
            Inst::Load { base, index, .. } => {
                if index.is_zero() {
                    Sources::one((base, Address))
                } else {
                    Sources::two((base, Address), (index, Address))
                }
            }
            Inst::Store { src, base, index, .. } => {
                if index.is_zero() {
                    Sources::two((base, Address), (src, StoreData))
                } else {
                    Sources::three((base, Address), (index, Address), (src, StoreData))
                }
            }
            Inst::Branch { rs1, rs2, .. } => Sources::two((rs1, Predicate), (rs2, Predicate)),
            Inst::JumpInd { base } => Sources::one((base, JumpTarget)),
            Inst::CallInd { base, .. } => Sources::one((base, JumpTarget)),
            Inst::Ret { link } => Sources::one((link, JumpTarget)),
        }
    }

    /// The untaint-algebra class of this instruction.
    pub fn class(&self) -> InstClass {
        match *self {
            Inst::Nop | Inst::Halt => InstClass::Other,
            Inst::MovImm { .. } => InstClass::Const,
            Inst::Mov { .. } => InstClass::Copy,
            Inst::Alu { op, .. } => {
                if op.is_invertible() {
                    InstClass::Invertible2
                } else {
                    InstClass::Lossy
                }
            }
            Inst::AluImm { op, .. } => {
                if op.is_invertible() {
                    InstClass::InvertibleImm
                } else {
                    InstClass::Lossy
                }
            }
            Inst::Load { .. } => InstClass::Load,
            Inst::Store { .. } => InstClass::Store,
            Inst::Branch { .. }
            | Inst::Jump { .. }
            | Inst::JumpInd { .. }
            | Inst::Call { .. }
            | Inst::CallInd { .. }
            | Inst::Ret { .. } => InstClass::ControlFlow,
        }
    }

    /// Whether this instruction is a *transmit instruction* in the paper's
    /// evaluation sense (§9.1: "transmit instructions are defined as loads
    /// and stores"). Control-flow instructions are protected separately via
    /// the implicit-channel rules (§6.4).
    pub fn is_transmitter(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// For stores: the index (within [`Inst::sources`]) of the stored-data
    /// operand, which varies with the addressing mode.
    pub fn store_data_src(&self) -> Option<usize> {
        match self {
            Inst::Store { index, .. } => Some(if index.is_zero() { 1 } else { 2 }),
            _ => None,
        }
    }

    /// Whether this instruction's latency depends on its operand values
    /// (the variable-time transmitter class of §2.1).
    pub fn is_variable_time(&self) -> bool {
        matches!(self, Inst::Alu { op, .. } | Inst::AluImm { op, .. } if op.is_variable_time())
    }

    /// Whether this instruction is any form of control flow.
    pub fn is_control_flow(&self) -> bool {
        matches!(self.class(), InstClass::ControlFlow)
    }

    /// Whether this control-flow instruction's target comes from a register.
    pub fn is_indirect(&self) -> bool {
        matches!(self, Inst::JumpInd { .. } | Inst::CallInd { .. } | Inst::Ret { .. })
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Static direct target, if this is direct control flow.
    pub fn direct_target(&self) -> Option<u32> {
        match *self {
            Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target, .. } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Execution latency in cycles, excluding memory access time.
    pub fn latency(&self) -> u64 {
        match *self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => op.latency(),
            _ => 1,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
            Inst::MovImm { rd, imm } => write!(f, "movi {rd}, {imm}"),
            Inst::Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op:?} {rd}, {rs1}, {rs2}"),
            Inst::AluImm { op, rd, rs1, imm } => write!(f, "{op:?}i {rd}, {rs1}, {imm}"),
            Inst::Load { rd, base, index, scale, offset, size } => {
                if index.is_zero() {
                    write!(f, "ld{} {rd}, [{base}{offset:+}]", size.bytes())
                } else {
                    write!(f, "ld{} {rd}, [{base}+{index}<<{scale}{offset:+}]", size.bytes())
                }
            }
            Inst::Store { src, base, index, scale, offset, size } => {
                if index.is_zero() {
                    write!(f, "st{} {src}, [{base}{offset:+}]", size.bytes())
                } else {
                    write!(f, "st{} {src}, [{base}+{index}<<{scale}{offset:+}]", size.bytes())
                }
            }
            Inst::Branch { cond, rs1, rs2, target } => {
                write!(f, "b{cond:?} {rs1}, {rs2}, @{target}")
            }
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::JumpInd { base } => write!(f, "jr {base}"),
            Inst::Call { target, link } => write!(f, "call @{target}, {link}"),
            Inst::CallInd { base, link } => write!(f, "callr {base}, {link}"),
            Inst::Ret { link } => write!(f, "ret {link}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_semantics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX);
        assert_eq!(AluOp::Shl.eval(1, 65), 2, "shift amount is masked to 6 bits");
        assert_eq!(AluOp::Sar.eval(u64::MAX, 8), u64::MAX);
        assert_eq!(AluOp::Shr.eval(u64::MAX, 8), u64::MAX >> 8);
        assert_eq!(AluOp::Seq.eval(7, 7), 1);
        assert_eq!(AluOp::Sne.eval(7, 7), 0);
        assert_eq!(AluOp::Mul.eval(1 << 63, 2), 0);
    }

    #[test]
    fn branch_cond_negation_partitions() {
        let cases = [
            (BranchCond::Eq, 3u64, 3u64),
            (BranchCond::Lt, u64::MAX, 1),
            (BranchCond::Ltu, u64::MAX, 1),
            (BranchCond::Ge, 5, 5),
        ];
        for (c, a, b) in cases {
            assert_ne!(c.eval(a, b), c.negate().eval(a, b));
        }
    }

    #[test]
    fn zero_register_dest_is_discarded() {
        let i = Inst::MovImm { rd: Reg::ZERO, imm: 4 };
        assert_eq!(i.dest(), None);
        let i = Inst::Load {
            rd: Reg::ZERO,
            base: Reg::R1,
            index: Reg::R0,
            scale: 0,
            offset: 0,
            size: MemSize::B8,
        };
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn store_sources_and_roles() {
        let st = Inst::Store {
            src: Reg::R2,
            base: Reg::R3,
            index: Reg::R0,
            scale: 0,
            offset: 8,
            size: MemSize::B8,
        };
        let srcs: Vec<_> = st.sources().iter().collect();
        assert_eq!(srcs.len(), 2);
        assert_eq!(srcs[0], (Reg::R3, OperandRole::Address));
        assert_eq!(srcs[1], (Reg::R2, OperandRole::StoreData));
        assert!(srcs[0].1.leaks_at_vp());
        assert!(!srcs[1].1.leaks_at_vp());
    }

    #[test]
    fn classes() {
        assert_eq!(Inst::MovImm { rd: Reg::R1, imm: 0 }.class(), InstClass::Const);
        assert_eq!(Inst::Mov { rd: Reg::R1, rs: Reg::R2 }.class(), InstClass::Copy);
        assert_eq!(
            Inst::Alu { op: AluOp::Add, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }.class(),
            InstClass::Invertible2
        );
        assert_eq!(
            Inst::Alu { op: AluOp::And, rd: Reg::R1, rs1: Reg::R2, rs2: Reg::R3 }.class(),
            InstClass::Lossy
        );
        assert_eq!(
            Inst::AluImm { op: AluOp::Xor, rd: Reg::R1, rs1: Reg::R2, imm: -1 }.class(),
            InstClass::InvertibleImm
        );
    }

    #[test]
    fn transmitters_are_loads_and_stores_only() {
        assert!(Inst::Load {
            rd: Reg::R1,
            base: Reg::R2,
            index: Reg::R0,
            scale: 0,
            offset: 0,
            size: MemSize::B8
        }
        .is_transmitter());
        assert!(Inst::Store {
            src: Reg::R1,
            base: Reg::R2,
            index: Reg::R0,
            scale: 0,
            offset: 0,
            size: MemSize::B8
        }
        .is_transmitter());
        assert!(!Inst::Branch { cond: BranchCond::Eq, rs1: Reg::R1, rs2: Reg::R2, target: 0 }
            .is_transmitter());
        assert!(!Inst::Nop.is_transmitter());
    }

    #[test]
    fn memsize_truncate() {
        assert_eq!(MemSize::B1.truncate(0x1ff), 0xff);
        assert_eq!(MemSize::B2.truncate(0xabcd_ef01), 0xef01);
        assert_eq!(MemSize::B4.truncate(u64::MAX), 0xffff_ffff);
        assert_eq!(MemSize::B8.truncate(u64::MAX), u64::MAX);
    }

    #[test]
    fn indirect_classification() {
        assert!(Inst::Ret { link: Reg::R31 }.is_indirect());
        assert!(Inst::JumpInd { base: Reg::R4 }.is_indirect());
        assert!(!Inst::Jump { target: 3 }.is_indirect());
        assert_eq!(Inst::Jump { target: 3 }.direct_target(), Some(3));
        assert_eq!(Inst::Ret { link: Reg::R31 }.direct_target(), None);
    }
}
