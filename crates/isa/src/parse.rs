//! Textual assembly parser.
//!
//! Parses the syntax produced by [`Inst`]'s `Display` implementation (and a
//! superset convenient for hand-written assembly), so programs round-trip
//! through text: `parse_program(program.to_string())` reproduces the
//! instruction sequence exactly.
//!
//! Accepted syntax, one instruction per line:
//!
//! ```text
//! ; comments with ';' or '#'
//! start:                      ; labels end with ':'
//!   movi r1, 100
//!   add r2, r2, r1
//!   Addi r1, r1, -1           ; mnemonics are case-insensitive
//!   ld8 r3, [r2+8]            ; base + offset
//!   ld8 r3, [r2+r4<<3+16]     ; base + index*scale + offset
//!   st1 r3, [r2-4]
//!   bNe r1, r0, start         ; label or @<pc> targets
//!   j @9
//!   call fn, r31
//!   ret r31
//!   halt
//! ```

use crate::inst::{AluOp, BranchCond, Inst, MemSize};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_program`], with the 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim();
    let Some(rest) = t.strip_prefix('r').or_else(|| t.strip_prefix('R')) else {
        return err(line, format!("expected register, got `{t}`"));
    };
    match rest.parse::<u8>().ok().and_then(Reg::new) {
        Some(r) => Ok(r),
        None => err(line, format!("invalid register `{t}`")),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let t = tok.trim();
    let (neg, body) = match t.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("invalid immediate `{t}`")),
    }
}

/// Parsed memory operand: `[base (+ index<<scale) (± offset)]`.
struct MemOperand {
    base: Reg,
    index: Reg,
    scale: u8,
    offset: i64,
}

fn parse_mem(tok: &str, line: usize) -> Result<MemOperand, ParseError> {
    let t = tok.trim();
    let Some(inner) = t.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return err(line, format!("expected memory operand `[...]`, got `{t}`"));
    };
    // Split on '+' and '-' while keeping the sign with each part.
    let mut parts: Vec<String> = Vec::new();
    let mut cur = String::new();
    for (i, c) in inner.chars().enumerate() {
        if (c == '+' || c == '-') && i > 0 && !cur.is_empty() {
            parts.push(cur.clone());
            cur.clear();
            if c == '-' {
                cur.push('-');
            }
        } else if c != '+' || i > 0 {
            cur.push(c);
        }
    }
    if !cur.is_empty() {
        parts.push(cur);
    }
    if parts.is_empty() {
        return err(line, "empty memory operand");
    }
    let base = parse_reg(&parts[0], line)?;
    let mut index = Reg::ZERO;
    let mut scale = 0u8;
    let mut offset = 0i64;
    for part in &parts[1..] {
        let p = part.trim();
        if p.starts_with('r') || p.starts_with('R') {
            // Index term, optionally scaled: rN or rN<<s.
            match p.split_once("<<") {
                Some((r, s)) => {
                    index = parse_reg(r, line)?;
                    scale = match s.trim().parse::<u8>() {
                        Ok(v) if v < 4 => v,
                        _ => return err(line, format!("invalid scale `{s}` (0-3)")),
                    };
                }
                None => {
                    index = parse_reg(p, line)?;
                    scale = 0;
                }
            }
        } else {
            offset = offset.wrapping_add(parse_imm(p, line)?);
        }
    }
    Ok(MemOperand { base, index, scale, offset })
}

fn alu_by_name(name: &str) -> Option<AluOp> {
    Some(match name {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        "mul" => AluOp::Mul,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "seq" => AluOp::Seq,
        "sne" => AluOp::Sne,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        _ => return None,
    })
}

fn cond_by_name(name: &str) -> Option<BranchCond> {
    Some(match name {
        "eq" => BranchCond::Eq,
        "ne" => BranchCond::Ne,
        "lt" => BranchCond::Lt,
        "ge" => BranchCond::Ge,
        "ltu" => BranchCond::Ltu,
        "geu" => BranchCond::Geu,
        _ => None?,
    })
}

fn size_by_suffix(s: &str) -> Option<MemSize> {
    Some(match s {
        "1" => MemSize::B1,
        "2" => MemSize::B2,
        "4" => MemSize::B4,
        "8" => MemSize::B8,
        _ => return None,
    })
}

/// A branch/jump target: numeric (`@5`) or symbolic.
enum Target {
    Pc(u32),
    Label(String),
}

fn parse_target(tok: &str, line: usize) -> Result<Target, ParseError> {
    let t = tok.trim();
    if let Some(pc) = t.strip_prefix('@') {
        match pc.parse::<u32>() {
            Ok(v) => Ok(Target::Pc(v)),
            Err(_) => err(line, format!("invalid target `{t}`")),
        }
    } else if t.is_empty() {
        err(line, "missing target")
    } else {
        Ok(Target::Label(t.to_string()))
    }
}

/// Parses an assembly listing into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line for any syntax problem or
/// undefined label.
///
/// # Example
///
/// ```
/// use spt_isa::parse::parse_program;
/// use spt_isa::interp::Interp;
/// use spt_isa::Reg;
///
/// let p = parse_program("
///     movi r1, 0
///     movi r2, 5
/// loop:
///     addi r1, r1, 3
///     addi r2, r2, -1
///     bne r2, r0, loop
///     halt
/// ")?;
/// let mut i = Interp::new(&p);
/// i.run(1000)?;
/// assert_eq!(i.reg(Reg::R1), 15);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn parse_program(text: &str) -> Result<Program, ParseError> {
    let mut insts: Vec<Inst> = Vec::new();
    let mut labels: BTreeMap<String, u32> = BTreeMap::new();
    let mut fixups: Vec<(usize, usize, String)> = Vec::new(); // (inst idx, line, label)

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let mut src = raw;
        if let Some(i) = src.find(';') {
            src = &src[..i];
        }
        if let Some(i) = src.find('#') {
            src = &src[..i];
        }
        let src = src.trim();
        if src.is_empty() {
            continue;
        }
        // Labels (possibly followed by an instruction on the same line).
        let mut rest = src;
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            if labels.insert(name.to_string(), insts.len() as u32).is_some() {
                return err(line, format!("duplicate label `{name}`"));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        let (mnemonic, args) = match rest.split_once(char::is_whitespace) {
            Some((m, a)) => (m.to_ascii_lowercase(), a.trim()),
            None => (rest.to_ascii_lowercase(), ""),
        };
        let ops: Vec<&str> =
            if args.is_empty() { Vec::new() } else { args.split(',').map(str::trim).collect() };
        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(line, format!("`{mnemonic}` expects {n} operands, got {}", ops.len()))
            }
        };

        let inst = match mnemonic.as_str() {
            "nop" => {
                need(0)?;
                Inst::Nop
            }
            "halt" => {
                need(0)?;
                Inst::Halt
            }
            "movi" => {
                need(2)?;
                Inst::MovImm { rd: parse_reg(ops[0], line)?, imm: parse_imm(ops[1], line)? }
            }
            "mov" => {
                need(2)?;
                Inst::Mov { rd: parse_reg(ops[0], line)?, rs: parse_reg(ops[1], line)? }
            }
            "jr" => {
                need(1)?;
                Inst::JumpInd { base: parse_reg(ops[0], line)? }
            }
            "ret" => {
                need(1)?;
                Inst::Ret { link: parse_reg(ops[0], line)? }
            }
            "callr" => {
                need(2)?;
                Inst::CallInd { base: parse_reg(ops[0], line)?, link: parse_reg(ops[1], line)? }
            }
            "j" | "jmp" => {
                need(1)?;
                match parse_target(ops[0], line)? {
                    Target::Pc(pc) => Inst::Jump { target: pc },
                    Target::Label(l) => {
                        fixups.push((insts.len(), line, l));
                        Inst::Jump { target: 0 }
                    }
                }
            }
            "call" => {
                need(2)?;
                let link = parse_reg(ops[1], line)?;
                match parse_target(ops[0], line)? {
                    Target::Pc(pc) => Inst::Call { target: pc, link },
                    Target::Label(l) => {
                        fixups.push((insts.len(), line, l));
                        Inst::Call { target: 0, link }
                    }
                }
            }
            m if m.starts_with("ld") => {
                need(2)?;
                let Some(size) = size_by_suffix(&m[2..]) else {
                    return err(line, format!("unknown load width `{m}`"));
                };
                let rd = parse_reg(ops[0], line)?;
                let mem = parse_mem(ops[1], line)?;
                Inst::Load {
                    rd,
                    base: mem.base,
                    index: mem.index,
                    scale: mem.scale,
                    offset: mem.offset,
                    size,
                }
            }
            m if m.starts_with("st") => {
                need(2)?;
                let Some(size) = size_by_suffix(&m[2..]) else {
                    return err(line, format!("unknown store width `{m}`"));
                };
                let src = parse_reg(ops[0], line)?;
                let mem = parse_mem(ops[1], line)?;
                Inst::Store {
                    src,
                    base: mem.base,
                    index: mem.index,
                    scale: mem.scale,
                    offset: mem.offset,
                    size,
                }
            }
            m if m.starts_with('b') && cond_by_name(&m[1..]).is_some() => {
                need(3)?;
                let cond = cond_by_name(&m[1..]).expect("checked");
                let rs1 = parse_reg(ops[0], line)?;
                let rs2 = parse_reg(ops[1], line)?;
                match parse_target(ops[2], line)? {
                    Target::Pc(pc) => Inst::Branch { cond, rs1, rs2, target: pc },
                    Target::Label(l) => {
                        fixups.push((insts.len(), line, l));
                        Inst::Branch { cond, rs1, rs2, target: 0 }
                    }
                }
            }
            m => {
                // ALU forms: `add r, r, r` or immediate `addi r, r, imm`.
                let (base_name, imm_form) = match m.strip_suffix('i') {
                    Some(b) if alu_by_name(b).is_some() => (b, true),
                    _ => (m, false),
                };
                let Some(op) = alu_by_name(base_name) else {
                    return err(line, format!("unknown mnemonic `{m}`"));
                };
                need(3)?;
                let rd = parse_reg(ops[0], line)?;
                let rs1 = parse_reg(ops[1], line)?;
                if imm_form {
                    Inst::AluImm { op, rd, rs1, imm: parse_imm(ops[2], line)? }
                } else {
                    Inst::Alu { op, rd, rs1, rs2: parse_reg(ops[2], line)? }
                }
            }
        };
        insts.push(inst);
    }

    for (idx, line, label) in fixups {
        let Some(&pc) = labels.get(&label) else {
            return err(line, format!("undefined label `{label}`"));
        };
        match &mut insts[idx] {
            Inst::Jump { target } | Inst::Call { target, .. } | Inst::Branch { target, .. } => {
                *target = pc;
            }
            _ => unreachable!("fixups only target control flow"),
        }
    }
    Ok(Program::with_labels_public(insts, labels))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    #[test]
    fn parses_basic_program() {
        let p = parse_program("movi r1, 10\n add r2, r2, r1\n subi r1, r1, 1\n halt").unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.fetch(3), Some(Inst::Halt));
    }

    #[test]
    fn parses_memory_operands() {
        let p = parse_program(
            "ld8 r1, [r2+8]\nld1 r3, [r4-4]\nld8 r5, [r6+r7<<3+16]\nst4 r8, [r9+r10<<1]\nhalt",
        )
        .unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Load {
                rd: Reg::R1,
                base: Reg::R2,
                index: Reg::R0,
                scale: 0,
                offset: 8,
                size: MemSize::B8
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(Inst::Load {
                rd: Reg::R5,
                base: Reg::R6,
                index: Reg::R7,
                scale: 3,
                offset: 16,
                size: MemSize::B8
            })
        );
        assert_eq!(
            p.fetch(3),
            Some(Inst::Store {
                src: Reg::R8,
                base: Reg::R9,
                index: Reg::R10,
                scale: 1,
                offset: 0,
                size: MemSize::B4
            })
        );
    }

    #[test]
    fn labels_and_branches() {
        let p = parse_program(
            "start: movi r1, 3\nloop:\n subi r1, r1, 1\n bne r1, r0, loop\n j end\n nop\nend: halt",
        )
        .unwrap();
        assert_eq!(p.label_pc("loop"), Some(1));
        assert_eq!(
            p.fetch(2),
            Some(Inst::Branch { cond: BranchCond::Ne, rs1: Reg::R1, rs2: Reg::R0, target: 1 })
        );
        assert_eq!(p.fetch(3), Some(Inst::Jump { target: 5 }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_program("movi r1, 1\nbogus r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
        let e = parse_program("j nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));
        let e = parse_program("movi r99, 1\n").unwrap_err();
        assert!(e.message.contains("invalid register"));
    }

    #[test]
    fn display_round_trips() {
        // Build a program exercising every instruction form, print it, and
        // re-parse: the instruction sequences must match exactly.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, -42);
        a.mov(Reg::R2, Reg::R1);
        a.add(Reg::R3, Reg::R1, Reg::R2);
        a.xori(Reg::R4, Reg::R3, 0x5a);
        a.sltu(Reg::R5, Reg::R4, Reg::R1);
        a.ld(Reg::R6, Reg::R5, 16);
        a.ldx8(Reg::R7, Reg::R6, Reg::R1);
        a.load_idx(Reg::R8, Reg::R6, Reg::R2, 2, -8, MemSize::B2);
        a.st(Reg::R7, Reg::R5, 0);
        a.store_idx(Reg::R7, Reg::R5, Reg::R3, 1, 4, MemSize::B1);
        a.label("spot");
        a.beq(Reg::R1, Reg::R2, "spot");
        a.jmp("spot");
        a.jr(Reg::R9);
        a.call("spot", Reg::R31);
        a.callr(Reg::R9, Reg::R31);
        a.ret(Reg::R31);
        a.nop();
        a.halt();
        let original = a.assemble().unwrap();

        let text = original.to_string();
        let reparsed =
            parse_program(&text).unwrap_or_else(|e| panic!("could not re-parse:\n{text}\n{e}"));
        assert_eq!(reparsed.insts(), original.insts());
    }

    #[test]
    fn workload_sized_round_trip() {
        // A looped kernel with mixed addressing modes round-trips.
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x1000);
        a.mov_imm(Reg::R2, 0);
        a.label("loop");
        a.ldx8(Reg::R3, Reg::R1, Reg::R2);
        a.muli(Reg::R3, Reg::R3, 3);
        a.stx8(Reg::R3, Reg::R1, Reg::R2);
        a.addi(Reg::R2, Reg::R2, 1);
        a.slti(Reg::R4, Reg::R2, 64);
        a.bne(Reg::R4, Reg::R0, "loop");
        a.halt();
        let original = a.assemble().unwrap();
        let reparsed = parse_program(&original.to_string()).unwrap();
        assert_eq!(reparsed.insts(), original.insts());
    }
}
