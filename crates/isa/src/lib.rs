//! RISC-style 64-bit ISA for the SPT reproduction.
//!
//! This crate defines the instruction set simulated by `spt-ooo`, together
//! with an assembler ([`asm::Assembler`]), a binary encoder/decoder
//! ([`encode`]), and a reference functional interpreter ([`interp`]) used to
//! validate the out-of-order pipeline: every workload must produce identical
//! architectural results on the interpreter and on the pipeline under every
//! protection configuration.
//!
//! The ISA is deliberately simple — 32 general-purpose 64-bit registers
//! (`r0` hardwired to zero), register+offset addressing with 1/2/4/8-byte
//! accesses, compare-and-branch, direct and indirect jumps — but rich enough
//! to express the paper's workloads: pointer chasing, interpreters with
//! indirect dispatch, constant-time ciphers, and Spectre gadgets.
//!
//! # Example
//!
//! ```
//! use spt_isa::asm::Assembler;
//! use spt_isa::interp::Interp;
//! use spt_isa::Reg;
//!
//! let mut a = Assembler::new();
//! a.mov_imm(Reg::R1, 5);
//! a.mov_imm(Reg::R2, 7);
//! a.add(Reg::R3, Reg::R1, Reg::R2);
//! a.halt();
//! let program = a.assemble().unwrap();
//!
//! let mut interp = Interp::new(&program);
//! interp.run(1_000).unwrap();
//! assert_eq!(interp.reg(Reg::R3), 12);
//! ```

pub mod asm;
pub mod encode;
pub mod inst;
pub mod interp;
pub mod parse;
pub mod program;
pub mod reg;

pub use inst::{AluOp, BranchCond, Inst, InstClass, MemSize, OperandRole};
pub use program::Program;
pub use reg::Reg;
