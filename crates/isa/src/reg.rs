//! Architectural register names.

use std::fmt;

/// An architectural register, `r0`–`r31`.
///
/// `r0` is hardwired to zero: writes are discarded and reads return `0`,
/// like RISC-V's `x0`. The remaining 31 registers are general purpose.
///
/// # Example
///
/// ```
/// use spt_isa::Reg;
/// let r = Reg::new(3).unwrap();
/// assert_eq!(r, Reg::R3);
/// assert_eq!(r.index(), 3);
/// assert!(Reg::new(32).is_none());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);

    /// Creates a register from its index, returning `None` if `index >= 32`.
    pub fn new(index: u8) -> Option<Reg> {
        if (index as usize) < Self::COUNT {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn from_index(index: usize) -> Reg {
        assert!(index < Self::COUNT, "register index {index} out of range");
        Reg(index as u8)
    }

    /// The register's index, `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 architectural registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Self::COUNT as u8).map(Reg)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

macro_rules! named_regs {
    ($($name:ident = $idx:expr),* $(,)?) => {
        impl Reg {
            $(
                #[doc = concat!("Register r", stringify!($idx), ".")]
                pub const $name: Reg = Reg($idx);
            )*
        }
    };
}

named_regs! {
    R0 = 0, R1 = 1, R2 = 2, R3 = 3, R4 = 4, R5 = 5, R6 = 6, R7 = 7,
    R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
    R16 = 16, R17 = 17, R18 = 18, R19 = 19, R20 = 20, R21 = 21, R22 = 22, R23 = 23,
    R24 = 24, R25 = 25, R26 = 26, R27 = 27, R28 = 28, R29 = 29, R30 = 30, R31 = 31,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_out_of_range() {
        assert!(Reg::new(31).is_some());
        assert!(Reg::new(32).is_none());
        assert!(Reg::new(255).is_none());
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::R1.is_zero());
        assert_eq!(Reg::ZERO, Reg::R0);
    }

    #[test]
    fn all_yields_32_distinct() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::R17.to_string(), "r17");
        assert_eq!(format!("{:?}", Reg::R3), "r3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_panics() {
        let _ = Reg::from_index(32);
    }
}
