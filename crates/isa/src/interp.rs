//! Reference functional interpreter.
//!
//! Executes a [`Program`] with simple in-order semantics. The out-of-order
//! pipeline in `spt-ooo` must produce exactly the architectural state this
//! interpreter produces, for every protection configuration — protections
//! change *timing*, never *results*. Integration tests enforce this.
//!
//! The interpreter can also record the program's *non-speculative leak
//! trace*: the operand values passed to transmitters (load/store addresses)
//! and control-flow instructions. This is the ground truth for the paper's
//! security definition (§6.2): data is secret iff it never flows into this
//! trace.

use crate::inst::Inst;
use crate::program::Program;
use crate::reg::Reg;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Sparse byte-addressable memory used by the interpreter.
#[derive(Clone, Debug, Default)]
pub struct SparseMem {
    pages: HashMap<u64, Box<[u8; Self::PAGE]>>,
}

impl SparseMem {
    const PAGE: usize = 4096;

    /// Creates an empty memory (all bytes read as zero).
    pub fn new() -> SparseMem {
        SparseMem::default()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (page, off) = (addr / Self::PAGE as u64, (addr % Self::PAGE as u64) as usize);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let (page, off) = (addr / Self::PAGE as u64, (addr % Self::PAGE as u64) as usize);
        self.pages.entry(page).or_insert_with(|| Box::new([0; Self::PAGE]))[off] = value;
    }

    /// Reads `size` bytes little-endian, zero-extended to 64 bits.
    ///
    /// # Panics
    ///
    /// Panics if `size > 8`.
    pub fn read(&self, addr: u64, size: u64) -> u64 {
        assert!(size <= 8);
        let mut v = 0u64;
        for i in 0..size {
            v |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `size` bytes of `value` little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size > 8`.
    pub fn write(&mut self, addr: u64, value: u64, size: u64) {
        assert!(size <= 8);
        for i in 0..size {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u64, b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u64)).collect()
    }
}

/// What a non-speculative leak event revealed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeakKind {
    /// A load executed with this address.
    LoadAddr,
    /// A store executed with this address.
    StoreAddr,
    /// A conditional branch resolved with this outcome (0/1).
    BranchOutcome,
    /// An indirect jump/call/return revealed this target.
    JumpTarget,
}

/// One entry of the non-speculative leak trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeakEvent {
    /// PC of the leaking instruction.
    pub pc: u64,
    /// What kind of channel leaked.
    pub kind: LeakKind,
    /// The leaked value (address, outcome bit, or target).
    pub value: u64,
}

/// Error produced by [`Interp::step`] / [`Interp::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InterpError {
    /// The PC left the program text without halting.
    PcOutOfBounds(u64),
    /// `run` exhausted its step budget before `Halt`.
    StepLimit(u64),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::PcOutOfBounds(pc) => write!(f, "pc {pc} out of program bounds"),
            InterpError::StepLimit(n) => write!(f, "program did not halt within {n} steps"),
        }
    }
}

impl Error for InterpError {}

/// Reference interpreter state.
///
/// # Example
///
/// ```
/// use spt_isa::asm::Assembler;
/// use spt_isa::interp::Interp;
/// use spt_isa::Reg;
///
/// let mut a = Assembler::new();
/// a.mov_imm(Reg::R1, 0x100);
/// a.mov_imm(Reg::R2, 99);
/// a.st(Reg::R2, Reg::R1, 0);
/// a.ld(Reg::R3, Reg::R1, 0);
/// a.halt();
/// let p = a.assemble()?;
/// let mut i = Interp::new(&p);
/// i.run(100)?;
/// assert_eq!(i.reg(Reg::R3), 99);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    regs: [u64; Reg::COUNT],
    pc: u64,
    halted: bool,
    retired: u64,
    mem: SparseMem,
    trace: Option<Vec<LeakEvent>>,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter at PC 0 with zeroed registers and memory.
    pub fn new(program: &'p Program) -> Interp<'p> {
        Interp {
            program,
            regs: [0; Reg::COUNT],
            pc: 0,
            halted: false,
            retired: 0,
            mem: SparseMem::new(),
            trace: None,
        }
    }

    /// Creates an interpreter with pre-initialized memory.
    pub fn with_memory(program: &'p Program, mem: SparseMem) -> Interp<'p> {
        Interp { mem, ..Interp::new(program) }
    }

    /// Enables recording of the non-speculative leak trace.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded leak trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&[LeakEvent]> {
        self.trace.as_deref()
    }

    /// Current value of `reg`.
    pub fn reg(&self, reg: Reg) -> u64 {
        self.regs[reg.index()]
    }

    /// Sets `reg` (writes to `r0` are ignored).
    pub fn set_reg(&mut self, reg: Reg, value: u64) {
        if !reg.is_zero() {
            self.regs[reg.index()] = value;
        }
    }

    /// Read access to memory.
    pub fn mem(&self) -> &SparseMem {
        &self.mem
    }

    /// Mutable access to memory (e.g. for input initialization).
    pub fn mem_mut(&mut self) -> &mut SparseMem {
        &mut self.mem
    }

    /// Whether the program has executed `Halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    fn leak(&mut self, pc: u64, kind: LeakKind, value: u64) {
        if let Some(t) = &mut self.trace {
            t.push(LeakEvent { pc, kind, value });
        }
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::PcOutOfBounds`] if the PC leaves the program.
    pub fn step(&mut self) -> Result<(), InterpError> {
        if self.halted {
            return Ok(());
        }
        let pc = self.pc;
        let inst = self.program.fetch(pc).ok_or(InterpError::PcOutOfBounds(pc))?;
        let mut next = pc + 1;
        match inst {
            Inst::Nop => {}
            Inst::Halt => self.halted = true,
            Inst::MovImm { rd, imm } => self.set_reg(rd, imm as u64),
            Inst::Mov { rd, rs } => self.set_reg(rd, self.reg(rs)),
            Inst::Alu { op, rd, rs1, rs2 } => {
                self.set_reg(rd, op.eval(self.reg(rs1), self.reg(rs2)))
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                self.set_reg(rd, op.eval(self.reg(rs1), imm as u64))
            }
            Inst::Load { rd, base, index, scale, offset, size } => {
                let addr = self
                    .reg(base)
                    .wrapping_add(self.reg(index) << scale)
                    .wrapping_add(offset as u64);
                self.leak(pc, LeakKind::LoadAddr, addr);
                let v = self.mem.read(addr, size.bytes());
                self.set_reg(rd, v);
            }
            Inst::Store { src, base, index, scale, offset, size } => {
                let addr = self
                    .reg(base)
                    .wrapping_add(self.reg(index) << scale)
                    .wrapping_add(offset as u64);
                self.leak(pc, LeakKind::StoreAddr, addr);
                self.mem.write(addr, self.reg(src), size.bytes());
            }
            Inst::Branch { cond, rs1, rs2, target } => {
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                self.leak(pc, LeakKind::BranchOutcome, taken as u64);
                if taken {
                    next = target as u64;
                }
            }
            Inst::Jump { target } => next = target as u64,
            Inst::JumpInd { base } => {
                next = self.reg(base);
                self.leak(pc, LeakKind::JumpTarget, next);
            }
            Inst::Call { target, link } => {
                self.set_reg(link, pc + 1);
                next = target as u64;
            }
            Inst::CallInd { base, link } => {
                self.set_reg(link, pc + 1);
                next = self.reg(base);
                self.leak(pc, LeakKind::JumpTarget, next);
            }
            Inst::Ret { link } => {
                next = self.reg(link);
                self.leak(pc, LeakKind::JumpTarget, next);
            }
        }
        self.retired += 1;
        if !self.halted {
            self.pc = next;
        }
        Ok(())
    }

    /// Runs until `Halt` or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::StepLimit`] if the budget is exhausted, or
    /// [`InterpError::PcOutOfBounds`] if execution escapes the program.
    pub fn run(&mut self, max_steps: u64) -> Result<(), InterpError> {
        for _ in 0..max_steps {
            if self.halted {
                return Ok(());
            }
            self.step()?;
        }
        if self.halted {
            Ok(())
        } else {
            Err(InterpError::StepLimit(max_steps))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    #[test]
    fn sparse_mem_roundtrip() {
        let mut m = SparseMem::new();
        m.write(0x12345, 0xdead_beef_cafe_f00d, 8);
        assert_eq!(m.read(0x12345, 8), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(0x12345, 4), 0xcafe_f00d);
        assert_eq!(m.read(0x12345, 1), 0x0d);
        // Cross-page write.
        m.write(4095, 0xaabb, 2);
        assert_eq!(m.read_u8(4095), 0xbb);
        assert_eq!(m.read_u8(4096), 0xaa);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = SparseMem::new();
        assert_eq!(m.read(0xffff_ffff_0000, 8), 0);
    }

    #[test]
    fn call_ret() {
        let mut a = Assembler::new();
        a.call("double", Reg::R31); // 0
        a.halt(); // 1
        a.label("double");
        a.add(Reg::R1, Reg::R1, Reg::R1); // 2
        a.ret(Reg::R31); // 3
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p);
        i.set_reg(Reg::R1, 21);
        i.run(100).unwrap();
        assert_eq!(i.reg(Reg::R1), 42);
        assert_eq!(i.retired(), 4);
    }

    #[test]
    fn leak_trace_records_transmitters() {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R1, 0x1000);
        a.ld(Reg::R2, Reg::R1, 8);
        a.st(Reg::R2, Reg::R1, 16);
        a.beq(Reg::R2, Reg::R0, "skip");
        a.nop();
        a.label("skip");
        a.halt();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p);
        i.enable_trace();
        i.run(100).unwrap();
        let trace = i.trace().unwrap();
        assert_eq!(
            trace,
            &[
                LeakEvent { pc: 1, kind: LeakKind::LoadAddr, value: 0x1008 },
                LeakEvent { pc: 2, kind: LeakKind::StoreAddr, value: 0x1010 },
                LeakEvent { pc: 3, kind: LeakKind::BranchOutcome, value: 1 },
            ]
        );
    }

    #[test]
    fn step_limit_error() {
        let mut a = Assembler::new();
        a.label("spin");
        a.jmp("spin");
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p);
        assert_eq!(i.run(10), Err(InterpError::StepLimit(10)));
    }

    #[test]
    fn pc_out_of_bounds() {
        let p = Program::from_insts(vec![Inst::Nop]);
        let mut i = Interp::new(&p);
        i.step().unwrap();
        assert_eq!(i.step(), Err(InterpError::PcOutOfBounds(1)));
    }

    #[test]
    fn zero_reg_is_never_written() {
        let mut a = Assembler::new();
        a.mov_imm(Reg::R0, 55);
        a.halt();
        let p = a.assemble().unwrap();
        let mut i = Interp::new(&p);
        i.run(10).unwrap();
        assert_eq!(i.reg(Reg::R0), 0);
    }

    use crate::program::Program;
}
