//! Property-based tests for the ISA layer: codec round-trips over the full
//! encodable instruction space, interpreter algebraic identities, and
//! sparse-memory consistency.

use proptest::prelude::*;
use spt_isa::encode::{decode, encode};
use spt_isa::interp::SparseMem;
use spt_isa::{AluOp, BranchCond, Inst, MemSize, Reg};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).expect("in range"))
}

fn alu_strategy() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
        Just(AluOp::Mul),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Seq),
        Just(AluOp::Sne),
    ]
}

fn cond_strategy() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn size_strategy() -> impl Strategy<Value = MemSize> {
    prop_oneof![Just(MemSize::B1), Just(MemSize::B2), Just(MemSize::B4), Just(MemSize::B8)]
}

const IMM_MAX: i64 = (1 << 34) - 1;

fn inst_strategy() -> impl Strategy<Value = Inst> {
    let imm = -(1i64 << 34)..=IMM_MAX;
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Halt),
        (reg_strategy(), imm.clone()).prop_map(|(rd, imm)| Inst::MovImm { rd, imm }),
        (reg_strategy(), reg_strategy()).prop_map(|(rd, rs)| Inst::Mov { rd, rs }),
        (alu_strategy(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (alu_strategy(), reg_strategy(), reg_strategy(), imm.clone())
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (reg_strategy(), reg_strategy(), reg_strategy(), 0u8..4, imm.clone(), size_strategy())
            .prop_map(|(rd, base, index, scale, offset, size)| Inst::Load {
                rd,
                base,
                index,
                scale,
                offset,
                size
            }),
        (reg_strategy(), reg_strategy(), reg_strategy(), 0u8..4, imm, size_strategy()).prop_map(
            |(src, base, index, scale, offset, size)| Inst::Store {
                src,
                base,
                index,
                scale,
                offset,
                size
            }
        ),
        (cond_strategy(), reg_strategy(), reg_strategy(), any::<u32>())
            .prop_map(|(cond, rs1, rs2, target)| Inst::Branch { cond, rs1, rs2, target }),
        any::<u32>().prop_map(|target| Inst::Jump { target }),
        reg_strategy().prop_map(|base| Inst::JumpInd { base }),
        (any::<u32>(), reg_strategy()).prop_map(|(target, link)| Inst::Call { target, link }),
        (reg_strategy(), reg_strategy()).prop_map(|(base, link)| Inst::CallInd { base, link }),
        reg_strategy().prop_map(|link| Inst::Ret { link }),
    ]
}

proptest! {
    /// decode(encode(i)) == i for every encodable instruction.
    #[test]
    fn codec_roundtrip(inst in inst_strategy()) {
        let word = encode(inst).expect("in-range instruction encodes");
        prop_assert_eq!(decode(word).expect("decodes"), inst);
    }

    /// The branch condition and its negation partition every input pair.
    #[test]
    fn branch_negation_partitions(cond in cond_strategy(), a in any::<u64>(), b in any::<u64>()) {
        prop_assert_ne!(cond.eval(a, b), cond.negate().eval(a, b));
    }

    /// ALU identities the backward-untaint rules rely on: invertible ops
    /// really are invertible.
    #[test]
    fn invertible_ops_are_invertible(a in any::<u64>(), b in any::<u64>()) {
        let sum = AluOp::Add.eval(a, b);
        prop_assert_eq!(AluOp::Sub.eval(sum, b), a);
        let diff = AluOp::Sub.eval(a, b);
        prop_assert_eq!(AluOp::Add.eval(diff, b), a);
        let x = AluOp::Xor.eval(a, b);
        prop_assert_eq!(AluOp::Xor.eval(x, b), a);
    }

    /// Memory writes then reads of arbitrary sizes round-trip the written
    /// (truncated) bytes, including across page boundaries.
    #[test]
    fn sparse_mem_write_read(addr in 0u64..100_000, value in any::<u64>(), size_sel in 0usize..4) {
        let size = [1u64, 2, 4, 8][size_sel];
        let mut m = SparseMem::new();
        m.write(addr, value, size);
        let mask = if size == 8 { u64::MAX } else { (1u64 << (8 * size)) - 1 };
        prop_assert_eq!(m.read(addr, size), value & mask);
    }

    /// Writes to disjoint ranges never interfere.
    #[test]
    fn sparse_mem_disjoint_writes(
        a in 0u64..50_000, va in any::<u64>(), vb in any::<u64>()
    ) {
        let b = a + 8;
        let mut m = SparseMem::new();
        m.write(a, va, 8);
        m.write(b, vb, 8);
        prop_assert_eq!(m.read(a, 8), va);
        prop_assert_eq!(m.read(b, 8), vb);
    }

    /// Sources/dest classification is stable: every instruction has at
    /// most 3 sources, and leak-role sources imply the instruction is a
    /// transmitter or control flow.
    #[test]
    fn operand_classification_invariants(inst in inst_strategy()) {
        let srcs = inst.sources();
        prop_assert!(srcs.len() <= 3);
        for (_, role) in srcs.iter() {
            if role.leaks_at_vp() {
                prop_assert!(
                    inst.is_transmitter() || inst.is_control_flow(),
                    "leaking operand on non-transmitter {inst:?}"
                );
            }
        }
        if let Some(d) = inst.dest() {
            prop_assert!(!d.is_zero());
        }
    }
}
