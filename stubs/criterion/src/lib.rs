//! Offline drop-in subset of the `criterion` 0.5 API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace patches `criterion` with this vendored subset (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It provides the surface
//! the repo's benches use — [`criterion_group!`], [`criterion_main!`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`] — and reports the median
//! wall-clock time per iteration as plain text. No HTML reports, no
//! statistics beyond the median, no command-line filtering.

use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`] (accepted for
/// compatibility; batches are always run one setup per measurement).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let sample_size = self.sample_size;
        self.benchmark_group("").run(&name.into(), sample_size, f);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let (group, sample_size) = (self.name.clone(), self.sample_size);
        let id = name.into();
        let label = if group.is_empty() { id } else { format!("{group}/{id}") };
        self.run(&label, sample_size, f);
        self
    }

    /// Ends the group (output is already printed; provided for API parity).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, sample_size: usize, mut f: F) {
        let mut b = Bencher { samples: Vec::with_capacity(sample_size), sample_size };
        f(&mut b);
        let mut per_iter: Vec<f64> = b.samples;
        if per_iter.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        println!("{label:<40} median {:>12} /iter ({} samples)", fmt_ns(median), per_iter.len());
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Per-benchmark timing context handed to the closure.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample to smooth out
    /// clock granularity.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for ~1ms per sample, at least 1 iteration.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as u64;
        let iters = (1_000_000 / once).clamp(1, 10_000);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// Declares a benchmark group function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_smoke() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("smoke");
        g.sample_size(2);
        g.bench_function("iter", |b| b.iter(|| black_box(1u64 + 1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn ns_formatting() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
    }
}
