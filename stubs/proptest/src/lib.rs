//! Offline drop-in subset of the `proptest` 1.x API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace patches `proptest` with this vendored subset (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It keeps the repo's
//! property tests source-compatible:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * [`prop_oneof!`], [`Just`], [`any`], integer-range strategies,
//!   tuple strategies, `prop_map`, and [`collection::vec`].
//!
//! Differences from upstream: generation is **deterministic** (the RNG is
//! seeded from the test name and case index, so CI never flakes) and
//! failing inputs are **not shrunk** — the full offending input is printed
//! instead.

use std::fmt;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Deterministic generator driving value production (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG for one test case, derived from the test name and case
    /// index so every run of the suite generates identical inputs.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h = 0xcbf29ce484222325u64;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15)) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)` for `span >= 1`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span >= 1);
        // Widening-multiply rejection keeps this unbiased.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            let wide = (v as u128) * (span as u128);
            if (wide as u64) <= zone {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Error type produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for upstream compatibility; there is no shrinking here, so
    /// the value is never consulted.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 1024 }
    }
}

/// A source of random values of one type.
///
/// Unlike upstream there is no shrinking: a strategy is just a generator.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Union<T> {
    /// Builds a union; panics on an empty variant list.
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Union { variants }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full value space of `T` as a strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from a half-open range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec<S::Value>` with `size.start <= len < size.end`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything the standard `use proptest::prelude::*;` import expects.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless the two values differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l, r, format!($($fmt)+)
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Each listed function runs `config.cases`
/// deterministic cases; the offending input is printed on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (
        ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategies = ($($strategy,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    let values = $crate::Strategy::generate(&strategies, &mut rng);
                    let rendered = format!("{:?}", values);
                    let ($($pat,)+) = values;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninput: {}",
                            stringify!($name), case + 1, config.cases, e, rendered
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_and_unions_stay_in_bounds() {
        let s = prop_oneof![0u8..4, Just(9u8), (10u8..12).prop_map(|v| v + 1)];
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v < 4 || v == 9 || (11..13).contains(&v), "got {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
        }

        #[test]
        fn tuples_and_assertions(a in 0u64..100, b in 0u64..100) {
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + b + 1);
            if a > b {
                return Ok(());
            }
            prop_assert!(a <= b);
        }
    }
}
