//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to a crates registry, so the
//! workspace patches `rand` with this vendored subset (see
//! `[patch.crates-io]` in the root `Cargo.toml`). Only the surface the
//! repository actually uses is provided:
//!
//! * [`rngs::SmallRng`] — the same xoshiro256++ generator as upstream
//!   `rand` 0.8 on 64-bit targets, with the same SplitMix64
//!   `seed_from_u64` expansion, so seeded streams of raw `u64`s match
//!   upstream bit-for-bit;
//! * [`Rng::gen`] for the primitive integer types;
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges
//!   (unbiased via rejection sampling);
//! * [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`].

/// Random-number generator core: a source of raw random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A generator seedable from fixed entropy.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion
    /// (identical to upstream `rand_core`).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform sample in `[0, span)` (`span >= 1`, `span <= 2^64`), unbiased
/// via Lemire-style widening-multiply rejection.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    if span > u64::MAX as u128 {
        // Full 2^64 span: every u64 is in range.
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (span as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo <= zone {
            return hi as u128;
        }
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Xoshiro256++, matching upstream `rand` 0.8's 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s.iter().all(|&w| w == 0) {
                // The all-zero state is a fixed point; perturb as upstream does.
                s = [0x9e3779b97f4a7c15, 0, 0, 0];
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> SmallRng {
            // SplitMix64, exactly as rand_core's default seed expansion.
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            SmallRng::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: usize = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }
}
