//! Umbrella crate for the SPT reproduction.
//!
//! Re-exports the public APIs of all member crates so examples and
//! integration tests can use a single dependency. See the crate-level
//! documentation of each member for details:
//!
//! - [`isa`] — the simulated instruction set, assembler, interpreter.
//! - [`mem`] — memory hierarchy (caches, MSHRs, main memory).
//! - [`frontend`] — branch prediction (TAGE, BTB, RAS) and fetch.
//! - [`core`] — the paper's contribution: taint masks, the untaint algebra,
//!   the bounded-width propagation engine, shadow L1/memory, configurations.
//! - [`ooo`] — the out-of-order pipeline with SPT/STT/baseline protections.
//! - [`workloads`] — SPEC2017-proxy and constant-time workloads, attacks.

pub use spt_core as core;
pub use spt_frontend as frontend;
pub use spt_isa as isa;
pub use spt_mem as mem;
pub use spt_ooo as ooo;
pub use spt_workloads as workloads;
