//! Dynamic verification of the paper's Theorem 1 (§8): every untaint
//! decision SPT makes during real workload runs must be independently
//! derivable by the model attacker from non-speculatively-leaked operands
//! and the public instruction stream. See `spt_ooo::validate`.

use spt_repro::core::{Config, ThreatModel};
use spt_repro::ooo::{CoreConfig, Machine, RunLimits};
use spt_repro::workloads::{attacks, full_suite, Scale, Workload};

fn validate(w: &Workload, config: Config, budget: u64) -> (u64, Vec<String>) {
    let mut m = Machine::new(w.program.clone(), CoreConfig::default(), config);
    w.apply_memory(m.mem_mut().store());
    m.enable_validation();
    m.run(RunLimits::retired(budget)).unwrap_or_else(|e| panic!("{} under {config}: {e}", w.name));
    m.validation_report().expect("validator enabled")
}

#[test]
fn theorem1_holds_on_every_workload_under_full_spt() {
    let mut total_checks = 0;
    for w in full_suite(Scale::Test) {
        for threat in [ThreatModel::Spectre, ThreatModel::Futuristic] {
            let (passed, violations) = validate(&w, Config::spt_full(threat), 4_000);
            assert!(
                violations.is_empty(),
                "{} [{threat}]: Theorem 1 violated:\n{}",
                w.name,
                violations.join("\n")
            );
            total_checks += passed;
        }
    }
    assert!(
        total_checks > 1_000,
        "the validator must actually exercise untaint decisions, got {total_checks}"
    );
}

#[test]
fn theorem1_holds_under_every_spt_variant() {
    // One representative gather-heavy workload across all SPT variants
    // (these exercise every untaint mechanism).
    let suite = full_suite(Scale::Test);
    let w = suite.iter().find(|w| w.name == "xalancbmk").expect("present");
    for threat in [ThreatModel::Spectre, ThreatModel::Futuristic] {
        for config in [
            Config::secure_baseline(threat),
            Config::spt_fwd(threat),
            Config::spt_bwd(threat),
            Config::spt_full(threat),
            Config::spt_shadow_mem(threat),
            Config::spt_ideal(threat),
        ] {
            let (_, violations) = validate(w, config, 4_000);
            assert!(
                violations.is_empty(),
                "{config}: Theorem 1 violated:\n{}",
                violations.join("\n")
            );
        }
    }
}

#[test]
fn theorem1_holds_during_the_attacks() {
    // The attacks are the adversarial case: mis-speculation, mistrained
    // predictors, deferred squashes. No untaint may outrun the attacker.
    for attack in [attacks::spectre_v1(), attacks::ct_secret(), attacks::implicit_branch()] {
        for threat in [ThreatModel::Spectre, ThreatModel::Futuristic] {
            for config in [Config::spt_full(threat), Config::spt_ideal(threat)] {
                let (_, violations) = validate(&attack.workload, config, 100_000);
                assert!(
                    violations.is_empty(),
                    "{} under {config}: Theorem 1 violated:\n{}",
                    attack.workload.name,
                    violations.join("\n")
                );
            }
        }
    }
}

#[test]
fn validator_catches_a_planted_unsound_untaint() {
    // Negative control: feed the validator a broadcast that SPT never
    // justified and confirm it is flagged — the validator is not
    // vacuously happy.
    use spt_repro::core::UntaintKind;
    use spt_repro::ooo::SecurityValidator;

    let mut v = SecurityValidator::new();
    // A load of secret data into p5 (no declassification whatsoever).
    v.on_rename(
        1,
        0,
        spt_repro::isa::Inst::Load {
            rd: spt_repro::isa::Reg::R5,
            base: spt_repro::isa::Reg::R1,
            index: spt_repro::isa::Reg::R0,
            scale: 0,
            offset: 0,
            size: spt_repro::isa::MemSize::B8,
        },
        [Some(4), None, None],
        Some(5),
        false,
    );
    v.on_mem_addr(1, 0x1000);
    // Plant an unjustified "shadow says public" broadcast.
    v.on_broadcast(5, UntaintKind::ShadowL1);
    v.finish(|_| Some(0xdead_beef));
    assert!(!v.violations().is_empty(), "the planted unsound untaint must be reported");
}
