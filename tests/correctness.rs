//! Cross-crate correctness: every workload produces bit-identical
//! architectural results on the reference interpreter and on the pipeline
//! under every Table-2 configuration × threat model. Protections change
//! timing, never semantics.

use spt_repro::core::{Config, ThreatModel};
use spt_repro::isa::interp::SparseMem;
use spt_repro::ooo::{CoreConfig, Machine, RunLimits};
use spt_repro::workloads::{full_suite, Scale, Workload};

/// Memory regions each workload writes, to compare after the run.
/// (Reading the whole sparse space is wasteful; these cover all outputs.)
fn output_ranges(w: &Workload) -> Vec<(u64, usize)> {
    match w.name {
        "chacha20" => vec![(spt_repro::workloads::ct::CHACHA_OUT, 128)],
        "bitslice" => vec![(spt_repro::workloads::ct::BITSLICE_OUT, 40)],
        "djbsort" => vec![(spt_repro::workloads::ct::CTSORT_DATA, 8 * 64)],
        _ => vec![],
    }
}

fn run_reference(w: &Workload) -> (u64, SparseMem) {
    let mut i = w.interp();
    i.run(5_000_000).unwrap_or_else(|e| panic!("{} interp: {e}", w.name));
    assert!(i.halted(), "{}", w.name);
    (i.retired(), i.mem().clone())
}

#[test]
fn every_workload_matches_the_interpreter_under_every_config() {
    for w in full_suite(Scale::Test) {
        let (ref_retired, ref_mem) = run_reference(&w);
        for threat in [ThreatModel::Spectre, ThreatModel::Futuristic] {
            for config in Config::table2(threat) {
                let mut m = Machine::new(w.program.clone(), CoreConfig::default(), config);
                w.apply_memory(m.mem_mut().store());
                let out = m
                    .run(RunLimits::default())
                    .unwrap_or_else(|e| panic!("{} under {config}: {e}", w.name));
                assert_eq!(out.retired, ref_retired, "{} under {config}: retired count", w.name);
                for (base, len) in output_ranges(&w) {
                    let got = m.mem().store_ref().read_bytes(base, len);
                    let want = ref_mem.read_bytes(base, len);
                    assert_eq!(got, want, "{} under {config}: output bytes @{base:#x}", w.name);
                }
            }
        }
    }
}

#[test]
fn tiny_core_configuration_is_also_correct() {
    // A 2-wide, 16-entry-ROB core stresses structural-hazard paths
    // (ROB/RS/LSQ full, free-list exhaustion) that the big core rarely hits.
    for w in full_suite(Scale::Test).into_iter().take(6) {
        let (ref_retired, _) = run_reference(&w);
        for config in [
            Config::unsafe_baseline(ThreatModel::Futuristic),
            Config::spt_full(ThreatModel::Futuristic),
            Config::secure_baseline(ThreatModel::Spectre),
        ] {
            let mut m = Machine::new(w.program.clone(), CoreConfig::tiny(), config);
            w.apply_memory(m.mem_mut().store());
            let out = m
                .run(RunLimits::default())
                .unwrap_or_else(|e| panic!("{} tiny under {config}: {e}", w.name));
            assert_eq!(out.retired, ref_retired, "{} tiny under {config}", w.name);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let w = &full_suite(Scale::Test)[0];
    let config = Config::spt_full(ThreatModel::Futuristic);
    let run = || {
        let mut m = Machine::new(w.program.clone(), CoreConfig::default(), config);
        w.apply_memory(m.mem_mut().store());
        let out = m.run(RunLimits::default()).expect("runs");
        (out.cycles, out.retired, m.stats().spt.events.total())
    };
    assert_eq!(run(), run(), "bit-identical reruns");
}

#[test]
fn chacha20_rfc_vector_on_the_pipeline() {
    // The RFC 8439 §2.3.2 keystream, produced by the out-of-order machine
    // under full SPT protection.
    let expected: [u64; 16] = [
        0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
        0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
        0xe883d0cb, 0x4e3c50a2,
    ];
    let w = spt_repro::workloads::ct::chacha20_blocks(1);
    let mut m = Machine::new(
        w.program.clone(),
        CoreConfig::default(),
        Config::spt_full(ThreatModel::Futuristic),
    );
    w.apply_memory(m.mem_mut().store());
    m.run(RunLimits::default()).expect("runs");
    for (k, &e) in expected.iter().enumerate() {
        let got = m.mem().store_ref().read(spt_repro::workloads::ct::CHACHA_OUT + 8 * k as u64, 8);
        assert_eq!(got, e, "keystream word {k}");
    }
}

#[test]
fn division_through_the_pipeline() {
    // Variable-time Div/Rem: correct values under every configuration,
    // including divide-by-zero (RISC-V semantics).
    use spt_repro::isa::asm::Assembler;
    use spt_repro::isa::Reg;
    let mut a = Assembler::new();
    a.mov_imm(Reg::R1, 1000);
    a.mov_imm(Reg::R2, 7);
    a.div(Reg::R3, Reg::R1, Reg::R2);
    a.rem(Reg::R4, Reg::R1, Reg::R2);
    a.div(Reg::R5, Reg::R1, Reg::R0); // divide by zero
    a.rem(Reg::R6, Reg::R1, Reg::R0);
    a.divi(Reg::R7, Reg::R1, 13);
    a.halt();
    let p = a.assemble().unwrap();
    for threat in [ThreatModel::Spectre, ThreatModel::Futuristic] {
        for config in Config::table2(threat) {
            let mut m = Machine::new(p.clone(), CoreConfig::default(), config);
            m.run(RunLimits::default()).unwrap();
            assert_eq!(m.reg(Reg::R3), 142, "{config}");
            assert_eq!(m.reg(Reg::R4), 6, "{config}");
            assert_eq!(m.reg(Reg::R5), u64::MAX, "{config}");
            assert_eq!(m.reg(Reg::R6), 1000, "{config}");
            assert_eq!(m.reg(Reg::R7), 76, "{config}");
        }
    }
}

#[test]
fn parsed_programs_run_identically_to_built_ones() {
    // The text parser's output must be execution-equivalent to the builder
    // API's for a real workload.
    use spt_repro::isa::parse::parse_program;
    let w = &spt_repro::workloads::ct_suite(Scale::Test)[1]; // chacha20
    let text = w.program.to_string();
    let reparsed = parse_program(&text).expect("workload listing parses");
    assert_eq!(reparsed.insts(), w.program.insts());

    let mut m1 = Machine::new(
        w.program.clone(),
        CoreConfig::default(),
        Config::spt_full(ThreatModel::Futuristic),
    );
    w.apply_memory(m1.mem_mut().store());
    let out1 = m1.run(RunLimits::default()).unwrap();

    let mut m2 =
        Machine::new(reparsed, CoreConfig::default(), Config::spt_full(ThreatModel::Futuristic));
    w.apply_memory(m2.mem_mut().store());
    let out2 = m2.run(RunLimits::default()).unwrap();
    assert_eq!(out1.cycles, out2.cycles, "identical programs take identical cycles");
    assert_eq!(out1.retired, out2.retired);
}
